//! Cross-crate property-based tests: invariants that must hold for *any*
//! workload configuration, not just the Table 2 points.

use proptest::prelude::*;

use napel::pisa::ApplicationProfile;
use napel::sim::{ArchConfig, NmcSystem};
use napel::workloads::{Scale, Workload};

/// A strategy over (workload, in-range parameter values).
fn workload_and_params() -> impl Strategy<Value = (Workload, Vec<f64>)> {
    (0..Workload::ALL.len()).prop_flat_map(|i| {
        let w = Workload::ALL[i];
        let spec = w.spec();
        let ranges: Vec<_> = spec
            .params
            .iter()
            .map(|p| p.levels[0]..=p.levels[4])
            .collect();
        (Just(w), ranges).prop_map(|(w, params)| (w, params))
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn any_configuration_produces_a_finite_profile((w, params) in workload_and_params()) {
        let trace = w.generate(&params, Scale::tiny());
        prop_assert!(trace.total_insts() > 0, "{w} emitted nothing for {params:?}");
        let profile = ApplicationProfile::of(&trace);
        prop_assert_eq!(profile.values().len(), napel::pisa::feature_names().len());
        for (name, v) in napel::pisa::feature_names().iter().zip(profile.values()) {
            prop_assert!(v.is_finite(), "{} non-finite for {} {:?}", name, w, params);
        }
        // Mix fractions are probabilities.
        for class in ["int", "fp", "mem_read", "mem_write", "control", "other"] {
            let f = profile.value(&format!("mix.class.{class}"));
            prop_assert!((0.0..=1.0).contains(&f), "{class} fraction {f}");
        }
    }

    #[test]
    fn any_configuration_simulates_sanely((w, params) in workload_and_params()) {
        let trace = w.generate(&params, Scale::tiny());
        let report = NmcSystem::new(ArchConfig::paper_default()).run(&trace);
        prop_assert_eq!(report.instructions, trace.total_insts() as u64);
        prop_assert!(report.cycles > 0);
        // IPC can never exceed the number of single-issue PEs.
        prop_assert!(report.ipc() <= 32.0 + 1e-9, "ipc {}", report.ipc());
        prop_assert!(report.energy_joules() > 0.0);
        // DRAM reads exactly cover cache fills; writes cover write-backs.
        prop_assert_eq!(report.dram.reads, report.dcache.misses());
        prop_assert_eq!(report.dram.writes, report.dcache.writebacks);
    }

    #[test]
    fn scaling_dimension_parameters_up_never_shrinks_work(
        which in 0..Workload::ALL.len(),
        lo in 0.0f64..=0.4,
        hi in 0.6f64..=1.0,
    ) {
        let w = Workload::ALL[which];
        let spec = w.spec();
        // Interpolate every parameter between its min and max levels.
        let at = |t: f64| -> Vec<f64> {
            spec.params
                .iter()
                .map(|p| p.levels[0] + t * (p.levels[4] - p.levels[0]))
                .collect()
        };
        let small = w.generate(&at(lo), Scale::tiny());
        let large = w.generate(&at(hi), Scale::tiny());
        prop_assert!(
            large.total_insts() >= small.total_insts(),
            "{w}: work decreased from {} to {} when all params grew",
            small.total_insts(),
            large.total_insts()
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    #[test]
    fn simulated_time_scales_down_with_frequency(freq in 0.5f64..4.0) {
        let trace = Workload::Atax.generate(&[700.0, 4.0], Scale::tiny());
        let base = NmcSystem::new(ArchConfig::paper_default()).run(&trace);
        let scaled = NmcSystem::new(ArchConfig { freq_ghz: freq, ..ArchConfig::paper_default() })
            .run(&trace);
        // Same cycle count (timing params are in cycles), different seconds.
        prop_assert_eq!(base.cycles, scaled.cycles);
        let expect = base.exec_time_seconds() * ArchConfig::paper_default().freq_ghz / freq;
        prop_assert!((scaled.exec_time_seconds() - expect).abs() < 1e-12);
    }

    #[test]
    fn forest_prediction_stays_within_label_range(seed in 0u64..1000) {
        use napel::ml::dataset::Dataset;
        use napel::ml::forest::RandomForestParams;
        use napel::ml::{Estimator, Regressor};
        use rand::{rngs::StdRng, SeedableRng};

        let mut rng = StdRng::seed_from_u64(seed);
        let mut b = Dataset::builder(vec!["x".into(), "y".into()]);
        use rand::Rng;
        for _ in 0..30 {
            let x: f64 = rng.gen_range(-5.0..5.0);
            let y: f64 = rng.gen_range(-5.0..5.0);
            b.push_row(vec![x, y], x * y + x).expect("row");
        }
        let data = b.build().expect("data");
        let model = RandomForestParams { num_trees: 15, ..Default::default() }
            .fit(&data, &mut rng)
            .expect("fit");
        let (lo, hi) = data.target_range();
        for probe in [[-10.0, -10.0], [0.0, 0.0], [100.0, 3.0]] {
            let p = model.predict_one(&probe);
            prop_assert!(p >= lo - 1e-9 && p <= hi + 1e-9, "{p} outside [{lo}, {hi}]");
        }
    }
}
