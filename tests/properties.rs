//! Cross-crate property-based tests: invariants that must hold for *any*
//! workload configuration, not just the Table 2 points.

use proptest::prelude::*;

use napel::core::checkpoint::{decode_entry, encode_entry, CheckpointJournal};
use napel::core::features::{combined_feature_names, CollectStats, LabeledRun};
use napel::pisa::ApplicationProfile;
use napel::sim::{ArchConfig, NmcSystem};
use napel::workloads::{Scale, Workload};

/// A strategy over campaign timing accountings with non-negative phases.
fn stats_strategy() -> impl Strategy<Value = CollectStats> {
    (0.0f64..1e6, 0.0f64..1e6, 0.0f64..1e6).prop_map(|(g, p, s)| CollectStats {
        generate_seconds: g,
        profile_seconds: p,
        simulate_seconds: s,
    })
}

/// A strategy over finite labeled rows (what the checkpoint journal
/// holds). Feature vectors have the real schema arity — the journal
/// drops any other arity as stale on replay.
fn labeled_run_strategy() -> impl Strategy<Value = LabeledRun> {
    let arity = combined_feature_names().len();
    (
        0..Workload::ALL.len(),
        prop::collection::vec(-1e6f64..1e6, 1..5),
        prop::collection::vec(-1e6f64..1e6, arity..=arity),
        0u64..1u64 << 50,
        1e-9f64..32.0,
        1e-3f64..1e3,
    )
        .prop_map(
            |(w, params, features, instructions, ipc, energy_per_inst_pj)| LabeledRun {
                workload: Workload::ALL[w],
                params,
                features,
                instructions,
                ipc,
                energy_per_inst_pj,
            },
        )
}

/// A fresh journal path per call, unique across tests and processes.
fn unique_journal_path() -> std::path::PathBuf {
    use std::sync::atomic::{AtomicUsize, Ordering};
    static COUNTER: AtomicUsize = AtomicUsize::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "napel-props-journal-{}-{n}.ckpt",
        std::process::id()
    ))
}

/// A strategy over (workload, in-range parameter values).
fn workload_and_params() -> impl Strategy<Value = (Workload, Vec<f64>)> {
    (0..Workload::ALL.len()).prop_flat_map(|i| {
        let w = Workload::ALL[i];
        let spec = w.spec();
        let ranges: Vec<_> = spec
            .params
            .iter()
            .map(|p| p.levels[0]..=p.levels[4])
            .collect();
        (Just(w), ranges).prop_map(|(w, params)| (w, params))
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn any_configuration_produces_a_finite_profile((w, params) in workload_and_params()) {
        let trace = w.generate(&params, Scale::tiny());
        prop_assert!(trace.total_insts() > 0, "{w} emitted nothing for {params:?}");
        let profile = ApplicationProfile::of(&trace);
        prop_assert_eq!(profile.values().len(), napel::pisa::feature_names().len());
        for (name, v) in napel::pisa::feature_names().iter().zip(profile.values()) {
            prop_assert!(v.is_finite(), "{} non-finite for {} {:?}", name, w, params);
        }
        // Mix fractions are probabilities.
        for class in ["int", "fp", "mem_read", "mem_write", "control", "other"] {
            let f = profile.value(&format!("mix.class.{class}"));
            prop_assert!((0.0..=1.0).contains(&f), "{class} fraction {f}");
        }
    }

    #[test]
    fn any_configuration_simulates_sanely((w, params) in workload_and_params()) {
        let trace = w.generate(&params, Scale::tiny());
        let report = NmcSystem::new(ArchConfig::paper_default()).run(&trace);
        prop_assert_eq!(report.instructions, trace.total_insts() as u64);
        prop_assert!(report.cycles > 0);
        // IPC can never exceed the number of single-issue PEs.
        prop_assert!(report.ipc() <= 32.0 + 1e-9, "ipc {}", report.ipc());
        prop_assert!(report.energy_joules() > 0.0);
        // DRAM reads exactly cover cache fills; writes cover write-backs.
        prop_assert_eq!(report.dram.reads, report.dcache.misses());
        prop_assert_eq!(report.dram.writes, report.dcache.writebacks);
    }

    #[test]
    fn scaling_dimension_parameters_up_never_shrinks_work(
        which in 0..Workload::ALL.len(),
        lo in 0.0f64..=0.4,
        hi in 0.6f64..=1.0,
    ) {
        let w = Workload::ALL[which];
        let spec = w.spec();
        // Interpolate every parameter between its min and max levels.
        let at = |t: f64| -> Vec<f64> {
            spec.params
                .iter()
                .map(|p| p.levels[0] + t * (p.levels[4] - p.levels[0]))
                .collect()
        };
        let small = w.generate(&at(lo), Scale::tiny());
        let large = w.generate(&at(hi), Scale::tiny());
        prop_assert!(
            large.total_insts() >= small.total_insts(),
            "{w}: work decreased from {} to {} when all params grew",
            small.total_insts(),
            large.total_insts()
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    #[test]
    fn simulated_time_scales_down_with_frequency(freq in 0.5f64..4.0) {
        let trace = Workload::Atax.generate(&[700.0, 4.0], Scale::tiny());
        let base = NmcSystem::new(ArchConfig::paper_default()).run(&trace);
        let scaled = NmcSystem::new(ArchConfig { freq_ghz: freq, ..ArchConfig::paper_default() })
            .run(&trace);
        // Same cycle count (timing params are in cycles), different seconds.
        prop_assert_eq!(base.cycles, scaled.cycles);
        let expect = base.exec_time_seconds() * ArchConfig::paper_default().freq_ghz / freq;
        prop_assert!((scaled.exec_time_seconds() - expect).abs() < 1e-12);
    }

    #[test]
    fn collect_stats_merge_is_associative_with_identity(
        (a, b, c) in (stats_strategy(), stats_strategy(), stats_strategy())
    ) {
        // Associativity, up to float-addition noise: (a ⊕ b) ⊕ c ≈ a ⊕ (b ⊕ c).
        let mut left = a;
        left.merge(&b);
        left.merge(&c);
        let mut bc = b;
        bc.merge(&c);
        let mut right = a;
        right.merge(&bc);
        let close = |x: f64, y: f64| (x - y).abs() <= 1e-9 * x.abs().max(y.abs()).max(1.0);
        prop_assert!(close(left.generate_seconds, right.generate_seconds));
        prop_assert!(close(left.profile_seconds, right.profile_seconds));
        prop_assert!(close(left.simulate_seconds, right.simulate_seconds));

        // The default accounting is an exact two-sided identity.
        let mut with_id = a;
        with_id.merge(&CollectStats::default());
        prop_assert_eq!(with_id, a);
        let mut id = CollectStats::default();
        id.merge(&a);
        prop_assert_eq!(id, a);
    }

    #[test]
    fn checkpoint_entries_round_trip_bit_exactly(
        run in labeled_run_strategy(),
        hash in any::<u64>(),
    ) {
        let line = encode_entry(hash, &run);
        prop_assert!(line.ends_with('\n'));
        let (h, decoded) = decode_entry(line.trim_end()).expect("well-formed entry");
        prop_assert_eq!(h, hash);
        prop_assert_eq!(&decoded, &run);
        for (d, o) in decoded.features.iter().zip(&run.features) {
            prop_assert_eq!(d.to_bits(), o.to_bits(), "feature restore must be bit-exact");
        }
        prop_assert_eq!(decoded.ipc.to_bits(), run.ipc.to_bits());
    }

    #[test]
    fn checkpoint_journal_recovers_from_a_corrupt_tail(
        runs in prop::collection::vec(labeled_run_strategy(), 1..5),
        cut in 1usize..200,
    ) {
        // n intact entries followed by an entry torn mid-write (no
        // terminator): open() must keep the prefix, drop the tail, and
        // truncate the file so appends stay well-formed.
        let path = unique_journal_path();
        let mut content = String::new();
        for (i, r) in runs.iter().enumerate() {
            content.push_str(&encode_entry(i as u64, r));
        }
        let torn = encode_entry(u64::MAX, &runs[0]);
        content.push_str(&torn[..cut.min(torn.len() - 1)]);
        std::fs::write(&path, &content).unwrap();

        let journal = CheckpointJournal::open(&path).expect("open survives corruption");
        prop_assert_eq!(journal.len(), runs.len());
        for (i, r) in runs.iter().enumerate() {
            prop_assert_eq!(journal.restored(i as u64), Some(r));
        }
        drop(journal);
        let healed = std::fs::read_to_string(&path).unwrap();
        prop_assert_eq!(healed.lines().count(), runs.len(), "torn tail must be truncated");
        prop_assert!(healed.is_empty() || healed.ends_with('\n'));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn mutated_telemetry_jsonl_parses_or_errors_without_panicking(
        counter_values in prop::collection::vec(any::<u64>(), 1..4),
        attr_bytes in prop::collection::vec(any::<u8>(), 0..16),
        cut in any::<u16>(),
        splice_at in any::<u16>(),
        splice in prop::collection::vec(any::<u8>(), 0..8),
    ) {
        use napel::telemetry::{Telemetry, TelemetryReport};

        // A genuine round-trip document, with a span attribute carrying
        // arbitrary (lossily-decoded) bytes through string escaping.
        let t = Telemetry::enabled();
        {
            let payload = String::from_utf8_lossy(&attr_bytes).into_owned();
            let _span = t.span("prop.span").attr("payload", payload);
            let _inner = t.span("prop.inner");
        }
        for (i, v) in counter_values.iter().enumerate() {
            t.counter(&format!("prop.counter.{i}"), *v);
        }
        t.observe("prop.hist", &[0.5, 1.5], 1.0);
        let report = t.drain();
        let text = report.to_jsonl();
        prop_assert_eq!(
            TelemetryReport::from_jsonl(&text).expect("round trip"),
            report
        );

        // Rows truncated mid-write must produce a parse error (or, if the
        // cut lands on a line boundary, a shorter report) — never a panic.
        let cut = (cut as usize) % (text.len() + 1);
        let truncated = String::from_utf8_lossy(&text.as_bytes()[..cut]).into_owned();
        let _ = TelemetryReport::from_jsonl(&truncated);

        // Arbitrary bytes spliced into the middle of a row likewise.
        let at = (splice_at as usize) % (text.len() + 1);
        let mut bytes = text.into_bytes();
        bytes.splice(at..at, splice.iter().copied());
        let mutated = String::from_utf8_lossy(&bytes).into_owned();
        let _ = TelemetryReport::from_jsonl(&mutated);
    }

    #[test]
    fn forest_prediction_stays_within_label_range(seed in 0u64..1000) {
        use napel::ml::dataset::Dataset;
        use napel::ml::forest::RandomForestParams;
        use napel::ml::{Estimator, Regressor};
        use rand::{rngs::StdRng, SeedableRng};

        let mut rng = StdRng::seed_from_u64(seed);
        let mut b = Dataset::builder(vec!["x".into(), "y".into()]);
        use rand::Rng;
        for _ in 0..30 {
            let x: f64 = rng.gen_range(-5.0..5.0);
            let y: f64 = rng.gen_range(-5.0..5.0);
            b.push_row(vec![x, y], x * y + x).expect("row");
        }
        let data = b.build().expect("data");
        let model = RandomForestParams { num_trees: 15, ..Default::default() }
            .fit(&data, &mut rng)
            .expect("fit");
        let (lo, hi) = data.target_range();
        for probe in [[-10.0, -10.0], [0.0, 0.0], [100.0, 3.0]] {
            let p = model.predict_one(&probe);
            prop_assert!(p >= lo - 1e-9 && p <= hi + 1e-9, "{p} outside [{lo}, {hi}]");
        }
    }
}
