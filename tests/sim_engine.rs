//! Differential suite for the phase-split simulation engine.
//!
//! The contract under test (DESIGN.md §11): the phase-split engine —
//! per-PE frontends, batched per-vault event queues, arena-allocated
//! in-flight loads — is **bit-exact** against the reference globally
//! interleaved engine. `SimReport: PartialEq` compares every field
//! (instructions, cycles, cache/DRAM/link counters, all four energy terms,
//! active PEs, per-vault traffic), so one `assert_eq!` per run covers the
//! whole report.
//!
//! Axes swept:
//! - all 12 Table 2 kernels,
//! - three architecture configurations: the Table 3 default, a contended
//!   open-row multi-issue shape, and a non-power-of-two geometry that
//!   exercises the DRAM address mapping's division fallback,
//! - both trace entries: materialized [`MultiTrace`] and compact-encoded
//!   per-thread streams (the two `TracePolicy` residencies),
//! - Serial and Threaded campaign executors, both residency policies,
//!   with rows checked against reference-engine labels.

use napel::core::campaign::{
    plan_jobs, ProfileCache, ResidentTrace, Serial, Threaded, TracePolicy,
};
use napel::core::collect::{collect_with, CollectionPlan};
use napel::core::features::LabeledRun;
use napel::ir::EncodedTrace;
use napel::sim::{ArchConfig, NmcSystem, RowPolicy, SimEngine, SimReport};
use napel::workloads::{Scale, Workload};

/// The three architecture shapes every kernel is differenced under.
fn arch_configs() -> Vec<(&'static str, ArchConfig)> {
    vec![
        ("paper_default", ArchConfig::paper_default()),
        (
            "open_row_wide_issue",
            ArchConfig {
                num_pes: 4,
                issue_width: 2,
                row_policy: RowPolicy::Open,
                cache_lines: 4,
                ..ArchConfig::paper_default()
            },
        ),
        (
            // 12 vaults × 3 layers: neither count is a power of two, so the
            // address mapping must take the division path; 2 PEs force
            // heavy thread sharing and bank contention.
            "non_pow2_geometry",
            ArchConfig {
                num_pes: 2,
                vaults: 12,
                dram_layers: 3,
                ..ArchConfig::paper_default()
            },
        ),
    ]
}

#[test]
fn phase_engine_is_field_identical_to_reference_on_all_kernels() {
    for (name, arch) in arch_configs() {
        let sys = NmcSystem::new(arch);
        for w in Workload::ALL {
            let trace = w.generate_test(Scale::tiny());
            let reference = sys.run_reference(&trace);
            let phase = sys.run(&trace);
            assert_eq!(phase, reference, "{w} on {name} (materialized)");

            // Same invariant feeding the engine from compact-encoded
            // streams (the TracePolicy::Encoded residency).
            let enc = EncodedTrace::from_multi(&trace);
            let streamed = sys.run_streams(enc.thread_iters());
            assert_eq!(streamed, reference, "{w} on {name} (encoded streams)");
            let streamed_ref = sys.run_streams_reference(enc.thread_iters());
            assert_eq!(streamed_ref, reference, "{w} on {name} (reference streams)");
        }
    }
}

#[test]
fn reused_engine_is_field_identical_to_reference_on_all_kernels() {
    // One engine across every kernel × config, the way a campaign worker
    // drives it: buffer reuse must leave no state behind between runs.
    let mut engine = SimEngine::new();
    for (name, arch) in arch_configs() {
        let sys = NmcSystem::new(arch);
        for w in Workload::ALL {
            let trace = w.generate_test(Scale::tiny());
            let reference = sys.run_reference(&trace);
            assert_eq!(engine.run(&sys, &trace), reference, "{w} on {name}");
        }
    }
}

/// Simulates a job's trace (under `policy` residency) with the reference
/// engine, producing the labeled row the campaign is expected to emit.
fn reference_row(
    job: &napel::core::campaign::SimJob,
    cache: &ProfileCache,
) -> (LabeledRun, SimReport) {
    let point = cache.profiled(job);
    let sys = NmcSystem::new(job.arch.clone());
    let report = match &point.trace {
        ResidentTrace::Encoded(enc) => sys.run_streams_reference(enc.thread_iters()),
        ResidentTrace::Regenerate => {
            sys.run_reference(&job.workload.generate(&job.coords, job.scale))
        }
    };
    let run = LabeledRun::from_report_checked(
        job.workload,
        job.coords.clone(),
        &point.profile,
        &job.arch,
        &report,
    )
    .expect("reference rows satisfy the schema");
    (run, report)
}

#[test]
fn campaign_rows_match_reference_labels_across_executors_and_policies() {
    // End-to-end: the real campaign path (which runs the phase-split
    // engine through per-worker engine reuse) must produce rows identical
    // to reference-engine labels, under both executors and both trace
    // residency policies.
    let plan = CollectionPlan {
        workloads: vec![Workload::Gemv, Workload::Bp],
        scale: Scale::tiny(),
        ..Default::default()
    };
    let serial = collect_with(&plan, &Serial);
    let threaded = collect_with(&plan, &Threaded::new(4));
    assert_eq!(
        serial.runs, threaded.runs,
        "Serial and Threaded must agree row for row"
    );

    let jobs = plan_jobs(&plan);
    for policy in [TracePolicy::Encoded, TracePolicy::Regenerate] {
        let cache = ProfileCache::with_policy(&jobs, policy);
        for (job, produced) in jobs.iter().zip(&serial.runs) {
            let (expected, _) = reference_row(job, &cache);
            assert_eq!(
                produced,
                &expected,
                "{policy:?}: campaign row diverges from the reference engine for {}",
                job.describe()
            );
        }
    }
}
