//! Integration tests for the model-artifact layer: train → save → load →
//! predict must be bit-identical to never leaving memory, for every
//! estimator family and through the experiment drivers.

use std::path::{Path, PathBuf};

use napel::core::artifact::{
    read_artifacts, write_artifacts, ModelArtifact, ModelIo, Provenance, TargetKind,
};
use napel::core::campaign::Serial;
use napel::core::collect::{collect, CollectionPlan};
use napel::core::experiments::{fig4, fig5, Context};
use napel::core::features::TrainingSet;
use napel::core::model::{Napel, NapelConfig, TrainedNapel};
use napel::core::NapelError;
use napel::ml::ensemble::{EnsembleParams, WeightedEnsemble, NUM_MEMBERS};
use napel::ml::forest::RandomForestParams;
use napel::ml::linear::RidgeParams;
use napel::ml::log_space::{LogModel, LogOf};
use napel::ml::mlp::MlpParams;
use napel::ml::model_tree::ModelTreeParams;
use napel::ml::persist::Predictor;
use napel::ml::tree::DecisionTreeParams;
use napel::ml::{Estimator, Regressor};
use napel::workloads::{Scale, Workload};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn scratch_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("napel-artifacts-{name}"));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

fn tiny_set() -> TrainingSet {
    collect(&CollectionPlan {
        workloads: vec![Workload::Atax, Workload::Gemv],
        scale: Scale::tiny(),
        ..Default::default()
    })
}

/// A small-but-real ensemble configuration so the four-member fits stay
/// fast in the integration suite.
fn quick_ensemble() -> EnsembleParams {
    EnsembleParams {
        forest: RandomForestParams {
            num_trees: 8,
            ..Default::default()
        },
        mlp: MlpParams {
            hidden: vec![6],
            epochs: 25,
            ..Default::default()
        },
        ..Default::default()
    }
}

fn provenance(set: &TrainingSet, seed: u64, grid: String) -> Provenance {
    Provenance {
        seed,
        grid: vec![grid],
        workloads: set
            .workloads()
            .iter()
            .map(|w| w.name().to_string())
            .collect(),
        training_rows: set.runs.len(),
        training_hash: set.content_hash(),
    }
}

/// Fits one estimator, round-trips it through a saved artifact, and
/// asserts the reloaded model predicts bit-identically on every training
/// row.
fn assert_family_round_trips<E>(estimator: &E, set: &TrainingSet, dir: &Path)
where
    E: Estimator,
    E::Model: Predictor,
{
    let mut rng = StdRng::seed_from_u64(11);
    let model = estimator
        .fit(&set.ipc_dataset().expect("dataset"), &mut rng)
        .unwrap_or_else(|e| panic!("{}: fit failed: {e}", estimator.describe()));
    let kind = model.model_kind();

    let artifact = ModelArtifact::from_predictor(
        TargetKind::Ipc,
        set.feature_names.clone(),
        Provenance {
            seed: 11,
            grid: vec![estimator.describe()],
            workloads: set
                .workloads()
                .iter()
                .map(|w| w.name().to_string())
                .collect(),
            training_rows: set.runs.len(),
            training_hash: set.content_hash(),
        },
        None,
        &model,
    )
    .expect("schema-consistent artifact");

    let path = dir.join(format!("{}.model", kind.replace(['(', ')'], "_")));
    artifact.save(&path).expect("save");
    let loaded = ModelArtifact::load(&path).expect("load");
    loaded
        .expect_schema(TargetKind::Ipc, &set.feature_names)
        .expect("schema survives the round trip");
    let decoded = loaded.predictor().expect("decode");
    assert_eq!(decoded.model_kind(), kind);

    for run in &set.runs {
        assert_eq!(
            model.predict_one(&run.features).to_bits(),
            decoded.predict_one(&run.features).to_bits(),
            "{kind}: prediction must survive the round trip bit for bit"
        );
    }
}

#[test]
fn every_estimator_family_round_trips_bit_identically() {
    let set = tiny_set();
    let dir = scratch_dir("families");

    let forest = RandomForestParams {
        num_trees: 10,
        ..Default::default()
    };
    let mlp = MlpParams {
        hidden: vec![8],
        epochs: 40,
        ..Default::default()
    };
    assert_family_round_trips(&forest, &set, &dir);
    assert_family_round_trips(&DecisionTreeParams::default(), &set, &dir);
    assert_family_round_trips(&ModelTreeParams::default(), &set, &dir);
    assert_family_round_trips(&mlp, &set, &dir);
    assert_family_round_trips(&RidgeParams::default(), &set, &dir);
    assert_family_round_trips(&quick_ensemble(), &set, &dir);
    // The log-space wrappers the pipeline actually trains.
    assert_family_round_trips(&LogOf(forest), &set, &dir);
    assert_family_round_trips(&LogOf(ModelTreeParams::default()), &set, &dir);
    assert_family_round_trips(&LogOf(quick_ensemble()), &set, &dir);

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn ensemble_bundle_round_trips_byte_identically() {
    // The `.napel` bundle layer (two artifact documents, IPC then energy)
    // must carry the ensemble losslessly: re-encoding the parsed bundle
    // reproduces the original documents byte for byte, and the decoded
    // models keep the adapted weights and predict bit-identically.
    let set = tiny_set();
    let est = LogOf(quick_ensemble());
    let mut rng = StdRng::seed_from_u64(23);
    let ipc = est
        .fit(&set.ipc_dataset().expect("ipc data"), &mut rng)
        .expect("fit ipc");
    let energy = est
        .fit(&set.energy_dataset().expect("energy data"), &mut rng)
        .expect("fit energy");

    let a_ipc = ModelArtifact::from_predictor(
        TargetKind::Ipc,
        set.feature_names.clone(),
        provenance(&set, 23, est.describe()),
        None,
        &ipc,
    )
    .expect("ipc artifact");
    let a_energy = ModelArtifact::from_predictor(
        TargetKind::EnergyPerInst,
        set.feature_names.clone(),
        provenance(&set, 23, est.describe()),
        None,
        &energy,
    )
    .expect("energy artifact");

    let dir = scratch_dir("ensemble-bundle");
    let path = dir.join("ensemble.napel");
    write_artifacts(&path, &[&a_ipc, &a_energy]).expect("write bundle");

    let loaded = read_artifacts(&path).expect("read bundle");
    assert_eq!(loaded.len(), 2);
    assert_eq!(
        loaded[0].to_document(),
        a_ipc.to_document(),
        "re-encoded IPC document must be byte-identical"
    );
    assert_eq!(
        loaded[1].to_document(),
        a_energy.to_document(),
        "re-encoded energy document must be byte-identical"
    );

    let decoded: LogModel<WeightedEnsemble> = loaded[0].decode_payload().expect("decode ipc");
    assert_eq!(decoded.inner().weights(), ipc.inner().weights());
    for run in &set.runs {
        assert_eq!(
            ipc.predict_one(&run.features).to_bits(),
            decoded.predict_one(&run.features).to_bits(),
            "ensemble prediction must survive the bundle round trip bit for bit"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn ensemble_weights_resume_across_training_sessions() {
    // Adapted weights persisted by one session seed the next: a second
    // training session resuming from the stored weights starts where the
    // first ended, instead of resetting to equal weights.
    let set = tiny_set();
    let data = set.ipc_dataset().expect("ipc data");
    let session1 = LogOf(quick_ensemble())
        .fit(&data, &mut StdRng::seed_from_u64(5))
        .expect("session 1");

    let dir = scratch_dir("ensemble-resume");
    let path = dir.join("session1.model");
    ModelArtifact::from_predictor(
        TargetKind::Ipc,
        set.feature_names.clone(),
        provenance(&set, 5, "ensemble session 1".into()),
        None,
        &session1,
    )
    .expect("artifact")
    .save(&path)
    .expect("save");

    let prior = ModelArtifact::load(&path)
        .expect("load")
        .decode_payload::<LogModel<WeightedEnsemble>>()
        .expect("decode")
        .inner()
        .weights();
    assert_eq!(prior, session1.inner().weights());

    // A short follow-up session (one EMA step) barely moves the weights,
    // so where it lands is dominated by where it started.
    let short = EnsembleParams {
        adaptation_passes: 1,
        ..quick_ensemble()
    };
    let resumed = LogOf(short.clone().with_prior_weights(prior))
        .fit(&data, &mut StdRng::seed_from_u64(6))
        .expect("resumed session");
    let fresh = LogOf(short)
        .fit(&data, &mut StdRng::seed_from_u64(6))
        .expect("fresh session");

    assert_ne!(
        resumed.inner().weights(),
        fresh.inner().weights(),
        "resuming must start from the persisted weights, not reset"
    );
    let dist = |a: [f64; NUM_MEMBERS], b: [f64; NUM_MEMBERS]| -> f64 {
        a.iter().zip(&b).map(|(x, y)| (x - y).powi(2)).sum()
    };
    assert!(
        dist(resumed.inner().weights(), prior) < dist(fresh.inner().weights(), prior),
        "the resumed session must stay closer to the persisted weights"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn trained_napel_bundle_round_trips_and_predicts_in_batch() {
    let set = tiny_set();
    let trained = Napel::new(NapelConfig::untuned())
        .train(&set)
        .expect("train");
    let dir = scratch_dir("bundle");
    let path = dir.join("napel.napel");
    trained.save(&path).expect("save");
    let loaded = TrainedNapel::load(&path).expect("load");

    let rows: Vec<Vec<f64>> = set.runs.iter().map(|r| r.features.clone()).collect();
    let direct = trained.predict_batch(&rows).expect("direct batch");
    let via_artifact = loaded.predict_batch(&rows).expect("loaded batch");
    assert_eq!(direct.len(), via_artifact.len());
    for ((a, sa), (b, sb)) in direct.iter().zip(&via_artifact) {
        assert_eq!(a.ipc.to_bits(), b.ipc.to_bits());
        assert_eq!(
            a.energy_per_inst_pj.to_bits(),
            b.energy_per_inst_pj.to_bits()
        );
        assert_eq!(sa.to_bits(), sb.to_bits(), "per-tree spread survives too");
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn fig5_through_artifacts_reproduces_direct_mres_exactly() {
    // The acceptance bar: a fig5-style evaluation run from loaded
    // artifacts reproduces the direct path's MREs exactly (same seed) —
    // across all three estimator families of the comparison.
    let ctx = Context::build_subset(vec![Workload::Atax, Workload::Gemv], Scale::tiny(), 3);
    let direct = fig5::run_with(&ctx, &Serial).expect("direct");

    let dir = scratch_dir("fig5");
    let saved = fig5::run_with_io(&ctx, &ModelIo::new(Some(dir.clone()), None), &Serial)
        .expect("save pass");
    assert_eq!(direct, saved, "saving must not perturb the evaluation");

    let loaded = fig5::run_with_io(&ctx, &ModelIo::new(None, Some(dir.clone())), &Serial)
        .expect("load pass");
    assert_eq!(
        direct, loaded,
        "artifact-loaded evaluation must reproduce every MRE exactly"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn fig4_saves_per_workload_bundles_the_load_path_consumes() {
    let ctx = Context::build_subset(vec![Workload::Atax, Workload::Gemv], Scale::tiny(), 2);
    let config = NapelConfig::untuned();
    let dir = scratch_dir("fig4");

    let saved_rows = fig4::run_with_io(
        &ctx,
        &config,
        4,
        &ModelIo::new(Some(dir.clone()), None),
        &Serial,
    )
    .expect("save pass");
    for w in ["atax", "gemv"] {
        assert!(
            dir.join(format!("fig4-{w}.napel")).is_file(),
            "fig4 must emit one bundle per workload"
        );
    }

    // The load pass consumes the bundles (no training); timings are
    // wall-clock so only the structure is compared.
    let loaded_rows = fig4::run_with_io(
        &ctx,
        &config,
        4,
        &ModelIo::new(None, Some(dir.clone())),
        &Serial,
    )
    .expect("load pass");
    assert_eq!(saved_rows.len(), loaded_rows.len());
    for (a, b) in saved_rows.iter().zip(&loaded_rows) {
        assert_eq!(a.workload, b.workload);
        assert!(b.speedup() > 0.0);
    }

    // And the stored bundle is exactly the model the direct path trains.
    let direct = Napel::new(config)
        .train(&ctx.training.filtered(|w| w != Workload::Atax))
        .expect("train");
    let stored = TrainedNapel::load(dir.join("fig4-atax.napel")).expect("load");
    for run in &ctx.training.runs {
        assert_eq!(
            direct.predict_row(&run.features).unwrap().ipc.to_bits(),
            stored.predict_row(&run.features).unwrap().ipc.to_bits()
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn mismatched_artifacts_fail_with_typed_errors() {
    let set = tiny_set();
    let trained = Napel::new(NapelConfig::untuned())
        .train(&set)
        .expect("train");
    let dir = scratch_dir("errors");
    let path = dir.join("model.napel");
    trained.save(&path).expect("save");

    // Version mismatch: a future format version must be refused.
    let text = std::fs::read_to_string(&path).unwrap();
    let future = text.replace("napel-model-artifact v1", "napel-model-artifact v9");
    let bad = dir.join("future.napel");
    std::fs::write(&bad, future).unwrap();
    let err = TrainedNapel::load(&bad).unwrap_err();
    assert!(matches!(err, NapelError::Artifact { .. }), "{err}");
    assert!(err.to_string().contains("unsupported"), "{err}");

    // Schema mismatch: an artifact trained on different features must be
    // refused with the offending feature named.
    let renamed = text.replacen("mix.op.", "mix.xp.", 1);
    let bad = dir.join("renamed.napel");
    std::fs::write(&bad, renamed).unwrap();
    let err = TrainedNapel::load(&bad).unwrap_err();
    assert!(matches!(err, NapelError::Artifact { .. }), "{err}");
    assert!(err.to_string().contains("mix.xp."), "{err}");

    // Target mismatch: energy artifact first is refused, not mispredicted.
    let artifacts = read_artifacts(&path).unwrap();
    let swapped = format!(
        "{}{}",
        artifacts[1].to_document(),
        artifacts[0].to_document()
    );
    let bad = dir.join("swapped.napel");
    std::fs::write(&bad, swapped).unwrap();
    let err = TrainedNapel::load(&bad).unwrap_err();
    assert!(
        err.to_string().contains("predicts energy_per_inst"),
        "{err}"
    );

    // Corrupt payload: truncation inside the forest is a decode error.
    let truncated: String = text.lines().take(40).collect::<Vec<_>>().join("\n");
    let bad = dir.join("truncated.napel");
    std::fs::write(&bad, truncated).unwrap();
    assert!(TrainedNapel::load(&bad).is_err());

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn model_io_none_is_inert_and_load_requires_the_bundle() {
    let io = ModelIo::none();
    assert!(io.is_none());
    let set = tiny_set();
    let trained = io
        .train_or_load("unused-key", || {
            Napel::new(NapelConfig::untuned()).train(&set)
        })
        .expect("plain training path");
    assert_eq!(trained.feature_names().len(), set.feature_names.len());

    let missing = ModelIo::new(None, Some(std::env::temp_dir().join("napel-no-such-dir")));
    let err = missing
        .train_or_load("nope", || Napel::new(NapelConfig::untuned()).train(&set))
        .unwrap_err();
    assert!(
        matches!(err, NapelError::Artifact { .. }),
        "a load policy must not silently fall back to training: {err}"
    );
}
