//! Acceptance tests for the telemetry subsystem.
//!
//! The contract under test (DESIGN.md §Telemetry):
//!
//! 1. **Invisibility** — enabling telemetry changes *nothing* about a
//!    campaign's results: the labeled rows are byte-identical (proved
//!    through the bit-exact checkpoint encoding) and the checkpoint
//!    journals match byte for byte.
//! 2. **Determinism** — the drained event stream is identical modulo
//!    wall-clock timings whether the campaign ran on the serial or the
//!    threaded executor, thanks to lane-based ordering.
//! 3. **Coverage** — one collection campaign plus one training pass emits
//!    spans from every layer (campaign, nmc-sim, pisa, ml) and the
//!    headline counters.
//! 4. **Round-trip** — the JSONL sink re-parses to an equal report.
//!
//! Everything lives in one `#[test]` because the telemetry global is
//! process-wide state: parallel test threads must not install over each
//! other.

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

use napel::core::campaign::{plan_jobs, Serial, Threaded};
use napel::core::collect::{collect_supervised, CollectionPlan};
use napel::core::fault::CampaignOptions;
use napel::ml::cv::{cross_val_mre, k_fold};
use napel::ml::dataset::Dataset;
use napel::ml::forest::RandomForestParams;
use napel::telemetry::{Telemetry, TelemetryReport};
use napel::workloads::{Scale, Workload};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn tiny_plan() -> CollectionPlan {
    CollectionPlan {
        workloads: vec![Workload::Atax, Workload::Gemv],
        scale: Scale::tiny(),
        ..Default::default()
    }
}

fn journal_path(tag: &str) -> PathBuf {
    static COUNTER: AtomicUsize = AtomicUsize::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "napel-telemetry-{tag}-{}-{n}.ckpt",
        std::process::id()
    ))
}

/// Drops the one legitimately executor-dependent detail — the `workers`
/// attribute on the `campaign.run` span — so serial and threaded streams
/// can be compared whole.
fn strip_workers(mut report: TelemetryReport) -> TelemetryReport {
    for span in &mut report.spans {
        span.attrs.retain(|(key, _)| key != "workers");
    }
    report
}

#[test]
fn telemetry_is_invisible_deterministic_and_complete() {
    let plan = tiny_plan();
    let jobs = plan_jobs(&plan).len();

    // --- 1. Baseline: noop telemetry (the default), serial executor. ---
    napel::telemetry::install(Telemetry::noop());
    let noop_journal = journal_path("noop");
    let opts = CampaignOptions::default().with_checkpoint(&noop_journal);
    let (noop_set, report) = collect_supervised(&plan, &Serial, &opts).unwrap();
    assert!(report.is_clean());
    assert_eq!(noop_set.runs.len(), jobs);
    assert!(
        napel::telemetry::global().drain().is_empty(),
        "noop telemetry must record nothing"
    );

    // --- 2. Same campaign with telemetry enabled. ---
    napel::telemetry::install(Telemetry::enabled());
    let enabled_journal = journal_path("enabled");
    let opts = CampaignOptions::default().with_checkpoint(&enabled_journal);
    let (enabled_set, _) = collect_supervised(&plan, &Serial, &opts).unwrap();
    let serial_stream = napel::telemetry::global().drain();

    // Invisibility: labeled rows equal, and byte-identical through the
    // bit-exact journal encoding (floats as raw bit patterns).
    assert_eq!(noop_set.runs, enabled_set.runs);
    let noop_bytes = std::fs::read(&noop_journal).unwrap();
    let enabled_bytes = std::fs::read(&enabled_journal).unwrap();
    assert_eq!(
        noop_bytes, enabled_bytes,
        "telemetry must not perturb the checkpoint journal"
    );

    // --- 3. Same campaign, threaded executor, telemetry still on. ---
    let threaded_journal = journal_path("threaded");
    let opts = CampaignOptions::default().with_checkpoint(&threaded_journal);
    let (threaded_set, _) = collect_supervised(&plan, &Threaded::new(4), &opts).unwrap();
    let threaded_stream = napel::telemetry::global().drain();
    assert_eq!(noop_set.runs, threaded_set.runs);

    // Determinism: identical streams modulo wall-clock timings. Lanes
    // order events by job identity, not completion order, so four racing
    // workers produce the same skeleton as the serial loop.
    assert_eq!(
        strip_workers(serial_stream.without_timings()),
        strip_workers(threaded_stream.without_timings()),
        "serial and threaded campaigns must emit the same event skeleton"
    );

    // --- 4. Layer coverage of the collection stream. ---
    for span in [
        "campaign.run",
        "campaign.job",
        "campaign.analyze",
        "campaign.generate_trace",
        "nmc_sim.run",
        "pisa.profile",
    ] {
        assert!(serial_stream.has_span(span), "missing span {span}");
    }
    assert_eq!(
        serial_stream.counter("campaign.profile_cache.lookups"),
        Some(jobs as u64)
    );
    assert_eq!(
        serial_stream.counter("campaign.jobs.completed"),
        Some(jobs as u64)
    );
    assert_eq!(
        serial_stream.counter("checkpoint.entries_recorded"),
        Some(jobs as u64)
    );
    assert!(serial_stream.counter("nmc_sim.runs").is_some());
    assert!(serial_stream.counter("nmc_sim.dram.reads").is_some());
    assert!(serial_stream.counter("pisa.instructions").is_some());

    // --- 5. The ml layer, via a small training pass. ---
    let mut builder = Dataset::builder(vec!["x".into()]);
    for i in 0..30 {
        let x = f64::from(i);
        builder.push_row(vec![x], x * x + 1.0).unwrap();
    }
    let data = builder.build().unwrap();
    let mut rng = StdRng::seed_from_u64(25019);
    let folds = k_fold(data.len(), 3, &mut rng).unwrap();
    let params = RandomForestParams {
        num_trees: 10,
        ..Default::default()
    };
    cross_val_mre(&params, &data, &folds, &mut rng).unwrap();
    let ml_stream = napel::telemetry::global().drain();
    for span in [
        "ml.cross_validate",
        "ml.cv.fit",
        "ml.cv.predict",
        "ml.forest.fit",
    ] {
        assert!(ml_stream.has_span(span), "missing span {span}");
    }
    assert!(
        ml_stream
            .histograms
            .iter()
            .any(|(name, h)| name == "ml.forest.tree_build_seconds" && h.total() == 30),
        "tree-build histogram should hold one sample per tree per fold"
    );

    // --- 6. JSONL round-trip. ---
    let parsed = TelemetryReport::from_jsonl(&serial_stream.to_jsonl()).unwrap();
    assert_eq!(parsed, serial_stream);

    // Restore the default so later tests in this process start clean.
    napel::telemetry::install(Telemetry::noop());
    for path in [&noop_journal, &enabled_journal, &threaded_journal] {
        std::fs::remove_file(path).ok();
    }
}
