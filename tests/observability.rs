//! Property tests for the observability layer's estimator: the
//! [`LogHistogram`] quantile must stay within its documented
//! relative-error bound of the exact nearest-rank quantile, for any
//! sample set and any probability — that bound is what lets the serving
//! stack replace sort-everything percentiles with constant-memory
//! histograms without changing what the reports mean.

use napel::telemetry::{LogHistogram, MIN_TRACKED, RELATIVE_ERROR_BOUND};
use proptest::prelude::*;

/// Exact nearest-rank quantile over an unsorted sample (the definition
/// `LogHistogram::quantile` documents itself against).
fn exact_quantile(samples: &[f64], q: f64) -> f64 {
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let rank = ((q * sorted.len() as f64).ceil() as usize).max(1);
    sorted[rank.min(sorted.len()) - 1]
}

/// Samples spanning ~18 octaves (microseconds to minutes, read as
/// seconds), the range serving latencies actually live in.
fn latencies() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec((-20.0f64..=10.0).prop_map(f64::exp2), 1..400)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn quantile_stays_within_the_documented_relative_error(
        samples in latencies(),
        q in 0.01f64..=1.0,
    ) {
        let mut h = LogHistogram::new();
        for &s in &samples {
            h.observe(s);
        }
        let exact = exact_quantile(&samples, q);
        let estimate = h.quantile(q);
        let err = (estimate - exact).abs() / exact;
        prop_assert!(
            err <= RELATIVE_ERROR_BOUND,
            "q={q}: estimate {estimate} vs exact {exact} (rel err {err} > {})",
            RELATIVE_ERROR_BOUND
        );
    }

    #[test]
    fn merging_shards_equals_observing_everything_in_one_histogram(
        samples in latencies(),
        shards in 1usize..6,
        q in 0.05f64..=1.0,
    ) {
        let mut whole = LogHistogram::new();
        let mut merged = LogHistogram::new();
        let mut parts = vec![LogHistogram::new(); shards];
        for (i, &s) in samples.iter().enumerate() {
            whole.observe(s);
            parts[i % shards].observe(s);
        }
        for part in &parts {
            merged.merge(part);
        }
        // Bucket contents must match exactly; the running `sum` may drift
        // by float-addition order, so it only gets a ulp-scale tolerance.
        prop_assert_eq!(merged.sparse_counts(), whole.sparse_counts());
        prop_assert_eq!(merged.count(), whole.count());
        prop_assert_eq!(merged.below_count(), whole.below_count());
        prop_assert!((merged.sum() - whole.sum()).abs() <= whole.sum().abs() * 1e-12);
        prop_assert_eq!(merged.quantile(q), whole.quantile(q));
    }

    #[test]
    fn tiny_values_collapse_to_zero_without_poisoning_quantiles(
        samples in latencies(),
        tinies in 1usize..50,
    ) {
        // Sub-MIN_TRACKED observations (e.g. a zero-duration stage) land
        // in the `below` bucket: they count toward ranks as 0.0 but must
        // never corrupt the estimates of real observations above them.
        let mut h = LogHistogram::new();
        for _ in 0..tinies {
            h.observe(MIN_TRACKED / 2.0);
            h.observe(0.0);
        }
        for &s in &samples {
            h.observe(s);
        }
        prop_assert_eq!(h.below_count(), 2 * tinies as u64);
        prop_assert_eq!(h.count(), samples.len() as u64 + 2 * tinies as u64);
        prop_assert_eq!(h.quantile(1e-9), 0.0);
        let exact_max = exact_quantile(&samples, 1.0);
        let estimate_max = h.quantile(1.0);
        let err = (estimate_max - exact_max).abs() / exact_max;
        prop_assert!(err <= RELATIVE_ERROR_BOUND, "max off by {err}");
    }
}
