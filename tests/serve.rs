//! Integration tests for `napel-serve`: the robustness contract,
//! exercised over real TCP against real trained bundles.
//!
//! Every test speaks the wire protocol through [`ServeClient`] — nothing
//! reaches into server internals except the counters the `stats` request
//! already exposes to any client. The invariant under test throughout:
//! **every admitted request gets exactly one typed response**, whatever
//! the workers, the queues, or the other clients are doing.

use std::collections::HashMap;
use std::io::Write as _;
use std::path::PathBuf;
use std::sync::OnceLock;
use std::time::Duration;

use napel::core::collect::{collect, CollectionPlan};
use napel::core::model::{Napel, NapelConfig};
use napel::serve::protocol::payload_field;
use napel::serve::stats::ServeStats;
use napel::serve::{ErrorKind, Response, ServeClient, Server, ServerConfig};
use napel::workloads::{Scale, Workload};

const TIMEOUT: Duration = Duration::from_secs(10);

/// A directory of trained bundles (`atax.napel`, `gemv.napel`) plus the
/// feature-row arity, built once for the whole suite.
fn model_dir() -> &'static (PathBuf, usize) {
    static DIR: OnceLock<(PathBuf, usize)> = OnceLock::new();
    DIR.get_or_init(|| {
        let set = collect(&CollectionPlan {
            workloads: vec![Workload::Atax, Workload::Gemv],
            scale: Scale::tiny(),
            ..Default::default()
        });
        let trained = Napel::new(NapelConfig::untuned())
            .train(&set)
            .expect("train");
        let dir = std::env::temp_dir().join(format!("napel-serve-models-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("model dir");
        trained.save(dir.join("atax.napel")).expect("save atax");
        trained.save(dir.join("gemv.napel")).expect("save gemv");
        (dir, set.feature_names.len())
    })
}

fn base_config() -> ServerConfig {
    let (dir, _) = model_dir();
    ServerConfig {
        model_dir: dir.clone(),
        ..ServerConfig::default()
    }
}

fn connect(server: &Server) -> ServeClient {
    ServeClient::connect(server.addr(), TIMEOUT).expect("connect")
}

fn predict_line(id: &str, key: &str) -> String {
    let (_, nfeat) = model_dir();
    let row = " 1.5".repeat(*nfeat);
    format!("predict {id} {key}{row}")
}

/// Reads responses until every id in `expect` is answered; panics on EOF
/// or timeout first — the lost-request detector.
fn collect_responses(client: &mut ServeClient, expect: &[String]) -> HashMap<String, Response> {
    let mut got = HashMap::new();
    while got.len() < expect.len() {
        let response = client
            .read_response()
            .expect("response read")
            .expect("connection closed with requests still unanswered");
        got.insert(response.id().to_string(), response);
    }
    for id in expect {
        assert!(got.contains_key(id), "no response for `{id}`");
    }
    got
}

#[test]
fn predictions_round_trip_with_out_of_order_ids() {
    let server = Server::start(base_config()).expect("start");
    let mut client = connect(&server);

    let pong = client.request("ping p0").expect("ping");
    assert_eq!(pong, Response::ok("p0", "pong"));

    // Pipeline across both models; ids account for every response.
    let ids: Vec<String> = (0..6).map(|i| format!("r{i}")).collect();
    for (i, id) in ids.iter().enumerate() {
        let key = if i % 2 == 0 { "atax" } else { "gemv" };
        client.send_line(&predict_line(id, key)).expect("send");
    }
    let got = collect_responses(&mut client, &ids);
    for (id, response) in &got {
        let Response::Ok { payload, .. } = response else {
            panic!("{id} failed: {}", response.render());
        };
        let ipc = payload_field(payload, "ipc").expect("ipc field");
        let spread = payload_field(payload, "spread").expect("spread field");
        assert!(ipc.is_finite() && ipc > 0.0, "{id}: ipc {ipc}");
        assert!(spread >= 1.0, "{id}: spread {spread}");
    }

    // Same row, same model → bit-identical payloads (deterministic serving).
    let a = client.request(&predict_line("d1", "atax")).expect("d1");
    let b = client.request(&predict_line("d2", "atax")).expect("d2");
    if let (Response::Ok { payload: pa, .. }, Response::Ok { payload: pb, .. }) = (&a, &b) {
        assert_eq!(pa, pb, "serving must be deterministic");
    } else {
        panic!(
            "deterministic probe failed: {} / {}",
            a.render(),
            b.render()
        );
    }

    let stats = server.drain();
    assert!(stats
        .snapshot()
        .iter()
        .any(|&(n, v)| n == "completed" && v >= 8));
}

#[test]
fn hostile_lines_get_typed_errors_and_a_closed_connection() {
    let mut cfg = base_config();
    cfg.workers = 1;
    let server = Server::start(cfg).expect("start");

    // Each hostile case on a fresh connection: (what to send, expected detail).
    let cases: Vec<(Vec<u8>, &str)> = vec![
        (b"frobnicate x\n".to_vec(), "unknown command"),
        (b"predict h1 ../../etc/passwd 1.0\n".to_vec(), "outside"),
        (b"predict h2 atax 1.0 NaN\n".to_vec(), "not a finite"),
        (b"predict\n".to_vec(), "needs an id"),
        (b"\xff\xfe\x00 binary junk\n".to_vec(), "not UTF-8"),
        (b"panic h3\n".to_vec(), "--chaos"),
        // An oversized line: 80 KiB with no newline breaches the 64 KiB
        // cap while still being read.
        (vec![b'x'; 80 * 1024], "byte cap"),
    ];
    for (bytes, needle) in cases {
        let mut client = connect(&server);
        let mut raw = client.stream().try_clone().expect("clone");
        raw.write_all(&bytes).expect("send hostile bytes");
        let response = client
            .read_response()
            .expect("typed response before close")
            .expect("a response, not a bare close");
        match &response {
            Response::Err { kind, detail, .. } => {
                assert_eq!(*kind, ErrorKind::Protocol, "{}", response.render());
                assert!(detail.contains(needle), "`{needle}` not in `{detail}`");
            }
            Response::Ok { .. } => panic!("hostile line accepted: {}", response.render()),
        }
        // And the connection is closed, not left dangling.
        assert!(client.read_response().expect("post-error read").is_none());
    }

    // A wrong header is refused at the door (raw socket, no handshake).
    {
        let mut raw = std::net::TcpStream::connect(server.addr()).expect("connect");
        raw.set_read_timeout(Some(TIMEOUT)).unwrap();
        raw.write_all(b"some-other-protocol v9\n").unwrap();
        let mut reader = napel::serve::protocol::LineReader::new(raw.try_clone().unwrap());
        match reader.next_line() {
            napel::serve::protocol::ReadEvent::Line(line) => {
                let line = String::from_utf8(line).unwrap();
                let response = Response::parse(&line).expect("parsable refusal");
                assert!(!response.is_ok(), "bad header accepted: {line}");
                assert!(line.contains("header"), "{line}");
            }
            other => panic!("expected a refusal line, got {other:?}"),
        }
    }

    // The workers never saw any of it: a normal request still works.
    let mut client = connect(&server);
    let ok = client
        .request(&predict_line("after", "atax"))
        .expect("after");
    assert!(ok.is_ok(), "{}", ok.render());

    let stats = server.drain();
    let rendered = stats.render();
    let protocol_errors = ServeStats::parse_field(&rendered, "protocol_errors").unwrap();
    assert!(
        protocol_errors >= 8,
        "expected >=8 protocol errors: {rendered}"
    );
}

#[test]
fn slow_clients_are_cut_off_at_the_read_deadline() {
    let mut cfg = base_config();
    cfg.read_deadline = Duration::from_millis(200);
    let server = Server::start(cfg).expect("start");

    // A slow-loris peer: handshake, then a partial line and silence.
    let mut client = connect(&server);
    let mut raw = client.stream().try_clone().expect("clone");
    raw.write_all(b"predict slow1 atax 1.0 2.0")
        .expect("dribble");
    let response = client
        .read_response()
        .expect("deadline notice")
        .expect("a typed notice, not a bare close");
    match &response {
        Response::Err { kind, detail, .. } => {
            assert_eq!(*kind, ErrorKind::Deadline, "{}", response.render());
            assert!(detail.contains("read deadline"), "{detail}");
        }
        Response::Ok { .. } => panic!("slow client got {}", response.render()),
    }
    assert!(client.read_response().expect("after notice").is_none());

    // A peer that never even sends the header is cut off the same way.
    let raw = std::net::TcpStream::connect(server.addr()).expect("connect");
    raw.set_read_timeout(Some(TIMEOUT)).unwrap();
    let mut reader = napel::serve::protocol::LineReader::new(raw.try_clone().unwrap());
    match reader.next_line() {
        napel::serve::protocol::ReadEvent::Line(line) => {
            let line = String::from_utf8(line).unwrap();
            assert!(line.contains("deadline"), "{line}");
        }
        other => panic!("expected a deadline notice, got {other:?}"),
    }

    // Meanwhile the server still serves fast clients.
    let mut client = connect(&server);
    let ok = client.request(&predict_line("fast", "gemv")).expect("fast");
    assert!(ok.is_ok(), "{}", ok.render());
    server.drain();
}

#[test]
fn worker_panics_are_isolated_and_answered() {
    let mut cfg = base_config();
    cfg.chaos = true;
    cfg.workers = 1; // deterministic shard targeting
    cfg.worker.backoff =
        napel::core::fault::Backoff::new(Duration::from_millis(1), Duration::from_millis(10));
    let server = Server::start(cfg).expect("start");
    let mut client = connect(&server);

    // A panic sandwiched between predicts, pipelined: every id must be
    // answered — `ok` for work the incarnation finished, `err internal`
    // for work stranded in flight by the panic.
    let ids = vec!["a".to_string(), "boom".to_string(), "c".to_string()];
    client.send_line(&predict_line("a", "atax")).unwrap();
    client.send_line("panic boom").unwrap();
    client.send_line(&predict_line("c", "atax")).unwrap();
    let got = collect_responses(&mut client, &ids);
    assert!(
        got["a"].is_ok(),
        "pre-panic work lost: {}",
        got["a"].render()
    );
    match &got["boom"] {
        Response::Err { kind, detail, .. } => {
            assert_eq!(*kind, ErrorKind::Internal);
            assert!(detail.contains("panic"), "{detail}");
        }
        other => panic!("panic request got {}", other.render()),
    }

    // The shard restarted: fresh work on the same connection succeeds.
    let after = client
        .request(&predict_line("after", "atax"))
        .expect("after");
    assert!(after.is_ok(), "restart failed: {}", after.render());

    // And a second client never noticed any of it.
    let mut other = connect(&server);
    let fine = other
        .request(&predict_line("other", "gemv"))
        .expect("other");
    assert!(fine.is_ok(), "{}", fine.render());

    let stats = server.drain();
    let rendered = stats.render();
    assert!(
        ServeStats::parse_field(&rendered, "worker_restarts").unwrap() >= 1,
        "{rendered}"
    );
    assert!(
        ServeStats::parse_field(&rendered, "internal_errors").unwrap() >= 1,
        "{rendered}"
    );
    assert_eq!(
        ServeStats::parse_field(&rendered, "breaker_trips"),
        Some(0),
        "{rendered}"
    );
}

#[test]
fn a_restart_storm_trips_the_circuit_breaker() {
    let mut cfg = base_config();
    cfg.chaos = true;
    cfg.workers = 1;
    cfg.worker.breaker_max_restarts = 2;
    cfg.worker.backoff =
        napel::core::fault::Backoff::new(Duration::from_millis(1), Duration::from_millis(5));
    let server = Server::start(cfg).expect("start");
    let mut client = connect(&server);

    // Lockstep panics: each lands in its own batch, so restarts are
    // consecutive with no successful batch in between.
    let mut saw_internal = 0;
    for i in 0..6 {
        let response = client.request(&format!("panic p{i}")).expect("panic ack");
        match response {
            Response::Err { kind, .. } => {
                assert_eq!(kind, ErrorKind::Internal);
                saw_internal += 1;
            }
            other => panic!("panic acked with {}", other.render()),
        }
    }
    assert_eq!(
        saw_internal, 6,
        "every panic request must still be answered"
    );

    // The breaker is open: work for the dead shard is refused with a
    // typed internal error, immediately, not queued into a void.
    let refused = client
        .request(&predict_line("rx", "atax"))
        .expect("refusal");
    match &refused {
        Response::Err { kind, detail, .. } => {
            assert_eq!(*kind, ErrorKind::Internal, "{}", refused.render());
            assert!(detail.contains("breaker"), "{detail}");
        }
        other => panic!("breaker-open predict got {}", other.render()),
    }

    let stats = server.drain();
    let rendered = stats.render();
    assert_eq!(
        ServeStats::parse_field(&rendered, "breaker_trips"),
        Some(1),
        "{rendered}"
    );
    assert!(
        ServeStats::parse_field(&rendered, "worker_restarts").unwrap() >= 3,
        "{rendered}"
    );
}

#[test]
fn overload_sheds_and_expires_instead_of_queuing_forever() {
    let mut cfg = base_config();
    cfg.chaos = true;
    cfg.workers = 1;
    cfg.queue_capacity = 4;
    cfg.worker.compute_deadline = Duration::from_millis(200);
    let server = Server::start(cfg).expect("start");
    let mut client = connect(&server);

    // Wedge the only worker, then flood well past the queue bound.
    client.send_line("stall s0 600").unwrap();
    std::thread::sleep(Duration::from_millis(100)); // let the worker claim it
    let mut ids = vec!["s0".to_string()];
    for i in 0..20 {
        let id = format!("f{i}");
        client.send_line(&predict_line(&id, "atax")).unwrap();
        ids.push(id);
    }
    let got = collect_responses(&mut client, &ids);
    assert!(got["s0"].is_ok(), "stall lost: {}", got["s0"].render());
    let mut shed = 0;
    let mut expired = 0;
    let mut ok = 0;
    for (id, response) in &got {
        if id == "s0" {
            continue;
        }
        match response {
            Response::Ok { .. } => ok += 1,
            Response::Err {
                kind: ErrorKind::Shed,
                ..
            } => shed += 1,
            Response::Err {
                kind: ErrorKind::Deadline,
                ..
            } => expired += 1,
            other => panic!("{id}: unexpected {}", other.render()),
        }
    }
    assert_eq!(ok + shed + expired, 20, "every flood request answered");
    assert!(shed >= 1, "a 4-deep queue never shed under a 20-deep flood");
    assert!(
        expired >= 1,
        "requests queued behind a 600ms stall outlived a 200ms deadline"
    );

    let stats = server.drain();
    let rendered = stats.render();
    assert!(
        ServeStats::parse_field(&rendered, "shed").unwrap() >= 1,
        "{rendered}"
    );
    assert!(
        ServeStats::parse_field(&rendered, "deadline_drops").unwrap() >= 1,
        "{rendered}"
    );
}

#[test]
fn drain_answers_everything_already_admitted() {
    let mut cfg = base_config();
    cfg.chaos = true;
    cfg.workers = 1;
    let server = Server::start(cfg).expect("start");
    let mut client = connect(&server);

    // Admit slow work, then drain while it is still queued/in flight.
    let addr = server.addr();
    client.send_line("stall d0 300").unwrap();
    let mut ids = vec!["d0".to_string()];
    for i in 0..5 {
        let id = format!("d{}", i + 1);
        client.send_line(&predict_line(&id, "gemv")).unwrap();
        ids.push(id);
    }
    std::thread::sleep(Duration::from_millis(50)); // let admissions land
    let stats = server.drain();

    // Every admitted request was answered and flushed before drain
    // returned; the subsequent EOF proves the connection closed cleanly.
    let got = collect_responses(&mut client, &ids);
    for (id, response) in &got {
        assert!(
            response.is_ok(),
            "{id} admitted but not completed: {}",
            response.render()
        );
    }
    assert!(client.read_response().expect("post-drain read").is_none());

    let rendered = stats.render();
    assert_eq!(
        ServeStats::parse_field(&rendered, "completed"),
        Some(6),
        "{rendered}"
    );

    // The listener is gone with the drain: new connections are refused.
    assert!(ServeClient::connect(addr, Duration::from_secs(1)).is_err());
}

#[test]
fn shutdown_request_flips_the_flag_for_the_hosting_binary() {
    let server = Server::start(base_config()).expect("start");
    assert!(!server.shutdown_requested());
    let mut client = connect(&server);
    let ack = client.request("shutdown sd").expect("shutdown");
    assert_eq!(ack, Response::ok("sd", "draining"));
    assert!(server.shutdown_requested());
    server.drain();
}

#[test]
fn metrics_request_serves_live_prometheus_exposition() {
    let server = Server::start(base_config()).expect("start");
    let mut client = connect(&server);

    let ids: Vec<String> = (0..8).map(|i| format!("p{i}")).collect();
    for id in &ids {
        client.send_line(&predict_line(id, "atax")).unwrap();
    }
    collect_responses(&mut client, &ids);

    let text = client.fetch_metrics("m1").expect("metrics");
    // Counters come through with dots flattened to underscores and a
    // matching # TYPE line; latency and per-stage quantile summaries are
    // present because requests have actually completed.
    assert!(
        text.contains("# TYPE serve_requests_accepted counter"),
        "{text}"
    );
    assert!(text.contains("serve_requests_accepted 8"), "{text}");
    assert!(text.contains("serve_queue_depth "), "{text}");
    assert!(
        text.contains("serve_latency_seconds{quantile=\"0.99\"}"),
        "{text}"
    );
    assert!(
        text.contains("serve_stage_seconds_predict{quantile=\"0.5\"}"),
        "{text}"
    );
    assert!(text.contains("serve_latency_seconds_count 8"), "{text}");
    // Exposition text is line-oriented: every line is a comment or a
    // `name[{labels}] value` sample — nothing the block framing mangled.
    for line in text.lines() {
        assert!(
            line.starts_with('#') || line.split_whitespace().count() == 2,
            "malformed exposition line: {line:?}"
        );
    }

    // The protocol still works after a block-framed response.
    let pong = client.request("ping z").expect("ping");
    assert_eq!(pong, Response::ok("z", "pong"));
    server.drain();
}

#[test]
fn trace_request_drains_sampled_request_traces() {
    let mut cfg = base_config();
    cfg.trace_sample = 1; // sample everything
    let server = Server::start(cfg).expect("start");
    let mut client = connect(&server);

    let ids: Vec<String> = (0..4).map(|i| format!("t{i}")).collect();
    for id in &ids {
        client.send_line(&predict_line(id, "gemv")).unwrap();
    }
    collect_responses(&mut client, &ids);

    let reply = client.request("trace tr1").expect("trace");
    let payload = match &reply {
        Response::Ok { payload, .. } => payload.clone(),
        other => panic!("trace failed: {}", other.render()),
    };
    assert!(payload.starts_with("{\"dropped\":"), "{payload}");
    assert!(payload.contains("\"traces\":[{"), "{payload}");
    // Every sampled trace carries the full stage breakdown and outcome.
    for stage in [
        "read_parse",
        "admission",
        "queue_wait",
        "batch_assembly",
        "predict",
        "respond_flush",
    ] {
        assert!(payload.contains(&format!("\"{stage}\":")), "{payload}");
    }
    assert!(payload.contains("\"outcome\":\"ok\""), "{payload}");
    assert!(payload.contains("\"model\":\"gemv\""), "{payload}");
    assert_eq!(payload.matches("\"trace_id\":").count(), 4, "{payload}");

    // Draining is destructive: a second request finds an empty ring.
    let again = client.request("trace tr2").expect("trace again");
    let payload = match &again {
        Response::Ok { payload, .. } => payload.clone(),
        other => panic!("trace failed: {}", other.render()),
    };
    assert!(payload.ends_with("\"traces\":[]}"), "{payload}");
    server.drain();
}
