//! Acceptance tests for the streaming trace pipeline.
//!
//! The contract under test (DESIGN.md §Streaming pipeline):
//!
//! 1. **Profiling equivalence** — for every Table 2 workload, streaming
//!    the kernel straight into a [`ProfileObserver`] yields an
//!    [`ApplicationProfile`] whose feature vector is *bit-identical*
//!    (`f64::to_bits`) to profiling the materialized trace.
//! 2. **Simulation equivalence** — simulating from compact-encoded
//!    per-thread instruction streams ([`NmcSystem::run_streams`]) yields
//!    a [`SimReport`] equal field for field to simulating the
//!    materialized trace.
//! 3. **Campaign equivalence** — a full campaign over the streaming
//!    single-pass path produces the same labeled rows under the Serial
//!    and the Threaded executor, and under both trace-residency policies.
//! 4. **Residency** — the compact encoding stays at or under 8 bytes per
//!    instruction, at least 4× below the 32-byte materialized form.

use napel::core::campaign::{
    plan_jobs, ProfileCache, ResidentTrace, Serial, Threaded, TracePolicy,
};
use napel::core::collect::{collect_with, CollectionPlan};
use napel::ir::{EncodedTrace, EncodedTraceSink, MultiTrace, TeeSink};
use napel::pisa::{ApplicationProfile, ProfileObserver};
use napel::sim::{ArchConfig, NmcSystem};
use napel::workloads::{Scale, Workload};

/// Each workload's test-input trace at test scale, materialized once.
fn test_trace(w: Workload) -> MultiTrace {
    w.generate_test(Scale::tiny())
}

#[test]
fn streaming_profile_is_bit_identical_for_every_workload() {
    for w in Workload::ALL {
        let trace = test_trace(w);
        let of = ApplicationProfile::of(&trace);

        let mut observer = ProfileObserver::new();
        let params: Vec<f64> = w.spec().params.iter().map(|p| p.test).collect();
        w.generate_into(&params, Scale::tiny(), &mut observer);
        let streamed = observer.finish();

        assert_eq!(of.values().len(), streamed.values().len(), "{w}");
        for (name, (a, b)) in napel::pisa::feature_names()
            .iter()
            .zip(of.values().iter().zip(streamed.values()))
        {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "{w}: feature `{name}` differs ({a} vs {b})"
            );
        }
    }
}

#[test]
fn streamed_simulation_is_field_identical_for_every_workload() {
    let arch = ArchConfig::paper_default();
    for w in Workload::ALL {
        let trace = test_trace(w);
        let enc = EncodedTrace::from_multi(&trace);
        let sys = NmcSystem::new(arch.clone());
        let materialized = sys.run(&trace);
        let streamed = sys.run_streams(
            (0..enc.num_threads())
                .map(|t| enc.thread_iter(t))
                .collect::<Vec<_>>(),
        );
        // `SimReport: PartialEq` compares every field (cycles, caches,
        // DRAM, energy, active PEs, vault traffic).
        assert_eq!(streamed, materialized, "{w}");
    }
}

#[test]
fn single_pass_tee_matches_two_pass_for_every_workload() {
    // The campaign's fused pass: one kernel execution feeding the
    // profiler and the encoder at once must reproduce both the two-pass
    // profile and the materialized trace exactly.
    for w in Workload::ALL {
        let trace = test_trace(w);
        let params: Vec<f64> = w.spec().params.iter().map(|p| p.test).collect();

        let mut observer = ProfileObserver::new();
        let mut enc = EncodedTraceSink::new();
        {
            let mut tee = TeeSink::new(&mut observer, &mut enc);
            w.generate_into(&params, Scale::tiny(), &mut tee);
        }
        let enc = enc.finish();
        let profile = observer.finish();

        assert_eq!(enc.decode(), trace, "{w}: encoded trace must round-trip");
        let of = ApplicationProfile::of(&trace);
        for (a, b) in of.values().iter().zip(profile.values()) {
            assert_eq!(a.to_bits(), b.to_bits(), "{w}");
        }
    }
}

#[test]
fn encoded_traces_stay_within_the_residency_budget() {
    for w in Workload::ALL {
        let trace = test_trace(w);
        let enc = EncodedTrace::from_multi(&trace);
        let per_inst = enc.encoded_bytes() as f64 / enc.total_insts().max(1) as f64;
        assert!(
            per_inst <= 8.0,
            "{w}: {per_inst:.2} encoded bytes/inst exceeds the 8-byte target"
        );
        assert!(
            enc.encoded_bytes() * 4 <= enc.materialized_bytes(),
            "{w}: {} encoded vs {} materialized bytes is under 4x",
            enc.encoded_bytes(),
            enc.materialized_bytes()
        );
    }
}

#[test]
fn campaign_rows_are_identical_across_executors_and_policies() {
    // Two workloads × the default architecture neighborhood, through the
    // real campaign entry point. Rows (features AND labels) must be
    // bit-identical across executor and trace-residency choices; floats
    // are compared via `LabeledRun: PartialEq` (exact equality).
    let plan = CollectionPlan {
        workloads: vec![Workload::Atax, Workload::Gesu],
        scale: Scale::tiny(),
        ..Default::default()
    };
    let serial = collect_with(&plan, &Serial);
    let threaded = collect_with(&plan, &Threaded::new(4));
    assert_eq!(serial.feature_names, threaded.feature_names);
    assert_eq!(
        serial.runs, threaded.runs,
        "threaded streaming campaign must match serial"
    );

    // Policy sweep via the cache: the rows a job produces do not depend
    // on how its trace stays resident.
    let jobs = plan_jobs(&plan);
    for policy in [TracePolicy::Encoded, TracePolicy::Regenerate] {
        let cache = ProfileCache::with_policy(&jobs, policy);
        for (job, expected) in jobs.iter().zip(&serial.runs) {
            let point = cache.profiled(job);
            let sys = NmcSystem::new(job.arch.clone());
            let report = match &point.trace {
                ResidentTrace::Encoded(enc) => sys.run_streams(
                    (0..enc.num_threads())
                        .map(|t| enc.thread_iter(t))
                        .collect::<Vec<_>>(),
                ),
                ResidentTrace::Regenerate => {
                    sys.run(&job.workload.generate(&job.coords, job.scale))
                }
            };
            let run = napel::core::features::LabeledRun::from_report_checked(
                job.workload,
                job.coords.clone(),
                &point.profile,
                &job.arch,
                &report,
            )
            .expect("schema");
            assert_eq!(&run, expected, "{policy:?} {}", job.describe());
        }
    }
}
