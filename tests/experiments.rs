//! Integration tests driving every table/figure experiment at tiny scale.
//!
//! These assert the *plumbing* (every driver runs, renders, and satisfies
//! its structural invariants). Quantitative shapes are checked at laptop
//! scale by the `napel-bench` binaries and recorded in `EXPERIMENTS.md`.

use napel::core::experiments::{ablation, fig4, fig5, fig6, fig7, table2, table3, table4, Context};
use napel::core::model::NapelConfig;
use napel::workloads::{Scale, Workload};

fn ctx(workloads: Vec<Workload>) -> Context {
    Context::build_subset(workloads, Scale::tiny(), 0xDAC)
}

#[test]
fn table2_lists_every_application_and_level() {
    let s = table2::render();
    for w in Workload::ALL {
        assert!(s.contains(w.name()), "missing {w}");
    }
    // Spot-check levels straight from the paper (large round values are
    // rendered with k/m suffixes).
    for needle in ["1250", "2300", "400k", "1.4m", "819k", "8k"] {
        assert!(s.contains(needle), "missing level {needle}");
    }
}

#[test]
fn table3_prints_both_systems() {
    let s = table3::render(Scale::tiny());
    assert!(s.contains("Host CPU System"));
    assert!(s.contains("NMC System"));
    assert!(s.contains("1.25 GHz"));
}

#[test]
fn table4_counts_match_paper_for_all_apps() {
    // The DoE count column must be exact for all 12 applications even
    // without running the timings.
    use napel::core::collect::doe_config_count;
    let expected: [(Workload, usize); 12] = [
        (Workload::Atax, 11),
        (Workload::Bfs, 31),
        (Workload::Bp, 31),
        (Workload::Chol, 19),
        (Workload::Gemv, 19),
        (Workload::Gesu, 19),
        (Workload::Gram, 19),
        (Workload::Kme, 31),
        (Workload::Lu, 19),
        (Workload::Mvt, 19),
        (Workload::Syrk, 19),
        (Workload::Trmm, 19),
    ];
    for (w, n) in expected {
        assert_eq!(doe_config_count(&w.spec()), n, "{w}");
    }
}

#[test]
fn table4_timings_run_at_tiny_scale() {
    let c = ctx(vec![Workload::Atax, Workload::Mvt]);
    let rows = table4::run(&c, &NapelConfig::untuned()).expect("table4");
    assert_eq!(rows.len(), 2);
    for r in &rows {
        assert!(r.doe_run_seconds > 0.0 && r.pred_seconds > 0.0);
        assert!(r.train_tune_seconds > 0.0);
        // At tiny scale the *test* input (which prediction analyzes) can be
        // larger than the whole shrunken DoE campaign, so the paper's
        // "prediction amortizes the DoE" relation is only asserted loosely
        // here; the laptop-scale binary reproduces it properly.
        assert!(
            r.pred_seconds < r.doe_run_seconds * 20.0,
            "{}: pred {} wildly exceeds doe {}",
            r.workload,
            r.pred_seconds,
            r.doe_run_seconds
        );
    }
}

#[test]
fn fig4_speedup_structure() {
    let c = ctx(vec![Workload::Atax, Workload::Gemv]);
    let rows = fig4::run(&c, &NapelConfig::untuned(), 24).expect("fig4");
    assert_eq!(rows.len(), 2);
    for r in &rows {
        assert_eq!(r.num_configs, 24);
        // The speedup grows with the configuration count (one kernel
        // analysis amortized over the sweep); with 24 configurations it
        // must already clear 1x even at tiny scale.
        assert!(r.speedup() > 1.0, "{}: speedup {}", r.workload, r.speedup());
    }
    assert!(fig4::render(&rows).contains("average speedup"));
}

#[test]
fn fig5_napel_competitive_with_baselines() {
    let c = ctx(vec![
        Workload::Atax,
        Workload::Gemv,
        Workload::Mvt,
        Workload::Syrk,
    ]);
    let result = fig5::run(&c).expect("fig5");
    assert_eq!(result.rows.len(), 4);
    let [napel_avg, ann_avg, dt_avg] = result.averages;
    // The full shape (NAPEL clearly best) is a laptop-scale claim; at tiny
    // scale we require NAPEL to at least not be the *worst* of the three.
    let worst = napel_avg.0.max(ann_avg.0).max(dt_avg.0);
    assert!(
        napel_avg.0 < worst || (napel_avg.0 - worst).abs() < 1e-12,
        "NAPEL perf MRE {} vs ANN {} DT {}",
        napel_avg.0,
        ann_avg.0,
        dt_avg.0
    );
}

#[test]
fn fig6_host_numbers_positive_for_all_apps() {
    let rows = fig6::run(&Workload::ALL, Scale::tiny());
    assert_eq!(rows.len(), 12);
    for r in &rows {
        assert!(r.host.exec_time_seconds > 0.0, "{}", r.workload);
        assert!(r.host.energy_joules > 0.0, "{}", r.workload);
    }
}

#[test]
fn fig7_rows_and_aggregates() {
    let c = ctx(vec![Workload::Gemv, Workload::Mvt, Workload::Syrk]);
    let result = fig7::run(&c, &NapelConfig::untuned()).expect("fig7");
    assert_eq!(result.rows.len(), 3);
    assert!(result.average_edp_mre().is_finite());
    assert!(result.agreements() <= 3);
    let rendered = fig7::render(&result);
    assert!(rendered.contains("suitability agreement"));
}

#[test]
fn fig7_pinned_laptop_scale_suitability_agreement() {
    // Regression pin for the recorded laptop-scale run (`harness_output.txt`
    // "== Figure 7 =="): the EDP reductions below are the recorded NAPEL
    // (predicted) and simulator (actual) values, fed back through the real
    // aggregation logic. Guards two documented facts: suitability agreement
    // is 9/12 (paper: 12/12 — see EXPERIMENTS.md), and atax is the worst
    // outlier at ~98.3% EDP MRE while still being correctly simulated as
    // NMC-suitable.
    use napel::core::analysis::SuitabilityRow;
    let recorded = [
        (Workload::Atax, 0.07, 3.80),
        (Workload::Bfs, 0.93, 1.55),
        (Workload::Bp, 1.37, 1.90),
        (Workload::Chol, 2.55, 2.44),
        (Workload::Gemv, 0.06, 0.49),
        (Workload::Gesu, 0.04, 0.02),
        (Workload::Gram, 1.82, 3.66),
        (Workload::Kme, 0.01, 1.65),
        (Workload::Lu, 0.02, 0.07),
        (Workload::Mvt, 0.05, 0.02),
        (Workload::Syrk, 0.02, 0.15),
        (Workload::Trmm, 0.02, 0.06),
    ];
    let rows = recorded
        .iter()
        .map(|&(workload, predicted, actual)| SuitabilityRow {
            workload,
            host_time_s: 1.0,
            host_energy_j: 1.0,
            nmc_pred_time_s: 1.0 / predicted,
            nmc_pred_energy_j: 1.0,
            nmc_actual_time_s: 1.0 / actual,
            nmc_actual_energy_j: 1.0,
        })
        .collect::<Vec<_>>();
    let result = fig7::Fig7Result { rows };

    assert!(
        result.agreements() >= 9,
        "suitability agreement regressed below the recorded 9/12: {}/12",
        result.agreements()
    );
    assert_eq!(
        result.agreements(),
        9,
        "recorded run agrees on exactly 9/12"
    );

    let atax = &result.rows[0];
    assert!(!atax.suitability_agrees(), "atax is a recorded miss");
    assert!(
        atax.edp_reduction_actual() > 1.0,
        "the simulator deems atax NMC-suitable"
    );
    assert!(
        (atax.edp_mre() - 0.983).abs() < 0.01,
        "atax EDP MRE {:.3} drifted from the recorded 98.3%",
        atax.edp_mre()
    );
    assert!(
        (result.average_edp_mre() - 0.732).abs() < 0.02,
        "average EDP MRE {:.3} drifted from the recorded 73.2%",
        result.average_edp_mre()
    );
    assert!(fig7::render(&result).contains("suitability agreement 9/12"));
}

#[test]
fn ablation_samplers_and_sweep_run() {
    let apps = [Workload::Atax, Workload::Mvt];
    let samplers = ablation::sampler_ablation(&apps, Scale::tiny(), 3).expect("samplers");
    assert_eq!(samplers.rows.len(), ablation::Sampler::ALL.len());
    let set = ablation::collect_with_sampler(&apps, ablation::Sampler::Ccd, Scale::tiny(), 3)
        .expect("CCD collection");
    let sweep = ablation::forest_size_sweep(&set, &[10, 40], 3).expect("sweep");
    assert_eq!(sweep.points.len(), 2);
}
