//! Acceptance tests for the fault-tolerant campaign runtime: seeded fault
//! injection under quarantine (itemization + survivor determinism across
//! executors) and checkpoint/resume (interrupt, resume, recompute only
//! the unfinished tail).

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

use napel::core::campaign::{plan_jobs, Serial, Threaded};
use napel::core::collect::{collect_supervised, collect_with, CollectionPlan};
use napel::core::fault::{CampaignOptions, FaultInjector, JobFailureKind};
use napel::core::NapelError;
use napel::workloads::{Scale, Workload};

fn tiny_plan() -> CollectionPlan {
    CollectionPlan {
        workloads: vec![Workload::Atax, Workload::Gemv],
        scale: Scale::tiny(),
        ..Default::default()
    }
}

/// A fresh journal path in the system temp directory, unique per test
/// and per process.
fn journal_path(tag: &str) -> PathBuf {
    static COUNTER: AtomicUsize = AtomicUsize::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "napel-faults-{tag}-{}-{n}.ckpt",
        std::process::id()
    ))
}

#[test]
fn seeded_faults_are_itemized_and_survivors_are_untouched() {
    let plan = tiny_plan();
    let jobs = plan_jobs(&plan).len();
    let clean = collect_with(&plan, &Serial);
    assert_eq!(clean.runs.len(), jobs);

    // Seeded injector over the whole batch; must actually hit something
    // for the test to mean anything.
    let injector = FaultInjector::seeded(25019, jobs, 0.15, 0.15);
    let faulty = injector.faulty_indices();
    assert!(
        !faulty.is_empty() && faulty.len() < jobs,
        "seed produced a degenerate injection: {faulty:?}"
    );

    for (name, threaded) in [("serial", None), ("threaded", Some(Threaded::new(4)))] {
        let opts = CampaignOptions::quarantine().with_injector(injector.clone());
        let (set, report) = match &threaded {
            None => collect_supervised(&plan, &Serial, &opts).unwrap(),
            Some(exec) => collect_supervised(&plan, exec, &opts).unwrap(),
        };

        // Exactly the injected indices are quarantined, in order.
        assert_eq!(report.quarantined_indices(), faulty, "{name}");

        // Every quarantined failure carries provenance: the workload, its
        // input parameters, and the architecture it ran on.
        for failure in &report.quarantined {
            assert!(
                failure.workload == "atax" || failure.workload == "gemv",
                "{name}: workload missing from {failure}"
            );
            assert!(!failure.params.is_empty(), "{name}: params missing");
            assert!(
                failure.arch.contains("num_pes"),
                "{name}: arch missing from {failure}"
            );
            match &failure.kind {
                JobFailureKind::Panic(msg) => {
                    assert!(msg.contains("injected panic"), "{name}: {msg}")
                }
                JobFailureKind::InvalidLabel(msg) => {
                    assert!(msg.contains("IPC"), "{name}: {msg}")
                }
                other => panic!("{name}: unexpected failure kind {other}"),
            }
        }

        // Surviving rows are byte-identical to the clean run minus the
        // quarantined indices — a fault never perturbs its neighbors.
        let expected: Vec<_> = clean
            .runs
            .iter()
            .enumerate()
            .filter(|(i, _)| !faulty.contains(i))
            .map(|(_, r)| r.clone())
            .collect();
        assert_eq!(set.runs, expected, "{name}: survivors must be untouched");
    }
}

#[test]
fn interrupted_campaign_resumes_recomputing_only_the_tail() {
    let plan = CollectionPlan {
        workloads: vec![Workload::Atax],
        scale: Scale::tiny(),
        ..Default::default()
    };
    let jobs = plan_jobs(&plan).len();
    assert_eq!(jobs, 9);
    let clean = collect_with(&plan, &Serial);

    let path = journal_path("resume");
    let interrupt_at = 5;

    // Phase 1: the campaign dies at job 5 under fail-fast. Jobs 0..5
    // completed and were journaled; the rest never ran.
    let opts = CampaignOptions::default()
        .with_checkpoint(&path)
        .with_injector(FaultInjector::new().panic_at(interrupt_at));
    let err = collect_supervised(&plan, &Serial, &opts).unwrap_err();
    match &err {
        NapelError::Job(failure) => {
            assert_eq!(failure.index, interrupt_at);
            assert_eq!(failure.workload, "atax");
        }
        other => panic!("expected a job failure, got {other}"),
    }
    let journaled = std::fs::read_to_string(&path).unwrap().lines().count();
    assert_eq!(journaled, interrupt_at, "exactly the completed prefix");

    // Phase 2: resume without the fault. Only the N-K unfinished jobs are
    // recomputed; the K journaled ones are restored verbatim.
    let opts = CampaignOptions::default().with_checkpoint(&path);
    let (set, report) = collect_supervised(&plan, &Serial, &opts).unwrap();
    assert_eq!(report.restored, interrupt_at);
    assert_eq!(report.executed(), jobs - interrupt_at);
    assert!(report.is_clean());
    assert_eq!(set.runs, clean.runs, "resume must be invisible in the data");

    // Phase 3: a second resume restores everything and recomputes nothing.
    let (set, report) = collect_supervised(&plan, &Serial, &opts).unwrap();
    assert_eq!(report.restored, jobs);
    assert_eq!(report.executed(), 0);
    assert_eq!(set.runs, clean.runs);

    let _ = std::fs::remove_file(&path);
}

#[test]
fn checkpointed_threaded_run_restores_under_serial_and_vice_versa() {
    // The journal is keyed by job descriptor, not by position or
    // executor, so a campaign checkpointed under one executor resumes
    // under any other.
    let plan = CollectionPlan {
        workloads: vec![Workload::Atax],
        scale: Scale::tiny(),
        ..Default::default()
    };
    let clean = collect_with(&plan, &Serial);
    let path = journal_path("xexec");

    let opts = CampaignOptions::default().with_checkpoint(&path);
    let (first, report) = collect_supervised(&plan, &Threaded::new(3), &opts).unwrap();
    assert_eq!(report.restored, 0);
    assert_eq!(first.runs, clean.runs);

    let (second, report) = collect_supervised(&plan, &Serial, &opts).unwrap();
    assert_eq!(report.restored, clean.runs.len());
    assert_eq!(report.executed(), 0);
    assert_eq!(second.runs, clean.runs);

    let _ = std::fs::remove_file(&path);
}
