//! End-to-end integration tests for the NAPEL pipeline: collection →
//! training → prediction of unseen applications, across crates.

use napel::core::collect::{arch_neighborhood, collect, CollectionPlan};
use napel::core::features::combined_feature_names;
use napel::core::model::{Napel, NapelConfig};
use napel::pisa::ApplicationProfile;
use napel::sim::{ArchConfig, NmcSystem};
use napel::workloads::{Scale, Workload};

fn tiny_plan(workloads: Vec<Workload>) -> CollectionPlan {
    CollectionPlan {
        workloads,
        scale: Scale::tiny(),
        ..Default::default()
    }
}

#[test]
fn held_out_configuration_prediction_is_accurate() {
    // Train on the DoE points of three applications, then predict an
    // *off-DoE* configuration of one of them (interpolation within known
    // applications — the easy case that must work well).
    let plan = tiny_plan(vec![Workload::Atax, Workload::Gemv, Workload::Mvt]);
    let set = collect(&plan);
    let trained = Napel::new(NapelConfig::untuned())
        .train(&set)
        .expect("train");

    // atax between the low and central levels, off every CCD point.
    let params = vec![1300.0, 12.0];
    let trace = Workload::Atax.generate(&params, Scale::tiny());
    let profile = ApplicationProfile::of(&trace);
    let arch = ArchConfig::paper_default();
    let pred = trained.predict(&profile, &arch);
    let actual = NmcSystem::new(arch).run(&trace);

    let rel = (pred.ipc - actual.ipc()).abs() / actual.ipc();
    assert!(
        rel < 0.5,
        "interpolated IPC prediction off by {:.0}% ({} vs {})",
        rel * 100.0,
        pred.ipc,
        actual.ipc()
    );
}

#[test]
fn unseen_application_prediction_lands_in_the_right_decade() {
    // Unseen-application prediction is the paper's hard case; shrunken
    // inputs sit near cache-thrash IPC cliffs that make it harder still.
    // This smoke test only pins the prediction to the right order of
    // magnitude; the quantitative claim (Figure 5 MREs) is reproduced by
    // the laptop-scale `fig5` binary and recorded in EXPERIMENTS.md.
    let plan = tiny_plan(vec![
        Workload::Gemv,
        Workload::Gesu,
        Workload::Syrk,
        Workload::Bfs,
        Workload::Kme,
    ]);
    let set = collect(&plan);
    let trained = Napel::new(NapelConfig::untuned())
        .train(&set)
        .expect("train");

    let trace = Workload::Trmm.generate(&Workload::Trmm.spec().central_values(), Scale::tiny());
    let profile = ApplicationProfile::of(&trace);
    let arch = ArchConfig::paper_default();
    let pred = trained.predict(&profile, &arch);
    let actual = NmcSystem::new(arch).run(&trace);

    assert!(pred.ipc > 0.0 && pred.ipc <= 32.0);
    assert!(
        pred.ipc / actual.ipc() < 30.0 && actual.ipc() / pred.ipc < 30.0,
        "unseen prediction out of range: {} vs {}",
        pred.ipc,
        actual.ipc()
    );
    assert!(pred.energy_per_inst_pj > 0.0);
}

#[test]
fn pipeline_is_deterministic_end_to_end() {
    let plan = tiny_plan(vec![Workload::Atax, Workload::Mvt]);
    let (a, b) = (collect(&plan), collect(&plan));
    assert_eq!(a.runs.len(), b.runs.len());
    for (ra, rb) in a.runs.iter().zip(&b.runs) {
        assert_eq!(ra.features, rb.features, "collection must be deterministic");
        assert_eq!(ra.ipc, rb.ipc);
    }
    let ta = Napel::new(NapelConfig::untuned())
        .train(&a)
        .expect("train a");
    let tb = Napel::new(NapelConfig::untuned())
        .train(&b)
        .expect("train b");
    let arch = ArchConfig::paper_default();
    let x = &a.runs[0].features;
    assert_eq!(
        ta.predict_features(x, &arch).ipc,
        tb.predict_features(x, &arch).ipc,
        "training must be deterministic"
    );
}

#[test]
fn feature_vector_layout_is_consistent_across_crates() {
    let names = combined_feature_names();
    assert_eq!(
        names.len(),
        napel::pisa::feature_names().len() + ArchConfig::feature_names().len()
    );
    // No duplicates across the profile/arch boundary.
    let set: std::collections::HashSet<&String> = names.iter().collect();
    assert_eq!(set.len(), names.len());

    // A collected row carries exactly that many features.
    let plan = tiny_plan(vec![Workload::Atax]);
    let collected = collect(&plan);
    assert_eq!(collected.runs[0].features.len(), names.len());
}

#[test]
fn architecture_variation_shows_up_in_labels() {
    let plan = CollectionPlan {
        workloads: vec![Workload::Gemv],
        arch_configs: arch_neighborhood(),
        scale: Scale::tiny(),
        dedup: true,
    };
    let set = collect(&plan);
    // For a fixed input configuration, different architectures must
    // produce different IPC labels (otherwise DSE would be vacuous).
    let first_point: Vec<&napel::core::features::LabeledRun> =
        set.runs.iter().take(arch_neighborhood().len()).collect();
    let distinct: std::collections::HashSet<u64> =
        first_point.iter().map(|r| r.ipc.to_bits()).collect();
    assert!(distinct.len() > 1, "arch sweep produced identical IPCs");
}

#[test]
fn predicted_time_formula_matches_simulator_units() {
    // For a *training* configuration the predicted execution time should be
    // within a small factor of the simulated one (in-sample sanity).
    let plan = tiny_plan(vec![Workload::Syrk, Workload::Trmm]);
    let set = collect(&plan);
    let trained = Napel::new(NapelConfig::untuned())
        .train(&set)
        .expect("train");

    let params = Workload::Syrk.spec().central_values();
    let trace = Workload::Syrk.generate(&params, Scale::tiny());
    let profile = ApplicationProfile::of(&trace);
    let arch = ArchConfig::paper_default();
    let pred = trained.predict(&profile, &arch);
    let report = NmcSystem::new(arch).run(&trace);

    let t_pred = pred.exec_time_seconds(trace.total_insts() as u64);
    let t_sim = report.exec_time_seconds();
    let ratio = t_pred / t_sim;
    assert!(
        (0.3..3.0).contains(&ratio),
        "in-sample time prediction ratio {ratio} ({t_pred} vs {t_sim})"
    );
}
