//! Property tests hardening the `.napel` bundle decode path: whatever
//! bytes land on disk — truncations, bit flips, raw garbage — loading
//! must return a typed [`NapelError`], never panic, and never hand back
//! a model with the wrong schema. An inference server decodes bundles
//! straight off a directory other processes write to, so the decoder is
//! an untrusted-input boundary, not a friendly deserializer.

use std::path::PathBuf;
use std::sync::OnceLock;

use proptest::prelude::*;

use napel::core::collect::{collect, CollectionPlan};
use napel::core::model::{Napel, NapelConfig, TrainedNapel};
use napel::workloads::{Scale, Workload};

/// The serialized text of one tiny trained bundle, produced once —
/// training dominates this suite's runtime.
fn bundle_text() -> &'static str {
    static TEXT: OnceLock<String> = OnceLock::new();
    TEXT.get_or_init(|| {
        let set = collect(&CollectionPlan {
            workloads: vec![Workload::Atax, Workload::Gemv],
            scale: Scale::tiny(),
            ..Default::default()
        });
        let trained = Napel::new(NapelConfig::untuned())
            .train(&set)
            .expect("train");
        let path = scratch_file("pristine");
        trained.save(&path).expect("save");
        let text = std::fs::read_to_string(&path).expect("read back");
        std::fs::remove_file(&path).ok();
        text
    })
}

/// A unique scratch path per call (cases run back to back; never reuse).
fn scratch_file(tag: &str) -> PathBuf {
    use std::sync::atomic::{AtomicUsize, Ordering};
    static COUNTER: AtomicUsize = AtomicUsize::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "napel-bundle-fuzz-{tag}-{}-{n}.napel",
        std::process::id()
    ))
}

/// Loads `bytes` as a bundle and asserts the decode contract: a typed,
/// non-empty, printable error — or a clean success when the damage
/// happened to be cosmetic. Panics (the thing this suite exists to
/// forbid) propagate and fail the test with the offending input.
fn assert_decode_is_total(bytes: &[u8], what: &str) -> bool {
    let path = scratch_file("case");
    std::fs::write(&path, bytes).expect("write case");
    let outcome = TrainedNapel::load(&path);
    std::fs::remove_file(&path).ok();
    match outcome {
        Ok(model) => {
            // Whatever survived decode must still be internally
            // consistent enough to score a well-formed row.
            let row = vec![1.0; model.feature_names().len()];
            let pred = model.predict_row(&row).expect("decoded model must score");
            assert!(pred.ipc.is_finite(), "{what}: non-finite ipc");
            true
        }
        Err(e) => {
            let message = e.to_string();
            assert!(!message.is_empty(), "{what}: empty diagnostic");
            false
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// Truncating the bundle at any byte offset is a typed error (or, for
    /// offsets past the payload, a clean load) — never a panic.
    #[test]
    fn truncated_bundles_never_panic(frac in 0.0f64..1.0) {
        let text = bundle_text();
        let cut = ((text.len() as f64) * frac) as usize;
        // Cut on a char boundary; the payload is ASCII but don't assume.
        let mut cut = cut.min(text.len());
        while !text.is_char_boundary(cut) {
            cut -= 1;
        }
        let loaded = assert_decode_is_total(&text.as_bytes()[..cut], "truncation");
        if cut < text.len() / 2 {
            prop_assert!(!loaded, "a bundle missing its second half decoded anyway");
        }
    }

    /// Overwriting any single byte with any value never panics: either a
    /// typed error, or a cosmetic change that still decodes to a model
    /// that can score.
    #[test]
    fn byte_mutations_never_panic(frac in 0.0f64..1.0, value in 0u8..=255) {
        let text = bundle_text();
        let mut bytes = text.as_bytes().to_vec();
        let offset = (((bytes.len() - 1) as f64) * frac) as usize;
        bytes[offset] = value;
        assert_decode_is_total(&bytes, "mutation");
    }

    /// Random garbage is always refused with a typed error.
    #[test]
    fn garbage_bytes_are_always_refused(bytes in prop::collection::vec(0u8..=255, 0..2048)) {
        prop_assert!(
            !assert_decode_is_total(&bytes, "garbage"),
            "random bytes decoded as a model"
        );
    }

    /// Splicing two copies / shuffled line orders: still total.
    #[test]
    fn line_shuffles_never_panic(skip in 0usize..64, take in 1usize..512) {
        let text = bundle_text();
        let spliced: String = text
            .lines()
            .skip(skip)
            .take(take)
            .chain(text.lines().take(skip))
            .collect::<Vec<_>>()
            .join("\n");
        assert_decode_is_total(spliced.as_bytes(), "line shuffle");
    }
}
