//! NAPEL — Near-Memory Computing Application Performance Prediction via
//! Ensemble Learning (DAC 2019) — full reproduction facade.
//!
//! This crate re-exports every subsystem of the reproduction under one roof
//! so examples and downstream users can depend on a single crate:
//!
//! - [`ir`] — dynamic instruction IR, traces, emitter
//! - [`workloads`] — the 12 evaluated kernels (Table 2) emitting IR traces
//! - [`pisa`] — microarchitecture-independent profiling (395-feature profile)
//! - [`sim`] — trace-driven NMC simulator (Ramulator-PIM analog)
//! - [`hostmodel`] — analytic POWER9-class host time/energy model
//! - [`doe`] — central composite design and baseline samplers
//! - [`ml`] — random forest, MLP, model tree, CV, tuning
//! - [`core`] — the NAPEL pipeline, accuracy analysis, EDP use case
//! - [`serve`] — supervised, overload-tolerant TCP inference server
//! - [`telemetry`] — structured tracing, metrics, phase profiling, logging
//!
//! # Quickstart
//!
//! See `examples/quickstart.rs`, or the crate-level docs of [`core`].

pub use napel_core as core;
pub use napel_doe as doe;
pub use napel_hostmodel as hostmodel;
pub use napel_ir as ir;
pub use napel_ml as ml;
pub use napel_pisa as pisa;
pub use napel_serve as serve;
pub use napel_telemetry as telemetry;
pub use napel_workloads as workloads;
pub use nmc_sim as sim;
