//! Fast early-stage design-space exploration — the paper's motivating use
//! case. A trained NAPEL model sweeps dozens of NMC architecture
//! configurations in milliseconds each, where the simulator would take
//! orders of magnitude longer; the best design by predicted EDP is then
//! validated with one simulation.
//!
//! Run with `cargo run --release --example dse_sweep`.

use napel::core::collect::{arch_neighborhood, collect, CollectionPlan};
use napel::core::model::{Napel, NapelConfig};
use napel::pisa::ApplicationProfile;
use napel::sim::{ArchConfig, NmcSystem, RowPolicy};
use napel::workloads::{Scale, Workload};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale = Scale::tiny();
    let target = Workload::Kme;

    println!("training NAPEL with architectural variation...");
    let plan = CollectionPlan {
        workloads: vec![Workload::Bfs, Workload::Bp, Workload::Gemv, Workload::Mvt],
        arch_configs: arch_neighborhood(),
        scale,
        ..Default::default()
    };
    let trained = Napel::new(NapelConfig::untuned()).train(&collect(&plan))?;

    println!("profiling {target} once...");
    let trace = target.generate(&target.spec().central_values(), scale);
    let profile = ApplicationProfile::of(&trace);
    let insts = trace.total_insts() as u64;

    // Sweep the design space: PE count x cache size x row policy.
    println!("sweeping the design space with the model...");
    let mut best: Option<(ArchConfig, f64)> = None;
    let mut evaluated = 0;
    for num_pes in [8, 16, 32, 64] {
        for cache_lines in [2, 8, 32] {
            for row_policy in [RowPolicy::Closed, RowPolicy::Open] {
                let arch = ArchConfig {
                    num_pes,
                    cache_lines,
                    row_policy,
                    ..ArchConfig::paper_default()
                };
                let pred = trained.predict(&profile, &arch);
                let edp = pred.edp(insts);
                evaluated += 1;
                if best.as_ref().is_none_or(|(_, b)| edp < *b) {
                    best = Some((arch, edp));
                }
            }
        }
    }
    let (best_arch, best_edp) = best.expect("non-empty sweep");
    println!(
        "evaluated {evaluated} designs; best predicted EDP {best_edp:.3e} J*s at \
         {} PEs, {} cache lines, {:?} rows",
        best_arch.num_pes, best_arch.cache_lines, best_arch.row_policy
    );

    println!("validating the winner with one simulation...");
    let report = NmcSystem::new(best_arch).run(&trace);
    println!(
        "simulated EDP {:.3e} J*s (predicted {:.3e})",
        report.edp(),
        best_edp
    );
    Ok(())
}
