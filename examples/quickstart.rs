//! Quickstart: train NAPEL on a handful of applications and predict the
//! performance and energy of an application it has never seen.
//!
//! Run with `cargo run --release --example quickstart`.

use napel::core::collect::{collect, CollectionPlan};
use napel::core::model::{Napel, NapelConfig, TrainedNapel};
use napel::pisa::ApplicationProfile;
use napel::sim::{ArchConfig, NmcSystem};
use napel::workloads::{Scale, Workload};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Keep the demo snappy: five applications at tiny scale.
    let scale = Scale::tiny();
    let train_apps = vec![
        Workload::Gemv,
        Workload::Mvt,
        Workload::Syrk,
        Workload::Bfs,
        Workload::Kme,
    ];
    let unseen = Workload::Atax;

    println!(
        "1. collecting DoE-selected training runs for {} apps...",
        train_apps.len()
    );
    let plan = CollectionPlan {
        workloads: train_apps,
        scale,
        ..Default::default()
    };
    let set = collect(&plan);
    println!(
        "   {} labeled runs ({:.2}s simulation, {:.2}s analysis)",
        set.runs.len(),
        set.stats.simulate_seconds,
        set.stats.profile_seconds
    );

    println!("2. training the random-forest models...");
    let trained = Napel::new(NapelConfig::untuned()).train(&set)?;

    println!("3. predicting {unseen} (never seen in training)...");
    let params = unseen.spec().central_values();
    let trace = unseen.generate(&params, scale);
    let profile = ApplicationProfile::of(&trace);
    let arch = ArchConfig::paper_default();
    let pred = trained.predict(&profile, &arch);

    // Check the prediction against a real simulation.
    let actual = NmcSystem::new(arch).run(&trace);
    println!(
        "   predicted IPC {:.3}   simulated IPC {:.3}",
        pred.ipc,
        actual.ipc()
    );
    println!(
        "   predicted energy {:.3e} J   simulated {:.3e} J",
        pred.energy_joules(trace.total_insts() as u64),
        actual.energy_joules()
    );
    println!(
        "   relative IPC error: {:.1}%",
        (pred.ipc - actual.ipc()).abs() / actual.ipc() * 100.0
    );

    // Train once, predict many: persist the trained models as a .napel
    // artifact bundle and reload them — no retraining, bit-identical
    // predictions.
    println!("4. saving the trained models and predicting from the artifact...");
    let bundle = std::env::temp_dir().join("quickstart.napel");
    let bytes = trained.save(&bundle)?;
    let reloaded = TrainedNapel::load(&bundle)?;
    let again = reloaded.predict(&profile, &ArchConfig::paper_default());
    println!(
        "   {} bytes -> {} ; reloaded IPC {:.3} (bit-identical: {})",
        bytes,
        bundle.display(),
        again.ipc,
        again.ipc.to_bits() == pred.ipc.to_bits()
    );
    std::fs::remove_file(&bundle).ok();
    Ok(())
}
