//! Telemetry tour: run a tiny campaign with the collector installed, then
//! walk the drained report — phase-time breakdown, simulator counters,
//! and the JSONL event stream other tools would consume.
//!
//! Run with `cargo run --release --example telemetry_tour`.

use napel::core::campaign::Serial;
use napel::core::collect::{collect_with, CollectionPlan};
use napel::telemetry::Telemetry;
use napel::workloads::{Scale, Workload};

fn main() {
    // Telemetry is off by default (a noop global whose hot-path check is
    // one relaxed atomic load). Installing an enabled collector turns
    // every span!/counter! site in the workspace live.
    napel::telemetry::install(Telemetry::enabled());

    println!("1. running a three-application campaign with telemetry on...");
    let plan = CollectionPlan {
        workloads: vec![Workload::Atax, Workload::Gemv, Workload::Bfs],
        scale: Scale::tiny(),
        ..Default::default()
    };
    let set = collect_with(&plan, &Serial);
    println!("   {} labeled runs collected\n", set.runs.len());

    // Drain atomically takes everything recorded so far and resets the
    // collector; events are ordered by (lane, seq), which is identical
    // for serial and threaded executors.
    let report = napel::telemetry::global().drain();

    println!("2. phase-time breakdown and counters:\n");
    println!("{}\n", report.summary());

    println!("3. per-vault DRAM load balance (nmc_sim.vault.* counters):");
    let mut vaults: Vec<(&str, u64)> = report
        .counters
        .iter()
        .filter(|(name, _)| name.starts_with("nmc_sim.vault."))
        .map(|(name, value)| (name.as_str(), *value))
        .collect();
    vaults.sort_by_key(|&(name, _)| {
        name.trim_start_matches("nmc_sim.vault.")
            .trim_end_matches(".accesses")
            .parse::<u64>()
            .unwrap_or(u64::MAX)
    });
    let peak = vaults.iter().map(|&(_, v)| v).max().unwrap_or(1).max(1);
    for (name, value) in &vaults {
        let bar = "#".repeat(((*value as f64 / peak as f64) * 40.0).round() as usize);
        println!("   {name:<28} {value:>9}  {bar}");
    }

    println!("\n4. first five JSONL events (what --telemetry-out writes):");
    for line in report.to_jsonl().lines().take(5) {
        println!("   {line}");
    }

    // Restore the default; a long-lived host would keep the collector and
    // drain periodically instead.
    napel::telemetry::install(Telemetry::noop());
}
