//! The Section 3.4 use case: should this workload be offloaded to NMC?
//!
//! Compares the energy-delay product of executing each workload near
//! memory (predicted by NAPEL, validated by the simulator) against
//! executing it on the POWER9-class host model.
//!
//! Run with `cargo run --release --example nmc_suitability`.

use napel::core::analysis::nmc_suitability;
use napel::core::collect::{collect, CollectionPlan};
use napel::core::model::NapelConfig;
use napel::sim::ArchConfig;
use napel::workloads::{Scale, Workload};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale = Scale::tiny();
    // A contrasting subset: two memory-irregular and two locality-rich.
    let apps = vec![
        Workload::Bfs,
        Workload::Kme,
        Workload::Gemv,
        Workload::Syrk,
        Workload::Mvt,
    ];

    println!(
        "collecting training data for {} applications...",
        apps.len()
    );
    let set = collect(&CollectionPlan {
        workloads: apps,
        scale,
        ..Default::default()
    });

    println!("running the leave-one-out suitability analysis...\n");
    let rows = nmc_suitability(
        &set,
        &NapelConfig::untuned(),
        &ArchConfig::paper_default(),
        scale,
    )?;

    println!(
        "{:<6} {:>14} {:>14} {:>8} {:>7}",
        "app", "NAPEL EDP red.", "actual EDP red.", "winner", "agree"
    );
    for r in &rows {
        println!(
            "{:<6} {:>13.2}x {:>14.2}x {:>8} {:>7}",
            r.workload.name(),
            r.edp_reduction_predicted(),
            r.edp_reduction_actual(),
            if r.edp_reduction_actual() > 1.0 {
                "NMC"
            } else {
                "host"
            },
            if r.suitability_agrees() { "yes" } else { "NO" },
        );
    }
    Ok(())
}
