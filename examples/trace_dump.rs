//! Dump a workload's dynamic trace to disk and replay it — the
//! trace-once / simulate-many workflow of a real trace-driven toolchain
//! (the paper's Pin → Ramulator flow).
//!
//! Run with `cargo run --release --example trace_dump -- [workload]`
//! (default: mvt).

use std::fs::File;
use std::io::{BufReader, BufWriter};

use napel::ir::io::{read_trace, write_trace};
use napel::sim::{ArchConfig, NmcSystem, RowPolicy};
use napel::workloads::{Scale, Workload};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let name = std::env::args().nth(1).unwrap_or_else(|| "mvt".to_string());
    let workload =
        Workload::from_name(&name).ok_or_else(|| format!("unknown workload `{name}`"))?;

    let params = workload.spec().central_values();
    println!("generating {workload} at {params:?}...");
    let trace = workload.generate(&params, Scale::tiny());
    println!(
        "  {} instructions across {} threads",
        trace.total_insts(),
        trace.num_threads()
    );

    let path = std::env::temp_dir().join(format!("napel_{name}.trc"));
    write_trace(&trace, BufWriter::new(File::create(&path)?))?;
    let bytes = std::fs::metadata(&path)?.len();
    println!(
        "dumped to {} ({:.1} MiB)",
        path.display(),
        bytes as f64 / (1 << 20) as f64
    );

    println!("replaying from disk against two architectures...");
    let restored = read_trace(BufReader::new(File::open(&path)?))?;
    assert_eq!(restored.total_insts(), trace.total_insts());

    for (label, arch) in [
        ("table-3 (closed row)", ArchConfig::paper_default()),
        (
            "open row",
            ArchConfig {
                row_policy: RowPolicy::Open,
                ..ArchConfig::paper_default()
            },
        ),
    ] {
        let r = NmcSystem::new(arch).run(&restored);
        println!(
            "  {label:<22} IPC {:.3}  time {:.3e} s  energy {:.3e} J",
            r.ipc(),
            r.exec_time_seconds(),
            r.energy_joules()
        );
    }

    std::fs::remove_file(&path)?;
    Ok(())
}
