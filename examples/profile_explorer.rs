//! Inspect the microarchitecture-independent profile of any workload —
//! the 360-odd features the LLVM-analysis phase of NAPEL produces.
//!
//! Run with `cargo run --release --example profile_explorer [workload]`
//! (default: bfs). Prints the instruction mix, ILP curve, reuse-distance
//! CDF and footprint, plus the most NMC-telling features.

use napel::pisa::{feature_names, ApplicationProfile};
use napel::workloads::{Scale, Workload};

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "bfs".to_string());
    let workload = Workload::from_name(&name)
        .unwrap_or_else(|| panic!("unknown workload `{name}`; options: atax bfs bp chol gemv gesu gram kme lu mvt syrk trmm"));

    let scale = Scale::tiny();
    let params = workload.spec().central_values();
    println!("profiling {workload} at its central configuration {params:?}...\n");
    let trace = workload.generate(&params, scale);
    let profile = ApplicationProfile::of(&trace);

    println!("dynamic instructions : {}", trace.total_insts());
    println!("software threads     : {}", profile.value("threads"));
    println!();

    println!("instruction mix:");
    for class in ["int", "fp", "mem_read", "mem_write", "control", "other"] {
        let v = profile.value(&format!("mix.class.{class}"));
        println!("  {class:<10} {:>5.1}%  {}", v * 100.0, bar(v));
    }
    println!();

    println!("ILP by scheduling window:");
    for w in ["w32", "w64", "w128", "w256", "inf"] {
        println!("  {w:<5} {:>7.2}", profile.value(&format!("ilp.{w}")));
    }
    println!();

    println!("data reuse CDF (64B lines, capacity = 2^b lines):");
    for b in [0usize, 2, 4, 6, 8, 10, 12, 14] {
        let v = profile.value(&format!("reuse.line64.all.cdf.b{b}"));
        println!("  2^{b:<3} {:>5.1}%  {}", v * 100.0, bar(v));
    }
    println!();

    println!(
        "cold-access fraction : {:.1}%",
        profile.value("reuse.elem.all.cold") * 100.0
    );
    println!(
        "memory footprint     : {:.0} KiB",
        (2f64.powf(profile.value("footprint.log2_total_bytes")) - 1.0) / 1024.0
    );
    println!("total profile features: {}", feature_names().len());
}

fn bar(v: f64) -> String {
    "#".repeat((v * 40.0).round() as usize)
}
