//! Training-row assembly: profile features ⊕ architecture features.
//!
//! The RF input of Section 2.5 has three parts: the hardware-independent
//! application profile `p(k, d)`, the architectural configuration `a`, and
//! the simulator response used as the label. This module concatenates the
//! first two into one named feature vector and holds the labeled rows.

use napel_ml::dataset::Dataset;
use napel_pisa::ApplicationProfile;
use napel_workloads::Workload;
use nmc_sim::{ArchConfig, SimReport};

use crate::NapelError;

/// Names of the combined feature vector: every PISA profile feature
/// followed by every architectural feature.
pub fn combined_feature_names() -> Vec<String> {
    let mut names: Vec<String> = napel_pisa::feature_names().to_vec();
    names.extend(ArchConfig::feature_names());
    names
}

/// Builds the combined feature vector for one (profile, architecture)
/// pair, checking the profile against the PISA feature schema: every
/// value is looked up by name ([`ApplicationProfile::try_value`]), so a
/// schema mismatch — a profile built against a different feature list —
/// is a [`NapelError::FeatureSchema`], not a panic deep inside a
/// campaign.
///
/// # Errors
///
/// Returns [`NapelError::FeatureSchema`] if the profile's length differs
/// from the schema or a named feature is missing.
pub fn combined_features_checked(
    profile: &ApplicationProfile,
    arch: &ArchConfig,
) -> Result<Vec<f64>, NapelError> {
    let mut v = profile_features_by_name(profile, napel_pisa::feature_names())?;
    v.reserve(ArchConfig::feature_names().len());
    v.extend(arch.to_features());
    Ok(v)
}

/// Extracts `names` from a profile by name-wise lookup, validating the
/// profile against that schema: the profile must hold exactly as many
/// values as `names`, and every name must resolve
/// ([`ApplicationProfile::try_value`]). This is the schema gate both the
/// campaign runtime and the model-artifact loader go through — an
/// externally supplied profile built against a different feature list
/// surfaces [`NapelError::FeatureSchema`] naming the offending feature,
/// not a panic or a silent misprediction.
///
/// # Errors
///
/// Returns [`NapelError::FeatureSchema`] on a length mismatch or an
/// unresolvable name.
pub fn profile_features_by_name(
    profile: &ApplicationProfile,
    names: &[String],
) -> Result<Vec<f64>, NapelError> {
    if profile.values().len() != names.len() {
        return Err(NapelError::FeatureSchema {
            what: format!(
                "profile has {} values but the schema names {}",
                profile.values().len(),
                names.len()
            ),
        });
    }
    let mut v = Vec::with_capacity(names.len());
    for name in names {
        v.push(
            profile
                .try_value(name)
                .ok_or_else(|| NapelError::FeatureSchema {
                    what: format!("unknown profile feature `{name}`"),
                })?,
        );
    }
    Ok(v)
}

/// Builds the combined feature vector for one (profile, architecture) pair.
///
/// # Panics
///
/// Panics on a profile/schema mismatch; campaign code goes through
/// [`combined_features_checked`] instead, which quarantines the job.
pub fn combined_features(profile: &ApplicationProfile, arch: &ArchConfig) -> Vec<f64> {
    combined_features_checked(profile, arch).expect("profile matches the PISA feature schema")
}

/// One simulated, labeled run: the `(p, a) → response` triple.
#[derive(Debug, Clone, PartialEq)]
pub struct LabeledRun {
    /// Which application produced the row.
    pub workload: Workload,
    /// The application-input configuration (spec order).
    pub params: Vec<f64>,
    /// Combined profile ⊕ architecture features.
    pub features: Vec<f64>,
    /// Offloaded dynamic instructions (`I_offload`).
    pub instructions: u64,
    /// Simulator IPC label.
    pub ipc: f64,
    /// Simulator energy label, picojoules per instruction (intensive, so
    /// the model generalizes across input sizes; total energy is recovered
    /// as `epi · I_offload`).
    pub energy_per_inst_pj: f64,
}

impl LabeledRun {
    /// Builds a labeled run from a simulation report.
    ///
    /// # Panics
    ///
    /// Panics on a profile/schema mismatch; see
    /// [`Self::from_report_checked`].
    pub fn from_report(
        workload: Workload,
        params: Vec<f64>,
        profile: &ApplicationProfile,
        arch: &ArchConfig,
        report: &SimReport,
    ) -> Self {
        Self::from_report_checked(workload, params, profile, arch, report)
            .expect("profile matches the PISA feature schema")
    }

    /// Builds a labeled run from a simulation report, propagating a
    /// feature-schema mismatch instead of panicking.
    ///
    /// # Errors
    ///
    /// Returns [`NapelError::FeatureSchema`] on a profile/schema mismatch.
    pub fn from_report_checked(
        workload: Workload,
        params: Vec<f64>,
        profile: &ApplicationProfile,
        arch: &ArchConfig,
        report: &SimReport,
    ) -> Result<Self, NapelError> {
        let epi = if report.instructions == 0 {
            0.0
        } else {
            report.energy.total_pj() / report.instructions as f64
        };
        Ok(LabeledRun {
            workload,
            params,
            features: combined_features_checked(profile, arch)?,
            instructions: report.instructions,
            ipc: report.ipc(),
            energy_per_inst_pj: epi,
        })
    }

    /// The label-validation gate: checks this row before it may enter a
    /// [`TrainingSet`]. A row is valid when every feature is finite, the
    /// IPC label lies in `(0, issue_width · num_pes]` (the architecture's
    /// aggregate issue bandwidth — no simulator can legally exceed it),
    /// and the energy label is finite and positive.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first violated
    /// constraint; the campaign runtime wraps it into a
    /// [`crate::fault::JobFailureKind::InvalidLabel`] naming the
    /// offending job.
    pub fn validate(&self, arch: &ArchConfig) -> Result<(), String> {
        if let Some(i) = self.features.iter().position(|v| !v.is_finite()) {
            return Err(format!("feature {i} is non-finite ({})", self.features[i]));
        }
        let max_ipc = (arch.issue_width * arch.num_pes) as f64;
        if !self.ipc.is_finite() {
            return Err(format!("IPC label is non-finite ({})", self.ipc));
        }
        if self.ipc <= 0.0 || self.ipc > max_ipc {
            return Err(format!(
                "IPC label {} outside (0, {max_ipc}] (issue_width {} × {} PEs)",
                self.ipc, arch.issue_width, arch.num_pes
            ));
        }
        if !self.energy_per_inst_pj.is_finite() || self.energy_per_inst_pj <= 0.0 {
            return Err(format!(
                "energy label {} pJ/inst is not positive and finite",
                self.energy_per_inst_pj
            ));
        }
        Ok(())
    }
}

/// Wall-clock accounting of a collection campaign (feeds Table 4).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CollectStats {
    /// Seconds spent generating kernel traces.
    pub generate_seconds: f64,
    /// Seconds spent in profile extraction (the "kernel analysis" phase).
    pub profile_seconds: f64,
    /// Seconds spent simulating (the "DoE run" column of Table 4).
    pub simulate_seconds: f64,
}

impl CollectStats {
    /// Folds another accounting into this one, phase by phase.
    ///
    /// Merging is associative and commutative (floating-point addition
    /// aside), so per-job or per-application stats can be combined in any
    /// grouping — which is what lets the campaign engine account a
    /// parallel run the same way as a serial one.
    pub fn merge(&mut self, other: &CollectStats) {
        self.generate_seconds += other.generate_seconds;
        self.profile_seconds += other.profile_seconds;
        self.simulate_seconds += other.simulate_seconds;
    }
}

/// A labeled training set plus its provenance.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainingSet {
    /// Combined feature names.
    pub feature_names: Vec<String>,
    /// The labeled rows.
    pub runs: Vec<LabeledRun>,
    /// Campaign timing.
    pub stats: CollectStats,
}

impl TrainingSet {
    /// The distinct workloads present, in [`Workload::ALL`] order.
    pub fn workloads(&self) -> Vec<Workload> {
        Workload::ALL
            .into_iter()
            .filter(|w| self.runs.iter().any(|r| r.workload == *w))
            .collect()
    }

    /// Group label (index into [`Workload::ALL`]) per row, for
    /// leave-one-application-out folds.
    pub fn groups(&self) -> Vec<usize> {
        self.runs
            .iter()
            .map(|r| {
                Workload::ALL
                    .iter()
                    .position(|w| *w == r.workload)
                    .expect("known")
            })
            .collect()
    }

    /// Rows restricted to the given workloads.
    pub fn filtered(&self, keep: impl Fn(Workload) -> bool) -> TrainingSet {
        TrainingSet {
            feature_names: self.feature_names.clone(),
            runs: self
                .runs
                .iter()
                .filter(|r| keep(r.workload))
                .cloned()
                .collect(),
            stats: self.stats,
        }
    }

    /// The IPC-labeled ML dataset.
    ///
    /// # Errors
    ///
    /// Returns [`NapelError`] if the set is empty or contains non-finite
    /// values.
    pub fn ipc_dataset(&self) -> Result<Dataset, NapelError> {
        self.dataset_with(|r| r.ipc)
    }

    /// The energy-per-instruction-labeled ML dataset.
    ///
    /// # Errors
    ///
    /// Same as [`TrainingSet::ipc_dataset`].
    pub fn energy_dataset(&self) -> Result<Dataset, NapelError> {
        self.dataset_with(|r| r.energy_per_inst_pj)
    }

    fn dataset_with(&self, label: impl Fn(&LabeledRun) -> f64) -> Result<Dataset, NapelError> {
        let mut b = Dataset::builder(self.feature_names.clone());
        for r in &self.runs {
            b.push_row(r.features.clone(), label(r))?;
        }
        // Carry the per-row application label so group-aware estimators
        // (the weighted ensemble) can adapt on leave-one-application-out
        // folds, matching the evaluation protocol.
        Ok(b.build()?.with_groups(self.groups())?)
    }

    /// FNV-1a content hash over the feature schema and every row
    /// (workload, params, features, instructions, both labels), with
    /// floats hashed by exact bit pattern. Two sets hash equal iff their
    /// training-relevant content is bit-identical, so a model artifact can
    /// record which training data produced it.
    pub fn content_hash(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
        };
        for name in &self.feature_names {
            eat(name.as_bytes());
            eat(b"\n");
        }
        for r in &self.runs {
            eat(r.workload.name().as_bytes());
            for &p in &r.params {
                eat(&p.to_bits().to_be_bytes());
            }
            for &x in &r.features {
                eat(&x.to_bits().to_be_bytes());
            }
            eat(&r.instructions.to_be_bytes());
            eat(&r.ipc.to_bits().to_be_bytes());
            eat(&r.energy_per_inst_pj.to_bits().to_be_bytes());
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use napel_ir::{Emitter, MultiTrace};
    use nmc_sim::NmcSystem;

    fn tiny_run(w: Workload) -> LabeledRun {
        let mut t = MultiTrace::new(1);
        let mut e = Emitter::new(t.thread_sink(0));
        for i in 0..50u64 {
            let x = e.load(0, 8 * i, 8);
            e.store(1, 0x1000 + 8 * i, 8, x);
        }
        drop(e);
        let profile = ApplicationProfile::of(&t);
        let arch = ArchConfig::paper_default();
        let report = NmcSystem::new(arch.clone()).run(&t);
        LabeledRun::from_report(w, vec![1.0], &profile, &arch, &report)
    }

    #[test]
    fn combined_names_align_with_values() {
        let r = tiny_run(Workload::Atax);
        assert_eq!(r.features.len(), combined_feature_names().len());
    }

    #[test]
    fn validation_gate_accepts_real_rows_and_rejects_corrupt_ones() {
        let arch = ArchConfig::paper_default();
        let good = tiny_run(Workload::Atax);
        assert_eq!(good.validate(&arch), Ok(()));

        let mut nan_ipc = good.clone();
        nan_ipc.ipc = f64::NAN;
        assert!(nan_ipc.validate(&arch).unwrap_err().contains("IPC"));

        let mut zero_ipc = good.clone();
        zero_ipc.ipc = 0.0;
        assert!(zero_ipc.validate(&arch).unwrap_err().contains("outside"));

        let mut wild_ipc = good.clone();
        wild_ipc.ipc = (arch.issue_width * arch.num_pes) as f64 + 1.0;
        assert!(wild_ipc.validate(&arch).unwrap_err().contains("outside"));

        let mut bad_energy = good.clone();
        bad_energy.energy_per_inst_pj = -1.0;
        assert!(bad_energy.validate(&arch).unwrap_err().contains("energy"));

        let mut bad_feature = good.clone();
        bad_feature.features[3] = f64::INFINITY;
        assert!(bad_feature
            .validate(&arch)
            .unwrap_err()
            .contains("feature 3"));
    }

    #[test]
    fn checked_features_match_unchecked() {
        let run = tiny_run(Workload::Atax);
        let mut t = napel_ir::MultiTrace::new(1);
        let mut e = napel_ir::Emitter::new(t.thread_sink(0));
        let x = e.load(0, 0, 8);
        e.store(1, 8, 8, x);
        drop(e);
        let profile = ApplicationProfile::of(&t);
        let arch = ArchConfig::paper_default();
        let checked = combined_features_checked(&profile, &arch).unwrap();
        assert_eq!(checked, combined_features(&profile, &arch));
        assert_eq!(checked.len(), run.features.len());
    }

    #[test]
    fn wrong_length_profile_is_a_schema_error_not_a_panic() {
        let arch = ArchConfig::paper_default();
        let short = ApplicationProfile::from_values(vec![1.0, 2.0, 3.0]);
        let err = combined_features_checked(&short, &arch).unwrap_err();
        match err {
            NapelError::FeatureSchema { what } => {
                assert!(what.contains("3 values"), "{what}");
                assert!(
                    what.contains(&napel_pisa::feature_names().len().to_string()),
                    "{what}"
                );
            }
            other => panic!("expected FeatureSchema, got {other}"),
        }
    }

    #[test]
    fn missing_name_is_a_schema_error_naming_the_feature() {
        // A schema that asks for a feature PISA does not produce: the
        // length matches, so the per-name lookup is what must catch it.
        let n = napel_pisa::feature_names().len();
        let profile = ApplicationProfile::from_values(vec![0.0; n]);
        let mut names = napel_pisa::feature_names().to_vec();
        names[7] = "no.such.feature".to_string();
        let err = profile_features_by_name(&profile, &names).unwrap_err();
        match err {
            NapelError::FeatureSchema { what } => {
                assert!(what.contains("`no.such.feature`"), "{what}");
            }
            other => panic!("expected FeatureSchema, got {other}"),
        }
    }

    #[test]
    fn content_hash_tracks_training_content() {
        let set = TrainingSet {
            feature_names: combined_feature_names(),
            runs: vec![tiny_run(Workload::Atax), tiny_run(Workload::Bfs)],
            stats: CollectStats::default(),
        };
        let h = set.content_hash();
        assert_eq!(h, set.clone().content_hash(), "hash is deterministic");
        // Stats are wall-clock noise, not content.
        let mut timed = set.clone();
        timed.stats.simulate_seconds = 123.0;
        assert_eq!(h, timed.content_hash());
        // Any label bit flip changes the hash.
        let mut flipped = set.clone();
        flipped.runs[0].ipc = f64::from_bits(flipped.runs[0].ipc.to_bits() ^ 1);
        assert_ne!(h, flipped.content_hash());
        let fewer = set.filtered(|w| w == Workload::Atax);
        assert_ne!(h, fewer.content_hash());
    }

    #[test]
    fn labels_are_sane() {
        let r = tiny_run(Workload::Atax);
        assert!(r.ipc > 0.0 && r.ipc <= 1.0);
        assert!(r.energy_per_inst_pj > 0.0);
        assert_eq!(r.instructions, 100);
    }

    #[test]
    fn datasets_carry_labels() {
        let set = TrainingSet {
            feature_names: combined_feature_names(),
            runs: vec![tiny_run(Workload::Atax), tiny_run(Workload::Bfs)],
            stats: CollectStats::default(),
        };
        let d = set.ipc_dataset().unwrap();
        assert_eq!(d.len(), 2);
        assert_eq!(d.target(0), set.runs[0].ipc);
        let e = set.energy_dataset().unwrap();
        assert_eq!(e.target(1), set.runs[1].energy_per_inst_pj);
        assert_eq!(set.groups(), vec![0, 1]);
        assert_eq!(set.workloads(), vec![Workload::Atax, Workload::Bfs]);
    }

    #[test]
    fn filtering_by_workload() {
        let set = TrainingSet {
            feature_names: combined_feature_names(),
            runs: vec![tiny_run(Workload::Atax), tiny_run(Workload::Bfs)],
            stats: CollectStats::default(),
        };
        let only_bfs = set.filtered(|w| w == Workload::Bfs);
        assert_eq!(only_bfs.runs.len(), 1);
        assert_eq!(only_bfs.runs[0].workload, Workload::Bfs);
    }
}
