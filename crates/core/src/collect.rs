//! Phase ② — the DoE-driven simulation campaign.
//!
//! For every workload, the Table 2 parameter space is sampled by the
//! central composite design (11/19/31 configurations, Table 4); each
//! selected configuration is executed (trace generation), characterized
//! (PISA profile), and simulated on every architecture configuration in
//! the plan to produce labeled training rows.

use napel_doe::ccd::{central_composite, CcdOptions};
use napel_doe::{DesignPoint, ParamDef, ParamSpace};
use napel_workloads::{Scale, Workload, WorkloadSpec};
use nmc_sim::ArchConfig;

use crate::campaign::{plan_jobs, run_jobs, run_supervised, AnyExecutor, Executor};
use crate::fault::{CampaignOptions, CampaignReport};
use crate::features::{combined_feature_names, CollectStats, LabeledRun, TrainingSet};
use crate::NapelError;

/// What to simulate.
#[derive(Debug, Clone, PartialEq)]
pub struct CollectionPlan {
    /// Applications to collect training data for.
    pub workloads: Vec<Workload>,
    /// Architecture configurations each DoE point runs on.
    pub arch_configs: Vec<ArchConfig>,
    /// Input-shrinking policy.
    pub scale: Scale,
    /// Deduplicate coincident CCD points (center replicates) before
    /// simulating — our simulator is deterministic, so re-running the
    /// center adds time but no information. Table 4 counts include the
    /// replicates either way.
    pub dedup: bool,
}

impl Default for CollectionPlan {
    fn default() -> Self {
        CollectionPlan {
            workloads: Workload::ALL.to_vec(),
            arch_configs: vec![ArchConfig::paper_default()],
            scale: Scale::laptop(),
            dedup: true,
        }
    }
}

/// Converts a Table 2 spec into a DoE parameter space.
///
/// # Panics
///
/// Panics if a spec's levels are not strictly increasing (a `napel-workloads`
/// invariant, tested there).
pub fn param_space(spec: &WorkloadSpec) -> ParamSpace {
    let params: Vec<ParamDef> = spec
        .params
        .iter()
        .map(|p| ParamDef::integer(p.name, p.levels).expect("Table 2 levels are sorted"))
        .collect();
    ParamSpace::new(params).expect("Table 2 workloads have parameters")
}

/// The CCD design points for a workload, with the paper's replication rule.
pub fn doe_points(spec: &WorkloadSpec, dedup: bool) -> Vec<DesignPoint> {
    let space = param_space(spec);
    let design = central_composite(&space, &CcdOptions::paper_defaults(&space))
        .expect("Table 2 workloads have at most 4 parameters");
    if dedup {
        design.unique_points()
    } else {
        design.points().cloned().collect()
    }
}

/// The paper's "#DoE conf." count for a workload (replicates included).
pub fn doe_config_count(spec: &WorkloadSpec) -> usize {
    let space = param_space(spec);
    central_composite(&space, &CcdOptions::paper_defaults(&space))
        .expect("Table 2 workloads have at most 4 parameters")
        .len()
}

/// Runs the campaign of `plan`, returning the labeled training set.
///
/// Thin wrapper over [`collect_supervised`] using the executor selected
/// by the `NAPEL_JOBS` environment variable (serial by default) and the
/// campaign options from the environment — so `NAPEL_CHECKPOINT=path`
/// journal-checkpoints (and resumes) any campaign without code changes;
/// see [`crate::campaign`] and [`crate::fault`].
///
/// # Panics
///
/// Panics with the failing job's provenance under the (default)
/// fail-fast policy; use [`collect_supervised`] to handle failures as
/// values.
pub fn collect(plan: &CollectionPlan) -> TrainingSet {
    let (set, _) = collect_supervised(plan, &AnyExecutor::from_env(), &CampaignOptions::from_env())
        .unwrap_or_else(|e| panic!("campaign failed: {e}"));
    set
}

/// Runs the campaign of `plan` on `exec`, returning the labeled training
/// set. Rows come back in workload-major, DoE-point-major,
/// architecture-minor order regardless of the executor.
///
/// # Panics
///
/// Panics with the failing job's provenance on a job failure; use
/// [`collect_supervised`] to handle failures as values.
pub fn collect_with<E: Executor>(plan: &CollectionPlan, exec: &E) -> TrainingSet {
    let (set, _) = collect_supervised(plan, exec, &CampaignOptions::default())
        .unwrap_or_else(|e| panic!("campaign failed: {e}"));
    set
}

/// Runs the campaign of `plan` on `exec` under the supervised,
/// fault-tolerant runtime: per-job panic isolation, the label-validation
/// gate, bounded retries, quarantine or fail-fast semantics, and
/// checkpoint/resume — all per `opts`. Returns the training set (failed
/// jobs excluded under quarantine) plus the [`CampaignReport`] itemizing
/// every job outcome.
///
/// # Errors
///
/// [`NapelError::Job`] for a fail-fast job failure (with the job's
/// provenance) and [`NapelError::Checkpoint`] if the journal cannot be
/// opened.
pub fn collect_supervised<E: Executor>(
    plan: &CollectionPlan,
    exec: &E,
    opts: &CampaignOptions,
) -> Result<(TrainingSet, CampaignReport), NapelError> {
    let jobs = plan_jobs(plan);
    let (runs, report) = run_supervised(exec, &jobs, opts)?;
    Ok((
        TrainingSet {
            feature_names: combined_feature_names(),
            runs,
            stats: report.stats,
        },
        report,
    ))
}

/// Runs the campaign for a single application (used per-app by Table 4),
/// on the `NAPEL_JOBS`-selected executor.
pub fn collect_app(w: Workload, plan: &CollectionPlan) -> (Vec<LabeledRun>, CollectStats) {
    collect_app_with(w, plan, &AnyExecutor::from_env())
}

/// Runs the campaign for a single application on `exec`.
pub fn collect_app_with<E: Executor>(
    w: Workload,
    plan: &CollectionPlan,
    exec: &E,
) -> (Vec<LabeledRun>, CollectStats) {
    let app_plan = CollectionPlan {
        workloads: vec![w],
        ..plan.clone()
    };
    let jobs = plan_jobs(&app_plan);
    run_jobs(exec, &jobs)
}

/// A small architecture sweep around the Table 3 design, for training the
/// model's architectural sensitivity (used by the DSE example and the
/// ablation benches).
pub fn arch_neighborhood() -> Vec<ArchConfig> {
    let base = ArchConfig::paper_default();
    vec![
        base.clone(),
        ArchConfig {
            num_pes: 16,
            ..base.clone()
        },
        ArchConfig {
            freq_ghz: 2.5,
            ..base.clone()
        },
        ArchConfig {
            cache_lines: 8,
            ..base.clone()
        },
        ArchConfig {
            vaults: 16,
            dram_layers: 4,
            ..base.clone()
        },
        ArchConfig {
            issue_width: 2,
            ..base
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn doe_counts_match_table4() {
        let expected = [
            (Workload::Atax, 11),
            (Workload::Bfs, 31),
            (Workload::Bp, 31),
            (Workload::Chol, 19),
            (Workload::Gemv, 19),
            (Workload::Gesu, 19),
            (Workload::Gram, 19),
            (Workload::Kme, 31),
            (Workload::Lu, 19),
            (Workload::Mvt, 19),
            (Workload::Syrk, 19),
            (Workload::Trmm, 19),
        ];
        for (w, n) in expected {
            assert_eq!(doe_config_count(&w.spec()), n, "{w}");
        }
    }

    #[test]
    fn dedup_removes_center_replicates_only() {
        let spec = Workload::Atax.spec();
        assert_eq!(doe_points(&spec, false).len(), 11);
        assert_eq!(doe_points(&spec, true).len(), 9);
    }

    #[test]
    fn collect_produces_labeled_rows() {
        let plan = CollectionPlan {
            workloads: vec![Workload::Atax],
            scale: Scale::tiny(),
            ..Default::default()
        };
        let set = collect(&plan);
        assert_eq!(set.runs.len(), 9); // deduped CCD x 1 arch
        for r in &set.runs {
            assert_eq!(r.workload, Workload::Atax);
            assert!(r.ipc > 0.0, "IPC label must be positive");
            assert!(r.energy_per_inst_pj > 0.0);
            assert_eq!(r.features.len(), set.feature_names.len());
        }
        assert!(set.stats.simulate_seconds > 0.0);
        assert!(set.stats.profile_seconds > 0.0);
    }

    #[test]
    fn multiple_arch_configs_multiply_rows() {
        let archs = arch_neighborhood();
        let plan = CollectionPlan {
            workloads: vec![Workload::Atax],
            arch_configs: archs.clone(),
            scale: Scale::tiny(),
            dedup: true,
        };
        let set = collect(&plan);
        let a = archs.len();
        assert_eq!(set.runs.len(), 9 * a);
        // Rows are DoE-point-major, architecture-minor: runs[k*a + j] is
        // point k simulated on arch j. Every block of `a` rows must share
        // one input configuration...
        let mut varied = 0;
        for k in 0..9 {
            let block = &set.runs[k * a..(k + 1) * a];
            for r in block {
                assert_eq!(
                    r.params, block[0].params,
                    "point {k} rows must share inputs"
                );
            }
            // ...and the architecture must actually move the IPC label
            // within the block: the same DoE point on different hardware
            // is a different training row, not a duplicate. Degenerate
            // tiny-scale points can be arch-insensitive (everything hits
            // in cache and the pipeline bound is unchanged), so require
            // sensitivity at a majority of points, not every point.
            let ipcs: Vec<f64> = block.iter().map(|r| r.ipc).collect();
            if ipcs.iter().any(|&x| (x - ipcs[0]).abs() > 1e-9) {
                varied += 1;
            }
        }
        assert!(
            varied * 2 >= 9,
            "arch sweep moved IPC at only {varied}/9 DoE points"
        );
        // Across points (same arch), inputs must differ — the DoE side of
        // the cross product.
        let base: Vec<&LabeledRun> = set.runs.iter().step_by(a).collect();
        for pair in base.windows(2) {
            assert_ne!(pair[0].params, pair[1].params);
        }
    }

    #[test]
    fn quarantine_excludes_bad_labels_but_completes() {
        use crate::fault::FaultInjector;
        let plan = CollectionPlan {
            workloads: vec![Workload::Atax],
            scale: Scale::tiny(),
            ..Default::default()
        };
        let clean = collect_with(&plan, &crate::campaign::Serial);
        let opts =
            CampaignOptions::quarantine().with_injector(FaultInjector::new().nan_label_at(4));
        let (set, report) = collect_supervised(&plan, &crate::campaign::Serial, &opts).unwrap();
        assert_eq!(report.quarantined_indices(), vec![4]);
        assert_eq!(set.runs.len(), clean.runs.len() - 1);
        let mut expected = clean.runs.clone();
        expected.remove(4);
        assert_eq!(set.runs, expected, "survivors must be untouched");
        // The quarantined set still trains.
        assert!(set.ipc_dataset().is_ok());
    }

    #[test]
    fn param_space_roundtrips_spec() {
        let spec = Workload::Bfs.spec();
        let space = param_space(&spec);
        assert_eq!(space.dims(), 4);
        assert_eq!(space.param(0).name(), "Nodes");
        assert_eq!(space.param(0).levels()[2], 900e3);
    }
}
