//! The campaign engine — job-based, parallel, deterministic execution of
//! simulation campaigns.
//!
//! Phase ② of the pipeline (and several analysis protocols built on it)
//! reduces to the same shape: a batch of independent units of work whose
//! results must come back *in a fixed order* so that downstream training
//! and rendering are reproducible. This module factors that shape out:
//!
//! - [`SimJob`] describes one unit of phase-② work — a workload × DoE
//!   point × architecture configuration at a given [`Scale`]. Jobs carry
//!   their batch index, so results can be assembled deterministically no
//!   matter which worker computed them.
//! - [`Executor`] abstracts *how* a batch runs: [`Serial`] in the calling
//!   thread, or [`Threaded`] across scoped worker threads that pull jobs
//!   from a shared atomic cursor. Both produce results in item order —
//!   the parallel output is **identical** to the serial output (enforced
//!   by test), because every job is a pure function of its descriptor and
//!   timing side-channels are kept out of the labeled data.
//! - [`ProfileCache`] shares the expensive trace generation + PISA
//!   profiling between all jobs of the same `(workload, point, scale)`,
//!   so simulating N architecture configurations costs one kernel
//!   analysis, exactly once, even under concurrency.
//! - [`AnyExecutor::from_env`] selects the executor from the `NAPEL_JOBS`
//!   environment variable, so every driver binary and library entry point
//!   gains a uniform parallelism knob.
//! - [`run_supervised`] is the fault-tolerant runtime on top: each job
//!   runs inside `catch_unwind`, its labels pass a validation gate before
//!   entering the training set, failures are retried (bounded,
//!   deterministic), and — per the configured
//!   [`FaultPolicy`](crate::fault::FaultPolicy) — either cancel the batch
//!   with full provenance (fail-fast) or are quarantined while the rest
//!   of the campaign completes. With a checkpoint journal attached
//!   ([`crate::checkpoint`]), completed rows are persisted as they
//!   finish, and a killed campaign resumes recomputing only unfinished
//!   jobs.
//!
//! What is (and is not) deterministic: the labeled rows — workload,
//! parameters, features, instruction counts, IPC and energy labels — and
//! their order are bit-identical across executors and worker counts,
//! *including under faults*: whether a job fails is a pure function of
//! the job, so the surviving row set and the quarantine report match
//! between serial and threaded runs, and a checkpoint-resumed campaign
//! reproduces an uninterrupted one bit for bit. The wall-clock fields of
//! [`CollectStats`] are measurements and naturally vary run to run; under
//! a threaded executor they sum per-phase CPU time across workers, not
//! elapsed time.

use std::collections::HashMap;
use std::num::NonZeroUsize;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Once, OnceLock};
use std::time::Instant;

use napel_pisa::ApplicationProfile;
use napel_workloads::{Scale, Workload};
use nmc_sim::{ArchConfig, NmcSystem, SimEngine};

use crate::checkpoint::CheckpointJournal;
use crate::collect::{doe_points, CollectionPlan};
use crate::fault::{
    CampaignOptions, CampaignReport, FaultInjector, FaultPolicy, JobFailure, JobFailureKind,
    JobOutcome, JobStatus,
};
use crate::features::{CollectStats, LabeledRun};
use crate::NapelError;

// The engine moves these across thread boundaries; keep the contract
// explicit so an accidental `Rc`/`RefCell` in a substrate crate fails
// here, at the point of use, with a readable error.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<SimJob>();
    assert_send_sync::<ProfiledPoint>();
    assert_send_sync::<LabeledRun>();
    assert_send_sync::<CollectStats>();
    assert_send_sync::<crate::features::TrainingSet>();
    assert_send_sync::<crate::NapelError>();
    assert_send_sync::<CheckpointJournal>();
    assert_send_sync::<CampaignOptions>();
    assert_send_sync::<CampaignReport>();
    assert_send_sync::<JobOutcome>();
};

/// One unit of phase-② work: simulate one workload at one DoE point on
/// one architecture configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct SimJob {
    /// Position of this job in its batch; results are assembled in index
    /// order regardless of which worker ran the job.
    pub index: usize,
    /// The application.
    pub workload: Workload,
    /// The application-input configuration (spec order).
    pub coords: Vec<f64>,
    /// The architecture to simulate on.
    pub arch: ArchConfig,
    /// Input-shrinking policy.
    pub scale: Scale,
}

impl SimJob {
    /// The job's full descriptor: everything its result is a function of
    /// (workload, DoE coordinates by bit pattern, every architecture
    /// field, scale) — deliberately *excluding* the batch index, so the
    /// same work is recognized across differently-shaped batches.
    fn descriptor(&self) -> String {
        let coord_bits: Vec<u64> = self.coords.iter().map(|c| c.to_bits()).collect();
        format!(
            "{} coords={:?} arch={:?} scale=({},{},{})",
            self.workload.name(),
            coord_bits,
            self.arch,
            self.scale.dim_div,
            self.scale.data_div,
            self.scale.max_iters
        )
    }

    /// Stable FNV-1a hash of the job descriptor — the checkpoint-journal
    /// key. Two jobs share a hash exactly when they describe the same
    /// work (e.g. CCD center replicates), in which case restoring either
    /// from the other's journal entry is correct: jobs are pure functions
    /// of their descriptor.
    pub fn descriptor_hash(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in self.descriptor().bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }

    /// Human-readable provenance, for failure reports.
    pub fn describe(&self) -> String {
        format!(
            "{} @ {:?} on {:?} at scale ({},{},{})",
            self.workload.name(),
            self.coords,
            self.arch,
            self.scale.dim_div,
            self.scale.data_div,
            self.scale.max_iters
        )
    }

    /// The provenance-carrying failure record for this job.
    fn failure(&self, attempts: u32, kind: JobFailureKind) -> JobFailure {
        JobFailure {
            index: self.index,
            workload: self.workload.name().to_string(),
            params: self.coords.clone(),
            arch: format!("{:?}", self.arch),
            attempts,
            kind,
        }
    }
}

/// Strategy for running a batch of independent work items.
///
/// `map` must call `f` exactly once per item and return the results in
/// item order — that ordering contract is what makes campaigns
/// executor-independent. The trait is implemented by [`Serial`],
/// [`Threaded`] and [`AnyExecutor`]; functions that run campaigns accept
/// `&impl Executor`.
pub trait Executor {
    /// Applies `f` to every item, returning results in item order.
    fn map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync;

    /// Number of worker threads this executor uses (1 for serial).
    fn workers(&self) -> usize;
}

/// Runs every job in the calling thread, in order.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Serial;

impl Executor for Serial {
    fn map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        items.iter().enumerate().map(|(i, t)| f(i, t)).collect()
    }

    fn workers(&self) -> usize {
        1
    }
}

/// Runs jobs on scoped worker threads pulling from a shared atomic
/// cursor.
///
/// Each worker claims the next unclaimed index with a `fetch_add`, runs
/// it, and records `(index, result)` locally; after all workers join, the
/// results are placed into their slots, so the output order equals
/// [`Serial`]'s. No job queue is allocated and no channels are involved —
/// the batch slice itself is the queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Threaded {
    workers: NonZeroUsize,
}

impl Threaded {
    /// An executor with `workers` threads (floored at 1).
    pub fn new(workers: usize) -> Self {
        Threaded {
            workers: NonZeroUsize::new(workers.max(1)).expect("max(1) is non-zero"),
        }
    }

    /// An executor sized to the machine (`available_parallelism`, or 1 if
    /// that cannot be determined).
    pub fn auto() -> Self {
        Threaded {
            workers: std::thread::available_parallelism()
                .unwrap_or(NonZeroUsize::new(1).expect("1 is non-zero")),
        }
    }
}

impl Executor for Threaded {
    fn map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        let workers = self.workers.get().min(items.len());
        if workers <= 1 {
            return Serial.map(items, f);
        }
        let cursor = AtomicUsize::new(0);
        // A panicking worker poisons the cursor on its way down (the
        // guard's Drop runs during unwinding), so the surviving workers
        // stop claiming new work instead of finishing the rest of the
        // batch before the panic can re-raise: a failure at job 3 of 500
        // must not burn CPU on the other 497 first.
        let poisoned = AtomicBool::new(false);
        struct PoisonOnUnwind<'a>(&'a AtomicBool);
        impl Drop for PoisonOnUnwind<'_> {
            fn drop(&mut self) {
                if std::thread::panicking() {
                    self.0.store(true, Ordering::Release);
                }
            }
        }
        let mut slots: Vec<Option<R>> = Vec::new();
        slots.resize_with(items.len(), || None);
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(|| {
                        let mut local: Vec<(usize, R)> = Vec::new();
                        while !poisoned.load(Ordering::Acquire) {
                            let i = cursor.fetch_add(1, Ordering::Relaxed);
                            if i >= items.len() {
                                break;
                            }
                            let guard = PoisonOnUnwind(&poisoned);
                            let r = f(i, &items[i]);
                            std::mem::forget(guard);
                            local.push((i, r));
                        }
                        local
                    })
                })
                .collect();
            for handle in handles {
                match handle.join() {
                    Ok(local) => {
                        for (i, r) in local {
                            slots[i] = Some(r);
                        }
                    }
                    // Re-raise a worker panic in the caller, as serial
                    // execution would.
                    Err(payload) => std::panic::resume_unwind(payload),
                }
            }
        });
        slots
            .into_iter()
            .map(|s| s.expect("cursor claims every index exactly once"))
            .collect()
    }

    fn workers(&self) -> usize {
        self.workers.get()
    }
}

/// A runtime-selected executor; see [`AnyExecutor::from_env`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AnyExecutor {
    /// In-thread execution.
    Serial(Serial),
    /// Scoped worker threads.
    Threaded(Threaded),
}

impl AnyExecutor {
    /// The serial executor.
    pub fn serial() -> Self {
        AnyExecutor::Serial(Serial)
    }

    /// An executor with `jobs` workers: `0` means size to the machine,
    /// `1` is serial, anything larger is threaded.
    pub fn with_jobs(jobs: usize) -> Self {
        match jobs {
            0 => AnyExecutor::Threaded(Threaded::auto()),
            1 => AnyExecutor::Serial(Serial),
            n => AnyExecutor::Threaded(Threaded::new(n)),
        }
    }

    /// Selects the executor from the `NAPEL_JOBS` environment variable:
    ///
    /// - unset or empty → [`Serial`] (the default stays single-threaded
    ///   and dependency-free),
    /// - `auto` or `0` → [`Threaded`] sized to the machine,
    /// - `1` → [`Serial`],
    /// - `N` → [`Threaded`] with `N` workers.
    ///
    /// Unparsable values warn once on stderr and fall back to serial
    /// rather than aborting a long campaign over a typo.
    pub fn from_env() -> Self {
        match std::env::var("NAPEL_JOBS") {
            Ok(spec) => Self::from_spec(&spec),
            Err(_) => Self::serial(),
        }
    }

    /// Strictly parses a `NAPEL_JOBS`-style specification (see
    /// [`Self::from_env`]).
    ///
    /// # Errors
    ///
    /// Returns a human-readable message naming the bad specification.
    pub fn parse_spec(spec: &str) -> Result<Self, String> {
        let spec = spec.trim();
        if spec.is_empty() {
            return Ok(Self::serial());
        }
        if spec.eq_ignore_ascii_case("auto") {
            return Ok(Self::with_jobs(0));
        }
        match spec.parse::<usize>() {
            Ok(n) => Ok(Self::with_jobs(n)),
            Err(_) => Err(format!(
                "unparsable jobs spec `{spec}` (expected `auto` or a worker count)"
            )),
        }
    }

    /// Parses a `NAPEL_JOBS`-style specification, warning — once per
    /// distinct message, through the `napel-telemetry` log facade —
    /// instead of silently running a typo'd `NAPEL_JOBS=8x` campaign
    /// single-threaded. Message-keyed dedup means a *different* bad spec
    /// later in the same process warns again (a per-call-site `Once`
    /// would swallow it).
    pub fn from_spec(spec: &str) -> Self {
        Self::parse_spec(spec).unwrap_or_else(|msg| {
            napel_telemetry::warn_once!("napel: {msg}; falling back to serial execution");
            Self::serial()
        })
    }
}

impl Executor for AnyExecutor {
    fn map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        match self {
            AnyExecutor::Serial(e) => e.map(items, f),
            AnyExecutor::Threaded(e) => e.map(items, f),
        }
    }

    fn workers(&self) -> usize {
        match self {
            AnyExecutor::Serial(e) => e.workers(),
            AnyExecutor::Threaded(e) => e.workers(),
        }
    }
}

/// Telemetry lane of job `i`: `JOB_LANE_BASE + i`. Lane 0 is the driver
/// thread; giving every job its own lane makes the event stream's order
/// independent of which worker ran the job — see [`napel_telemetry`].
pub const JOB_LANE_BASE: u64 = 1;

/// Telemetry lane of the kernel analysis first needed by job `i`:
/// `ANALYSIS_LANE_BASE + i`. Analyses are shared across jobs through the
/// [`ProfileCache`], and *which* job's thread materializes a shared entry
/// is a race under a threaded executor — so analysis events go to a
/// canonical lane chosen when the cache is built (the lowest job index
/// sharing the entry), far above the job lanes, keeping the stream
/// deterministic.
pub const ANALYSIS_LANE_BASE: u64 = 1 << 32;

/// Cache key: one kernel analysis per distinct (workload, scale, point).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct ProfileKey {
    workload: Workload,
    scale: (u32, u32, u64),
    // Coordinates by bit pattern: DoE points are produced, not computed
    // with, so bitwise identity is the right notion of "same point".
    coord_bits: Vec<u64>,
}

impl ProfileKey {
    fn of(job: &SimJob) -> Self {
        ProfileKey {
            workload: job.workload,
            scale: (job.scale.dim_div, job.scale.data_div, job.scale.max_iters),
            coord_bits: job.coords.iter().map(|c| c.to_bits()).collect(),
        }
    }
}

/// How a profiled point's trace stays resident between the simulations
/// that share it — the campaign's memory/compute trade-off knob.
///
/// A raw [`napel_ir::MultiTrace`] costs 32 bytes per instruction and a
/// campaign caches one per distinct DoE point, so large batches used to be
/// dominated by trace memory. Both policies bound that:
///
/// - [`Encoded`](TracePolicy::Encoded) (the default) keeps the compact
///   delta-encoded form ([`napel_ir::EncodedTrace`], typically 3–5 bytes
///   per instruction) and decodes it on the fly for each simulation — a
///   ≥4× residency reduction for every kernel at no re-generation cost.
/// - [`Regenerate`](TracePolicy::Regenerate) keeps *nothing* resident and
///   re-runs the kernel generator transiently per simulation — minimal
///   memory, paying one extra generation per architecture configuration.
///
/// Selected by the `NAPEL_TRACE_POLICY` environment variable (`encoded`,
/// `regenerate`; unset/empty → `encoded`, anything else warns once and
/// falls back to `encoded`). Labeled rows are bit-identical across
/// policies: both simulate the exact instruction sequence the kernel
/// emits (enforced by test).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TracePolicy {
    /// Cache the compact delta-encoded trace; simulations decode it.
    #[default]
    Encoded,
    /// Cache nothing; simulations re-generate the kernel trace.
    Regenerate,
}

impl TracePolicy {
    /// Reads the policy from `NAPEL_TRACE_POLICY` (see the type docs).
    pub fn from_env() -> Self {
        match std::env::var("NAPEL_TRACE_POLICY") {
            Err(_) => TracePolicy::default(),
            Ok(spec) => Self::from_spec(&spec),
        }
    }

    /// Parses a `NAPEL_TRACE_POLICY`-style specification, warning once
    /// (through the `napel-telemetry` log facade) and defaulting on an
    /// unknown value rather than aborting a campaign over a typo.
    pub fn from_spec(spec: &str) -> Self {
        let spec = spec.trim();
        if spec.is_empty() || spec.eq_ignore_ascii_case("encoded") {
            TracePolicy::Encoded
        } else if spec.eq_ignore_ascii_case("regenerate") {
            TracePolicy::Regenerate
        } else {
            napel_telemetry::warn_once!(
                "napel: unknown trace policy `{spec}` (expected `encoded` or \
                 `regenerate`); using `encoded`"
            );
            TracePolicy::default()
        }
    }
}

/// The resident form of a profiled point's trace, per [`TracePolicy`].
#[derive(Debug)]
pub enum ResidentTrace {
    /// The compact delta-encoded trace ([`TracePolicy::Encoded`]).
    Encoded(napel_ir::EncodedTrace),
    /// Nothing resident ([`TracePolicy::Regenerate`]); simulations re-run
    /// the kernel generator.
    Regenerate,
}

/// The shared, hardware-independent part of a job's work: the PISA
/// profile, the trace in its policy-chosen resident form, and how long
/// the (single-pass) analysis took.
#[derive(Debug)]
pub struct ProfiledPoint {
    /// The workload's instruction trace at this point, as resident per
    /// the cache's [`TracePolicy`].
    pub trace: ResidentTrace,
    /// The PISA application profile of that trace.
    pub profile: ApplicationProfile,
    /// Seconds spent in the fused generate-and-observe pass (the kernel
    /// streams straight into the profiler, so generation and feature
    /// observation share one clock).
    pub generate_seconds: f64,
    /// Seconds spent assembling the feature vector from the observed
    /// statistics.
    pub profile_seconds: f64,
}

/// Keyed once-cell cache of kernel analyses.
///
/// Built up front from a job batch (so lookups never mutate the map), the
/// cache guarantees each distinct `(workload, point, scale)` is generated
/// and profiled **exactly once** even when many workers ask for it
/// concurrently: the first asker initializes the [`OnceLock`], the rest
/// block until it is ready and then share the result. N architecture
/// configurations per point therefore cost one kernel analysis.
#[derive(Debug)]
pub struct ProfileCache {
    entries: HashMap<ProfileKey, CacheSlot>,
    policy: TracePolicy,
}

/// One cache entry: the once-cell plus the telemetry lane its analysis
/// events go to (canonical = chosen at build time from the lowest job
/// index sharing the entry, so the event stream does not depend on which
/// worker happened to materialize it).
#[derive(Debug)]
struct CacheSlot {
    cell: OnceLock<ProfiledPoint>,
    lane: u64,
}

impl ProfileCache {
    /// Prepares (empty) cache slots for every distinct point in `jobs`,
    /// with the trace-residency policy from the environment
    /// ([`TracePolicy::from_env`]).
    pub fn for_jobs(jobs: &[SimJob]) -> Self {
        Self::with_policy(jobs, TracePolicy::from_env())
    }

    /// Prepares (empty) cache slots with an explicit residency policy.
    pub fn with_policy(jobs: &[SimJob], policy: TracePolicy) -> Self {
        let mut entries = HashMap::new();
        for job in jobs {
            entries
                .entry(ProfileKey::of(job))
                .or_insert_with(|| CacheSlot {
                    cell: OnceLock::new(),
                    lane: ANALYSIS_LANE_BASE + job.index as u64,
                });
        }
        ProfileCache { entries, policy }
    }

    /// The trace-residency policy this cache was built with.
    pub fn policy(&self) -> TracePolicy {
        self.policy
    }

    /// The kernel analysis for `job`'s point, computing it on first use.
    ///
    /// Telemetry: every call bumps `campaign.profile_cache.lookups`; the
    /// call that actually materializes the entry bumps
    /// `campaign.profile_cache.misses` (hits = lookups − misses, derived
    /// rather than counted so the numbers stay exact under concurrency:
    /// a caller that blocks on another worker's in-flight materialization
    /// is neither a miss nor a double-counted hit).
    ///
    /// # Panics
    ///
    /// Panics if `job` was not part of the batch the cache was built for.
    pub fn profiled(&self, job: &SimJob) -> &ProfiledPoint {
        let slot = self
            .entries
            .get(&ProfileKey::of(job))
            .expect("cache was built for this job batch");
        napel_telemetry::counter!("campaign.profile_cache.lookups", 1);
        slot.cell.get_or_init(|| {
            let telemetry = napel_telemetry::global();
            let _lane = telemetry.lane(slot.lane);
            let _analyze = telemetry
                .span("campaign.analyze")
                .attr("workload", job.workload.name());
            telemetry.counter("campaign.profile_cache.misses", 1);
            // One fused pass: the kernel streams each instruction into the
            // PISA observer (and, under the `Encoded` policy, into the
            // compact encoder) as it is emitted — the full 32-byte-per-
            // instruction `MultiTrace` is never materialized.
            let mut observer = napel_pisa::ProfileObserver::new();
            let t0 = Instant::now();
            let trace = match self.policy {
                TracePolicy::Encoded => {
                    let mut enc = napel_ir::EncodedTraceSink::new();
                    {
                        let _gen = telemetry.span("campaign.generate_trace");
                        let mut tee = napel_ir::TeeSink::new(&mut observer, &mut enc);
                        job.workload.generate_into(&job.coords, job.scale, &mut tee);
                    }
                    let enc = enc.finish();
                    // `trace.bytes_resident` totals what campaigns keep in
                    // memory; `trace.encoded_ratio` accumulates per-point
                    // compression factors (divide by
                    // `campaign.profile_cache.misses` for the mean).
                    telemetry.counter("trace.bytes_resident", enc.encoded_bytes() as u64);
                    telemetry.counter(
                        "trace.encoded_ratio",
                        (enc.materialized_bytes() / enc.encoded_bytes().max(1)) as u64,
                    );
                    ResidentTrace::Encoded(enc)
                }
                TracePolicy::Regenerate => {
                    let _gen = telemetry.span("campaign.generate_trace");
                    job.workload
                        .generate_into(&job.coords, job.scale, &mut observer);
                    ResidentTrace::Regenerate
                }
            };
            let generate_seconds = t0.elapsed().as_secs_f64();
            let t1 = Instant::now();
            let profile = observer.finish();
            let profile_seconds = t1.elapsed().as_secs_f64();
            ProfiledPoint {
                trace,
                profile,
                generate_seconds,
                profile_seconds,
            }
        })
    }

    /// Number of distinct points the cache covers.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache covers no points.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of points actually generated and profiled so far — a
    /// job-execution counter: checkpoint-restored jobs never touch the
    /// cache, so a resumed campaign's count covers only recomputed work.
    pub fn materialized(&self) -> usize {
        self.entries
            .values()
            .filter(|s| s.cell.get().is_some())
            .count()
    }

    /// Generate/profile time summed over the points that were actually
    /// materialized (each counted once, however many jobs shared it).
    fn analysis_stats(&self) -> CollectStats {
        let mut stats = CollectStats::default();
        for slot in self.entries.values() {
            if let Some(point) = slot.cell.get() {
                stats.merge(&CollectStats {
                    generate_seconds: point.generate_seconds,
                    profile_seconds: point.profile_seconds,
                    simulate_seconds: 0.0,
                });
            }
        }
        stats
    }
}

/// Expands a [`CollectionPlan`] into its job batch: workload-major,
/// DoE-point-major, architecture-minor — exactly the order the original
/// serial loops produced rows in, which downstream code and tests rely
/// on.
pub fn plan_jobs(plan: &CollectionPlan) -> Vec<SimJob> {
    let mut jobs = Vec::new();
    for &workload in &plan.workloads {
        for point in doe_points(&workload.spec(), plan.dedup) {
            for arch in &plan.arch_configs {
                jobs.push(SimJob {
                    index: jobs.len(),
                    workload,
                    coords: point.coords().to_vec(),
                    arch: arch.clone(),
                    scale: plan.scale,
                });
            }
        }
    }
    jobs
}

/// Runs a job batch on `exec`, returning labeled rows in job-index order
/// plus campaign timing.
///
/// Thin fail-fast wrapper over [`run_supervised`] with default
/// [`CampaignOptions`]: a job failure (panic or invalid label) re-raises
/// in the caller as a panic carrying the job's provenance. Use
/// [`run_supervised`] directly for quarantine semantics, retries, or
/// checkpointing.
pub fn run_jobs<E: Executor>(exec: &E, jobs: &[SimJob]) -> (Vec<LabeledRun>, CollectStats) {
    let (rows, report) = run_supervised(exec, jobs, &CampaignOptions::default())
        .unwrap_or_else(|e| panic!("campaign failed: {e}"));
    (rows, report.stats)
}

/// Runs a job batch under supervision: every job executes inside
/// `catch_unwind`, panicking jobs get `opts.retries` deterministic extra
/// attempts, completed rows must pass the label-validation gate
/// ([`LabeledRun::validate`]) before they are returned, and a checkpoint
/// journal — when configured — persists rows as they complete and
/// restores them on the next run.
///
/// Returns the surviving rows in job-index order plus a
/// [`CampaignReport`] itemizing every job's [`JobOutcome`].
///
/// Under [`FaultPolicy::FailFast`] the first failure (lowest job index)
/// cancels the batch — in-flight workers finish their current job, queued
/// jobs are skipped — and surfaces as [`NapelError::Job`]. Under
/// [`FaultPolicy::Quarantine`] the campaign completes; failures are
/// excluded from the rows and itemized in the report.
///
/// # Errors
///
/// [`NapelError::Checkpoint`] if the journal cannot be opened, and
/// [`NapelError::Job`] for a fail-fast failure.
pub fn run_supervised<E: Executor>(
    exec: &E,
    jobs: &[SimJob],
    opts: &CampaignOptions,
) -> Result<(Vec<LabeledRun>, CampaignReport), NapelError> {
    let telemetry = napel_telemetry::global();
    let _run_span = telemetry
        .span("campaign.run")
        .attr("jobs", jobs.len())
        .attr("workers", exec.workers());
    let journal = match &opts.checkpoint {
        Some(path) => Some(CheckpointJournal::open(path)?),
        None => None,
    };
    let cache = ProfileCache::for_jobs(jobs);
    let cancel = AtomicBool::new(false);
    let results: Vec<(JobOutcome, Option<LabeledRun>, f64)> = exec.map(jobs, |_, job| {
        run_one(job, &cache, journal.as_ref(), opts, &cancel)
    });

    let mut rows = Vec::with_capacity(jobs.len());
    let mut outcomes = Vec::with_capacity(jobs.len());
    let mut quarantined = Vec::new();
    let mut restored = 0;
    let mut stats = cache.analysis_stats();
    for (outcome, row, simulate_seconds) in results {
        stats.simulate_seconds += simulate_seconds;
        match &outcome.status {
            JobStatus::Completed => rows.push(row.expect("completed job has a row")),
            JobStatus::Restored => {
                restored += 1;
                rows.push(row.expect("restored job has a row"));
            }
            JobStatus::Failed(kind) => {
                quarantined.push(jobs[outcome.index].failure(outcome.attempts, kind.clone()));
            }
            JobStatus::Skipped => {}
        }
        outcomes.push(outcome);
    }
    if opts.policy == FaultPolicy::FailFast {
        // Quarantined entries arrive in index order (exec.map returns
        // item order), so the first is the lowest-index failure — the
        // deterministic choice even when a threaded run fails several
        // jobs before the cancellation lands.
        if !quarantined.is_empty() {
            return Err(NapelError::Job(quarantined.remove(0)));
        }
    }
    Ok((
        rows,
        CampaignReport {
            outcomes,
            quarantined,
            restored,
            stats,
        },
    ))
}

/// Supervises one job: checkpoint restore, bounded retries around the
/// panic-catching execution, label validation, journaling, and fail-fast
/// cancellation.
///
/// Telemetry: the whole job runs in its own lane (`JOB_LANE_BASE +
/// index`) under a `campaign.job` span carrying the job's provenance
/// (workload, index, architecture) and final status, and bumps the
/// `campaign.jobs.*` counters. Both are deterministic: each job's lane
/// is private to it, and whether a job completes, restores, retries, or
/// fails is a pure function of the job (see the module docs).
fn run_one(
    job: &SimJob,
    cache: &ProfileCache,
    journal: Option<&CheckpointJournal>,
    opts: &CampaignOptions,
    cancel: &AtomicBool,
) -> (JobOutcome, Option<LabeledRun>, f64) {
    let telemetry = napel_telemetry::global();
    let _lane = telemetry.lane(JOB_LANE_BASE + job.index as u64);
    let span = telemetry
        .span("campaign.job")
        .attr("workload", job.workload.name())
        .attr("index", job.index)
        .attr("arch", format_args!("{:?}", job.arch));
    let outcome = |status, attempts, seconds| JobOutcome {
        index: job.index,
        status,
        attempts,
        seconds,
    };
    if cancel.load(Ordering::Acquire) {
        napel_telemetry::counter!("campaign.jobs.skipped", 1);
        let _span = span.attr("status", "skipped");
        return (outcome(JobStatus::Skipped, 0, 0.0), None, 0.0);
    }
    let hash = job.descriptor_hash();
    if let Some(journal) = journal {
        if let Some(run) = journal.restored(hash) {
            napel_telemetry::counter!("campaign.jobs.restored", 1);
            let _span = span.attr("status", "restored");
            return (outcome(JobStatus::Restored, 0, 0.0), Some(run.clone()), 0.0);
        }
    }
    let start = Instant::now();
    let mut attempts = 0u32;
    loop {
        let attempt = attempts;
        attempts += 1;
        let result = catch_job_panic(|| execute_job(job, cache, opts.injector.as_ref(), attempt));
        let kind = match result {
            Ok(Ok((run, simulate_seconds))) => {
                if let Some(journal) = journal {
                    journal.record(hash, &run);
                }
                napel_telemetry::counter!("campaign.jobs.completed", 1);
                let _span = span.attr("status", "completed");
                let seconds = start.elapsed().as_secs_f64();
                return (
                    outcome(JobStatus::Completed, attempts, seconds),
                    Some(run),
                    simulate_seconds,
                );
            }
            // Invalid labels and schema mismatches are deterministic —
            // retrying replays the same result, so fail immediately.
            Ok(Err(kind)) => kind,
            Err(panic_message) => {
                if attempts <= opts.retries {
                    napel_telemetry::counter!("campaign.jobs.retried", 1);
                    // Back off before the retry: the faults retries are
                    // for (transient resource exhaustion) need breathing
                    // room, and the schedule is deterministic in the
                    // attempt number so the campaign stays replayable.
                    let delay = opts.backoff.delay(attempt);
                    if !delay.is_zero() {
                        std::thread::sleep(delay);
                    }
                    continue;
                }
                JobFailureKind::Panic(panic_message)
            }
        };
        if opts.policy == FaultPolicy::FailFast {
            cancel.store(true, Ordering::Release);
        }
        napel_telemetry::counter!("campaign.jobs.failed", 1);
        let _span = span.attr("status", "failed").attr("attempts", attempts);
        let seconds = start.elapsed().as_secs_f64();
        return (
            outcome(JobStatus::Failed(kind), attempts, seconds),
            None,
            0.0,
        );
    }
}

/// One attempt at a job's actual work: kernel analysis (through the
/// cache), simulation, checked feature assembly, fault injection (when
/// configured), and the label-validation gate.
fn execute_job(
    job: &SimJob,
    cache: &ProfileCache,
    injector: Option<&FaultInjector>,
    attempt: u32,
) -> Result<(LabeledRun, f64), JobFailureKind> {
    if let Some(injector) = injector {
        injector.maybe_panic(job.index, attempt);
    }
    let point = cache.profiled(job);
    let t = Instant::now();
    let system = NmcSystem::new(job.arch.clone());
    // Each worker thread owns one phase-split engine and simulates every
    // job through it, so frontends, vault queues, the in-flight arena, and
    // the DRAM model are reused across a campaign instead of reallocated
    // per job. A panic mid-run is harmless: the engine re-prepares all
    // state at the start of the next run.
    thread_local! {
        static SIM_ENGINE: std::cell::RefCell<SimEngine> =
            std::cell::RefCell::new(SimEngine::new());
    }
    // Both arms feed the simulator the exact instruction sequence the
    // kernel emits (both entry points share the engine), so the report —
    // and thus the labeled row — is policy-independent.
    let report = SIM_ENGINE.with(|engine| {
        let mut engine = engine.borrow_mut();
        match &point.trace {
            ResidentTrace::Encoded(enc) => engine.run_streams(&system, enc.thread_iters()),
            ResidentTrace::Regenerate => {
                engine.run(&system, &job.workload.generate(&job.coords, job.scale))
            }
        }
    });
    let simulate_seconds = t.elapsed().as_secs_f64();
    let mut run = LabeledRun::from_report_checked(
        job.workload,
        job.coords.clone(),
        &point.profile,
        &job.arch,
        &report,
    )
    .map_err(|e| JobFailureKind::Schema(e.to_string()))?;
    if let Some(injector) = injector {
        injector.corrupt(job.index, &mut run);
    }
    run.validate(&job.arch)
        .map_err(JobFailureKind::InvalidLabel)?;
    Ok((run, simulate_seconds))
}

/// Runs `f` inside `catch_unwind`, rendering a panic payload to text.
/// While `f` runs, the process panic hook is hushed *for this thread*, so
/// an expected (caught, quarantined) panic does not spray a backtrace
/// onto stderr; panics on other threads print as usual.
pub(crate) fn catch_job_panic<R>(f: impl FnOnce() -> R) -> Result<R, String> {
    use std::cell::Cell;
    thread_local! {
        static HUSHED: Cell<bool> = const { Cell::new(false) };
    }
    static INSTALL: Once = Once::new();
    INSTALL.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if !HUSHED.with(Cell::get) {
                previous(info);
            }
        }));
    });
    struct Unhush;
    impl Drop for Unhush {
        fn drop(&mut self) {
            HUSHED.with(|h| h.set(false));
        }
    }
    HUSHED.with(|h| h.set(true));
    let _unhush = Unhush;
    catch_unwind(AssertUnwindSafe(f)).map_err(|payload| {
        if let Some(s) = payload.downcast_ref::<&str>() {
            (*s).to_string()
        } else if let Some(s) = payload.downcast_ref::<String>() {
            s.clone()
        } else {
            "non-string panic payload".to_string()
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collect::{arch_neighborhood, collect_with};

    #[test]
    fn serial_and_threaded_map_agree_and_preserve_order() {
        let items: Vec<usize> = (0..100).collect();
        let square = |i: usize, &x: &usize| {
            assert_eq!(i, x, "index must match item position");
            x * x
        };
        let serial = Serial.map(&items, square);
        for workers in [2, 3, 8, 64] {
            let threaded = Threaded::new(workers).map(&items, square);
            assert_eq!(serial, threaded, "{workers} workers");
        }
        assert_eq!(serial.len(), 100);
        assert_eq!(serial[7], 49);
    }

    #[test]
    fn threaded_map_runs_every_item_exactly_once() {
        let items: Vec<usize> = (0..257).collect();
        let counter = AtomicUsize::new(0);
        let out = Threaded::new(4).map(&items, |_, &x| {
            counter.fetch_add(1, Ordering::Relaxed);
            x
        });
        assert_eq!(counter.load(Ordering::Relaxed), 257);
        assert_eq!(out, items);
    }

    #[test]
    fn empty_batches_are_fine() {
        let items: Vec<u8> = Vec::new();
        assert!(Threaded::new(4).map(&items, |_, &x| x).is_empty());
        assert!(Serial.map(&items, |_, &x| x).is_empty());
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn worker_panics_propagate() {
        let items: Vec<usize> = (0..16).collect();
        let _ = Threaded::new(4).map(&items, |_, &x| {
            assert!(x != 9, "boom");
            x
        });
    }

    #[test]
    fn jobs_spec_parses_like_documented() {
        assert_eq!(AnyExecutor::from_spec(""), AnyExecutor::serial());
        assert_eq!(AnyExecutor::from_spec("  "), AnyExecutor::serial());
        assert_eq!(AnyExecutor::from_spec("1"), AnyExecutor::serial());
        assert_eq!(
            AnyExecutor::from_spec("3"),
            AnyExecutor::Threaded(Threaded::new(3))
        );
        assert!(matches!(
            AnyExecutor::from_spec("auto"),
            AnyExecutor::Threaded(_)
        ));
        assert!(matches!(
            AnyExecutor::from_spec("0"),
            AnyExecutor::Threaded(_)
        ));
        assert_eq!(AnyExecutor::from_spec("lots"), AnyExecutor::serial());
        assert!(AnyExecutor::from_spec("4").workers() == 4);
    }

    #[test]
    fn bad_jobs_specs_are_errors_not_silent_serial() {
        // The strict parser names the bad spec; `from_spec` still falls
        // back to serial (with a one-time stderr warning) so a typo
        // cannot abort a long campaign.
        for bad in ["8x", "lots", "-2", "3.5", "auto8"] {
            let err = AnyExecutor::parse_spec(bad).unwrap_err();
            assert!(err.contains(&format!("`{bad}`")), "{err}");
            assert_eq!(AnyExecutor::from_spec(bad), AnyExecutor::serial());
        }
        assert_eq!(
            AnyExecutor::parse_spec("auto"),
            Ok(AnyExecutor::with_jobs(0))
        );
        assert_eq!(
            AnyExecutor::parse_spec(" 2 "),
            Ok(AnyExecutor::with_jobs(2))
        );
    }

    #[test]
    fn poisoned_cursor_stops_claiming_after_a_panic() {
        let items: Vec<usize> = (0..500).collect();
        let executed = AtomicUsize::new(0);
        let caught = std::panic::catch_unwind(AssertUnwindSafe(|| {
            Threaded::new(4).map(&items, |_, &x| {
                assert!(x != 3, "boom at 3");
                executed.fetch_add(1, Ordering::Relaxed);
                std::thread::sleep(std::time::Duration::from_micros(200));
                x
            })
        }));
        assert!(caught.is_err(), "panic must still re-raise");
        let ran = executed.load(Ordering::Relaxed);
        assert!(
            ran < items.len() - 1,
            "workers kept claiming jobs after the panic: {ran} of 500 ran"
        );
    }

    #[test]
    fn descriptor_hash_ignores_index_but_not_work() {
        let plan = CollectionPlan {
            workloads: vec![Workload::Atax],
            arch_configs: arch_neighborhood().into_iter().take(2).collect(),
            scale: Scale::tiny(),
            dedup: true,
        };
        let jobs = plan_jobs(&plan);
        let mut relabeled = jobs[0].clone();
        relabeled.index = 999;
        assert_eq!(relabeled.descriptor_hash(), jobs[0].descriptor_hash());
        // Same point, different arch → different work.
        assert_ne!(jobs[0].descriptor_hash(), jobs[1].descriptor_hash());
        // Same arch, different point → different work.
        assert_ne!(jobs[0].descriptor_hash(), jobs[2].descriptor_hash());
        assert!(jobs[0].describe().contains("atax"));
    }

    #[test]
    fn supervised_clean_run_matches_run_jobs() {
        let plan = CollectionPlan {
            workloads: vec![Workload::Atax],
            arch_configs: arch_neighborhood().into_iter().take(2).collect(),
            scale: Scale::tiny(),
            dedup: true,
        };
        let jobs = plan_jobs(&plan);
        let (plain_rows, _) = run_jobs(&Serial, &jobs);
        let (rows, report) =
            run_supervised(&Serial, &jobs, &CampaignOptions::quarantine()).unwrap();
        assert_eq!(rows, plain_rows);
        assert!(report.is_clean());
        assert_eq!(report.executed(), jobs.len());
        assert_eq!(report.restored, 0);
        assert!(report.outcomes.iter().all(|o| o.attempts == 1));
    }

    #[test]
    fn fail_fast_cancels_and_names_the_job() {
        let plan = CollectionPlan {
            workloads: vec![Workload::Atax],
            arch_configs: arch_neighborhood().into_iter().take(2).collect(),
            scale: Scale::tiny(),
            dedup: true,
        };
        let jobs = plan_jobs(&plan);
        let opts = CampaignOptions::default().with_injector(FaultInjector::new().panic_at(5));
        let err = run_supervised(&Serial, &jobs, &opts).unwrap_err();
        let NapelError::Job(failure) = err else {
            panic!("expected a job failure, got {err}");
        };
        assert_eq!(failure.index, 5);
        assert_eq!(failure.workload, "atax");
        assert_eq!(failure.params, jobs[5].coords);
        assert!(failure.arch.contains("num_pes"), "{}", failure.arch);
        assert!(matches!(failure.kind, JobFailureKind::Panic(_)));
    }

    #[test]
    fn retries_recover_transient_panics_deterministically() {
        let plan = CollectionPlan {
            workloads: vec![Workload::Atax],
            arch_configs: arch_neighborhood().into_iter().take(1).collect(),
            scale: Scale::tiny(),
            dedup: true,
        };
        let jobs = plan_jobs(&plan);
        let clean = run_supervised(&Serial, &jobs, &CampaignOptions::quarantine())
            .unwrap()
            .0;
        let opts = CampaignOptions::quarantine()
            .with_retries(1)
            .with_injector(FaultInjector::new().panic_once_at(2));
        let (rows, report) = run_supervised(&Serial, &jobs, &opts).unwrap();
        assert_eq!(rows, clean, "a recovered retry must not change output");
        assert!(report.is_clean());
        assert_eq!(report.outcomes[2].attempts, 2, "one retry consumed");
        assert_eq!(report.outcomes[1].attempts, 1);

        // Without the retry budget the same fault quarantines the job.
        let opts =
            CampaignOptions::quarantine().with_injector(FaultInjector::new().panic_once_at(2));
        let (rows, report) = run_supervised(&Serial, &jobs, &opts).unwrap();
        assert_eq!(report.quarantined_indices(), vec![2]);
        assert_eq!(rows.len(), jobs.len() - 1);
    }

    #[test]
    fn plan_jobs_matches_plan_shape_and_order() {
        let plan = CollectionPlan {
            workloads: vec![Workload::Atax, Workload::Gemv],
            arch_configs: arch_neighborhood().into_iter().take(2).collect(),
            scale: Scale::tiny(),
            dedup: true,
        };
        let jobs = plan_jobs(&plan);
        // atax: 9 deduped points, gemv: 15; two archs each.
        assert_eq!(jobs.len(), (9 + 15) * 2);
        for (i, job) in jobs.iter().enumerate() {
            assert_eq!(job.index, i);
        }
        // Workload-major, arch-minor: the first two jobs share atax's
        // first point and differ only in architecture.
        assert_eq!(jobs[0].workload, Workload::Atax);
        assert_eq!(jobs[0].coords, jobs[1].coords);
        assert_ne!(jobs[0].arch, jobs[1].arch);
        assert_eq!(jobs[18].workload, Workload::Gemv);
    }

    #[test]
    fn profile_cache_shares_analyses_across_arch_configs() {
        let plan = CollectionPlan {
            workloads: vec![Workload::Atax],
            arch_configs: arch_neighborhood().into_iter().take(3).collect(),
            scale: Scale::tiny(),
            dedup: true,
        };
        let jobs = plan_jobs(&plan);
        assert_eq!(jobs.len(), 27);
        let cache = ProfileCache::for_jobs(&jobs);
        // 9 distinct points, not 27: three arch configs share each
        // analysis.
        assert_eq!(cache.len(), 9);
        let first = cache.profiled(&jobs[0]) as *const ProfiledPoint;
        let second = cache.profiled(&jobs[1]) as *const ProfiledPoint;
        assert_eq!(first, second, "same point must share one analysis");
    }

    #[test]
    fn trace_policy_parses_like_documented() {
        assert_eq!(TracePolicy::from_spec(""), TracePolicy::Encoded);
        assert_eq!(TracePolicy::from_spec("  "), TracePolicy::Encoded);
        assert_eq!(TracePolicy::from_spec("encoded"), TracePolicy::Encoded);
        assert_eq!(TracePolicy::from_spec("Encoded"), TracePolicy::Encoded);
        assert_eq!(
            TracePolicy::from_spec(" regenerate "),
            TracePolicy::Regenerate
        );
        assert_eq!(TracePolicy::from_spec("mystery"), TracePolicy::Encoded);
        assert_eq!(TracePolicy::default(), TracePolicy::Encoded);
    }

    #[test]
    fn trace_policies_produce_identical_rows() {
        // The residency policy trades memory for compute only: the labeled
        // rows must be bit-identical whether the simulator decodes the
        // cached compact trace or re-generates the kernel from scratch.
        let plan = CollectionPlan {
            workloads: vec![Workload::Atax],
            arch_configs: arch_neighborhood().into_iter().take(2).collect(),
            scale: Scale::tiny(),
            dedup: true,
        };
        let jobs = plan_jobs(&plan);
        let run_with = |policy| {
            let cache = ProfileCache::with_policy(&jobs, policy);
            jobs.iter()
                .map(|j| execute_job(j, &cache, None, 0).expect("clean job").0)
                .collect::<Vec<_>>()
        };
        let encoded = run_with(TracePolicy::Encoded);
        let regenerated = run_with(TracePolicy::Regenerate);
        assert_eq!(encoded, regenerated);
    }

    #[test]
    fn encoded_policy_keeps_traces_at_least_4x_smaller() {
        let plan = CollectionPlan {
            workloads: vec![Workload::Atax],
            arch_configs: arch_neighborhood().into_iter().take(1).collect(),
            scale: Scale::tiny(),
            dedup: true,
        };
        let jobs = plan_jobs(&plan);
        let cache = ProfileCache::with_policy(&jobs, TracePolicy::Encoded);
        for job in &jobs {
            let point = cache.profiled(job);
            let ResidentTrace::Encoded(enc) = &point.trace else {
                panic!("encoded policy must cache an encoded trace");
            };
            assert!(
                enc.encoded_bytes() * 4 <= enc.materialized_bytes(),
                "{}: {} encoded vs {} materialized bytes",
                job.describe(),
                enc.encoded_bytes(),
                enc.materialized_bytes()
            );
        }
        // The regenerate policy holds no trace at all.
        let cache = ProfileCache::with_policy(&jobs, TracePolicy::Regenerate);
        assert!(matches!(
            cache.profiled(&jobs[0]).trace,
            ResidentTrace::Regenerate
        ));
    }

    /// The headline guarantee: a threaded campaign's output is exactly the
    /// serial campaign's output — rows, ordering, features and labels —
    /// for a 2-workload × 3-architecture batch.
    #[test]
    fn threaded_campaign_output_is_identical_to_serial() {
        let plan = CollectionPlan {
            workloads: vec![Workload::Atax, Workload::Gemv],
            arch_configs: arch_neighborhood().into_iter().take(3).collect(),
            scale: Scale::tiny(),
            dedup: true,
        };
        let serial = collect_with(&plan, &Serial);
        let threaded = collect_with(&plan, &Threaded::new(3));
        assert_eq!(serial.feature_names, threaded.feature_names);
        assert_eq!(
            serial.runs, threaded.runs,
            "parallel campaign must be bit-identical to serial"
        );
        // Timing stats are wall-clock measurements, not part of the
        // determinism guarantee — but both must have done real work.
        assert!(serial.stats.simulate_seconds > 0.0);
        assert!(threaded.stats.simulate_seconds > 0.0);
    }
}
