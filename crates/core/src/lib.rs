//! NAPEL — the DAC 2019 framework, end to end.
//!
//! This crate wires the substrates together into the paper's pipeline
//! (Figure 1):
//!
//! 1. **Kernel analysis** (①/④): run the instrumented kernel
//!    ([`napel_workloads`]) and extract the hardware-independent profile
//!    ([`napel_pisa`]).
//! 2. **Microarchitectural simulation** (②): execute the CCD-selected
//!    input configurations ([`napel_doe`]) on the NMC simulator
//!    ([`nmc_sim`]) to label the training set — [`collect`].
//! 3. **Ensemble-model training** (③): random-forest models for IPC and
//!    energy-per-instruction with cross-validated hyper-parameter tuning —
//!    [`model::Napel`].
//! 4. **Prediction** (⑤): estimate IPC/energy of *previously-unseen*
//!    applications on an architecture configuration —
//!    [`model::TrainedNapel::predict`].
//!
//! On top of the pipeline, [`analysis`] implements the paper's
//! leave-one-application-out accuracy protocol (Figure 5) and the EDP-based
//! NMC-suitability use case (Figures 6–7), and [`experiments`] packages
//! every table and figure of the evaluation as a reproducible driver.
//!
//! Simulation batches — phase-② collection and the leave-one-out folds
//! built on it — run through the [`campaign`] engine, which can spread
//! jobs across scoped worker threads (`NAPEL_JOBS=auto` or a count)
//! while keeping the output bit-identical to a serial run. The engine is
//! a supervised, fault-tolerant runtime: job panics and invalid labels
//! are caught with full provenance, optionally quarantined instead of
//! aborting the campaign ([`fault`]), and an append-only checkpoint
//! journal ([`checkpoint`], `NAPEL_CHECKPOINT`) lets a killed campaign
//! resume, recomputing only unfinished jobs.
//!
//! Trained models persist across processes: [`TrainedNapel`] saves to a
//! versioned, schema-checked `.napel` artifact bundle ([`artifact`]) and
//! loads back bit-identically, so the expensive train+tune phase runs
//! once and every later evaluation or prediction reuses the artifact
//! (`--model-out` / `--model-in` on the bench drivers).
//!
//! # Example
//!
//! ```no_run
//! use napel_core::collect::{collect, CollectionPlan};
//! use napel_core::model::{Napel, NapelConfig};
//! use napel_pisa::ApplicationProfile;
//! use napel_workloads::{Scale, Workload};
//! use nmc_sim::ArchConfig;
//!
//! // Train on eleven applications...
//! let plan = CollectionPlan {
//!     workloads: Workload::ALL.iter().copied().filter(|w| *w != Workload::Atax).collect(),
//!     ..CollectionPlan::default()
//! };
//! let set = collect(&plan);
//! let trained = Napel::new(NapelConfig::default()).train(&set)?;
//!
//! // ...and predict the twelfth, never seen during training.
//! let trace = Workload::Atax.generate_test(plan.scale);
//! let profile = ApplicationProfile::of(&trace);
//! let pred = trained.predict(&profile, &ArchConfig::paper_default());
//! println!("predicted IPC = {:.3}", pred.ipc);
//! # Ok::<(), napel_core::NapelError>(())
//! ```

pub mod analysis;
pub mod artifact;
pub mod campaign;
pub mod checkpoint;
pub mod collect;
mod error;
pub mod experiments;
pub mod fault;
pub mod features;
pub mod model;

pub use artifact::{ModelArtifact, ModelIo, Provenance, TargetKind};
pub use error::NapelError;
pub use model::TrainedNapel;
