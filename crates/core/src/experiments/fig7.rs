//! Figure 7 — estimated EDP reduction of NMC offloading vs the host.
//!
//! For each application's test input we show NAPEL's predicted EDP
//! reduction next to the simulator's ("Actual"). Paper shapes to
//! reproduce: NAPEL and the simulator agree on which workloads are
//! NMC-suitable; memory-intensive irregular kernels win on NMC while
//! locality-rich dense kernels stay on the host; the EDP-estimate MRE sits
//! in the ~1–26 % band.

use napel_workloads::Workload;
use nmc_sim::ArchConfig;

use crate::analysis::{nmc_suitability_io, SuitabilityRow};
use crate::artifact::ModelIo;
use crate::campaign::{AnyExecutor, Executor};
use crate::model::NapelConfig;
use crate::NapelError;

/// Figure 7 result: suitability rows plus aggregate agreement stats.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig7Result {
    /// Per-application rows.
    pub rows: Vec<SuitabilityRow>,
}

impl Fig7Result {
    /// Applications where prediction and simulation agree on suitability.
    pub fn agreements(&self) -> usize {
        self.rows.iter().filter(|r| r.suitability_agrees()).count()
    }

    /// Mean relative error of the EDP estimate.
    pub fn average_edp_mre(&self) -> f64 {
        let n = self.rows.len().max(1) as f64;
        self.rows.iter().map(SuitabilityRow::edp_mre).sum::<f64>() / n
    }

    /// Workloads the simulator deems NMC-suitable (EDP reduction > 1).
    pub fn suitable(&self) -> Vec<Workload> {
        self.rows
            .iter()
            .filter(|r| r.edp_reduction_actual() > 1.0)
            .map(|r| r.workload)
            .collect()
    }
}

/// Runs the use case over the context's applications.
///
/// # Errors
///
/// Propagates training failures.
pub fn run(ctx: &super::Context, config: &NapelConfig) -> Result<Fig7Result, NapelError> {
    run_with(ctx, config, &AnyExecutor::from_env())
}

/// [`run`] with an explicit campaign executor for the per-application
/// suitability jobs.
///
/// # Errors
///
/// Propagates training failures.
pub fn run_with<E: Executor>(
    ctx: &super::Context,
    config: &NapelConfig,
    exec: &E,
) -> Result<Fig7Result, NapelError> {
    run_with_io(ctx, config, &ModelIo::none(), exec)
}

/// [`run_with`] threaded through an artifact policy: each held-out
/// application's model is saved as (or loaded from)
/// `<dir>/fig7-<workload>.napel`; with a load directory the figure's
/// predicted columns come from stored models, bit-identical to the
/// direct path.
///
/// # Errors
///
/// Propagates training failures; [`crate::NapelError::Artifact`] on
/// save/load failures or schema mismatches.
pub fn run_with_io<E: Executor>(
    ctx: &super::Context,
    config: &NapelConfig,
    io: &ModelIo,
    exec: &E,
) -> Result<Fig7Result, NapelError> {
    let rows = nmc_suitability_io(
        &ctx.training,
        config,
        &ArchConfig::paper_default(),
        ctx.scale,
        io,
        "fig7",
        exec,
    )?;
    Ok(Fig7Result { rows })
}

/// Renders the figure as a table.
pub fn render(result: &Fig7Result) -> String {
    let body: Vec<Vec<String>> = result
        .rows
        .iter()
        .map(|r| {
            vec![
                r.workload.name().to_string(),
                format!("{:.2}x", r.edp_reduction_predicted()),
                format!("{:.2}x", r.edp_reduction_actual()),
                format!("{:.1}%", r.edp_mre() * 100.0),
                if r.edp_reduction_actual() > 1.0 {
                    "NMC"
                } else {
                    "host"
                }
                .to_string(),
                if r.suitability_agrees() { "yes" } else { "NO" }.to_string(),
            ]
        })
        .collect();
    let mut s = super::render_table(
        &[
            "Name",
            "NAPEL EDP red.",
            "Actual EDP red.",
            "EDP MRE",
            "winner",
            "agree",
        ],
        &body,
    );
    s.push_str(&format!(
        "suitability agreement {}/{}; average EDP MRE {:.1}%\n",
        result.agreements(),
        result.rows.len(),
        result.average_edp_mre() * 100.0
    ));
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use napel_workloads::Scale;

    #[test]
    fn result_aggregates_work() {
        let ctx = super::super::Context::build_subset(
            vec![Workload::Atax, Workload::Gemv, Workload::Bfs],
            Scale::tiny(),
            4,
        );
        let result = run(&ctx, &NapelConfig::untuned()).unwrap();
        assert_eq!(result.rows.len(), 3);
        assert!(result.agreements() <= 3);
        assert!(result.average_edp_mre().is_finite());
        let s = render(&result);
        assert!(s.contains("suitability agreement"));
    }
}
