//! Table 3 — system parameters and configuration.

use napel_hostmodel::HostConfig;
use napel_workloads::Scale;
use nmc_sim::ArchConfig;

/// Renders Table 3: the host system and the NMC system, as configured in
/// this reproduction (capacity scaling noted when active).
pub fn render(scale: Scale) -> String {
    let nmc = ArchConfig::paper_default();
    let host = HostConfig::power9_scaled(scale);
    let mut s = String::new();
    s.push_str("Host CPU System\n");
    s.push_str(&format!(
        "  Configuration   POWER9-class model @{} GHz, {} cores ({}-way SMT),\n",
        host.freq_ghz, host.cores, host.smt
    ));
    s.push_str(&format!(
        "                  {} L1, {} L2, {} L3 per core, {:.0} GB/s DRAM\n",
        fmt_bytes(host.l1_bytes),
        fmt_bytes(host.l2_bytes),
        fmt_bytes(host.l3_bytes),
        host.mem_bandwidth / 1e9
    ));
    if scale.data_div > 1 {
        s.push_str(&format!(
            "                  (capacities scaled 1/{} to match workload scale)\n",
            scale.data_div
        ));
    }
    s.push_str("NMC System\n");
    s.push_str(&format!(
        "  Cores           {}x single issue, in-order execution @ {} GHz\n",
        nmc.num_pes, nmc.freq_ghz
    ));
    s.push_str(&format!(
        "  L1-I/D          {}-way, cache size = {} cache lines, {}B per cache line\n",
        nmc.cache_assoc, nmc.cache_lines, nmc.cache_line_bytes
    ));
    s.push_str(&format!(
        "  DRAM Module     {} vaults, {} stacked-layers, {}B row buffer; {} total size; {}-row policy\n",
        nmc.vaults,
        nmc.dram_layers,
        nmc.row_buffer_bytes,
        fmt_bytes(nmc.dram_size_bytes),
        match nmc.row_policy {
            nmc_sim::RowPolicy::Closed => "closed",
            nmc_sim::RowPolicy::Open => "open",
        }
    ));
    s
}

fn fmt_bytes(b: u64) -> String {
    if b >= 1 << 30 {
        format!("{}GiB", b >> 30)
    } else if b >= 1 << 20 {
        format!("{}MiB", b >> 20)
    } else if b >= 1 << 10 {
        format!("{}KiB", b >> 10)
    } else {
        format!("{b}B")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_scale_matches_paper_numbers() {
        let s = render(Scale::unit());
        assert!(s.contains("32x single issue, in-order execution @ 1.25 GHz"));
        assert!(s.contains("32 vaults, 8 stacked-layers, 256B row buffer; 4GiB"));
        assert!(s.contains("closed-row policy"));
        assert!(s.contains("16 cores (4-way SMT)"));
        assert!(s.contains("32KiB L1"));
        assert!(!s.contains("capacities scaled"));
    }

    #[test]
    fn scaled_render_notes_the_scaling() {
        let s = render(Scale::laptop());
        assert!(s.contains("capacities scaled 1/256"));
    }

    #[test]
    fn byte_formatting() {
        assert_eq!(fmt_bytes(4 << 30), "4GiB");
        assert_eq!(fmt_bytes(10 << 20), "10MiB");
        assert_eq!(fmt_bytes(32 << 10), "32KiB");
        assert_eq!(fmt_bytes(128), "128B");
    }
}
