//! Figure 5 — prediction accuracy: NAPEL vs ANN vs linear decision tree.
//!
//! Leave-one-application-out MRE for performance (a) and energy (b), for
//! three estimators:
//!
//! - **NAPEL**: the random forest (with the default tuning grid's winning
//!   configuration),
//! - **ANN**: an MLP after Ipek et al.,
//! - **DT**: a linear-leaf decision tree after Guo et al.
//!
//! Paper shapes to reproduce: NAPEL average MRE ≈ 8.5 % (perf) / 11.6 %
//! (energy); NAPEL beats the ANN by ~1.7×/1.4× and the decision tree by
//! ~3.2×/3.5×; bfs/bp/kme are the hardest applications.

use napel_ml::forest::RandomForestParams;
use napel_ml::log_space::LogOf;
use napel_ml::mlp::MlpParams;
use napel_ml::model_tree::ModelTreeParams;
use napel_ml::tree::{DecisionTreeParams, FeatureSubset};
use napel_workloads::Workload;

use crate::analysis::{average_mre, loao_accuracy_io, LoaoResult};
use crate::artifact::ModelIo;
use crate::campaign::{AnyExecutor, Executor};
use crate::NapelError;

/// Per-workload MREs for the three estimators.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig5Row {
    /// Application.
    pub workload: Workload,
    /// NAPEL (random forest) performance/energy MRE.
    pub napel: (f64, f64),
    /// ANN performance/energy MRE.
    pub ann: (f64, f64),
    /// Linear decision tree performance/energy MRE.
    pub dtree: (f64, f64),
}

/// Full Figure 5 result.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig5Result {
    /// Per-application rows.
    pub rows: Vec<Fig5Row>,
    /// Average (perf, energy) MRE per estimator: NAPEL, ANN, DT.
    pub averages: [(f64, f64); 3],
}

impl Fig5Result {
    /// NAPEL's accuracy advantage over the ANN (perf, energy), as the
    /// paper's "1.7× (1.4×) more accurate".
    pub fn advantage_over_ann(&self) -> (f64, f64) {
        (
            self.averages[1].0 / self.averages[0].0,
            self.averages[1].1 / self.averages[0].1,
        )
    }

    /// NAPEL's accuracy advantage over the decision tree.
    pub fn advantage_over_dtree(&self) -> (f64, f64) {
        (
            self.averages[2].0 / self.averages[0].0,
            self.averages[2].1 / self.averages[0].1,
        )
    }
}

/// The forest configuration used as "NAPEL" in this comparison.
pub fn napel_estimator() -> RandomForestParams {
    RandomForestParams {
        num_trees: 120,
        tree: DecisionTreeParams {
            max_depth: 16,
            feature_subset: FeatureSubset::Third,
            ..DecisionTreeParams::default()
        },
        bootstrap: true,
    }
}

/// The Ipek-style ANN baseline.
pub fn ann_estimator() -> MlpParams {
    MlpParams {
        hidden: vec![16, 16],
        epochs: 250,
        ..MlpParams::default()
    }
}

/// The Guo-style linear decision tree baseline.
pub fn dtree_estimator() -> ModelTreeParams {
    ModelTreeParams::default()
}

/// Runs the Figure 5 comparison.
///
/// # Errors
///
/// Propagates estimator failures.
pub fn run(ctx: &super::Context) -> Result<Fig5Result, NapelError> {
    run_with(ctx, &AnyExecutor::from_env())
}

/// [`run`] with an explicit campaign executor for the leave-one-out
/// folds.
///
/// # Errors
///
/// Propagates estimator failures.
pub fn run_with<E: Executor>(ctx: &super::Context, exec: &E) -> Result<Fig5Result, NapelError> {
    run_with_io(ctx, &ModelIo::none(), exec)
}

/// [`run_with`] threaded through an artifact policy: each estimator's
/// leave-one-out fold models are saved as (or loaded from)
/// `<dir>/fig5-{napel,ann,dtree}-<workload>.napel` — every family of the
/// comparison round-trips through the same persistence layer.
///
/// # Errors
///
/// Propagates estimator failures; [`crate::NapelError::Artifact`] on
/// save/load failures or schema mismatches.
pub fn run_with_io<E: Executor>(
    ctx: &super::Context,
    io: &ModelIo,
    exec: &E,
) -> Result<Fig5Result, NapelError> {
    // All three estimators fit in log-space (see `napel_ml::log_space`) so
    // the comparison stays apples-to-apples.
    let set = &ctx.training;
    let rf = loao_accuracy_io(
        &LogOf(napel_estimator()),
        set,
        ctx.seed,
        io,
        "fig5-napel",
        exec,
    )?;
    let ann = loao_accuracy_io(&LogOf(ann_estimator()), set, ctx.seed, io, "fig5-ann", exec)?;
    let dt = loao_accuracy_io(
        &LogOf(dtree_estimator()),
        set,
        ctx.seed,
        io,
        "fig5-dtree",
        exec,
    )?;

    let find = |rs: &[LoaoResult], w: Workload| -> (f64, f64) {
        rs.iter()
            .find(|r| r.workload == w)
            .map(|r| (r.perf_mre, r.energy_mre))
            .expect("all estimators cover the same workloads")
    };
    let rows = rf
        .iter()
        .map(|r| Fig5Row {
            workload: r.workload,
            napel: (r.perf_mre, r.energy_mre),
            ann: find(&ann, r.workload),
            dtree: find(&dt, r.workload),
        })
        .collect();
    Ok(Fig5Result {
        rows,
        averages: [average_mre(&rf), average_mre(&ann), average_mre(&dt)],
    })
}

/// Renders the two panels of Figure 5 as one table.
pub fn render(result: &Fig5Result) -> String {
    let body: Vec<Vec<String>> = result
        .rows
        .iter()
        .map(|r| {
            vec![
                r.workload.name().to_string(),
                pct(r.napel.0),
                pct(r.ann.0),
                pct(r.dtree.0),
                pct(r.napel.1),
                pct(r.ann.1),
                pct(r.dtree.1),
            ]
        })
        .collect();
    let mut s = super::render_table(
        &[
            "Name",
            "perf NAPEL",
            "perf ANN",
            "perf DT",
            "energy NAPEL",
            "energy ANN",
            "energy DT",
        ],
        &body,
    );
    let [n, a, d] = result.averages;
    s.push_str(&format!(
        "averages: NAPEL {}/{}  ANN {}/{}  DT {}/{}  (perf/energy MRE)\n",
        pct(n.0),
        pct(n.1),
        pct(a.0),
        pct(a.1),
        pct(d.0),
        pct(d.1)
    ));
    let (pa, ea) = result.advantage_over_ann();
    let (pd, ed) = result.advantage_over_dtree();
    s.push_str(&format!(
        "NAPEL is {pa:.1}x ({ea:.1}x) more accurate than the ANN and {pd:.1}x ({ed:.1}x) than the decision tree in perf (energy)\n",
    ));
    s
}

fn pct(v: f64) -> String {
    format!("{:.1}%", v * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use napel_workloads::Scale;

    #[test]
    fn three_estimators_compared_per_workload() {
        let ctx = super::super::Context::build_subset(
            vec![Workload::Atax, Workload::Gemv, Workload::Syrk],
            Scale::tiny(),
            3,
        );
        let result = run(&ctx).unwrap();
        assert_eq!(result.rows.len(), 3);
        for r in &result.rows {
            for (p, e) in [r.napel, r.ann, r.dtree] {
                assert!(p.is_finite() && p >= 0.0);
                assert!(e.is_finite() && e >= 0.0);
            }
        }
        let s = render(&result);
        assert!(s.contains("averages: NAPEL"));
        assert!(s.contains("more accurate"));
    }
}
