//! Figure 4 — NAPEL's prediction speedup over the simulator.
//!
//! The paper reports the speedup of NAPEL prediction over Ramulator
//! simulation "for 256 DoE configurations": the design-space-exploration
//! scenario where one kernel analysis is amortized over many architecture
//! configurations, each of which the simulator would have to run in full.
//! Speedup for an application is therefore
//!
//! ```text
//!            N · t_simulate
//! ----------------------------------
//!  t_analysis + N · t_predict
//! ```
//!
//! with `N` architecture configurations drawn Latin-hypercube style from
//! the architectural parameter space of Table 1.

use std::time::Instant;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use napel_pisa::ApplicationProfile;
use napel_workloads::Workload;
use nmc_sim::{ArchConfig, NmcSystem, RowPolicy};

use crate::artifact::ModelIo;
use crate::campaign::{AnyExecutor, Executor};
use crate::model::{Napel, NapelConfig};
use crate::NapelError;

/// One bar of Figure 4.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig4Row {
    /// Application.
    pub workload: Workload,
    /// Configurations explored.
    pub num_configs: usize,
    /// Seconds to simulate all configurations.
    pub simulate_seconds: f64,
    /// Seconds for one kernel analysis plus all predictions.
    pub predict_seconds: f64,
}

impl Fig4Row {
    /// The speedup (the bar height of Figure 4).
    pub fn speedup(&self) -> f64 {
        self.simulate_seconds / self.predict_seconds.max(1e-12)
    }
}

/// Samples `n` architecture configurations across the Table 1 NMC feature
/// ranges.
pub fn sample_arch_configs(n: usize, seed: u64) -> Vec<ArchConfig> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let base = ArchConfig::paper_default();
            ArchConfig {
                num_pes: *[8usize, 16, 32, 64]
                    .get(rng.gen_range(0..4))
                    .expect("in range"),
                issue_width: [1usize, 1, 2][rng.gen_range(0..3)],
                freq_ghz: [0.8, 1.0, 1.25, 1.6, 2.0][rng.gen_range(0..5)],
                cache_lines: [2usize, 4, 8, 16, 32][rng.gen_range(0..5)],
                cache_assoc: [1usize, 2, 4][rng.gen_range(0..3)],
                vaults: [8usize, 16, 32][rng.gen_range(0..3)],
                dram_layers: [4usize, 8][rng.gen_range(0..2)],
                row_policy: if rng.gen_bool(0.5) {
                    RowPolicy::Closed
                } else {
                    RowPolicy::Open
                },
                ..base
            }
        })
        .collect()
}

/// Runs the Figure 4 measurement for every workload in the context.
///
/// # Errors
///
/// Propagates training failures.
pub fn run(
    ctx: &super::Context,
    config: &NapelConfig,
    num_configs: usize,
) -> Result<Vec<Fig4Row>, NapelError> {
    run_with(ctx, config, num_configs, &AnyExecutor::from_env())
}

/// [`run`] with an explicit campaign executor.
///
/// The twelve leave-one-out trainings form one job batch; the timed
/// simulate/predict sections stay serial so each row's wall-clock numbers
/// are not distorted by concurrent load.
///
/// # Errors
///
/// Propagates training failures.
pub fn run_with<E: Executor>(
    ctx: &super::Context,
    config: &NapelConfig,
    num_configs: usize,
    exec: &E,
) -> Result<Vec<Fig4Row>, NapelError> {
    run_with_io(ctx, config, num_configs, &ModelIo::none(), exec)
}

/// [`run_with`] threaded through an artifact policy: each leave-one-out
/// model is saved as (or loaded from) `<dir>/fig4-<workload>.napel`. With
/// a load directory, the training batch disappears entirely — the figure
/// is regenerated from stored models, whose predictions are bit-identical
/// to the direct path's.
///
/// # Errors
///
/// Propagates training failures; [`crate::NapelError::Artifact`] on
/// save/load failures or schema mismatches.
pub fn run_with_io<E: Executor>(
    ctx: &super::Context,
    config: &NapelConfig,
    num_configs: usize,
    io: &ModelIo,
    exec: &E,
) -> Result<Vec<Fig4Row>, NapelError> {
    let archs = sample_arch_configs(num_configs, ctx.seed);
    let workloads = ctx.training.workloads();
    let trained_models = exec.map(&workloads, |_, &w| {
        // NAPEL trained without the application under prediction.
        io.train_or_load(&format!("fig4-{}", w.name()), || {
            Napel::new(config.clone()).train(&ctx.training.filtered(|x| x != w))
        })
    });
    let mut rows = Vec::new();
    for (&w, trained) in workloads.iter().zip(trained_models) {
        let trained = trained?;

        // The configuration whose design space we explore: the central one.
        let params = w.spec().central_values();
        let trace = w.generate(&params, ctx.scale);

        // Simulator side: one full simulation per architecture.
        let t0 = Instant::now();
        for arch in &archs {
            let _ = NmcSystem::new(arch.clone()).run(&trace);
        }
        let simulate_seconds = t0.elapsed().as_secs_f64();

        // NAPEL side: one kernel analysis, then one inference per arch.
        let t1 = Instant::now();
        let profile = ApplicationProfile::of(&trace);
        for arch in &archs {
            let _ = trained.predict(&profile, arch);
        }
        let predict_seconds = t1.elapsed().as_secs_f64();

        rows.push(Fig4Row {
            workload: w,
            num_configs,
            simulate_seconds,
            predict_seconds,
        });
    }
    Ok(rows)
}

/// Renders the rows sorted by increasing speedup, as in the figure.
pub fn render(rows: &[Fig4Row]) -> String {
    let mut sorted: Vec<&Fig4Row> = rows.iter().collect();
    sorted.sort_by(|a, b| a.speedup().total_cmp(&b.speedup()));
    let body: Vec<Vec<String>> = sorted
        .iter()
        .map(|r| {
            vec![
                r.workload.name().to_string(),
                format!("{:.1}x", r.speedup()),
                format!("{:.2}", r.simulate_seconds),
                format!("{:.3}", r.predict_seconds),
            ]
        })
        .collect();
    let mut s = super::render_table(
        &["Name", "Speedup", "Simulate (s)", "Analyze+Predict (s)"],
        &body,
    );
    let n = rows.len().max(1) as f64;
    let avg: f64 = rows.iter().map(Fig4Row::speedup).sum::<f64>() / n;
    let min = rows
        .iter()
        .map(Fig4Row::speedup)
        .fold(f64::INFINITY, f64::min);
    let max = rows.iter().map(Fig4Row::speedup).fold(0.0, f64::max);
    s.push_str(&format!(
        "average speedup {avg:.0}x (min {min:.0}x, max {max:.0}x) over {} configurations\n",
        rows.first().map(|r| r.num_configs).unwrap_or(0)
    ));
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use napel_workloads::Scale;

    #[test]
    fn sampled_archs_are_valid_and_diverse() {
        let archs = sample_arch_configs(32, 9);
        assert_eq!(archs.len(), 32);
        for a in &archs {
            a.validate();
        }
        let distinct_pes: std::collections::HashSet<usize> =
            archs.iter().map(|a| a.num_pes).collect();
        assert!(distinct_pes.len() > 1, "sweep must vary the architecture");
    }

    #[test]
    fn speedup_exceeds_one_even_at_tiny_scale() {
        let ctx = super::super::Context::build_subset(
            vec![Workload::Atax, Workload::Gemv],
            Scale::tiny(),
            2,
        );
        let rows = run(&ctx, &NapelConfig::untuned(), 8).unwrap();
        assert_eq!(rows.len(), 2);
        for r in &rows {
            // Amortized analysis + cheap inference must beat 8 simulations.
            assert!(r.speedup() > 1.0, "{}: speedup {}", r.workload, r.speedup());
        }
        let s = render(&rows);
        assert!(s.contains("average speedup"));
    }
}
