//! Ablations of NAPEL's design choices (this reproduction's additions).
//!
//! Questions the paper's design raises but does not quantify:
//!
//! 1. **Does CCD beat the other samplers?** Train on CCD points vs Latin
//!    hypercube, uniform random, and D-optimal points of the *same budget*
//!    and compare leave-one-application-out MRE ([`sampler_ablation`]).
//! 2. **How many trees are enough?** Forest-size sweep
//!    ([`forest_size_sweep`]).
//! 3. **Does feature screening matter?** Full ~370-feature input vs the
//!    top-k features by permutation importance ([`screening_ablation`]).
//! 4. **Would a scratchpad help atax?** The paper's Section 3.4 closes by
//!    suggesting that "the introduction of a small cache or scratchpad
//!    memory in the NMC compute units (larger than the 128B L1) can be
//!    beneficial" for atax-like workloads — [`cache_size_sweep`] runs that
//!    what-if on the simulator.
//! 5. **Closed- vs open-row DRAM policy** across the workloads
//!    ([`row_policy_study`]).

use rand::rngs::StdRng;
use rand::SeedableRng;

use napel_doe::samplers::{d_optimal, latin_hypercube, random_design};
use napel_ml::forest::RandomForestParams;
use napel_ml::tree::{DecisionTreeParams, FeatureSubset};
use napel_ml::Estimator;
use napel_pisa::ApplicationProfile;
use napel_workloads::{Scale, Workload};
use nmc_sim::{ArchConfig, NmcSystem};

use crate::analysis::{average_mre, loao_accuracy_io};
use crate::artifact::ModelIo;
use crate::campaign::{AnyExecutor, Executor};
use crate::collect::{doe_points, param_space};
use crate::features::{combined_feature_names, LabeledRun, TrainingSet};
use crate::NapelError;

/// Training-point sampling strategies under comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sampler {
    /// Central composite design (the paper's choice).
    Ccd,
    /// Latin hypercube with the same point budget (Li et al. in Table 5).
    LatinHypercube,
    /// Uniform random with the same point budget.
    Random,
    /// D-optimal design via Fedorov exchange (Joseph et al. / Mariani et
    /// al. in Table 5).
    DOptimal,
}

impl Sampler {
    /// All strategies.
    pub const ALL: [Sampler; 4] = [
        Sampler::Ccd,
        Sampler::LatinHypercube,
        Sampler::Random,
        Sampler::DOptimal,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Sampler::Ccd => "ccd",
            Sampler::LatinHypercube => "lhs",
            Sampler::Random => "random",
            Sampler::DOptimal => "d-optimal",
        }
    }
}

/// Collects a training set using the given sampler at the CCD's budget.
pub fn collect_with_sampler(
    workloads: &[Workload],
    sampler: Sampler,
    scale: Scale,
    seed: u64,
) -> TrainingSet {
    let arch = ArchConfig::paper_default();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut runs = Vec::new();
    for &w in workloads {
        let spec = w.spec();
        let space = param_space(&spec);
        let ccd = doe_points(&spec, true);
        let points = match sampler {
            Sampler::Ccd => ccd,
            Sampler::LatinHypercube => latin_hypercube(&space, ccd.len(), &mut rng),
            Sampler::Random => random_design(&space, ccd.len(), &mut rng),
            Sampler::DOptimal => d_optimal(&space, ccd.len(), &mut rng),
        };
        for p in points {
            let trace = w.generate(p.coords(), scale);
            let profile = ApplicationProfile::of(&trace);
            let report = NmcSystem::new(arch.clone()).run(&trace);
            runs.push(LabeledRun::from_report(
                w,
                p.coords().to_vec(),
                &profile,
                &arch,
                &report,
            ));
        }
    }
    TrainingSet {
        feature_names: combined_feature_names(),
        runs,
        stats: Default::default(),
    }
}

/// Result of the sampler ablation: average (perf, energy) LOAO MRE per
/// strategy.
#[derive(Debug, Clone, PartialEq)]
pub struct SamplerAblation {
    /// `(sampler, perf MRE, energy MRE)` rows.
    pub rows: Vec<(Sampler, f64, f64)>,
}

/// Runs the sampler ablation.
///
/// # Errors
///
/// Propagates estimator failures.
pub fn sampler_ablation(
    workloads: &[Workload],
    scale: Scale,
    seed: u64,
) -> Result<SamplerAblation, NapelError> {
    sampler_ablation_with(workloads, scale, seed, &AnyExecutor::from_env())
}

/// [`sampler_ablation`] with an explicit campaign executor. The sampler
/// loop stays serial (each strategy draws a fresh seeded RNG stream);
/// the leave-one-out folds inside each strategy run as a job batch.
///
/// # Errors
///
/// Propagates estimator failures.
pub fn sampler_ablation_with<E: Executor>(
    workloads: &[Workload],
    scale: Scale,
    seed: u64,
    exec: &E,
) -> Result<SamplerAblation, NapelError> {
    sampler_ablation_io(workloads, scale, seed, &ModelIo::none(), exec)
}

/// [`sampler_ablation_with`] threaded through an artifact policy: each
/// strategy's fold models are saved as (or loaded from)
/// `<dir>/ablation-sampler-<strategy>-<workload>.napel`.
///
/// # Errors
///
/// Propagates estimator failures; [`crate::NapelError::Artifact`] on
/// save/load failures or schema mismatches.
pub fn sampler_ablation_io<E: Executor>(
    workloads: &[Workload],
    scale: Scale,
    seed: u64,
    io: &ModelIo,
    exec: &E,
) -> Result<SamplerAblation, NapelError> {
    let est = super::fig5::napel_estimator();
    let mut rows = Vec::new();
    for sampler in Sampler::ALL {
        let set = collect_with_sampler(workloads, sampler, scale, seed);
        let prefix = format!("ablation-sampler-{}", sampler.name());
        let results = loao_accuracy_io(&est, &set, seed, io, &prefix, exec)?;
        let (p, e) = average_mre(&results);
        rows.push((sampler, p, e));
    }
    Ok(SamplerAblation { rows })
}

/// Result of the forest-size sweep: `(num_trees, perf MRE)` points.
#[derive(Debug, Clone, PartialEq)]
pub struct ForestSweep {
    /// Sweep points.
    pub points: Vec<(usize, f64)>,
}

/// Sweeps the number of trees on an existing training set.
///
/// # Errors
///
/// Propagates estimator failures.
pub fn forest_size_sweep(
    set: &TrainingSet,
    sizes: &[usize],
    seed: u64,
) -> Result<ForestSweep, NapelError> {
    forest_size_sweep_with(set, sizes, seed, &AnyExecutor::from_env())
}

/// [`forest_size_sweep`] with an explicit campaign executor for the
/// leave-one-out folds.
///
/// # Errors
///
/// Propagates estimator failures.
pub fn forest_size_sweep_with<E: Executor>(
    set: &TrainingSet,
    sizes: &[usize],
    seed: u64,
    exec: &E,
) -> Result<ForestSweep, NapelError> {
    forest_size_sweep_io(set, sizes, seed, &ModelIo::none(), exec)
}

/// [`forest_size_sweep_with`] threaded through an artifact policy: each
/// sweep point's fold models are saved as (or loaded from)
/// `<dir>/ablation-forest-<n>-<workload>.napel`.
///
/// # Errors
///
/// Propagates estimator failures; [`crate::NapelError::Artifact`] on
/// save/load failures or schema mismatches.
pub fn forest_size_sweep_io<E: Executor>(
    set: &TrainingSet,
    sizes: &[usize],
    seed: u64,
    io: &ModelIo,
    exec: &E,
) -> Result<ForestSweep, NapelError> {
    let mut points = Vec::new();
    for &n in sizes {
        let est = RandomForestParams {
            num_trees: n,
            tree: DecisionTreeParams {
                feature_subset: FeatureSubset::Third,
                ..DecisionTreeParams::default()
            },
            bootstrap: true,
        };
        let prefix = format!("ablation-forest-{n}");
        let results = loao_accuracy_io(&est, set, seed, io, &prefix, exec)?;
        let (p, _) = average_mre(&results);
        points.push((n, p));
    }
    Ok(ForestSweep { points })
}

/// One point of the feature-screening ablation.
#[derive(Debug, Clone, PartialEq)]
pub struct ScreeningPoint {
    /// Number of features kept (`usize::MAX` = all).
    pub kept: usize,
    /// Average LOAO performance MRE with that feature subset.
    pub perf_mre: f64,
}

/// Feature-screening ablation: rank features by permutation importance of a
/// forest trained on everything, then retrain on the top-k only.
///
/// # Errors
///
/// Propagates estimator failures.
pub fn screening_ablation(
    set: &TrainingSet,
    keep_counts: &[usize],
    seed: u64,
) -> Result<Vec<ScreeningPoint>, NapelError> {
    screening_ablation_with(set, keep_counts, seed, &AnyExecutor::from_env())
}

/// [`screening_ablation`] with an explicit campaign executor for the
/// leave-one-out folds.
///
/// # Errors
///
/// Propagates estimator failures.
pub fn screening_ablation_with<E: Executor>(
    set: &TrainingSet,
    keep_counts: &[usize],
    seed: u64,
    exec: &E,
) -> Result<Vec<ScreeningPoint>, NapelError> {
    screening_ablation_io(set, keep_counts, seed, &ModelIo::none(), exec)
}

/// [`screening_ablation_with`] threaded through an artifact policy: fold
/// models are saved as (or loaded from)
/// `<dir>/ablation-screen-{all,<k>}-<workload>.napel`. Note that the
/// projected-feature artifacts carry the *projected* schema and validate
/// against it, not against the full combined schema.
///
/// # Errors
///
/// Propagates estimator failures; [`crate::NapelError::Artifact`] on
/// save/load failures or schema mismatches.
pub fn screening_ablation_io<E: Executor>(
    set: &TrainingSet,
    keep_counts: &[usize],
    seed: u64,
    io: &ModelIo,
    exec: &E,
) -> Result<Vec<ScreeningPoint>, NapelError> {
    let mut rng = StdRng::seed_from_u64(seed);
    let full = set.ipc_dataset()?;
    let est = super::fig5::napel_estimator();
    let probe = est.fit(&full, &mut rng)?;
    let importances = probe.permutation_importance(&full, &mut rng);
    let mut order: Vec<usize> = (0..importances.len()).collect();
    order.sort_by(|&a, &b| importances[b].total_cmp(&importances[a]));

    let mut out = Vec::new();
    // Baseline: all features.
    let all = loao_accuracy_io(&est, set, seed, io, "ablation-screen-all", exec)?;
    out.push(ScreeningPoint {
        kept: usize::MAX,
        perf_mre: average_mre(&all).0,
    });

    for &k in keep_counts {
        let keep: Vec<usize> = order.iter().copied().take(k).collect();
        // Project the training set onto the kept features.
        let names: Vec<String> = keep.iter().map(|&i| set.feature_names[i].clone()).collect();
        let mut projected = set.clone();
        projected.feature_names = names;
        for run in &mut projected.runs {
            run.features = keep.iter().map(|&i| run.features[i]).collect();
        }
        let prefix = format!("ablation-screen-{k}");
        let results = loao_accuracy_io(&est, &projected, seed, io, &prefix, exec)?;
        out.push(ScreeningPoint {
            kept: k,
            perf_mre: average_mre(&results).0,
        });
    }
    Ok(out)
}

/// One point of the cache/scratchpad what-if.
#[derive(Debug, Clone, PartialEq)]
pub struct CacheSweepPoint {
    /// L1 lines per PE.
    pub cache_lines: usize,
    /// Simulated EDP (J·s).
    pub edp: f64,
    /// Simulated IPC.
    pub ipc: f64,
}

/// Sweeps the NMC L1 size for one workload at its test input — the paper's
/// closing what-if for atax.
pub fn cache_size_sweep(workload: Workload, lines: &[usize], scale: Scale) -> Vec<CacheSweepPoint> {
    let trace = workload.generate_test(scale);
    lines
        .iter()
        .map(|&cache_lines| {
            let arch = ArchConfig {
                cache_lines,
                ..ArchConfig::paper_default()
            };
            let report = NmcSystem::new(arch).run(&trace);
            CacheSweepPoint {
                cache_lines,
                edp: report.edp(),
                ipc: report.ipc(),
            }
        })
        .collect()
}

/// One row of the offload-cost sensitivity study.
#[derive(Debug, Clone, PartialEq)]
pub struct OffloadRow {
    /// Application at its test input.
    pub workload: Workload,
    /// Simulated NMC EDP assuming memory-resident data (the paper's
    /// assumption).
    pub edp_resident: f64,
    /// NMC EDP when the kernel footprint must first cross the Table 3
    /// SerDes link from the host (and results return).
    pub edp_with_offload: f64,
}

impl OffloadRow {
    /// EDP inflation factor caused by the transfer.
    pub fn inflation(&self) -> f64 {
        self.edp_with_offload / self.edp_resident
    }
}

/// Quantifies how much the "data already lives in the stack" assumption is
/// worth: re-computes each workload's NMC EDP with a one-time transfer of
/// its read footprint to the memory and its written footprint back over
/// the Table 3 link.
pub fn offload_sensitivity(workloads: &[Workload], scale: Scale) -> Vec<OffloadRow> {
    use nmc_sim::LinkConfig;
    let link = LinkConfig::hmc_default();
    workloads
        .iter()
        .map(|&w| {
            let trace = w.generate_test(scale);
            let profile = ApplicationProfile::of(&trace);
            let report = NmcSystem::new(ArchConfig::paper_default()).run(&trace);

            let read_bytes = 2f64.powf(profile.value("footprint.log2_read_bytes")) - 1.0;
            let written_bytes = 2f64.powf(profile.value("footprint.log2_written_bytes")) - 1.0;
            let cost = link.transfer(read_bytes as u64, written_bytes as u64);

            let t = report.exec_time_seconds();
            let e = report.energy_joules();
            OffloadRow {
                workload: w,
                edp_resident: t * e,
                edp_with_offload: (t + cost.seconds) * (e + cost.joules),
            }
        })
        .collect()
}

/// Closed- vs open-row EDP per workload (central configurations).
pub fn row_policy_study(workloads: &[Workload], scale: Scale) -> Vec<(Workload, f64, f64)> {
    workloads
        .iter()
        .map(|&w| {
            let trace = w.generate(&w.spec().central_values(), scale);
            let closed = NmcSystem::new(ArchConfig::paper_default()).run(&trace);
            let open = NmcSystem::new(ArchConfig {
                row_policy: nmc_sim::RowPolicy::Open,
                ..ArchConfig::paper_default()
            })
            .run(&trace);
            (w, closed.edp(), open.edp())
        })
        .collect()
}

/// Renders both core ablations.
pub fn render(samplers: &SamplerAblation, sweep: &ForestSweep) -> String {
    let body: Vec<Vec<String>> = samplers
        .rows
        .iter()
        .map(|(s, p, e)| {
            vec![
                s.name().to_string(),
                format!("{:.1}%", p * 100.0),
                format!("{:.1}%", e * 100.0),
            ]
        })
        .collect();
    let mut out = super::render_table(&["Sampler", "perf MRE", "energy MRE"], &body);
    out.push('\n');
    let body: Vec<Vec<String>> = sweep
        .points
        .iter()
        .map(|(n, p)| vec![n.to_string(), format!("{:.1}%", p * 100.0)])
        .collect();
    out.push_str(&super::render_table(&["#Trees", "perf MRE"], &body));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampler_ablation_covers_all_strategies() {
        let apps = [Workload::Atax, Workload::Gemv];
        let result = sampler_ablation(&apps, Scale::tiny(), 5).unwrap();
        assert_eq!(result.rows.len(), 4);
        for (_, p, e) in &result.rows {
            assert!(p.is_finite() && e.is_finite());
        }
    }

    #[test]
    fn forest_sweep_produces_points() {
        let set = collect_with_sampler(
            &[Workload::Atax, Workload::Gemv],
            Sampler::Ccd,
            Scale::tiny(),
            5,
        );
        let sweep = forest_size_sweep(&set, &[5, 20], 5).unwrap();
        assert_eq!(sweep.points.len(), 2);
        let s = render(
            &sampler_ablation(&[Workload::Atax, Workload::Gemv], Scale::tiny(), 5).unwrap(),
            &sweep,
        );
        assert!(s.contains("Sampler") && s.contains("#Trees"));
    }

    #[test]
    fn screening_keeps_requested_feature_counts() {
        let set = collect_with_sampler(
            &[Workload::Atax, Workload::Gemv],
            Sampler::Ccd,
            Scale::tiny(),
            7,
        );
        let points = screening_ablation(&set, &[10, 50], 7).unwrap();
        assert_eq!(points.len(), 3); // all + two subsets
        assert_eq!(points[0].kept, usize::MAX);
        assert_eq!(points[1].kept, 10);
        assert!(points.iter().all(|p| p.perf_mre.is_finite()));
    }

    #[test]
    fn bigger_nmc_cache_helps_atax() {
        // The paper's closing observation: atax's vector-multiply phase has
        // locality a larger-than-128B L1 could exploit.
        let points = cache_size_sweep(Workload::Atax, &[2, 64], Scale::tiny());
        assert_eq!(points.len(), 2);
        assert!(
            points[1].ipc > points[0].ipc,
            "64-line L1 should beat 2-line on atax: {} vs {}",
            points[1].ipc,
            points[0].ipc
        );
        assert!(points[1].edp < points[0].edp);
    }

    #[test]
    fn row_policy_study_covers_workloads() {
        let rows = row_policy_study(&[Workload::Gemv, Workload::Bfs], Scale::tiny());
        assert_eq!(rows.len(), 2);
        for (_, closed, open) in rows {
            assert!(closed > 0.0 && open > 0.0);
        }
    }

    #[test]
    fn offload_transfer_always_inflates_edp() {
        let rows = offload_sensitivity(&[Workload::Atax, Workload::Kme], Scale::tiny());
        assert_eq!(rows.len(), 2);
        for r in rows {
            assert!(
                r.inflation() > 1.0,
                "{}: transfer cannot make EDP better ({})",
                r.workload,
                r.inflation()
            );
            assert!(
                r.inflation() < 100.0,
                "{}: inflation implausible",
                r.workload
            );
        }
    }
}
