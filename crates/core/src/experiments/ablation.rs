//! Ablations of NAPEL's design choices (this reproduction's additions).
//!
//! Questions the paper's design raises but does not quantify:
//!
//! 1. **Does CCD beat the other samplers?** Train on CCD points vs Latin
//!    hypercube, uniform random, and D-optimal points of the *same budget*
//!    and compare leave-one-application-out MRE ([`sampler_ablation`]).
//! 2. **How many trees are enough?** Forest-size sweep
//!    ([`forest_size_sweep`]).
//! 3. **Does feature screening matter?** Full ~370-feature input vs the
//!    top-k features by permutation importance ([`screening_ablation`]).
//! 4. **Would a scratchpad help atax?** The paper's Section 3.4 closes by
//!    suggesting that "the introduction of a small cache or scratchpad
//!    memory in the NMC compute units (larger than the 128B L1) can be
//!    beneficial" for atax-like workloads — [`cache_size_sweep`] runs that
//!    what-if on the simulator.
//! 5. **Closed- vs open-row DRAM policy** across the workloads
//!    ([`row_policy_study`]).
//! 6. **Does weighting the paper's baselines into the forest help?** The
//!    adaptive weighted ensemble vs the plain forest at the same LOAO
//!    protocol ([`ensemble_vs_forest`]).
//! 7. **Is a fixed CCD the best way to spend the simulation budget?**
//!    Accuracy vs points-per-application for a plain CCD prefix against
//!    CCD-seeded active learning that simulates where the forest's
//!    per-tree spread is highest ([`budget_curve`]).

use rand::rngs::StdRng;
use rand::SeedableRng;

use napel_doe::active::active_augment;
use napel_doe::samplers::{d_optimal, latin_hypercube, random_design};
use napel_ml::dataset::Dataset;
use napel_ml::ensemble::{EnsembleParams, NUM_MEMBERS};
use napel_ml::forest::RandomForestParams;
use napel_ml::log_space::LogOf;
use napel_ml::tree::{DecisionTreeParams, FeatureSubset};
use napel_ml::Estimator;
use napel_pisa::ApplicationProfile;
use napel_workloads::{Scale, Workload};
use nmc_sim::{ArchConfig, NmcSystem};

use crate::analysis::{average_mre, loao_accuracy_io};
use crate::artifact::ModelIo;
use crate::campaign::{AnyExecutor, Executor};
use crate::collect::{doe_points, param_space};
use crate::features::{combined_feature_names, combined_features, LabeledRun, TrainingSet};
use crate::NapelError;

/// Training-point sampling strategies under comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sampler {
    /// Central composite design (the paper's choice).
    Ccd,
    /// Latin hypercube with the same point budget (Li et al. in Table 5).
    LatinHypercube,
    /// Uniform random with the same point budget.
    Random,
    /// D-optimal design via Fedorov exchange (Joseph et al. / Mariani et
    /// al. in Table 5).
    DOptimal,
}

impl Sampler {
    /// All strategies.
    pub const ALL: [Sampler; 4] = [
        Sampler::Ccd,
        Sampler::LatinHypercube,
        Sampler::Random,
        Sampler::DOptimal,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Sampler::Ccd => "ccd",
            Sampler::LatinHypercube => "lhs",
            Sampler::Random => "random",
            Sampler::DOptimal => "d-optimal",
        }
    }
}

/// Collects a training set using the given sampler at the CCD's budget.
///
/// # Errors
///
/// Propagates [`napel_doe::DesignError`] from the sampler (as
/// [`NapelError::Design`]) — e.g. a D-optimal request over a space whose
/// factorial candidate set is intractable.
pub fn collect_with_sampler(
    workloads: &[Workload],
    sampler: Sampler,
    scale: Scale,
    seed: u64,
) -> Result<TrainingSet, NapelError> {
    let arch = ArchConfig::paper_default();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut runs = Vec::new();
    for &w in workloads {
        let spec = w.spec();
        let space = param_space(&spec);
        let ccd = doe_points(&spec, true);
        let points = match sampler {
            Sampler::Ccd => ccd,
            Sampler::LatinHypercube => latin_hypercube(&space, ccd.len(), &mut rng),
            Sampler::Random => random_design(&space, ccd.len(), &mut rng),
            Sampler::DOptimal => d_optimal(&space, ccd.len(), &mut rng)?,
        };
        simulate_points(w, &points, scale, &arch, &mut runs);
    }
    Ok(TrainingSet {
        feature_names: combined_feature_names(),
        runs,
        stats: Default::default(),
    })
}

/// Simulates each design point of one workload and appends the labeled
/// rows (shared by [`collect_with_sampler`] and the active-learning loop).
fn simulate_points(
    w: Workload,
    points: &[napel_doe::DesignPoint],
    scale: Scale,
    arch: &ArchConfig,
    runs: &mut Vec<LabeledRun>,
) {
    for p in points {
        let trace = w.generate(p.coords(), scale);
        let profile = ApplicationProfile::of(&trace);
        let report = NmcSystem::new(arch.clone()).run(&trace);
        runs.push(LabeledRun::from_report(
            w,
            p.coords().to_vec(),
            &profile,
            arch,
            &report,
        ));
    }
}

/// Result of the sampler ablation: average (perf, energy) LOAO MRE per
/// strategy.
#[derive(Debug, Clone, PartialEq)]
pub struct SamplerAblation {
    /// `(sampler, perf MRE, energy MRE)` rows.
    pub rows: Vec<(Sampler, f64, f64)>,
}

/// Runs the sampler ablation.
///
/// # Errors
///
/// Propagates estimator failures.
pub fn sampler_ablation(
    workloads: &[Workload],
    scale: Scale,
    seed: u64,
) -> Result<SamplerAblation, NapelError> {
    sampler_ablation_with(workloads, scale, seed, &AnyExecutor::from_env())
}

/// [`sampler_ablation`] with an explicit campaign executor. The sampler
/// loop stays serial (each strategy draws a fresh seeded RNG stream);
/// the leave-one-out folds inside each strategy run as a job batch.
///
/// # Errors
///
/// Propagates estimator failures.
pub fn sampler_ablation_with<E: Executor>(
    workloads: &[Workload],
    scale: Scale,
    seed: u64,
    exec: &E,
) -> Result<SamplerAblation, NapelError> {
    sampler_ablation_io(workloads, scale, seed, &ModelIo::none(), exec)
}

/// [`sampler_ablation_with`] threaded through an artifact policy: each
/// strategy's fold models are saved as (or loaded from)
/// `<dir>/ablation-sampler-<strategy>-<workload>.napel`.
///
/// # Errors
///
/// Propagates estimator failures; [`crate::NapelError::Artifact`] on
/// save/load failures or schema mismatches.
pub fn sampler_ablation_io<E: Executor>(
    workloads: &[Workload],
    scale: Scale,
    seed: u64,
    io: &ModelIo,
    exec: &E,
) -> Result<SamplerAblation, NapelError> {
    let est = super::fig5::napel_estimator();
    let mut rows = Vec::new();
    for sampler in Sampler::ALL {
        let set = collect_with_sampler(workloads, sampler, scale, seed)?;
        let prefix = format!("ablation-sampler-{}", sampler.name());
        let results = loao_accuracy_io(&est, &set, seed, io, &prefix, exec)?;
        let (p, e) = average_mre(&results);
        rows.push((sampler, p, e));
    }
    Ok(SamplerAblation { rows })
}

/// The weighted-ensemble configuration under comparison: the fig5 forest
/// plus the fig5 baselines (ANN, model tree) and a ridge floor as
/// co-members, in log space like every pipeline estimator.
pub fn ensemble_estimator() -> LogOf<EnsembleParams> {
    LogOf(EnsembleParams {
        forest: super::fig5::napel_estimator(),
        mlp: super::fig5::ann_estimator(),
        model_tree: super::fig5::dtree_estimator(),
        ..EnsembleParams::default()
    })
}

/// Result of the ensemble-vs-forest comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct EnsembleComparison {
    /// Plain-forest (perf, energy) average LOAO MRE.
    pub forest: (f64, f64),
    /// Weighted-ensemble (perf, energy) average LOAO MRE.
    pub ensemble: (f64, f64),
    /// Weights the ensemble adapted to on the full training set, in
    /// member order (forest, model tree, MLP, ridge).
    pub weights: [f64; NUM_MEMBERS],
}

/// Compares the adaptive weighted ensemble against the plain fig5 forest
/// at the same LOAO protocol and seed.
///
/// # Errors
///
/// Propagates estimator failures.
pub fn ensemble_vs_forest(set: &TrainingSet, seed: u64) -> Result<EnsembleComparison, NapelError> {
    ensemble_vs_forest_io(set, seed, &ModelIo::none(), &AnyExecutor::from_env())
}

/// [`ensemble_vs_forest`] threaded through an artifact policy and an
/// explicit executor: fold models are saved as (or loaded from)
/// `<dir>/ablation-ens-{forest,weighted}-<workload>.napel`.
///
/// # Errors
///
/// Propagates estimator failures; [`crate::NapelError::Artifact`] on
/// save/load failures or schema mismatches.
pub fn ensemble_vs_forest_io<E: Executor>(
    set: &TrainingSet,
    seed: u64,
    io: &ModelIo,
    exec: &E,
) -> Result<EnsembleComparison, NapelError> {
    let forest = loao_accuracy_io(
        &LogOf(super::fig5::napel_estimator()),
        set,
        seed,
        io,
        "ablation-ens-forest",
        exec,
    )?;
    let est = ensemble_estimator();
    let ens = loao_accuracy_io(&est, set, seed, io, "ablation-ens-weighted", exec)?;
    // One fit on the full set to report where the weights landed.
    let mut rng = StdRng::seed_from_u64(seed);
    let fitted = est.fit(&set.ipc_dataset()?, &mut rng)?;
    Ok(EnsembleComparison {
        forest: average_mre(&forest),
        ensemble: average_mre(&ens),
        weights: fitted.inner().weights(),
    })
}

/// Renders the ensemble-vs-forest comparison.
pub fn render_ensemble(c: &EnsembleComparison) -> String {
    let [wf, wt, wm, wr] = c.weights;
    format!(
        "forest    {:.1}% perf / {:.1}% energy MRE\n\
         ensemble  {:.1}% perf / {:.1}% energy MRE\n\
         adapted weights (forest, model tree, mlp, ridge): [{wf:.3}, {wt:.3}, {wm:.3}, {wr:.3}]\n",
        c.forest.0 * 100.0,
        c.forest.1 * 100.0,
        c.ensemble.0 * 100.0,
        c.ensemble.1 * 100.0,
    )
}

/// Candidate-pool size per active-learning round: large enough that the
/// spread landscape is sampled, small enough that profiling the pool stays
/// cheap next to a simulation.
pub const ACTIVE_POOL: usize = 16;

/// Collects a per-application *prefix* of the CCD — the plain arm of the
/// accuracy-vs-budget comparison. `budget` is points per application,
/// capped at each application's full (deduplicated) CCD.
pub fn collect_ccd_prefix(workloads: &[Workload], budget: usize, scale: Scale) -> TrainingSet {
    let arch = ArchConfig::paper_default();
    let mut runs = Vec::new();
    for &w in workloads {
        let ccd = doe_points(&w.spec(), true);
        let n = budget.min(ccd.len());
        simulate_points(w, &ccd[..n], scale, &arch, &mut runs);
    }
    TrainingSet {
        feature_names: combined_feature_names(),
        runs,
        stats: Default::default(),
    }
}

/// Collects the active arm: per application, half the budget is the CCD
/// prefix seed, then [`napel_doe::active::active_augment`] spends the rest
/// one simulation at a time where a forest surrogate's per-tree spread
/// over the candidate pool is highest. Candidates are scored without
/// simulating them (trace generation + profiling only); each committed
/// point is then simulated and the surrogate refit before the next round.
///
/// # Errors
///
/// Propagates [`napel_doe::DesignError`] from the augmentation loop (as
/// [`NapelError::Design`]).
pub fn collect_active(
    workloads: &[Workload],
    budget: usize,
    pool: usize,
    scale: Scale,
    seed: u64,
) -> Result<TrainingSet, NapelError> {
    let arch = ArchConfig::paper_default();
    let surrogate = LogOf(RandomForestParams {
        num_trees: 40,
        tree: DecisionTreeParams {
            feature_subset: FeatureSubset::Third,
            ..DecisionTreeParams::default()
        },
        bootstrap: true,
    });
    let mut pick_rng = StdRng::seed_from_u64(seed ^ 0xAC71_4E01);
    let mut fit_rng = StdRng::seed_from_u64(seed ^ 0x5EED_F0E5);
    let mut runs = Vec::new();
    for &w in workloads {
        let spec = w.spec();
        let space = param_space(&spec);
        let ccd = doe_points(&spec, true);
        let budget = budget.min(ccd.len());
        let seed_len = (budget / 2).max(3).min(budget);
        let seed_pts = &ccd[..seed_len];
        let mut wruns: Vec<LabeledRun> = Vec::new();
        simulate_points(w, seed_pts, scale, &arch, &mut wruns);
        let mut simulated = seed_len;
        let design = active_augment(
            &space,
            seed_pts,
            budget - seed_len,
            pool,
            &mut pick_rng,
            |design, cands| {
                // Simulate the points committed since the last round, then
                // refit the surrogate on everything labeled so far.
                if design.len() > simulated {
                    simulate_points(w, &design[simulated..], scale, &arch, &mut wruns);
                    simulated = design.len();
                }
                let mut spread = || -> Option<Vec<f64>> {
                    let mut b = Dataset::builder(combined_feature_names());
                    for r in &wruns {
                        b.push_row(r.features.clone(), r.ipc).ok()?;
                    }
                    let model = surrogate.fit(&b.build().ok()?, &mut fit_rng).ok()?;
                    let rows: Vec<Vec<f64>> = cands
                        .iter()
                        .map(|p| {
                            let trace = w.generate(p.coords(), scale);
                            combined_features(&ApplicationProfile::of(&trace), &arch)
                        })
                        .collect();
                    Some(model.inner().prediction_std_many(&rows))
                };
                // A surrogate that cannot fit (degenerate rows) scores
                // everything equally: the round degrades to the pool's
                // first candidate rather than failing the campaign.
                spread().unwrap_or_else(|| vec![0.0; cands.len()])
            },
        )?;
        if design.len() > simulated {
            simulate_points(w, &design[simulated..], scale, &arch, &mut wruns);
        }
        runs.append(&mut wruns);
    }
    Ok(TrainingSet {
        feature_names: combined_feature_names(),
        runs,
        stats: Default::default(),
    })
}

/// One budget level of the accuracy-vs-simulation-budget comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct BudgetPoint {
    /// Simulated points per application.
    pub budget: usize,
    /// Plain CCD prefix (perf, energy) average LOAO MRE.
    pub ccd: (f64, f64),
    /// Active sampling (perf, energy) average LOAO MRE.
    pub active: (f64, f64),
}

/// The accuracy-vs-budget curve: plain CCD prefix vs active sampling.
#[derive(Debug, Clone, PartialEq)]
pub struct BudgetCurve {
    /// One point per requested budget.
    pub points: Vec<BudgetPoint>,
}

impl BudgetCurve {
    /// Whether active sampling is no worse than the plain CCD prefix on
    /// average across the curve (perf MRE), within a relative `slack` —
    /// the CI gate for the active-DoE loop.
    pub fn active_no_worse(&self, slack: f64) -> bool {
        let n = self.points.len().max(1) as f64;
        let ccd = self.points.iter().map(|p| p.ccd.0).sum::<f64>() / n;
        let active = self.points.iter().map(|p| p.active.0).sum::<f64>() / n;
        active <= ccd * (1.0 + slack)
    }
}

/// Runs the accuracy-vs-budget comparison at each of `budgets` points per
/// application.
///
/// # Errors
///
/// Propagates estimator failures and design errors.
pub fn budget_curve(
    workloads: &[Workload],
    scale: Scale,
    budgets: &[usize],
    seed: u64,
) -> Result<BudgetCurve, NapelError> {
    budget_curve_io(
        workloads,
        scale,
        budgets,
        seed,
        &ModelIo::none(),
        &AnyExecutor::from_env(),
    )
}

/// [`budget_curve`] threaded through an artifact policy and an explicit
/// executor: fold models are saved as (or loaded from)
/// `<dir>/ablation-budget-{ccd,active}-<budget>-<workload>.napel`.
///
/// # Errors
///
/// Propagates estimator failures and design errors;
/// [`crate::NapelError::Artifact`] on save/load failures or schema
/// mismatches.
pub fn budget_curve_io<E: Executor>(
    workloads: &[Workload],
    scale: Scale,
    budgets: &[usize],
    seed: u64,
    io: &ModelIo,
    exec: &E,
) -> Result<BudgetCurve, NapelError> {
    let est = LogOf(super::fig5::napel_estimator());
    let mut points = Vec::new();
    for &b in budgets {
        let ccd_set = collect_ccd_prefix(workloads, b, scale);
        let prefix = format!("ablation-budget-ccd-{b}");
        let ccd = loao_accuracy_io(&est, &ccd_set, seed, io, &prefix, exec)?;
        let active_set = collect_active(workloads, b, ACTIVE_POOL, scale, seed)?;
        let prefix = format!("ablation-budget-active-{b}");
        let active = loao_accuracy_io(&est, &active_set, seed, io, &prefix, exec)?;
        points.push(BudgetPoint {
            budget: b,
            ccd: average_mre(&ccd),
            active: average_mre(&active),
        });
    }
    Ok(BudgetCurve { points })
}

/// Renders the accuracy-vs-budget curve.
pub fn render_budget_curve(curve: &BudgetCurve) -> String {
    let body: Vec<Vec<String>> = curve
        .points
        .iter()
        .map(|p| {
            vec![
                p.budget.to_string(),
                format!("{:.1}%", p.ccd.0 * 100.0),
                format!("{:.1}%", p.active.0 * 100.0),
                format!("{:.1}%", p.ccd.1 * 100.0),
                format!("{:.1}%", p.active.1 * 100.0),
            ]
        })
        .collect();
    super::render_table(
        &[
            "Budget/app",
            "ccd perf",
            "active perf",
            "ccd energy",
            "active energy",
        ],
        &body,
    )
}

/// Result of the forest-size sweep: `(num_trees, perf MRE)` points.
#[derive(Debug, Clone, PartialEq)]
pub struct ForestSweep {
    /// Sweep points.
    pub points: Vec<(usize, f64)>,
}

/// Sweeps the number of trees on an existing training set.
///
/// # Errors
///
/// Propagates estimator failures.
pub fn forest_size_sweep(
    set: &TrainingSet,
    sizes: &[usize],
    seed: u64,
) -> Result<ForestSweep, NapelError> {
    forest_size_sweep_with(set, sizes, seed, &AnyExecutor::from_env())
}

/// [`forest_size_sweep`] with an explicit campaign executor for the
/// leave-one-out folds.
///
/// # Errors
///
/// Propagates estimator failures.
pub fn forest_size_sweep_with<E: Executor>(
    set: &TrainingSet,
    sizes: &[usize],
    seed: u64,
    exec: &E,
) -> Result<ForestSweep, NapelError> {
    forest_size_sweep_io(set, sizes, seed, &ModelIo::none(), exec)
}

/// [`forest_size_sweep_with`] threaded through an artifact policy: each
/// sweep point's fold models are saved as (or loaded from)
/// `<dir>/ablation-forest-<n>-<workload>.napel`.
///
/// # Errors
///
/// Propagates estimator failures; [`crate::NapelError::Artifact`] on
/// save/load failures or schema mismatches.
pub fn forest_size_sweep_io<E: Executor>(
    set: &TrainingSet,
    sizes: &[usize],
    seed: u64,
    io: &ModelIo,
    exec: &E,
) -> Result<ForestSweep, NapelError> {
    let mut points = Vec::new();
    for &n in sizes {
        let est = RandomForestParams {
            num_trees: n,
            tree: DecisionTreeParams {
                feature_subset: FeatureSubset::Third,
                ..DecisionTreeParams::default()
            },
            bootstrap: true,
        };
        let prefix = format!("ablation-forest-{n}");
        let results = loao_accuracy_io(&est, set, seed, io, &prefix, exec)?;
        let (p, _) = average_mre(&results);
        points.push((n, p));
    }
    Ok(ForestSweep { points })
}

/// One point of the feature-screening ablation.
#[derive(Debug, Clone, PartialEq)]
pub struct ScreeningPoint {
    /// Number of features kept (`usize::MAX` = all).
    pub kept: usize,
    /// Average LOAO performance MRE with that feature subset.
    pub perf_mre: f64,
}

/// Feature-screening ablation: rank features by permutation importance of a
/// forest trained on everything, then retrain on the top-k only.
///
/// # Errors
///
/// Propagates estimator failures.
pub fn screening_ablation(
    set: &TrainingSet,
    keep_counts: &[usize],
    seed: u64,
) -> Result<Vec<ScreeningPoint>, NapelError> {
    screening_ablation_with(set, keep_counts, seed, &AnyExecutor::from_env())
}

/// [`screening_ablation`] with an explicit campaign executor for the
/// leave-one-out folds.
///
/// # Errors
///
/// Propagates estimator failures.
pub fn screening_ablation_with<E: Executor>(
    set: &TrainingSet,
    keep_counts: &[usize],
    seed: u64,
    exec: &E,
) -> Result<Vec<ScreeningPoint>, NapelError> {
    screening_ablation_io(set, keep_counts, seed, &ModelIo::none(), exec)
}

/// [`screening_ablation_with`] threaded through an artifact policy: fold
/// models are saved as (or loaded from)
/// `<dir>/ablation-screen-{all,<k>}-<workload>.napel`. Note that the
/// projected-feature artifacts carry the *projected* schema and validate
/// against it, not against the full combined schema.
///
/// # Errors
///
/// Propagates estimator failures; [`crate::NapelError::Artifact`] on
/// save/load failures or schema mismatches.
pub fn screening_ablation_io<E: Executor>(
    set: &TrainingSet,
    keep_counts: &[usize],
    seed: u64,
    io: &ModelIo,
    exec: &E,
) -> Result<Vec<ScreeningPoint>, NapelError> {
    let mut rng = StdRng::seed_from_u64(seed);
    let full = set.ipc_dataset()?;
    let est = super::fig5::napel_estimator();
    let probe = est.fit(&full, &mut rng)?;
    let importances = probe.permutation_importance(&full, &mut rng);
    let mut order: Vec<usize> = (0..importances.len()).collect();
    order.sort_by(|&a, &b| importances[b].total_cmp(&importances[a]));

    let mut out = Vec::new();
    // Baseline: all features.
    let all = loao_accuracy_io(&est, set, seed, io, "ablation-screen-all", exec)?;
    out.push(ScreeningPoint {
        kept: usize::MAX,
        perf_mre: average_mre(&all).0,
    });

    for &k in keep_counts {
        let keep: Vec<usize> = order.iter().copied().take(k).collect();
        // Project the training set onto the kept features.
        let names: Vec<String> = keep.iter().map(|&i| set.feature_names[i].clone()).collect();
        let mut projected = set.clone();
        projected.feature_names = names;
        for run in &mut projected.runs {
            run.features = keep.iter().map(|&i| run.features[i]).collect();
        }
        let prefix = format!("ablation-screen-{k}");
        let results = loao_accuracy_io(&est, &projected, seed, io, &prefix, exec)?;
        out.push(ScreeningPoint {
            kept: k,
            perf_mre: average_mre(&results).0,
        });
    }
    Ok(out)
}

/// One point of the cache/scratchpad what-if.
#[derive(Debug, Clone, PartialEq)]
pub struct CacheSweepPoint {
    /// L1 lines per PE.
    pub cache_lines: usize,
    /// Simulated EDP (J·s).
    pub edp: f64,
    /// Simulated IPC.
    pub ipc: f64,
}

/// Sweeps the NMC L1 size for one workload at its test input — the paper's
/// closing what-if for atax.
pub fn cache_size_sweep(workload: Workload, lines: &[usize], scale: Scale) -> Vec<CacheSweepPoint> {
    let trace = workload.generate_test(scale);
    lines
        .iter()
        .map(|&cache_lines| {
            let arch = ArchConfig {
                cache_lines,
                ..ArchConfig::paper_default()
            };
            let report = NmcSystem::new(arch).run(&trace);
            CacheSweepPoint {
                cache_lines,
                edp: report.edp(),
                ipc: report.ipc(),
            }
        })
        .collect()
}

/// One row of the offload-cost sensitivity study.
#[derive(Debug, Clone, PartialEq)]
pub struct OffloadRow {
    /// Application at its test input.
    pub workload: Workload,
    /// Simulated NMC EDP assuming memory-resident data (the paper's
    /// assumption).
    pub edp_resident: f64,
    /// NMC EDP when the kernel footprint must first cross the Table 3
    /// SerDes link from the host (and results return).
    pub edp_with_offload: f64,
}

impl OffloadRow {
    /// EDP inflation factor caused by the transfer.
    pub fn inflation(&self) -> f64 {
        self.edp_with_offload / self.edp_resident
    }
}

/// Quantifies how much the "data already lives in the stack" assumption is
/// worth: re-computes each workload's NMC EDP with a one-time transfer of
/// its read footprint to the memory and its written footprint back over
/// the Table 3 link.
pub fn offload_sensitivity(workloads: &[Workload], scale: Scale) -> Vec<OffloadRow> {
    use nmc_sim::LinkConfig;
    let link = LinkConfig::hmc_default();
    workloads
        .iter()
        .map(|&w| {
            let trace = w.generate_test(scale);
            let profile = ApplicationProfile::of(&trace);
            let report = NmcSystem::new(ArchConfig::paper_default()).run(&trace);

            let read_bytes = 2f64.powf(profile.value("footprint.log2_read_bytes")) - 1.0;
            let written_bytes = 2f64.powf(profile.value("footprint.log2_written_bytes")) - 1.0;
            let cost = link.transfer(read_bytes as u64, written_bytes as u64);

            let t = report.exec_time_seconds();
            let e = report.energy_joules();
            OffloadRow {
                workload: w,
                edp_resident: t * e,
                edp_with_offload: (t + cost.seconds) * (e + cost.joules),
            }
        })
        .collect()
}

/// Closed- vs open-row EDP per workload (central configurations).
pub fn row_policy_study(workloads: &[Workload], scale: Scale) -> Vec<(Workload, f64, f64)> {
    workloads
        .iter()
        .map(|&w| {
            let trace = w.generate(&w.spec().central_values(), scale);
            let closed = NmcSystem::new(ArchConfig::paper_default()).run(&trace);
            let open = NmcSystem::new(ArchConfig {
                row_policy: nmc_sim::RowPolicy::Open,
                ..ArchConfig::paper_default()
            })
            .run(&trace);
            (w, closed.edp(), open.edp())
        })
        .collect()
}

/// Renders both core ablations.
pub fn render(samplers: &SamplerAblation, sweep: &ForestSweep) -> String {
    let body: Vec<Vec<String>> = samplers
        .rows
        .iter()
        .map(|(s, p, e)| {
            vec![
                s.name().to_string(),
                format!("{:.1}%", p * 100.0),
                format!("{:.1}%", e * 100.0),
            ]
        })
        .collect();
    let mut out = super::render_table(&["Sampler", "perf MRE", "energy MRE"], &body);
    out.push('\n');
    let body: Vec<Vec<String>> = sweep
        .points
        .iter()
        .map(|(n, p)| vec![n.to_string(), format!("{:.1}%", p * 100.0)])
        .collect();
    out.push_str(&super::render_table(&["#Trees", "perf MRE"], &body));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampler_ablation_covers_all_strategies() {
        let apps = [Workload::Atax, Workload::Gemv];
        let result = sampler_ablation(&apps, Scale::tiny(), 5).unwrap();
        assert_eq!(result.rows.len(), 4);
        for (_, p, e) in &result.rows {
            assert!(p.is_finite() && e.is_finite());
        }
    }

    #[test]
    fn forest_sweep_produces_points() {
        let set = collect_with_sampler(
            &[Workload::Atax, Workload::Gemv],
            Sampler::Ccd,
            Scale::tiny(),
            5,
        )
        .unwrap();
        let sweep = forest_size_sweep(&set, &[5, 20], 5).unwrap();
        assert_eq!(sweep.points.len(), 2);
        let s = render(
            &sampler_ablation(&[Workload::Atax, Workload::Gemv], Scale::tiny(), 5).unwrap(),
            &sweep,
        );
        assert!(s.contains("Sampler") && s.contains("#Trees"));
    }

    #[test]
    fn ccd_prefix_respects_the_budget() {
        let set = collect_ccd_prefix(&[Workload::Atax, Workload::Gemv], 5, Scale::tiny());
        for w in [Workload::Atax, Workload::Gemv] {
            let n = set.runs.iter().filter(|r| r.workload == w).count();
            assert_eq!(n, 5, "{w}");
        }
        // A budget past the CCD caps at the full design.
        let full = collect_ccd_prefix(&[Workload::Atax], 10_000, Scale::tiny());
        let ccd_len = doe_points(&Workload::Atax.spec(), true).len();
        assert_eq!(full.runs.len(), ccd_len);
    }

    #[test]
    fn active_collection_reaches_the_budget_and_differs_from_ccd() {
        let apps = [Workload::Atax, Workload::Gemv];
        let active = collect_active(&apps, 7, ACTIVE_POOL, Scale::tiny(), 9).unwrap();
        for w in apps {
            let n = active.runs.iter().filter(|r| r.workload == w).count();
            assert_eq!(n, 7, "{w}");
        }
        // The non-seed points come from the hypercube, not the CCD grid:
        // the two arms must not collapse into the same design.
        let plain = collect_ccd_prefix(&apps, 7, Scale::tiny());
        assert_ne!(
            active.content_hash(),
            plain.content_hash(),
            "active sampling should leave the CCD prefix"
        );
        // Same seed, same campaign.
        let again = collect_active(&apps, 7, ACTIVE_POOL, Scale::tiny(), 9).unwrap();
        assert_eq!(active.content_hash(), again.content_hash());
    }

    #[test]
    fn budget_curve_runs_and_renders() {
        let apps = [Workload::Atax, Workload::Gemv];
        let curve = budget_curve(&apps, Scale::tiny(), &[5, 7], 11).unwrap();
        assert_eq!(curve.points.len(), 2);
        for p in &curve.points {
            assert!(p.ccd.0.is_finite() && p.active.0.is_finite());
            assert!(p.ccd.1.is_finite() && p.active.1.is_finite());
        }
        let s = render_budget_curve(&curve);
        assert!(s.contains("Budget/app") && s.contains("active perf"));
        // The CI gate is callable with any slack; with infinite slack it
        // must accept.
        assert!(curve.active_no_worse(f64::INFINITY));
    }

    #[test]
    fn ensemble_comparison_reports_floored_weights() {
        let set = collect_with_sampler(
            &[Workload::Atax, Workload::Gemv],
            Sampler::Ccd,
            Scale::tiny(),
            13,
        )
        .unwrap();
        let c = ensemble_vs_forest(&set, 13).unwrap();
        assert!(c.forest.0.is_finite() && c.ensemble.0.is_finite());
        assert!(c
            .weights
            .iter()
            .all(|&w| w >= napel_ml::ensemble::DEFAULT_WEIGHT_FLOOR));
        let s = render_ensemble(&c);
        assert!(s.contains("adapted weights"));
    }

    #[test]
    fn screening_keeps_requested_feature_counts() {
        let set = collect_with_sampler(
            &[Workload::Atax, Workload::Gemv],
            Sampler::Ccd,
            Scale::tiny(),
            7,
        )
        .unwrap();
        let points = screening_ablation(&set, &[10, 50], 7).unwrap();
        assert_eq!(points.len(), 3); // all + two subsets
        assert_eq!(points[0].kept, usize::MAX);
        assert_eq!(points[1].kept, 10);
        assert!(points.iter().all(|p| p.perf_mre.is_finite()));
    }

    #[test]
    fn bigger_nmc_cache_helps_atax() {
        // The paper's closing observation: atax's vector-multiply phase has
        // locality a larger-than-128B L1 could exploit.
        let points = cache_size_sweep(Workload::Atax, &[2, 64], Scale::tiny());
        assert_eq!(points.len(), 2);
        assert!(
            points[1].ipc > points[0].ipc,
            "64-line L1 should beat 2-line on atax: {} vs {}",
            points[1].ipc,
            points[0].ipc
        );
        assert!(points[1].edp < points[0].edp);
    }

    #[test]
    fn row_policy_study_covers_workloads() {
        let rows = row_policy_study(&[Workload::Gemv, Workload::Bfs], Scale::tiny());
        assert_eq!(rows.len(), 2);
        for (_, closed, open) in rows {
            assert!(closed > 0.0 && open > 0.0);
        }
    }

    #[test]
    fn offload_transfer_always_inflates_edp() {
        let rows = offload_sensitivity(&[Workload::Atax, Workload::Kme], Scale::tiny());
        assert_eq!(rows.len(), 2);
        for r in rows {
            assert!(
                r.inflation() > 1.0,
                "{}: transfer cannot make EDP better ({})",
                r.workload,
                r.inflation()
            );
            assert!(
                r.inflation() < 100.0,
                "{}: inflation implausible",
                r.workload
            );
        }
    }
}
