//! Table 2 — evaluated applications and their DoE parameters.

use napel_workloads::Workload;

/// Renders Table 2: every application, its parameters, the five levels and
/// the test input.
pub fn render() -> String {
    let mut rows = Vec::new();
    for w in Workload::ALL {
        let spec = w.spec();
        for (i, p) in spec.params.iter().enumerate() {
            let name = if i == 0 {
                w.name().to_string()
            } else {
                String::new()
            };
            let desc = if i == 0 {
                spec.description.to_string()
            } else {
                String::new()
            };
            let mut row = vec![name, desc, p.name.to_string()];
            row.extend(p.levels.iter().map(|v| fmt_level(*v)));
            row.push(fmt_level(p.test));
            rows.push(row);
        }
    }
    super::render_table(
        &[
            "Name",
            "Description",
            "DoE Param.",
            "Min",
            "Low",
            "Central",
            "High",
            "Max",
            "Test",
        ],
        &rows,
    )
}

fn fmt_level(v: f64) -> String {
    if v >= 1e6 && (v / 1e5).fract() == 0.0 {
        format!("{}m", v / 1e6)
    } else if v >= 1e3 && (v / 1e3).fract() == 0.0 {
        format!("{}k", v / 1e3)
    } else {
        format!("{v}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_all_parameters() {
        let s = render();
        // 12 apps with 2/4/4/3/3/3/3/4/3/3/3/3 params = 38 parameter rows.
        let data_lines = s.lines().count() - 2; // header + rule
        assert_eq!(data_lines, 38);
        assert!(s.contains("atax"));
        assert!(s.contains("1.4m"));
        assert!(s.contains("819k"));
        assert!(s.contains("Gram-Schmidt"));
    }

    #[test]
    fn level_formatting() {
        assert_eq!(fmt_level(400e3), "400k");
        assert_eq!(fmt_level(1.2e6), "1.2m");
        assert_eq!(fmt_level(64.0), "64");
        assert_eq!(fmt_level(2300.0), "2300");
    }
}
