//! Table 4 — DoE configuration counts and training/prediction times.
//!
//! Absolute times are measured on this reproduction's substrate (seconds,
//! not the paper's server-scale minutes); the *structure* — 11/19/31 DoE
//! configurations, prediction orders of magnitude below DoE collection —
//! is the reproduced result. `EXPERIMENTS.md` tabulates ours against the
//! paper's.

use std::time::Instant;

use napel_pisa::ApplicationProfile;
use napel_workloads::Workload;
use nmc_sim::ArchConfig;

use crate::artifact::ModelIo;
use crate::campaign::{AnyExecutor, Executor};
use crate::collect::{collect_app_with, doe_config_count, CollectionPlan};
use crate::model::{Napel, NapelConfig};
use crate::NapelError;

/// One row of Table 4.
#[derive(Debug, Clone, PartialEq)]
pub struct Table4Row {
    /// Application.
    pub workload: Workload,
    /// Number of DoE configurations (center replicates included) —
    /// matches the paper exactly: 11, 19 or 31.
    pub doe_configs: usize,
    /// Wall-clock seconds gathering this application's training data
    /// (trace generation + profiling + simulation).
    pub doe_run_seconds: f64,
    /// Wall-clock seconds training + tuning the two models with this
    /// application *excluded* (the Section 3.3 protocol).
    pub train_tune_seconds: f64,
    /// Wall-clock seconds to predict this application's test input
    /// (kernel analysis + model inference).
    pub pred_seconds: f64,
}

/// Computes Table 4.
///
/// `ctx.training` must contain all applications that should participate in
/// the leave-one-out trainings.
///
/// # Errors
///
/// Propagates training failures.
pub fn run(ctx: &super::Context, config: &NapelConfig) -> Result<Vec<Table4Row>, NapelError> {
    run_with(ctx, config, &AnyExecutor::from_env())
}

/// [`run`] with an explicit campaign executor.
///
/// The per-application loop stays serial so each row's timings are
/// attributable to that application; within a row, the DoE collection
/// itself runs as a job batch on `exec` (so its "DoE run" wall-clock
/// reflects the configured parallelism).
///
/// # Errors
///
/// Propagates training failures.
pub fn run_with<E: Executor>(
    ctx: &super::Context,
    config: &NapelConfig,
    exec: &E,
) -> Result<Vec<Table4Row>, NapelError> {
    run_with_io(ctx, config, &ModelIo::none(), exec)
}

/// [`run_with`] threaded through an artifact policy: each leave-one-out
/// model is saved as (or loaded from) `<dir>/table4-<workload>.napel`.
/// With a load directory, the "Train+Tune" column measures the artifact
/// load instead of training — the table then quantifies exactly what the
/// train-once/predict-many split buys.
///
/// # Errors
///
/// Propagates training failures; [`crate::NapelError::Artifact`] on
/// save/load failures or schema mismatches.
pub fn run_with_io<E: Executor>(
    ctx: &super::Context,
    config: &NapelConfig,
    io: &ModelIo,
    exec: &E,
) -> Result<Vec<Table4Row>, NapelError> {
    let arch = ArchConfig::paper_default();
    let mut rows = Vec::new();
    for w in ctx.training.workloads() {
        // DoE collection time, measured fresh for this app alone.
        let plan = CollectionPlan {
            workloads: vec![w],
            scale: ctx.scale,
            ..Default::default()
        };
        let (_, stats) = collect_app_with(w, &plan, exec);
        let doe_run_seconds =
            stats.generate_seconds + stats.profile_seconds + stats.simulate_seconds;

        // Train + tune on the other applications (or, under a load
        // policy, fetch the stored model — the measured time is then the
        // artifact-load cost).
        let t0 = Instant::now();
        let trained = io.train_or_load(&format!("table4-{}", w.name()), || {
            Napel::new(config.clone()).train(&ctx.training.filtered(|x| x != w))
        })?;
        let train_tune_seconds = t0.elapsed().as_secs_f64();

        // Prediction: kernel analysis of the test input + inference.
        let t1 = Instant::now();
        let trace = w.generate_test(ctx.scale);
        let profile = ApplicationProfile::of(&trace);
        let _pred = trained.predict(&profile, &arch);
        let pred_seconds = t1.elapsed().as_secs_f64();

        rows.push(Table4Row {
            workload: w,
            doe_configs: doe_config_count(&w.spec()),
            doe_run_seconds,
            train_tune_seconds,
            pred_seconds,
        });
    }
    Ok(rows)
}

/// Renders the rows in the paper's layout.
pub fn render(rows: &[Table4Row]) -> String {
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.workload.name().to_string(),
                r.doe_configs.to_string(),
                format!("{:.2}", r.doe_run_seconds),
                format!("{:.2}", r.train_tune_seconds),
                format!("{:.4}", r.pred_seconds),
            ]
        })
        .collect();
    super::render_table(
        &[
            "Name",
            "#DoE conf.",
            "DoE run (s)",
            "Train+Tune (s)",
            "Pred. (s)",
        ],
        &body,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use napel_workloads::Scale;

    #[test]
    fn rows_have_paper_doe_counts_and_sane_times() {
        let ctx = super::super::Context::build_subset(
            vec![Workload::Atax, Workload::Gemv],
            Scale::tiny(),
            1,
        );
        let rows = run(&ctx, &NapelConfig::untuned()).unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].doe_configs, 11); // atax
        assert_eq!(rows[1].doe_configs, 19); // gemv
        for r in &rows {
            assert!(r.doe_run_seconds > 0.0);
            assert!(r.train_tune_seconds > 0.0);
            assert!(r.pred_seconds > 0.0);
        }
        let s = render(&rows);
        assert!(s.contains("atax"));
        assert!(s.contains("#DoE conf."));
    }
}
