//! Figure 6 — execution time and energy on the host (POWER9 model).

use napel_hostmodel::{HostModel, HostReport};
use napel_pisa::ApplicationProfile;
use napel_workloads::{Scale, Workload};

/// One bar pair of Figure 6.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig6Row {
    /// Application at its Table 2 test input.
    pub workload: Workload,
    /// Host evaluation.
    pub host: HostReport,
}

/// Evaluates every workload's test input on the host model.
pub fn run(workloads: &[Workload], scale: Scale) -> Vec<Fig6Row> {
    let host = HostModel::power9(scale);
    workloads
        .iter()
        .map(|&w| {
            let trace = w.generate_test(scale);
            let profile = ApplicationProfile::of(&trace);
            Fig6Row {
                workload: w,
                host: host.evaluate(&profile),
            }
        })
        .collect()
}

/// Renders the figure as a table.
pub fn render(rows: &[Fig6Row]) -> String {
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.workload.name().to_string(),
                format!("{:.3e}", r.host.exec_time_seconds),
                format!("{:.3e}", r.host.energy_joules),
                format!("{:.2}", r.host.cpi),
                format!("{:.0}%", r.host.dram_fraction * 100.0),
            ]
        })
        .collect();
    super::render_table(
        &[
            "Name",
            "Host time (s)",
            "Host energy (J)",
            "CPI",
            "DRAM traffic",
        ],
        &body,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_cover_requested_workloads() {
        let rows = run(&[Workload::Atax, Workload::Bfs], Scale::tiny());
        assert_eq!(rows.len(), 2);
        for r in &rows {
            assert!(r.host.exec_time_seconds > 0.0);
            assert!(r.host.energy_joules > 0.0);
        }
        let s = render(&rows);
        assert!(s.contains("atax") && s.contains("bfs"));
    }

    #[test]
    fn irregular_kernels_hit_dram_harder() {
        let rows = run(&[Workload::Bfs, Workload::Syrk], Scale::tiny());
        let bfs = &rows[0].host;
        let syrk = &rows[1].host;
        assert!(
            bfs.dram_fraction > syrk.dram_fraction,
            "bfs {} vs syrk {}",
            bfs.dram_fraction,
            syrk.dram_fraction
        );
    }
}
