//! Reproduction drivers for every table and figure of the paper's
//! evaluation (Section 3).
//!
//! Each submodule computes one artifact and renders it as an aligned text
//! table mirroring the paper's layout:
//!
//! | Paper artifact | Module | Regenerator binary |
//! |---|---|---|
//! | Table 2 (applications & DoE levels) | [`table2`] | `table2` |
//! | Table 3 (system parameters) | [`table3`] | `table3` |
//! | Table 4 (DoE counts & training/prediction time) | [`table4`] | `table4` |
//! | Figure 4 (prediction speedup over simulation) | [`fig4`] | `fig4` |
//! | Figure 5 (MRE: NAPEL vs ANN vs decision tree) | [`fig5`] | `fig5` |
//! | Figure 6 (host execution time and energy) | [`fig6`] | `fig6` |
//! | Figure 7 (EDP reduction, NAPEL vs Actual) | [`fig7`] | `fig7` |
//! | Design-choice ablations (ours) | [`ablation`] | `ablation` |
//!
//! The binaries live in the `napel-bench` crate; integration tests drive
//! the same functions at [`napel_workloads::Scale::tiny`].

pub mod ablation;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod table2;
pub mod table3;
pub mod table4;

use napel_workloads::{Scale, Workload};

use crate::campaign::{AnyExecutor, Executor};
use crate::collect::{collect_supervised, collect_with, CollectionPlan};
use crate::fault::{CampaignOptions, CampaignReport};
use crate::features::TrainingSet;
use crate::NapelError;

/// Shared experiment context: one training-data collection reused by every
/// figure.
#[derive(Debug, Clone)]
pub struct Context {
    /// Input scale for all kernels.
    pub scale: Scale,
    /// Seed for every randomized step.
    pub seed: u64,
    /// The full 12-application training set on the Table 3 architecture.
    pub training: TrainingSet,
}

impl Context {
    /// Collects training data for all twelve applications at `scale`.
    ///
    /// Following Section 2.5 ("we run these DoE-selected application-input
    /// configurations on different architectural configurations"), every
    /// DoE point is simulated on a small set of architectures around the
    /// Table 3 design, which both teaches the model its architectural
    /// sensitivity and enlarges the training set. Three configurations keep
    /// single-core collection time reasonable; pass a custom plan through
    /// [`crate::collect::collect`] for a denser sweep.
    pub fn build(scale: Scale, seed: u64) -> Self {
        Self::build_with(scale, seed, &AnyExecutor::from_env())
    }

    /// [`Context::build`] with an explicit campaign executor.
    pub fn build_with<E: Executor>(scale: Scale, seed: u64, exec: &E) -> Self {
        Context {
            scale,
            seed,
            training: collect_with(&Self::full_plan(scale), exec),
        }
    }

    /// [`Context::build`] under the supervised, fault-tolerant campaign
    /// runtime: the collection honors `opts` (fail policy, retries,
    /// checkpoint journal) and the returned [`CampaignReport`] itemizes
    /// every job — restored-from-checkpoint counts, quarantined failures,
    /// timing.
    ///
    /// # Errors
    ///
    /// [`NapelError::Job`] on a fail-fast job failure and
    /// [`NapelError::Checkpoint`] if the journal cannot be opened.
    pub fn build_supervised<E: Executor>(
        scale: Scale,
        seed: u64,
        exec: &E,
        opts: &CampaignOptions,
    ) -> Result<(Self, CampaignReport), NapelError> {
        let (training, report) = collect_supervised(&Self::full_plan(scale), exec, opts)?;
        Ok((
            Context {
                scale,
                seed,
                training,
            },
            report,
        ))
    }

    /// The full-evaluation collection plan behind [`Context::build`]: all
    /// twelve applications, three architectures around the Table 3 design.
    fn full_plan(scale: Scale) -> CollectionPlan {
        let neighborhood = crate::collect::arch_neighborhood();
        CollectionPlan {
            scale,
            arch_configs: neighborhood.into_iter().take(3).collect(),
            ..CollectionPlan::default()
        }
    }

    /// Context restricted to a subset of applications (cheap tests; single
    /// architecture).
    pub fn build_subset(workloads: Vec<Workload>, scale: Scale, seed: u64) -> Self {
        Self::build_subset_with(workloads, scale, seed, &AnyExecutor::from_env())
    }

    /// [`Context::build_subset`] with an explicit campaign executor.
    pub fn build_subset_with<E: Executor>(
        workloads: Vec<Workload>,
        scale: Scale,
        seed: u64,
        exec: &E,
    ) -> Self {
        let plan = CollectionPlan {
            workloads,
            scale,
            ..CollectionPlan::default()
        };
        Context {
            scale,
            seed,
            training: collect_with(&plan, exec),
        }
    }
}

/// Renders a simple aligned text table.
pub(crate) fn render_table(header: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        let mut line = String::new();
        for (i, c) in cells.iter().enumerate() {
            if i > 0 {
                line.push_str("  ");
            }
            line.push_str(&format!("{:<width$}", c, width = widths[i]));
        }
        line.trim_end().to_string()
    };
    let header_cells: Vec<String> = header.iter().map(|s| s.to_string()).collect();
    out.push_str(&fmt_row(&header_cells, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_rendering_aligns_columns() {
        let s = render_table(
            &["name", "value"],
            &[
                vec!["a".into(), "1".into()],
                vec!["longer".into(), "2.5".into()],
            ],
        );
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[2].starts_with("a "));
        let val_col = lines[0].find("value").unwrap();
        assert_eq!(&lines[2][val_col..val_col + 1], "1");
        assert_eq!(&lines[3][val_col..val_col + 3], "2.5");
    }

    #[test]
    fn subset_context_collects_only_requested() {
        let ctx = Context::build_subset(vec![Workload::Atax], Scale::tiny(), 1);
        assert_eq!(ctx.training.workloads(), vec![Workload::Atax]);
    }
}
