//! Fault policies, job outcomes, quarantine reports, and the
//! deterministic fault injector.
//!
//! The campaign engine ([`crate::campaign`]) runs hundreds of independent
//! simulation jobs; one crashed or corrupted job must not forfeit hours of
//! campaign work. This module holds the vocabulary the supervised runtime
//! ([`crate::campaign::run_supervised`]) speaks:
//!
//! - [`FaultPolicy`] — what a job failure does to the rest of the batch:
//!   [`FaultPolicy::FailFast`] stops claiming new jobs and surfaces the
//!   lowest-index failure with its full provenance; with
//!   [`FaultPolicy::Quarantine`] the campaign completes and failed jobs
//!   are excluded from the training rows and itemized in the
//!   [`CampaignReport`].
//! - [`JobOutcome`] / [`JobStatus`] — what happened to each job:
//!   computed, restored from a checkpoint, failed, or skipped after a
//!   fail-fast cancellation.
//! - [`JobFailure`] / [`JobFailureKind`] — a structured error chain
//!   carrying the failed job's provenance (workload × DoE point ×
//!   architecture) and root cause (panic payload, invalid label, or
//!   feature-schema mismatch).
//! - [`FaultInjector`] — a seeded, deterministic test/bench hook that
//!   injects panics and NaN labels at chosen job indices, used to prove
//!   the quarantine/retry/checkpoint machinery without ever making the
//!   production path probabilistic.
//!
//! Determinism under faults: whether a given job fails is a pure function
//! of its index and attempt number (real faults are deterministic replays
//! of the same pure job; injected faults are keyed by index), so the
//! surviving row set and the quarantine report are identical across
//! executors and worker counts — the same guarantee the fault-free
//! engine makes.

use std::collections::{BTreeMap, BTreeSet};
use std::error::Error;
use std::fmt;
use std::path::PathBuf;
use std::time::Duration;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::features::{CollectStats, LabeledRun};

/// How a campaign responds to a failing job.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum FaultPolicy {
    /// The first failure (lowest job index) cancels the batch: workers
    /// stop claiming new jobs, and the failure surfaces as
    /// [`crate::NapelError::Job`] with the job's provenance. This is the
    /// classic abort-on-error behavior, minus the wasted CPU: a failure
    /// at job 3 of 500 does not burn through the other 497 first.
    #[default]
    FailFast,
    /// The campaign completes; failed jobs are excluded from the returned
    /// rows and itemized in the [`CampaignReport`]. Use this when partial
    /// training data is worth more than an abort — NAPEL's models train
    /// fine on 495 of 500 rows, and the report says exactly which five
    /// are missing and why.
    Quarantine,
}

impl FaultPolicy {
    /// Parses a policy specification: `fast`/`fail-fast` or
    /// `quarantine`.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message for anything else.
    pub fn parse_spec(spec: &str) -> Result<FaultPolicy, String> {
        let spec = spec.trim();
        if spec.eq_ignore_ascii_case("fast") || spec.eq_ignore_ascii_case("fail-fast") {
            Ok(FaultPolicy::FailFast)
        } else if spec.eq_ignore_ascii_case("quarantine") {
            Ok(FaultPolicy::Quarantine)
        } else {
            Err(format!(
                "unparsable fault policy `{spec}` (expected `fast` or `quarantine`)"
            ))
        }
    }
}

/// A deterministic exponential backoff schedule with a cap: attempt `n`
/// waits `base · 2ⁿ`, saturating at `cap`. No jitter — the same attempt
/// number always yields the same delay, which keeps retried campaigns and
/// supervised server restarts replayable (the same determinism contract
/// as the rest of this module).
///
/// Shared by the two retry paths in the workspace: the campaign's
/// panicking-job retries ([`CampaignOptions::backoff`]) and `napel-serve`'s
/// worker-restart supervision, so a fault storm backs off identically in
/// both runtimes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Backoff {
    /// Delay before the first retry (attempt 0).
    pub base: Duration,
    /// Upper bound no attempt ever exceeds.
    pub cap: Duration,
}

impl Backoff {
    /// A schedule starting at `base` and doubling up to `cap`.
    pub const fn new(base: Duration, cap: Duration) -> Backoff {
        Backoff { base, cap }
    }

    /// A schedule that never waits (the pre-backoff immediate-retry
    /// behavior, and the right choice for unit tests).
    pub const fn none() -> Backoff {
        Backoff::new(Duration::ZERO, Duration::ZERO)
    }

    /// The delay before retry `attempt` (0-based): `base · 2^attempt`,
    /// saturating at `cap`. Overflow-safe for any attempt number.
    pub fn delay(&self, attempt: u32) -> Duration {
        if self.base.is_zero() {
            return Duration::ZERO;
        }
        // 2^attempt saturates well before Duration does: past 2^63 the
        // product exceeds any representable cap.
        let factor = 1u64.checked_shl(attempt).unwrap_or(u64::MAX);
        self.base
            .saturating_mul(factor.min(u32::MAX as u64) as u32)
            .min(self.cap)
    }
}

impl Default for Backoff {
    /// 25 ms doubling to a 2 s cap: long enough to ride out a transient
    /// (file-system hiccup, memory pressure), short enough that a
    /// single-retry campaign job costs milliseconds.
    fn default() -> Backoff {
        Backoff::new(Duration::from_millis(25), Duration::from_secs(2))
    }
}

/// Options governing a supervised campaign run: fault policy, retry
/// budget, checkpointing, and (for tests and benches) fault injection.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CampaignOptions {
    /// What a job failure does to the batch.
    pub policy: FaultPolicy,
    /// Extra attempts granted to a *panicking* job before it is declared
    /// failed (0 = one attempt, no retry). Retries are deterministic:
    /// attempt numbers are part of the job's identity, so a retried
    /// campaign is replayable. Invalid labels are never retried — a
    /// deterministic simulator returns the same bad label every time.
    pub retries: u32,
    /// Delay schedule between a panicking job's attempts. Retrying
    /// immediately is the wrong move for the faults retries exist for
    /// (transient resource exhaustion); the default backs off 25 ms,
    /// 50 ms, 100 ms, ... capped at 2 s. Use [`Backoff::none`] to restore
    /// immediate retries (e.g. in unit tests).
    pub backoff: Backoff,
    /// Append-only checkpoint journal path. When set, every completed
    /// job's row is journaled, and jobs whose descriptor hash is already
    /// present are restored without recomputation — which is what lets a
    /// killed campaign resume. See [`crate::checkpoint`].
    pub checkpoint: Option<PathBuf>,
    /// Deterministic fault injection (tests and benches only; `None` in
    /// production).
    pub injector: Option<FaultInjector>,
}

impl CampaignOptions {
    /// Options from the environment:
    ///
    /// - `NAPEL_CHECKPOINT` — journal path (unset/empty → no checkpoint),
    /// - `NAPEL_FAIL_POLICY` — `fast` (default) or `quarantine`,
    /// - `NAPEL_RETRIES` — extra attempts for panicking jobs (default 0).
    ///
    /// Unparsable values warn once *per distinct message* (via the
    /// `napel-telemetry` log facade, so `NAPEL_LOG` and `--quiet` apply)
    /// and fall back to the default, mirroring `NAPEL_JOBS` handling — a
    /// typo must not abort (or silently reconfigure) a long campaign.
    pub fn from_env() -> Self {
        let mut opts = CampaignOptions::default();
        if let Ok(path) = std::env::var("NAPEL_CHECKPOINT") {
            if !path.trim().is_empty() {
                opts.checkpoint = Some(PathBuf::from(path));
            }
        }
        if let Ok(spec) = std::env::var("NAPEL_FAIL_POLICY") {
            match FaultPolicy::parse_spec(&spec) {
                Ok(policy) => opts.policy = policy,
                // Deduplicated by message (not call site), so a later,
                // *different* bad spec in the same process still warns.
                Err(msg) => {
                    napel_telemetry::warn_once!(
                        "napel: NAPEL_FAIL_POLICY: {msg}; keeping fail-fast"
                    );
                }
            }
        }
        if let Ok(spec) = std::env::var("NAPEL_RETRIES") {
            match spec.trim().parse::<u32>() {
                Ok(n) => opts.retries = n,
                Err(_) => {
                    napel_telemetry::warn_once!(
                        "napel: NAPEL_RETRIES: unparsable `{spec}` (expected an integer); keeping 0"
                    );
                }
            }
        }
        opts
    }

    /// Options with the [`FaultPolicy::Quarantine`] policy.
    pub fn quarantine() -> Self {
        CampaignOptions {
            policy: FaultPolicy::Quarantine,
            ..CampaignOptions::default()
        }
    }

    /// Replaces the checkpoint journal path.
    pub fn with_checkpoint(mut self, path: impl Into<PathBuf>) -> Self {
        self.checkpoint = Some(path.into());
        self
    }

    /// Replaces the retry budget.
    pub fn with_retries(mut self, retries: u32) -> Self {
        self.retries = retries;
        self
    }

    /// Replaces the retry backoff schedule.
    pub fn with_backoff(mut self, backoff: Backoff) -> Self {
        self.backoff = backoff;
        self
    }

    /// Installs a fault injector.
    pub fn with_injector(mut self, injector: FaultInjector) -> Self {
        self.injector = Some(injector);
        self
    }
}

/// What happened to one job of a supervised batch.
#[derive(Debug, Clone, PartialEq)]
pub enum JobStatus {
    /// The job ran and its row passed the label-validation gate.
    Completed,
    /// The job's row was restored from the checkpoint journal without
    /// recomputation.
    Restored,
    /// The job failed; the kind carries the root cause. Provenance lives
    /// in the matching [`JobFailure`] of the report's quarantine list.
    Failed(JobFailureKind),
    /// The job was never attempted because a fail-fast cancellation was
    /// already in flight.
    Skipped,
}

/// The structured per-job record a supervised campaign returns: index,
/// status, attempt count, and wall-clock duration.
#[derive(Debug, Clone, PartialEq)]
pub struct JobOutcome {
    /// The job's batch index.
    pub index: usize,
    /// How the job ended.
    pub status: JobStatus,
    /// Attempts consumed (0 for restored/skipped jobs; `1 + retries` at
    /// most).
    pub attempts: u32,
    /// Wall-clock seconds spent on this job in this run (0 for
    /// restored/skipped jobs). A measurement, not part of the
    /// determinism guarantee.
    pub seconds: f64,
}

/// Root cause of a job failure.
#[derive(Debug, Clone, PartialEq)]
pub enum JobFailureKind {
    /// The job panicked; carries the panic payload rendered as text.
    Panic(String),
    /// The simulated labels failed the validation gate (non-finite or
    /// out-of-range IPC/energy).
    InvalidLabel(String),
    /// The profile/architecture feature schema was inconsistent.
    Schema(String),
}

impl fmt::Display for JobFailureKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JobFailureKind::Panic(what) => write!(f, "panicked: {what}"),
            JobFailureKind::InvalidLabel(what) => write!(f, "invalid label: {what}"),
            JobFailureKind::Schema(what) => write!(f, "feature schema mismatch: {what}"),
        }
    }
}

impl Error for JobFailureKind {}

/// A failed job with its full provenance: which workload at which DoE
/// point on which architecture, how many attempts it was given, and why
/// it failed.
#[derive(Debug, Clone, PartialEq)]
pub struct JobFailure {
    /// The job's batch index.
    pub index: usize,
    /// Workload name.
    pub workload: String,
    /// The DoE point (application-input configuration, spec order).
    pub params: Vec<f64>,
    /// The architecture configuration, rendered for diagnostics.
    pub arch: String,
    /// Attempts consumed before giving up.
    pub attempts: u32,
    /// Root cause.
    pub kind: JobFailureKind,
}

impl fmt::Display for JobFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "job {} ({} @ {:?} on {}) after {} attempt{}: {}",
            self.index,
            self.workload,
            self.params,
            self.arch,
            self.attempts,
            if self.attempts == 1 { "" } else { "s" },
            self.kind
        )
    }
}

impl Error for JobFailure {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        Some(&self.kind)
    }
}

/// The itemized result of a supervised campaign: one [`JobOutcome`] per
/// job (in index order), the quarantined failures with provenance, and
/// campaign timing.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignReport {
    /// Per-job outcomes, in job-index order, one per job of the batch.
    pub outcomes: Vec<JobOutcome>,
    /// Failures excluded from the returned rows, in job-index order.
    /// Empty on a clean (or fully restored) campaign.
    pub quarantined: Vec<JobFailure>,
    /// Jobs restored from the checkpoint journal instead of recomputed.
    pub restored: usize,
    /// Campaign timing (only work actually done in this run; restored
    /// jobs contribute nothing).
    pub stats: CollectStats,
}

impl CampaignReport {
    /// Jobs that ran to completion in this run (excludes restored ones).
    pub fn executed(&self) -> usize {
        self.outcomes
            .iter()
            .filter(|o| o.status == JobStatus::Completed)
            .count()
    }

    /// Whether every job produced (or restored) a valid row.
    pub fn is_clean(&self) -> bool {
        self.quarantined.is_empty()
    }

    /// Indices of the quarantined jobs, ascending.
    pub fn quarantined_indices(&self) -> Vec<usize> {
        self.quarantined.iter().map(|q| q.index).collect()
    }

    /// One-line human summary, e.g. for driver binaries.
    pub fn summary(&self) -> String {
        format!(
            "{} jobs: {} executed, {} restored, {} quarantined",
            self.outcomes.len(),
            self.executed(),
            self.restored,
            self.quarantined.len()
        )
    }
}

/// Deterministic fault injection for tests and benches: panics and NaN
/// labels at chosen job indices.
///
/// Faults are keyed by job index (and, for panics, attempt number), so an
/// injected campaign is as deterministic as a clean one — the quarantine
/// report and surviving rows are identical across executors. The
/// production path never constructs one of these; see
/// [`CampaignOptions::injector`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultInjector {
    /// job index → number of leading attempts that panic
    /// (`u32::MAX` = every attempt).
    panics: BTreeMap<usize, u32>,
    /// Jobs whose IPC label is corrupted to NaN after simulation.
    nan_labels: BTreeSet<usize>,
}

impl FaultInjector {
    /// An injector with no faults.
    pub fn new() -> Self {
        FaultInjector::default()
    }

    /// A seeded injector over a batch of `jobs` jobs: each index
    /// independently panics with probability `panic_frac`, or (else)
    /// gets a NaN IPC label with probability `nan_frac`. Deterministic
    /// in `seed`.
    pub fn seeded(seed: u64, jobs: usize, panic_frac: f64, nan_frac: f64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut inj = FaultInjector::new();
        for index in 0..jobs {
            let roll: f64 = rng.gen_range(0.0..1.0);
            if roll < panic_frac {
                inj.panics.insert(index, u32::MAX);
            } else if roll < panic_frac + nan_frac {
                inj.nan_labels.insert(index);
            }
        }
        inj
    }

    /// Panics every attempt of job `index`.
    pub fn panic_at(mut self, index: usize) -> Self {
        self.panics.insert(index, u32::MAX);
        self
    }

    /// Panics only the first attempt of job `index` (a transient fault —
    /// a retry succeeds).
    pub fn panic_once_at(mut self, index: usize) -> Self {
        self.panics.insert(index, 1);
        self
    }

    /// Corrupts job `index`'s IPC label to NaN after simulation.
    pub fn nan_label_at(mut self, index: usize) -> Self {
        self.nan_labels.insert(index);
        self
    }

    /// Indices that panic on at least their first attempt, ascending.
    pub fn panic_indices(&self) -> Vec<usize> {
        self.panics.keys().copied().collect()
    }

    /// Indices whose first attempt panics on *every* retry, ascending.
    pub fn persistent_panic_indices(&self) -> Vec<usize> {
        self.panics
            .iter()
            .filter(|(_, &n)| n == u32::MAX)
            .map(|(&i, _)| i)
            .collect()
    }

    /// Indices with corrupted labels, ascending.
    pub fn nan_indices(&self) -> Vec<usize> {
        self.nan_labels.iter().copied().collect()
    }

    /// All faulty indices (panic or label), ascending.
    pub fn faulty_indices(&self) -> Vec<usize> {
        let mut all: BTreeSet<usize> = self.panics.keys().copied().collect();
        all.extend(self.nan_labels.iter().copied());
        all.into_iter().collect()
    }

    /// Trips an injected panic, if one is registered for this index and
    /// attempt.
    pub(crate) fn maybe_panic(&self, index: usize, attempt: u32) {
        if let Some(&n) = self.panics.get(&index) {
            if attempt < n {
                panic!("injected panic at job {index} (attempt {attempt})");
            }
        }
    }

    /// Applies an injected label corruption, if registered.
    pub(crate) fn corrupt(&self, index: usize, run: &mut LabeledRun) {
        if self.nan_labels.contains(&index) {
            run.ipc = f64::NAN;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_schedule_doubles_and_caps() {
        let b = Backoff::new(Duration::from_millis(25), Duration::from_secs(2));
        assert_eq!(b.delay(0), Duration::from_millis(25));
        assert_eq!(b.delay(1), Duration::from_millis(50));
        assert_eq!(b.delay(2), Duration::from_millis(100));
        assert_eq!(b.delay(3), Duration::from_millis(200));
        // 25ms * 2^7 = 3.2s, past the cap.
        assert_eq!(b.delay(7), Duration::from_secs(2));
        // Deep attempt numbers saturate instead of overflowing.
        assert_eq!(b.delay(63), Duration::from_secs(2));
        assert_eq!(b.delay(u32::MAX), Duration::from_secs(2));
        // The schedule is deterministic: same attempt, same delay.
        assert_eq!(b.delay(4), b.delay(4));
    }

    #[test]
    fn backoff_none_never_waits() {
        let b = Backoff::none();
        for attempt in [0, 1, 10, 63, u32::MAX] {
            assert_eq!(b.delay(attempt), Duration::ZERO);
        }
    }

    #[test]
    fn default_options_carry_the_default_schedule() {
        let opts = CampaignOptions::default();
        assert_eq!(opts.backoff, Backoff::default());
        let opts = opts.with_backoff(Backoff::none());
        assert_eq!(opts.backoff, Backoff::none());
    }

    #[test]
    fn policy_specs_parse() {
        assert_eq!(FaultPolicy::parse_spec("fast"), Ok(FaultPolicy::FailFast));
        assert_eq!(
            FaultPolicy::parse_spec("FAIL-FAST"),
            Ok(FaultPolicy::FailFast)
        );
        assert_eq!(
            FaultPolicy::parse_spec(" quarantine "),
            Ok(FaultPolicy::Quarantine)
        );
        let err = FaultPolicy::parse_spec("later").unwrap_err();
        assert!(err.contains("`later`"), "{err}");
    }

    #[test]
    fn injector_is_deterministic_in_its_seed() {
        let a = FaultInjector::seeded(42, 500, 0.05, 0.05);
        let b = FaultInjector::seeded(42, 500, 0.05, 0.05);
        assert_eq!(a, b);
        let c = FaultInjector::seeded(43, 500, 0.05, 0.05);
        assert_ne!(a, c, "different seeds should move the fault set");
        // Panic and label faults never overlap for a seeded injector.
        let panics: BTreeSet<_> = a.panic_indices().into_iter().collect();
        assert!(a.nan_indices().iter().all(|i| !panics.contains(i)));
        // ~10% of 500 ± noise.
        let total = a.faulty_indices().len();
        assert!((10..=100).contains(&total), "{total} faults");
    }

    #[test]
    fn injected_panics_respect_attempt_budget() {
        let inj = FaultInjector::new().panic_once_at(3).panic_at(5);
        // Job 3: first attempt trips, second is clean.
        assert!(std::panic::catch_unwind(|| inj.maybe_panic(3, 0)).is_err());
        inj.maybe_panic(3, 1);
        // Job 5: every attempt trips.
        assert!(std::panic::catch_unwind(|| inj.maybe_panic(5, 7)).is_err());
        // Unregistered jobs never trip.
        inj.maybe_panic(0, 0);
        assert_eq!(inj.faulty_indices(), vec![3, 5]);
    }

    #[test]
    fn report_summary_counts() {
        let report = CampaignReport {
            outcomes: vec![
                JobOutcome {
                    index: 0,
                    status: JobStatus::Completed,
                    attempts: 1,
                    seconds: 0.1,
                },
                JobOutcome {
                    index: 1,
                    status: JobStatus::Restored,
                    attempts: 0,
                    seconds: 0.0,
                },
                JobOutcome {
                    index: 2,
                    status: JobStatus::Failed(JobFailureKind::Panic("x".into())),
                    attempts: 1,
                    seconds: 0.2,
                },
            ],
            quarantined: vec![JobFailure {
                index: 2,
                workload: "atax".into(),
                params: vec![],
                arch: String::new(),
                attempts: 1,
                kind: JobFailureKind::Panic("x".into()),
            }],
            restored: 1,
            stats: CollectStats::default(),
        };
        assert_eq!(report.executed(), 1);
        assert!(!report.is_clean());
        assert_eq!(report.quarantined_indices(), vec![2]);
        assert!(report.summary().contains("1 quarantined"));
    }
}
