//! Accuracy analysis (Section 3.3) and the NMC-suitability use case
//! (Section 3.4).

use rand::rngs::StdRng;
use rand::SeedableRng;

use napel_ml::metrics::mean_relative_error;
use napel_ml::persist::Predictor;
use napel_ml::{Estimator, Regressor};
use napel_pisa::ApplicationProfile;
use napel_workloads::{Scale, Workload};
use nmc_sim::{ArchConfig, NmcSystem};

use napel_hostmodel::HostModel;

use crate::artifact::{self, ModelArtifact, ModelIo, Provenance, TargetKind};
use crate::campaign::{catch_job_panic, AnyExecutor, Executor};
use crate::fault::{JobFailure, JobFailureKind};
use crate::features::TrainingSet;
use crate::model::{Napel, NapelConfig};
use crate::NapelError;

/// Converts a caught fold panic into a provenance-carrying error: which
/// held-out application's fold died, and with what payload. A panicking
/// estimator must not take down the whole evaluation protocol.
fn fold_panic(index: usize, held_out: Workload, stage: &str, message: String) -> NapelError {
    NapelError::Job(JobFailure {
        index,
        workload: held_out.name().to_string(),
        params: Vec::new(),
        arch: stage.to_string(),
        attempts: 1,
        kind: JobFailureKind::Panic(message),
    })
}

/// Leave-one-application-out accuracy of one estimator for one workload.
#[derive(Debug, Clone, PartialEq)]
pub struct LoaoResult {
    /// The held-out application.
    pub workload: Workload,
    /// MRE of IPC predictions on the held-out application.
    pub perf_mre: f64,
    /// MRE of energy predictions on the held-out application.
    pub energy_mre: f64,
}

/// Leave-one-application-out evaluation of an arbitrary estimator — the
/// protocol of Section 3.3: "every time we test for a particular
/// application, we do not include it in the training set".
///
/// # Errors
///
/// Returns [`NapelError`] if the set holds fewer than two applications or
/// an estimator fails to fit.
pub fn loao_accuracy<E>(
    estimator: &E,
    set: &TrainingSet,
    seed: u64,
) -> Result<Vec<LoaoResult>, NapelError>
where
    E: Estimator + Sync,
    E::Model: Predictor + Send + Sync + 'static,
{
    loao_accuracy_with(estimator, set, seed, &AnyExecutor::from_env())
}

/// [`loao_accuracy`] with an explicit executor: the folds — one per
/// application — form one job batch, each fold re-seeding its own RNG
/// from `seed`, so results are identical for any executor and worker
/// count.
///
/// # Errors
///
/// Returns [`NapelError`] if the set holds fewer than two applications or
/// an estimator fails to fit.
pub fn loao_accuracy_with<E, X>(
    estimator: &E,
    set: &TrainingSet,
    seed: u64,
    exec: &X,
) -> Result<Vec<LoaoResult>, NapelError>
where
    E: Estimator + Sync,
    E::Model: Predictor + Send + Sync + 'static,
    X: Executor,
{
    loao_accuracy_io(estimator, set, seed, &ModelIo::none(), "loao", exec)
}

/// A fold's pair of decoded predictors: IPC first, energy second.
type FoldModels = (
    Box<dyn Predictor + Send + Sync>,
    Box<dyn Predictor + Send + Sync>,
);

/// Loads a two-artifact fold bundle and validates it against `set`'s
/// schema, returning the IPC and energy predictors.
fn load_fold_models(path: &std::path::Path, set: &TrainingSet) -> Result<FoldModels, NapelError> {
    let artifacts = artifact::read_artifacts(path)?;
    if artifacts.len() != 2 {
        return Err(NapelError::Artifact {
            path: path.display().to_string(),
            what: format!(
                "bundle holds {} artifacts, expected ipc + energy_per_inst",
                artifacts.len()
            ),
        });
    }
    artifacts[0].expect_schema(TargetKind::Ipc, &set.feature_names)?;
    artifacts[1].expect_schema(TargetKind::EnergyPerInst, &set.feature_names)?;
    Ok((artifacts[0].predictor()?, artifacts[1].predictor()?))
}

/// Saves a fold's fitted models as a two-artifact bundle under `dir`.
fn save_fold_models(
    dir: &std::path::Path,
    key: &str,
    seed: u64,
    describe: String,
    train: &TrainingSet,
    schema: &[String],
    models: (&dyn Predictor, &dyn Predictor),
) -> Result<(), NapelError> {
    let (perf_model, energy_model) = models;
    std::fs::create_dir_all(dir).map_err(|e| NapelError::Artifact {
        path: dir.display().to_string(),
        what: format!("create failed: {e}"),
    })?;
    let provenance = Provenance {
        seed,
        grid: vec![describe],
        workloads: train
            .workloads()
            .iter()
            .map(|w| w.name().to_string())
            .collect(),
        training_rows: train.runs.len(),
        training_hash: train.content_hash(),
    };
    let perf = ModelArtifact::from_predictor(
        TargetKind::Ipc,
        schema.to_vec(),
        provenance.clone(),
        None,
        perf_model,
    )?;
    let energy = ModelArtifact::from_predictor(
        TargetKind::EnergyPerInst,
        schema.to_vec(),
        provenance,
        None,
        energy_model,
    )?;
    artifact::write_artifacts(&ModelIo::bundle_path(dir, key), &[&perf, &energy])?;
    Ok(())
}

/// [`loao_accuracy_with`] threaded through an artifact policy: with a save
/// directory, each fold's fitted models are persisted as
/// `<dir>/<key_prefix>-<workload>.napel`; with a load directory, folds
/// skip training entirely and evaluate the stored models (which reproduce
/// the direct path's MREs bit for bit, same seed).
///
/// # Errors
///
/// As [`loao_accuracy_with`], plus [`NapelError::Artifact`] for
/// save/load failures or schema mismatches.
pub fn loao_accuracy_io<E, X>(
    estimator: &E,
    set: &TrainingSet,
    seed: u64,
    io: &ModelIo,
    key_prefix: &str,
    exec: &X,
) -> Result<Vec<LoaoResult>, NapelError>
where
    E: Estimator + Sync,
    E::Model: Predictor + Send + Sync + 'static,
    X: Executor,
{
    let workloads = set.workloads();
    if workloads.len() < 2 {
        return Err(NapelError::BadTrainingSet {
            what: "leave-one-application-out needs at least two applications".into(),
        });
    }
    let folds = exec.map(&workloads, |i, &held_out| {
        // A panicking fit in one fold is isolated and surfaced as an
        // error naming the fold, not a process abort.
        catch_job_panic(|| {
            let key = format!("{key_prefix}-{}", held_out.name());
            let test = set.filtered(|w| w == held_out);
            let (perf_model, energy_model): (
                Box<dyn Predictor + Send + Sync>,
                Box<dyn Predictor + Send + Sync>,
            ) = if let Some(dir) = io.load_dir() {
                load_fold_models(&ModelIo::bundle_path(dir, &key), set)?
            } else {
                let train = set.filtered(|w| w != held_out);
                let mut rng = StdRng::seed_from_u64(seed);
                let perf_model = estimator.fit(&train.ipc_dataset()?, &mut rng)?;
                let energy_model = estimator.fit(&train.energy_dataset()?, &mut rng)?;
                if let Some(dir) = io.save_dir() {
                    save_fold_models(
                        dir,
                        &key,
                        seed,
                        estimator.describe(),
                        &train,
                        &set.feature_names,
                        (&perf_model, &energy_model),
                    )?;
                }
                (Box::new(perf_model), Box::new(energy_model))
            };

            let perf_pred: Vec<f64> = test
                .runs
                .iter()
                .map(|r| perf_model.predict_one(&r.features))
                .collect();
            let perf_actual: Vec<f64> = test.runs.iter().map(|r| r.ipc).collect();
            let energy_pred: Vec<f64> = test
                .runs
                .iter()
                .map(|r| energy_model.predict_one(&r.features))
                .collect();
            let energy_actual: Vec<f64> = test.runs.iter().map(|r| r.energy_per_inst_pj).collect();

            Ok(LoaoResult {
                workload: held_out,
                perf_mre: mean_relative_error(&perf_pred, &perf_actual),
                energy_mre: mean_relative_error(&energy_pred, &energy_actual),
            })
        })
        .unwrap_or_else(|message| Err(fold_panic(i, held_out, "loao fold", message)))
    });
    folds.into_iter().collect()
}

/// Mean over per-application MREs.
pub fn average_mre(results: &[LoaoResult]) -> (f64, f64) {
    let n = results.len().max(1) as f64;
    (
        results.iter().map(|r| r.perf_mre).sum::<f64>() / n,
        results.iter().map(|r| r.energy_mre).sum::<f64>() / n,
    )
}

/// One workload's row of the Figure 6/7 analysis.
#[derive(Debug, Clone, PartialEq)]
pub struct SuitabilityRow {
    /// The workload, evaluated at its Table 2 *test* input.
    pub workload: Workload,
    /// Host execution time, seconds (Figure 6).
    pub host_time_s: f64,
    /// Host energy, joules (Figure 6).
    pub host_energy_j: f64,
    /// NAPEL-predicted NMC execution time, seconds.
    pub nmc_pred_time_s: f64,
    /// NAPEL-predicted NMC energy, joules.
    pub nmc_pred_energy_j: f64,
    /// Simulated ("Actual") NMC execution time, seconds.
    pub nmc_actual_time_s: f64,
    /// Simulated NMC energy, joules.
    pub nmc_actual_energy_j: f64,
}

impl SuitabilityRow {
    /// Estimated EDP reduction `EDP_host / EDP_NMC` from NAPEL's
    /// prediction (the "NAPEL" bar of Figure 7). Values above 1 mean the
    /// workload is NMC-suitable.
    pub fn edp_reduction_predicted(&self) -> f64 {
        (self.host_time_s * self.host_energy_j) / (self.nmc_pred_time_s * self.nmc_pred_energy_j)
    }

    /// EDP reduction from the simulator (the "Actual" bar of Figure 7).
    pub fn edp_reduction_actual(&self) -> f64 {
        (self.host_time_s * self.host_energy_j)
            / (self.nmc_actual_time_s * self.nmc_actual_energy_j)
    }

    /// Relative error of NAPEL's EDP estimate vs the simulator's.
    pub fn edp_mre(&self) -> f64 {
        let pred = self.edp_reduction_predicted();
        let actual = self.edp_reduction_actual();
        (pred - actual).abs() / actual.abs().max(1e-12)
    }

    /// Whether NAPEL and the simulator agree on NMC suitability
    /// (the paper's first observation on Figure 7).
    pub fn suitability_agrees(&self) -> bool {
        (self.edp_reduction_predicted() > 1.0) == (self.edp_reduction_actual() > 1.0)
    }
}

/// Runs the Section 3.4 use case for every workload in `set`: train NAPEL
/// without the workload, predict its *test*-input EDP on `arch`, compare
/// against simulation and the host model.
///
/// # Errors
///
/// Propagates training failures.
pub fn nmc_suitability(
    set: &TrainingSet,
    config: &NapelConfig,
    arch: &ArchConfig,
    scale: Scale,
) -> Result<Vec<SuitabilityRow>, NapelError> {
    nmc_suitability_with(set, config, arch, scale, &AnyExecutor::from_env())
}

/// [`nmc_suitability`] with an explicit executor: one job per held-out
/// application (train-without, predict, simulate, host-model), results in
/// workload order for any executor.
///
/// # Errors
///
/// Propagates training failures.
pub fn nmc_suitability_with<X: Executor>(
    set: &TrainingSet,
    config: &NapelConfig,
    arch: &ArchConfig,
    scale: Scale,
    exec: &X,
) -> Result<Vec<SuitabilityRow>, NapelError> {
    nmc_suitability_io(
        set,
        config,
        arch,
        scale,
        &ModelIo::none(),
        "suitability",
        exec,
    )
}

/// [`nmc_suitability_with`] threaded through an artifact policy: each
/// held-out application's trained NAPEL instance is saved as (or loaded
/// from) `<dir>/<key_prefix>-<workload>.napel`. With a load directory the
/// training step is skipped and the predicted columns reproduce the
/// direct path bit for bit (host/simulator columns are recomputed either
/// way).
///
/// # Errors
///
/// As [`nmc_suitability_with`], plus [`NapelError::Artifact`] for
/// save/load failures or schema mismatches.
pub fn nmc_suitability_io<X: Executor>(
    set: &TrainingSet,
    config: &NapelConfig,
    arch: &ArchConfig,
    scale: Scale,
    io: &ModelIo,
    key_prefix: &str,
    exec: &X,
) -> Result<Vec<SuitabilityRow>, NapelError> {
    let host = HostModel::power9(scale);
    let rows = exec.map(&set.workloads(), |i, &held_out| {
        catch_job_panic(|| {
            let key = format!("{key_prefix}-{}", held_out.name());
            let trained = io.train_or_load(&key, || {
                let train = set.filtered(|w| w != held_out);
                Napel::new(config.clone()).train(&train)
            })?;

            let trace = held_out.generate_test(scale);
            let profile = ApplicationProfile::of(&trace);
            let instructions = trace.total_insts() as u64;

            let pred = trained.predict(&profile, arch);
            let report = NmcSystem::new(arch.clone()).run(&trace);
            let host_report = host.evaluate(&profile);

            Ok(SuitabilityRow {
                workload: held_out,
                host_time_s: host_report.exec_time_seconds,
                host_energy_j: host_report.energy_joules,
                nmc_pred_time_s: pred.exec_time_seconds(instructions),
                nmc_pred_energy_j: pred.energy_joules(instructions),
                nmc_actual_time_s: report.exec_time_seconds(),
                nmc_actual_energy_j: report.energy_joules(),
            })
        })
        .unwrap_or_else(|message| Err(fold_panic(i, held_out, "suitability row", message)))
    });
    rows.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collect::{collect, CollectionPlan};
    use napel_ml::forest::RandomForestParams;

    fn small_set() -> TrainingSet {
        collect(&CollectionPlan {
            workloads: vec![Workload::Atax, Workload::Gemv, Workload::Mvt],
            scale: Scale::tiny(),
            ..Default::default()
        })
    }

    #[test]
    fn loao_covers_every_workload_once() {
        let set = small_set();
        let results = loao_accuracy(&RandomForestParams::default(), &set, 7).unwrap();
        assert_eq!(results.len(), 3);
        let names: Vec<&str> = results.iter().map(|r| r.workload.name()).collect();
        assert_eq!(names, vec!["atax", "gemv", "mvt"]);
        for r in &results {
            assert!(r.perf_mre.is_finite() && r.perf_mre >= 0.0);
            assert!(r.energy_mre.is_finite() && r.energy_mre >= 0.0);
        }
    }

    #[test]
    fn loao_folds_are_executor_independent() {
        use crate::campaign::{Serial, Threaded};
        let set = small_set();
        let est = RandomForestParams::default();
        let serial = loao_accuracy_with(&est, &set, 7, &Serial).unwrap();
        let threaded = loao_accuracy_with(&est, &set, 7, &Threaded::new(3)).unwrap();
        assert_eq!(
            serial, threaded,
            "folds re-seed per fold; executor must not matter"
        );
    }

    #[test]
    fn loao_needs_two_apps() {
        let set = small_set().filtered(|w| w == Workload::Atax);
        let err = loao_accuracy(&RandomForestParams::default(), &set, 7).unwrap_err();
        assert!(matches!(err, NapelError::BadTrainingSet { .. }));
    }

    #[test]
    fn average_mre_averages() {
        let results = vec![
            LoaoResult {
                workload: Workload::Atax,
                perf_mre: 0.1,
                energy_mre: 0.2,
            },
            LoaoResult {
                workload: Workload::Gemv,
                perf_mre: 0.3,
                energy_mre: 0.4,
            },
        ];
        let (p, e) = average_mre(&results);
        assert!((p - 0.2).abs() < 1e-12);
        assert!((e - 0.3).abs() < 1e-12);
    }

    #[test]
    fn loao_artifact_path_reproduces_direct_path_exactly() {
        use crate::campaign::Serial;
        let set = small_set();
        let est = RandomForestParams::default();
        let direct = loao_accuracy_with(&est, &set, 7, &Serial).unwrap();

        let dir = std::env::temp_dir().join("napel-loao-io-test");
        std::fs::remove_dir_all(&dir).ok();
        let save = ModelIo::new(Some(dir.clone()), None);
        let saved = loao_accuracy_io(&est, &set, 7, &save, "loao", &Serial).unwrap();
        assert_eq!(direct, saved, "saving must not perturb the evaluation");

        let load = ModelIo::new(None, Some(dir.clone()));
        let loaded = loao_accuracy_io(&est, &set, 7, &load, "loao", &Serial).unwrap();
        assert_eq!(
            direct, loaded,
            "loaded artifacts must reproduce MREs bit for bit"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn suitability_from_artifacts_matches_direct() {
        use crate::campaign::Serial;
        let set = small_set();
        let config = NapelConfig::untuned();
        let arch = ArchConfig::paper_default();
        let direct = nmc_suitability_with(&set, &config, &arch, Scale::tiny(), &Serial).unwrap();

        let dir = std::env::temp_dir().join("napel-suit-io-test");
        std::fs::remove_dir_all(&dir).ok();
        let save = ModelIo::new(Some(dir.clone()), None);
        let saved = nmc_suitability_io(&set, &config, &arch, Scale::tiny(), &save, "fig7", &Serial)
            .unwrap();
        assert_eq!(direct, saved);

        let load = ModelIo::new(None, Some(dir.clone()));
        let loaded =
            nmc_suitability_io(&set, &config, &arch, Scale::tiny(), &load, "fig7", &Serial)
                .unwrap();
        assert_eq!(
            direct, loaded,
            "every column, including predictions, matches"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn suitability_rows_are_consistent() {
        let set = small_set();
        let rows = nmc_suitability(
            &set,
            &NapelConfig::untuned(),
            &ArchConfig::paper_default(),
            Scale::tiny(),
        )
        .unwrap();
        assert_eq!(rows.len(), 3);
        for r in &rows {
            assert!(
                r.host_time_s > 0.0 && r.host_energy_j > 0.0,
                "{:?}",
                r.workload
            );
            assert!(r.nmc_actual_time_s > 0.0 && r.nmc_actual_energy_j > 0.0);
            assert!(r.nmc_pred_time_s > 0.0 && r.nmc_pred_energy_j > 0.0);
            assert!(r.edp_reduction_actual().is_finite());
            assert!(r.edp_mre().is_finite());
        }
    }
}
