//! Accuracy analysis (Section 3.3) and the NMC-suitability use case
//! (Section 3.4).

use rand::rngs::StdRng;
use rand::SeedableRng;

use napel_ml::metrics::mean_relative_error;
use napel_ml::{Estimator, Regressor};
use napel_pisa::ApplicationProfile;
use napel_workloads::{Scale, Workload};
use nmc_sim::{ArchConfig, NmcSystem};

use napel_hostmodel::HostModel;

use crate::campaign::{catch_job_panic, AnyExecutor, Executor};
use crate::fault::{JobFailure, JobFailureKind};
use crate::features::TrainingSet;
use crate::model::{Napel, NapelConfig};
use crate::NapelError;

/// Converts a caught fold panic into a provenance-carrying error: which
/// held-out application's fold died, and with what payload. A panicking
/// estimator must not take down the whole evaluation protocol.
fn fold_panic(index: usize, held_out: Workload, stage: &str, message: String) -> NapelError {
    NapelError::Job(JobFailure {
        index,
        workload: held_out.name().to_string(),
        params: Vec::new(),
        arch: stage.to_string(),
        attempts: 1,
        kind: JobFailureKind::Panic(message),
    })
}

/// Leave-one-application-out accuracy of one estimator for one workload.
#[derive(Debug, Clone, PartialEq)]
pub struct LoaoResult {
    /// The held-out application.
    pub workload: Workload,
    /// MRE of IPC predictions on the held-out application.
    pub perf_mre: f64,
    /// MRE of energy predictions on the held-out application.
    pub energy_mre: f64,
}

/// Leave-one-application-out evaluation of an arbitrary estimator — the
/// protocol of Section 3.3: "every time we test for a particular
/// application, we do not include it in the training set".
///
/// # Errors
///
/// Returns [`NapelError`] if the set holds fewer than two applications or
/// an estimator fails to fit.
pub fn loao_accuracy<E: Estimator + Sync>(
    estimator: &E,
    set: &TrainingSet,
    seed: u64,
) -> Result<Vec<LoaoResult>, NapelError> {
    loao_accuracy_with(estimator, set, seed, &AnyExecutor::from_env())
}

/// [`loao_accuracy`] with an explicit executor: the folds — one per
/// application — form one job batch, each fold re-seeding its own RNG
/// from `seed`, so results are identical for any executor and worker
/// count.
///
/// # Errors
///
/// Returns [`NapelError`] if the set holds fewer than two applications or
/// an estimator fails to fit.
pub fn loao_accuracy_with<E: Estimator + Sync, X: Executor>(
    estimator: &E,
    set: &TrainingSet,
    seed: u64,
    exec: &X,
) -> Result<Vec<LoaoResult>, NapelError> {
    let workloads = set.workloads();
    if workloads.len() < 2 {
        return Err(NapelError::BadTrainingSet {
            what: "leave-one-application-out needs at least two applications".into(),
        });
    }
    let folds = exec.map(&workloads, |i, &held_out| {
        // A panicking fit in one fold is isolated and surfaced as an
        // error naming the fold, not a process abort.
        catch_job_panic(|| {
            let train = set.filtered(|w| w != held_out);
            let test = set.filtered(|w| w == held_out);
            let mut rng = StdRng::seed_from_u64(seed);

            let perf_model = estimator.fit(&train.ipc_dataset()?, &mut rng)?;
            let energy_model = estimator.fit(&train.energy_dataset()?, &mut rng)?;

            let perf_pred: Vec<f64> = test
                .runs
                .iter()
                .map(|r| perf_model.predict_one(&r.features))
                .collect();
            let perf_actual: Vec<f64> = test.runs.iter().map(|r| r.ipc).collect();
            let energy_pred: Vec<f64> = test
                .runs
                .iter()
                .map(|r| energy_model.predict_one(&r.features))
                .collect();
            let energy_actual: Vec<f64> = test.runs.iter().map(|r| r.energy_per_inst_pj).collect();

            Ok(LoaoResult {
                workload: held_out,
                perf_mre: mean_relative_error(&perf_pred, &perf_actual),
                energy_mre: mean_relative_error(&energy_pred, &energy_actual),
            })
        })
        .unwrap_or_else(|message| Err(fold_panic(i, held_out, "loao fold", message)))
    });
    folds.into_iter().collect()
}

/// Mean over per-application MREs.
pub fn average_mre(results: &[LoaoResult]) -> (f64, f64) {
    let n = results.len().max(1) as f64;
    (
        results.iter().map(|r| r.perf_mre).sum::<f64>() / n,
        results.iter().map(|r| r.energy_mre).sum::<f64>() / n,
    )
}

/// One workload's row of the Figure 6/7 analysis.
#[derive(Debug, Clone, PartialEq)]
pub struct SuitabilityRow {
    /// The workload, evaluated at its Table 2 *test* input.
    pub workload: Workload,
    /// Host execution time, seconds (Figure 6).
    pub host_time_s: f64,
    /// Host energy, joules (Figure 6).
    pub host_energy_j: f64,
    /// NAPEL-predicted NMC execution time, seconds.
    pub nmc_pred_time_s: f64,
    /// NAPEL-predicted NMC energy, joules.
    pub nmc_pred_energy_j: f64,
    /// Simulated ("Actual") NMC execution time, seconds.
    pub nmc_actual_time_s: f64,
    /// Simulated NMC energy, joules.
    pub nmc_actual_energy_j: f64,
}

impl SuitabilityRow {
    /// Estimated EDP reduction `EDP_host / EDP_NMC` from NAPEL's
    /// prediction (the "NAPEL" bar of Figure 7). Values above 1 mean the
    /// workload is NMC-suitable.
    pub fn edp_reduction_predicted(&self) -> f64 {
        (self.host_time_s * self.host_energy_j) / (self.nmc_pred_time_s * self.nmc_pred_energy_j)
    }

    /// EDP reduction from the simulator (the "Actual" bar of Figure 7).
    pub fn edp_reduction_actual(&self) -> f64 {
        (self.host_time_s * self.host_energy_j)
            / (self.nmc_actual_time_s * self.nmc_actual_energy_j)
    }

    /// Relative error of NAPEL's EDP estimate vs the simulator's.
    pub fn edp_mre(&self) -> f64 {
        let pred = self.edp_reduction_predicted();
        let actual = self.edp_reduction_actual();
        (pred - actual).abs() / actual.abs().max(1e-12)
    }

    /// Whether NAPEL and the simulator agree on NMC suitability
    /// (the paper's first observation on Figure 7).
    pub fn suitability_agrees(&self) -> bool {
        (self.edp_reduction_predicted() > 1.0) == (self.edp_reduction_actual() > 1.0)
    }
}

/// Runs the Section 3.4 use case for every workload in `set`: train NAPEL
/// without the workload, predict its *test*-input EDP on `arch`, compare
/// against simulation and the host model.
///
/// # Errors
///
/// Propagates training failures.
pub fn nmc_suitability(
    set: &TrainingSet,
    config: &NapelConfig,
    arch: &ArchConfig,
    scale: Scale,
) -> Result<Vec<SuitabilityRow>, NapelError> {
    nmc_suitability_with(set, config, arch, scale, &AnyExecutor::from_env())
}

/// [`nmc_suitability`] with an explicit executor: one job per held-out
/// application (train-without, predict, simulate, host-model), results in
/// workload order for any executor.
///
/// # Errors
///
/// Propagates training failures.
pub fn nmc_suitability_with<X: Executor>(
    set: &TrainingSet,
    config: &NapelConfig,
    arch: &ArchConfig,
    scale: Scale,
    exec: &X,
) -> Result<Vec<SuitabilityRow>, NapelError> {
    let host = HostModel::power9(scale);
    let rows = exec.map(&set.workloads(), |i, &held_out| {
        catch_job_panic(|| {
            let train = set.filtered(|w| w != held_out);
            let trained = Napel::new(config.clone()).train(&train)?;

            let trace = held_out.generate_test(scale);
            let profile = ApplicationProfile::of(&trace);
            let instructions = trace.total_insts() as u64;

            let pred = trained.predict(&profile, arch);
            let report = NmcSystem::new(arch.clone()).run(&trace);
            let host_report = host.evaluate(&profile);

            Ok(SuitabilityRow {
                workload: held_out,
                host_time_s: host_report.exec_time_seconds,
                host_energy_j: host_report.energy_joules,
                nmc_pred_time_s: pred.exec_time_seconds(instructions),
                nmc_pred_energy_j: pred.energy_joules(instructions),
                nmc_actual_time_s: report.exec_time_seconds(),
                nmc_actual_energy_j: report.energy_joules(),
            })
        })
        .unwrap_or_else(|message| Err(fold_panic(i, held_out, "suitability row", message)))
    });
    rows.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collect::{collect, CollectionPlan};
    use napel_ml::forest::RandomForestParams;

    fn small_set() -> TrainingSet {
        collect(&CollectionPlan {
            workloads: vec![Workload::Atax, Workload::Gemv, Workload::Mvt],
            scale: Scale::tiny(),
            ..Default::default()
        })
    }

    #[test]
    fn loao_covers_every_workload_once() {
        let set = small_set();
        let results = loao_accuracy(&RandomForestParams::default(), &set, 7).unwrap();
        assert_eq!(results.len(), 3);
        let names: Vec<&str> = results.iter().map(|r| r.workload.name()).collect();
        assert_eq!(names, vec!["atax", "gemv", "mvt"]);
        for r in &results {
            assert!(r.perf_mre.is_finite() && r.perf_mre >= 0.0);
            assert!(r.energy_mre.is_finite() && r.energy_mre >= 0.0);
        }
    }

    #[test]
    fn loao_folds_are_executor_independent() {
        use crate::campaign::{Serial, Threaded};
        let set = small_set();
        let est = RandomForestParams::default();
        let serial = loao_accuracy_with(&est, &set, 7, &Serial).unwrap();
        let threaded = loao_accuracy_with(&est, &set, 7, &Threaded::new(3)).unwrap();
        assert_eq!(
            serial, threaded,
            "folds re-seed per fold; executor must not matter"
        );
    }

    #[test]
    fn loao_needs_two_apps() {
        let set = small_set().filtered(|w| w == Workload::Atax);
        let err = loao_accuracy(&RandomForestParams::default(), &set, 7).unwrap_err();
        assert!(matches!(err, NapelError::BadTrainingSet { .. }));
    }

    #[test]
    fn average_mre_averages() {
        let results = vec![
            LoaoResult {
                workload: Workload::Atax,
                perf_mre: 0.1,
                energy_mre: 0.2,
            },
            LoaoResult {
                workload: Workload::Gemv,
                perf_mre: 0.3,
                energy_mre: 0.4,
            },
        ];
        let (p, e) = average_mre(&results);
        assert!((p - 0.2).abs() < 1e-12);
        assert!((e - 0.3).abs() < 1e-12);
    }

    #[test]
    fn suitability_rows_are_consistent() {
        let set = small_set();
        let rows = nmc_suitability(
            &set,
            &NapelConfig::untuned(),
            &ArchConfig::paper_default(),
            Scale::tiny(),
        )
        .unwrap();
        assert_eq!(rows.len(), 3);
        for r in &rows {
            assert!(
                r.host_time_s > 0.0 && r.host_energy_j > 0.0,
                "{:?}",
                r.workload
            );
            assert!(r.nmc_actual_time_s > 0.0 && r.nmc_actual_energy_j > 0.0);
            assert!(r.nmc_pred_time_s > 0.0 && r.nmc_pred_energy_j > 0.0);
            assert!(r.edp_reduction_actual().is_finite());
            assert!(r.edp_mre().is_finite());
        }
    }
}
