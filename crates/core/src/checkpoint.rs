//! The append-only on-disk checkpoint journal.
//!
//! A campaign with a journal attached appends one line per *completed*
//! job, keyed by the job's stable descriptor hash
//! ([`crate::campaign::SimJob::descriptor_hash`]). Restarting the same
//! campaign with the same journal restores every journaled row without
//! recomputation and recomputes only the rest — failed or skipped jobs
//! are never journaled, so a resumed campaign retries exactly the work
//! that is missing.
//!
//! # Format
//!
//! One entry per line, space-separated ASCII, floats as big-endian bit
//! patterns in hex (so restored rows are **bit-identical** to computed
//! ones — the executor-independence guarantee survives a resume):
//!
//! ```text
//! <hash:016x> <workload> <#params> <param-bits>… <#features> <feature-bits>… <instructions> <ipc-bits> <epi-bits> ok
//! ```
//!
//! The trailing `ok` sentinel marks a fully written line. Replay stops at
//! the first malformed or unterminated line and truncates the file back
//! to the last valid entry, so a crash mid-append (the only write this
//! format does) loses at most the job being written — the journal
//! degrades to a shorter valid journal, never to a corrupt one.
//!
//! Entries whose feature arity does not match the current schema are
//! dropped on load (the safe direction: the job is recomputed).

use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use napel_workloads::Workload;

use crate::features::{combined_feature_names, LabeledRun};
use crate::NapelError;

/// Sentinel closing every fully written journal line.
const SENTINEL: &str = "ok";

/// An open checkpoint journal: the replayed entries plus an append
/// handle. Safe to share across campaign worker threads.
#[derive(Debug)]
pub struct CheckpointJournal {
    path: PathBuf,
    entries: HashMap<u64, LabeledRun>,
    writer: Mutex<File>,
}

impl CheckpointJournal {
    /// Opens (or creates) the journal at `path`, replaying any existing
    /// entries. A corrupt tail — a partial line from a killed run — is
    /// truncated away; everything before it is kept.
    ///
    /// # Errors
    ///
    /// Returns [`NapelError::Checkpoint`] if the file cannot be read,
    /// truncated, or opened for append.
    pub fn open(path: &Path) -> Result<CheckpointJournal, NapelError> {
        let ckpt_err = |what: String| NapelError::Checkpoint {
            path: path.display().to_string(),
            what,
        };
        let text = match std::fs::read_to_string(path) {
            Ok(text) => text,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => String::new(),
            Err(e) => return Err(ckpt_err(format!("cannot read: {e}"))),
        };
        let mut entries = HashMap::new();
        let mut valid_bytes = 0usize;
        let expected_features = combined_feature_names().len();
        for line in text.split_inclusive('\n') {
            let terminated = line.ends_with('\n');
            match decode_entry(line.trim_end_matches('\n')) {
                Some((hash, run)) if terminated => {
                    // Stale-schema entries are dropped (recomputed), but
                    // the line itself is valid — keep scanning.
                    if run.features.len() == expected_features {
                        entries.insert(hash, run);
                    }
                    valid_bytes += line.len();
                }
                // Unterminated or malformed: the corrupt tail starts
                // here. Everything after it is unreachable anyway
                // (appends happen strictly in order).
                _ => break,
            }
        }
        if valid_bytes < text.len() {
            let keep = &text.as_bytes()[..valid_bytes];
            std::fs::write(path, keep)
                .map_err(|e| ckpt_err(format!("cannot truncate corrupt tail: {e}")))?;
        }
        let writer = OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .map_err(|e| ckpt_err(format!("cannot open for append: {e}")))?;
        napel_telemetry::counter!("checkpoint.entries_replayed", entries.len() as u64);
        Ok(CheckpointJournal {
            path: path.to_path_buf(),
            entries,
            writer: Mutex::new(writer),
        })
    }

    /// The journal's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Number of replayed (restorable) entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no entries were replayed.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The journaled row for a job descriptor hash, if present.
    pub fn restored(&self, hash: u64) -> Option<&LabeledRun> {
        self.entries.get(&hash)
    }

    /// Appends a completed job's row. Called concurrently by campaign
    /// workers; each entry is written and flushed under one lock hold.
    ///
    /// A write failure must not kill a running campaign (the journal is
    /// an optimization, not the product), so I/O errors warn through the
    /// `napel-telemetry` facade — once per distinct message, so a *new*
    /// failure mode on the same journal still reaches stderr — and the
    /// failed append is dropped.
    pub fn record(&self, hash: u64, run: &LabeledRun) {
        let line = encode_entry(hash, run);
        let mut writer = self.writer.lock().expect("journal writer not poisoned");
        match writer
            .write_all(line.as_bytes())
            .and_then(|()| writer.flush())
        {
            Ok(()) => napel_telemetry::counter!("checkpoint.entries_recorded", 1),
            Err(e) => {
                napel_telemetry::warn_once!(
                    "napel: checkpoint journal `{}` write failed ({e}); \
                     campaign continues without checkpointing",
                    self.path.display()
                );
            }
        }
    }
}

/// Encodes one journal entry (newline-terminated).
pub fn encode_entry(hash: u64, run: &LabeledRun) -> String {
    let mut line = format!("{hash:016x} {} {}", run.workload.name(), run.params.len());
    for p in &run.params {
        line.push_str(&format!(" {:016x}", p.to_bits()));
    }
    line.push_str(&format!(" {}", run.features.len()));
    for f in &run.features {
        line.push_str(&format!(" {:016x}", f.to_bits()));
    }
    line.push_str(&format!(
        " {} {:016x} {:016x} {SENTINEL}\n",
        run.instructions,
        run.ipc.to_bits(),
        run.energy_per_inst_pj.to_bits()
    ));
    line
}

/// Decodes one journal line (no trailing newline). `None` on any
/// malformation — wrong field count, bad hex, unknown workload, missing
/// sentinel.
pub fn decode_entry(line: &str) -> Option<(u64, LabeledRun)> {
    let mut tokens = line.split_ascii_whitespace();
    let hash = u64::from_str_radix(tokens.next()?, 16).ok()?;
    let workload = Workload::from_name(tokens.next()?)?;
    let n_params: usize = tokens.next()?.parse().ok()?;
    let mut params = Vec::with_capacity(n_params);
    for _ in 0..n_params {
        params.push(f64::from_bits(
            u64::from_str_radix(tokens.next()?, 16).ok()?,
        ));
    }
    let n_features: usize = tokens.next()?.parse().ok()?;
    let mut features = Vec::with_capacity(n_features);
    for _ in 0..n_features {
        features.push(f64::from_bits(
            u64::from_str_radix(tokens.next()?, 16).ok()?,
        ));
    }
    let instructions: u64 = tokens.next()?.parse().ok()?;
    let ipc = f64::from_bits(u64::from_str_radix(tokens.next()?, 16).ok()?);
    let energy_per_inst_pj = f64::from_bits(u64::from_str_radix(tokens.next()?, 16).ok()?);
    if tokens.next()? != SENTINEL || tokens.next().is_some() {
        return None;
    }
    Some((
        hash,
        LabeledRun {
            workload,
            params,
            features,
            instructions,
            ipc,
            energy_per_inst_pj,
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn temp_journal(tag: &str) -> PathBuf {
        static COUNTER: AtomicUsize = AtomicUsize::new(0);
        std::env::temp_dir().join(format!(
            "napel-ckpt-{}-{tag}-{}.journal",
            std::process::id(),
            COUNTER.fetch_add(1, Ordering::Relaxed)
        ))
    }

    fn sample_run(seed: u64) -> LabeledRun {
        let n = combined_feature_names().len();
        LabeledRun {
            workload: Workload::ALL[(seed as usize) % Workload::ALL.len()],
            params: vec![seed as f64, 0.5 + seed as f64],
            features: (0..n).map(|i| (seed as f64) * 0.25 + i as f64).collect(),
            instructions: 100 + seed,
            ipc: 0.75,
            energy_per_inst_pj: 42.5 + seed as f64,
        }
    }

    #[test]
    fn encode_decode_roundtrip_is_bit_exact() {
        let run = sample_run(3);
        let line = encode_entry(0xdead_beef_1234_5678, &run);
        let (hash, back) = decode_entry(line.trim_end()).expect("decodes");
        assert_eq!(hash, 0xdead_beef_1234_5678);
        assert_eq!(back, run);
    }

    #[test]
    fn malformed_lines_are_rejected() {
        let run = sample_run(1);
        let line = encode_entry(7, &run);
        let line = line.trim_end();
        assert!(decode_entry("").is_none());
        assert!(decode_entry("zz nope").is_none());
        // Truncated anywhere: missing sentinel.
        assert!(decode_entry(&line[..line.len() - 4]).is_none());
        // Trailing junk.
        assert!(decode_entry(&format!("{line} extra")).is_none());
        // Unknown workload.
        let bad = line.replacen(run.workload.name(), "nosuch", 1);
        assert!(decode_entry(&bad).is_none());
    }

    #[test]
    fn journal_roundtrips_and_restores() {
        let path = temp_journal("roundtrip");
        let journal = CheckpointJournal::open(&path).unwrap();
        assert!(journal.is_empty());
        let runs: Vec<LabeledRun> = (0..5).map(sample_run).collect();
        for (i, run) in runs.iter().enumerate() {
            journal.record(i as u64, run);
        }
        drop(journal);

        let reopened = CheckpointJournal::open(&path).unwrap();
        assert_eq!(reopened.len(), 5);
        for (i, run) in runs.iter().enumerate() {
            assert_eq!(reopened.restored(i as u64), Some(run));
        }
        assert_eq!(reopened.restored(99), None);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_tail_is_truncated_and_appendable() {
        let path = temp_journal("corrupt");
        let journal = CheckpointJournal::open(&path).unwrap();
        for i in 0..3 {
            journal.record(i, &sample_run(i));
        }
        drop(journal);
        // Simulate a crash mid-append: a partial line with no sentinel.
        let mut text = std::fs::read_to_string(&path).unwrap();
        let clean_len = text.len();
        text.push_str("0000000000000007 atax 2 3ff0");
        std::fs::write(&path, &text).unwrap();

        let recovered = CheckpointJournal::open(&path).unwrap();
        assert_eq!(recovered.len(), 3, "valid prefix survives");
        assert_eq!(
            std::fs::metadata(&path).unwrap().len(),
            clean_len as u64,
            "corrupt tail must be truncated on open"
        );
        // Appending after recovery produces a valid journal again.
        recovered.record(7, &sample_run(7));
        drop(recovered);
        let again = CheckpointJournal::open(&path).unwrap();
        assert_eq!(again.len(), 4);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn stale_schema_entries_are_dropped() {
        let path = temp_journal("stale");
        let mut run = sample_run(2);
        run.features.truncate(7); // wrong arity for the current schema
        std::fs::write(&path, encode_entry(11, &run)).unwrap();
        let journal = CheckpointJournal::open(&path).unwrap();
        assert_eq!(journal.len(), 0, "stale entry must not restore");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_parent_directory_is_a_checkpoint_error() {
        let path = std::env::temp_dir().join("napel-no-such-dir/x/y.journal");
        let err = CheckpointJournal::open(&path).unwrap_err();
        assert!(matches!(err, NapelError::Checkpoint { .. }), "{err}");
    }
}
