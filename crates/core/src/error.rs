//! Framework-level error type.

use std::error::Error;
use std::fmt;

use napel_doe::DesignError;
use napel_ml::MlError;

use crate::fault::JobFailure;

/// Error from the NAPEL pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum NapelError {
    /// A design-of-experiments construction failed.
    Design(DesignError),
    /// An ML estimator failed to fit or validate.
    Ml(MlError),
    /// The training set is unusable for the requested operation.
    BadTrainingSet {
        /// What was wrong.
        what: String,
    },
    /// A campaign job failed (panicked, or produced labels that failed
    /// the validation gate). Carries the job's full provenance — which
    /// workload at which DoE point on which architecture — so a failure
    /// in job 317 of 500 is diagnosable without rerunning the campaign.
    Job(JobFailure),
    /// The checkpoint journal could not be opened or replayed.
    Checkpoint {
        /// Journal path.
        path: String,
        /// What went wrong.
        what: String,
    },
    /// A profile/architecture feature schema mismatch: a feature vector
    /// and the declared feature names disagree.
    FeatureSchema {
        /// What was inconsistent.
        what: String,
    },
    /// A model artifact could not be saved, loaded, or validated —
    /// including version and feature-schema mismatches between the
    /// artifact and this build, which must fail loudly rather than
    /// silently mispredict.
    Artifact {
        /// Artifact path (or a description of the source).
        path: String,
        /// What went wrong.
        what: String,
    },
}

impl fmt::Display for NapelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NapelError::Design(e) => write!(f, "design of experiments failed: {e}"),
            NapelError::Ml(e) => write!(f, "model training failed: {e}"),
            NapelError::BadTrainingSet { what } => write!(f, "bad training set: {what}"),
            NapelError::Job(failure) => write!(f, "campaign job failed: {failure}"),
            NapelError::Checkpoint { path, what } => {
                write!(f, "checkpoint journal `{path}`: {what}")
            }
            NapelError::FeatureSchema { what } => write!(f, "feature schema mismatch: {what}"),
            NapelError::Artifact { path, what } => {
                write!(f, "model artifact `{path}`: {what}")
            }
        }
    }
}

impl Error for NapelError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            NapelError::Design(e) => Some(e),
            NapelError::Ml(e) => Some(e),
            NapelError::Job(failure) => Some(failure),
            NapelError::BadTrainingSet { .. }
            | NapelError::Checkpoint { .. }
            | NapelError::FeatureSchema { .. }
            | NapelError::Artifact { .. } => None,
        }
    }
}

impl From<DesignError> for NapelError {
    fn from(e: DesignError) -> Self {
        NapelError::Design(e)
    }
}

impl From<MlError> for NapelError {
    fn from(e: MlError) -> Self {
        NapelError::Ml(e)
    }
}

impl From<JobFailure> for NapelError {
    fn from(e: JobFailure) -> Self {
        NapelError::Job(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::JobFailureKind;

    #[test]
    fn job_failures_carry_provenance_through_the_chain() {
        let failure = JobFailure {
            index: 317,
            workload: "atax".into(),
            params: vec![1800.0, 14.0],
            arch: "ArchConfig { num_pes: 32, .. }".into(),
            attempts: 2,
            kind: JobFailureKind::Panic("boom".into()),
        };
        let e: NapelError = failure.into();
        let msg = e.to_string();
        assert!(msg.contains("job 317"), "{msg}");
        assert!(msg.contains("atax"), "{msg}");
        assert!(msg.contains("1800"), "{msg}");
        assert!(msg.contains("num_pes"), "{msg}");
        assert!(msg.contains("boom"), "{msg}");
        // The chain bottoms out at the failure kind.
        let source = e.source().expect("JobFailure is the source");
        assert!(source.source().is_some(), "kind is the root cause");
    }

    #[test]
    fn checkpoint_and_schema_errors_render() {
        let e = NapelError::Checkpoint {
            path: "/tmp/j".into(),
            what: "permission denied".into(),
        };
        assert!(e.to_string().contains("/tmp/j"));
        assert!(e.source().is_none());
        let e = NapelError::FeatureSchema {
            what: "unknown profile feature `x`".into(),
        };
        assert!(e.to_string().contains("`x`"));
        let e = NapelError::Artifact {
            path: "models/fig4-atax.napel".into(),
            what: "artifact was trained on 400 features, this build expects 410".into(),
        };
        assert!(e.to_string().contains("models/fig4-atax.napel"));
        assert!(e.to_string().contains("400 features"));
        assert!(e.source().is_none());
    }

    #[test]
    fn conversions_and_sources() {
        let e: NapelError = MlError::EmptyDataset.into();
        assert!(matches!(e, NapelError::Ml(_)));
        assert!(e.source().is_some());
        let e: NapelError = DesignError::EmptySpace.into();
        assert!(e.to_string().contains("design of experiments"));
        let e = NapelError::BadTrainingSet {
            what: "only one application".into(),
        };
        assert!(e.source().is_none());
        assert!(e.to_string().contains("only one application"));
    }
}
