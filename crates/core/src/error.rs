//! Framework-level error type.

use std::error::Error;
use std::fmt;

use napel_doe::DesignError;
use napel_ml::MlError;

/// Error from the NAPEL pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum NapelError {
    /// A design-of-experiments construction failed.
    Design(DesignError),
    /// An ML estimator failed to fit or validate.
    Ml(MlError),
    /// The training set is unusable for the requested operation.
    BadTrainingSet {
        /// What was wrong.
        what: String,
    },
}

impl fmt::Display for NapelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NapelError::Design(e) => write!(f, "design of experiments failed: {e}"),
            NapelError::Ml(e) => write!(f, "model training failed: {e}"),
            NapelError::BadTrainingSet { what } => write!(f, "bad training set: {what}"),
        }
    }
}

impl Error for NapelError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            NapelError::Design(e) => Some(e),
            NapelError::Ml(e) => Some(e),
            NapelError::BadTrainingSet { .. } => None,
        }
    }
}

impl From<DesignError> for NapelError {
    fn from(e: DesignError) -> Self {
        NapelError::Design(e)
    }
}

impl From<MlError> for NapelError {
    fn from(e: MlError) -> Self {
        NapelError::Ml(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_sources() {
        let e: NapelError = MlError::EmptyDataset.into();
        assert!(matches!(e, NapelError::Ml(_)));
        assert!(e.source().is_some());
        let e: NapelError = DesignError::EmptySpace.into();
        assert!(e.to_string().contains("design of experiments"));
        let e = NapelError::BadTrainingSet {
            what: "only one application".into(),
        };
        assert!(e.source().is_none());
        assert!(e.to_string().contains("only one application"));
    }
}
