//! Model artifacts — the train-once/predict-many boundary.
//!
//! NAPEL's value proposition (Section 4 of the paper) is that the
//! expensive one-time training phase buys a prediction phase "at least
//! 220x faster than NMC simulation". That only holds if a tuned model can
//! outlive the process that trained it: this module bundles a serialized
//! predictor ([`napel_ml::persist`]) with everything needed to use it
//! safely later —
//!
//! - the **feature schema** ([`crate::features::combined_feature_names`])
//!   the model was fitted on, so a build whose feature list drifted fails
//!   with a typed [`NapelError::Artifact`] instead of silently feeding the
//!   model permuted inputs;
//! - the **target kind** (IPC or energy-per-instruction), so an energy
//!   model cannot be consulted as a performance model;
//! - **training provenance**: RNG seed, hyper-parameter grid, workload
//!   set, row count, and an FNV-1a content hash of the training set
//!   ([`crate::features::TrainingSet::content_hash`]) — enough to answer
//!   "which data produced this model?" months later.
//!
//! The artifact document is line-oriented plain text (hand-rolled,
//! zero-dep, like the telemetry JSONL and the checkpoint journal); the
//! model payload embedded in it is the bit-exact token format of
//! [`napel_ml::persist`], so `save → load → predict` reproduces the
//! in-memory model's predictions to the last bit. A `.napel` bundle file
//! holds two artifact documents back to back (IPC, then energy) — the
//! serialized form of a [`TrainedNapel`].

use std::iter::Peekable;
use std::path::{Path, PathBuf};

use napel_ml::persist::{decode, decode_any, Persist, Predictor};

use crate::model::TrainedNapel;
use crate::NapelError;

/// Leading line of every artifact document.
pub const ARTIFACT_HEADER: &str = "napel-model-artifact v1";

/// File extension of a [`TrainedNapel`] bundle (two artifacts).
pub const BUNDLE_EXTENSION: &str = "napel";

/// Which response a stored model predicts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TargetKind {
    /// Instructions per cycle.
    Ipc,
    /// Energy per instruction (picojoules).
    EnergyPerInst,
}

impl TargetKind {
    /// Stable on-disk token.
    pub fn token(self) -> &'static str {
        match self {
            TargetKind::Ipc => "ipc",
            TargetKind::EnergyPerInst => "energy_per_inst",
        }
    }

    fn parse(tok: &str) -> Option<TargetKind> {
        match tok {
            "ipc" => Some(TargetKind::Ipc),
            "energy_per_inst" => Some(TargetKind::EnergyPerInst),
            _ => None,
        }
    }
}

impl std::fmt::Display for TargetKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.token())
    }
}

/// Where a model came from: enough to reproduce (or audit) the training
/// run that produced it.
#[derive(Debug, Clone, PartialEq)]
pub struct Provenance {
    /// Training RNG seed (training is deterministic given the seed).
    pub seed: u64,
    /// Hyper-parameter grid descriptions the tuner searched.
    pub grid: Vec<String>,
    /// Workloads present in the training set.
    pub workloads: Vec<String>,
    /// Number of labeled training rows.
    pub training_rows: usize,
    /// FNV-1a content hash of the training set (bit-exact over features
    /// and labels).
    pub training_hash: u64,
}

/// A serialized predictor plus the metadata required to consult it safely:
/// feature schema, target kind, and training provenance.
#[derive(Debug, Clone)]
pub struct ModelArtifact {
    /// Which response the model predicts.
    pub target: TargetKind,
    /// Combined feature names, in model input order.
    pub feature_names: Vec<String>,
    /// Training provenance.
    pub provenance: Provenance,
    /// Winning hyper-parameters and CV score, if tuning ran.
    pub tuned: Option<(String, f64)>,
    /// The serialized model document ([`napel_ml::persist`] format).
    payload: String,
    /// Where the artifact came from (a path, or `(unsaved)`), for error
    /// messages.
    source: String,
}

fn artifact_err(path: &Path, what: impl Into<String>) -> NapelError {
    NapelError::Artifact {
        path: path.display().to_string(),
        what: what.into(),
    }
}

impl ModelArtifact {
    /// Wraps a fitted predictor and its metadata into an artifact.
    ///
    /// # Errors
    ///
    /// Returns [`NapelError::FeatureSchema`] if the predictor's input
    /// dimensionality disagrees with `feature_names`.
    pub fn from_predictor(
        target: TargetKind,
        feature_names: Vec<String>,
        provenance: Provenance,
        tuned: Option<(String, f64)>,
        predictor: &dyn Predictor,
    ) -> Result<ModelArtifact, NapelError> {
        if predictor.num_features() != feature_names.len() {
            return Err(NapelError::FeatureSchema {
                what: format!(
                    "predictor takes {} features but the schema names {}",
                    predictor.num_features(),
                    feature_names.len()
                ),
            });
        }
        Ok(ModelArtifact {
            target,
            feature_names,
            provenance,
            tuned,
            payload: predictor.encode_model(),
            source: "(unsaved)".to_string(),
        })
    }

    /// The serialized model document embedded in this artifact.
    pub fn payload(&self) -> &str {
        &self.payload
    }

    /// Where the artifact came from (a path, or `(unsaved)`).
    pub fn source(&self) -> &str {
        &self.source
    }

    /// Decodes the embedded model behind the object-safe [`Predictor`]
    /// interface (family chosen by the payload itself).
    ///
    /// # Errors
    ///
    /// [`NapelError::Artifact`] if the payload is corrupt or of an unknown
    /// family/version.
    pub fn predictor(&self) -> Result<Box<dyn Predictor + Send + Sync>, NapelError> {
        decode_any(&self.payload).map_err(|e| NapelError::Artifact {
            path: self.source.clone(),
            what: e.to_string(),
        })
    }

    /// Decodes the embedded model as a statically known family.
    ///
    /// # Errors
    ///
    /// [`NapelError::Artifact`] if the payload is corrupt, of another
    /// family, or of an unsupported version.
    pub fn decode_payload<M: Persist>(&self) -> Result<M, NapelError> {
        decode(&self.payload).map_err(|e| NapelError::Artifact {
            path: self.source.clone(),
            what: e.to_string(),
        })
    }

    /// Validates this artifact against the consumer's expectations: the
    /// target it should predict and the feature schema the consumer will
    /// feed it. A mismatch is a typed error naming the first discrepancy —
    /// loading must fail loudly, not mispredict silently.
    ///
    /// # Errors
    ///
    /// [`NapelError::Artifact`] describing the mismatch.
    pub fn expect_schema(&self, target: TargetKind, names: &[String]) -> Result<(), NapelError> {
        let err = |what: String| NapelError::Artifact {
            path: self.source.clone(),
            what,
        };
        if self.target != target {
            return Err(err(format!(
                "artifact predicts {}, {target} expected",
                self.target
            )));
        }
        if self.feature_names.len() != names.len() {
            return Err(err(format!(
                "artifact was trained on {} features, this build expects {}",
                self.feature_names.len(),
                names.len()
            )));
        }
        if let Some(i) = (0..names.len()).find(|&i| self.feature_names[i] != names[i]) {
            return Err(err(format!(
                "feature {i} is `{}` in the artifact but `{}` in this build",
                self.feature_names[i], names[i]
            )));
        }
        Ok(())
    }

    /// Renders the artifact as its on-disk document.
    pub fn to_document(&self) -> String {
        let mut out = String::new();
        out.push_str(ARTIFACT_HEADER);
        out.push('\n');
        out.push_str(&format!("target {}\n", self.target.token()));
        out.push_str(&format!("features {}\n", self.feature_names.len()));
        out.push_str(&self.feature_names.join(" "));
        out.push('\n');
        out.push_str(&format!("seed {}\n", self.provenance.seed));
        out.push_str(&format!("rows {}\n", self.provenance.training_rows));
        out.push_str(&format!(
            "training-hash {:016x}\n",
            self.provenance.training_hash
        ));
        out.push_str(&format!("workloads {}", self.provenance.workloads.len()));
        for w in &self.provenance.workloads {
            out.push(' ');
            out.push_str(w);
        }
        out.push('\n');
        out.push_str(&format!("grid {}\n", self.provenance.grid.len()));
        for g in &self.provenance.grid {
            out.push_str(g);
            out.push('\n');
        }
        match &self.tuned {
            Some((desc, score)) => {
                out.push_str(&format!("tuned {:016x} {desc}\n", score.to_bits()));
            }
            None => out.push_str("untuned\n"),
        }
        out.push_str(&format!("payload {}\n", self.payload.lines().count()));
        out.push_str(&self.payload);
        if !self.payload.ends_with('\n') {
            out.push('\n');
        }
        out.push_str("end\n");
        out
    }

    /// Writes the artifact to `path` as a single-artifact file, returning
    /// the bytes written. Emits the `model.save` telemetry span and the
    /// `model.bytes_written` counter.
    ///
    /// # Errors
    ///
    /// [`NapelError::Artifact`] on I/O failure.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<u64, NapelError> {
        write_artifacts(path.as_ref(), &[self])
    }

    /// Loads a single-artifact file.
    ///
    /// # Errors
    ///
    /// [`NapelError::Artifact`] on I/O failure, a malformed document, or a
    /// file holding more than one artifact (use [`read_artifacts`]).
    pub fn load(path: impl AsRef<Path>) -> Result<ModelArtifact, NapelError> {
        let path = path.as_ref();
        let mut all = read_artifacts(path)?;
        if all.len() != 1 {
            return Err(artifact_err(
                path,
                format!("file holds {} artifacts, exactly 1 expected", all.len()),
            ));
        }
        Ok(all.remove(0))
    }
}

/// Writes `artifacts` to `path` back to back (the bundle format),
/// returning the bytes written. Emits the `model.save` telemetry span and
/// the `model.bytes_written` counter.
///
/// # Errors
///
/// [`NapelError::Artifact`] on I/O failure.
pub fn write_artifacts(path: &Path, artifacts: &[&ModelArtifact]) -> Result<u64, NapelError> {
    let mut text = String::new();
    for a in artifacts {
        text.push_str(&a.to_document());
    }
    let bytes = text.len() as u64;
    let telemetry = napel_telemetry::global();
    let _span = telemetry
        .span("model.save")
        .attr("path", path.display())
        .attr("artifacts", artifacts.len())
        .attr("bytes", bytes);
    std::fs::write(path, &text).map_err(|e| artifact_err(path, format!("write failed: {e}")))?;
    telemetry.counter("model.bytes_written", bytes);
    Ok(bytes)
}

/// Reads every artifact in `path`, in file order. Emits the `model.load`
/// telemetry span.
///
/// # Errors
///
/// [`NapelError::Artifact`] on I/O failure or a malformed document.
pub fn read_artifacts(path: impl AsRef<Path>) -> Result<Vec<ModelArtifact>, NapelError> {
    let path = path.as_ref();
    let telemetry = napel_telemetry::global();
    let _span = telemetry.span("model.load").attr("path", path.display());
    let text = std::fs::read_to_string(path)
        .map_err(|e| artifact_err(path, format!("read failed: {e}")))?;
    parse_artifacts(&text, path)
}

/// Parses a string holding one or more artifact documents.
///
/// # Errors
///
/// [`NapelError::Artifact`] (with `path` as the reported source) on any
/// malformed document.
pub fn parse_artifacts(text: &str, path: &Path) -> Result<Vec<ModelArtifact>, NapelError> {
    let mut lines = text.lines().peekable();
    let mut out = Vec::new();
    loop {
        while matches!(lines.peek(), Some(l) if l.trim().is_empty()) {
            lines.next();
        }
        if lines.peek().is_none() {
            break;
        }
        out.push(parse_one(&mut lines, path)?);
    }
    if out.is_empty() {
        return Err(artifact_err(path, "file holds no artifacts"));
    }
    Ok(out)
}

fn parse_one<'a, I: Iterator<Item = &'a str>>(
    lines: &mut Peekable<I>,
    path: &Path,
) -> Result<ModelArtifact, NapelError> {
    let mut next = |what: &str| -> Result<&'a str, NapelError> {
        lines
            .next()
            .ok_or_else(|| artifact_err(path, format!("document ends where {what} was expected")))
    };
    let header = next("the artifact header")?;
    if header != ARTIFACT_HEADER {
        return Err(artifact_err(
            path,
            format!("unsupported artifact header `{header}` (this build reads {ARTIFACT_HEADER})"),
        ));
    }

    let target_tok = field(next("the target line")?, "target", path)?;
    let target = TargetKind::parse(target_tok)
        .ok_or_else(|| artifact_err(path, format!("unknown target kind `{target_tok}`")))?;

    let n_features: usize = parse_num(field(next("the features line")?, "features", path)?, path)?;
    let names_line = next("the feature names")?;
    let feature_names: Vec<String> = names_line.split_whitespace().map(String::from).collect();
    if feature_names.len() != n_features {
        return Err(artifact_err(
            path,
            format!(
                "feature name line has {} names, {} declared",
                feature_names.len(),
                n_features
            ),
        ));
    }

    let seed: u64 = parse_num(field(next("the seed line")?, "seed", path)?, path)?;
    let training_rows: usize = parse_num(field(next("the rows line")?, "rows", path)?, path)?;
    let hash_tok = field(next("the training-hash line")?, "training-hash", path)?;
    let training_hash = u64::from_str_radix(hash_tok, 16)
        .map_err(|_| artifact_err(path, format!("training-hash `{hash_tok}` is not hex")))?;

    let workloads_line = field(next("the workloads line")?, "workloads", path)?;
    let mut toks = workloads_line.split_whitespace();
    let n_workloads: usize = parse_num(
        toks.next()
            .ok_or_else(|| artifact_err(path, "workloads line is empty"))?,
        path,
    )?;
    let workloads: Vec<String> = toks.map(String::from).collect();
    if workloads.len() != n_workloads {
        return Err(artifact_err(
            path,
            format!(
                "workloads line has {} names, {} declared",
                workloads.len(),
                n_workloads
            ),
        ));
    }

    let n_grid: usize = parse_num(field(next("the grid line")?, "grid", path)?, path)?;
    let mut grid = Vec::with_capacity(n_grid);
    for _ in 0..n_grid {
        grid.push(next("a grid candidate line")?.to_string());
    }

    let tuned_line = next("the tuned line")?;
    let tuned = if tuned_line == "untuned" {
        None
    } else if let Some(rest) = tuned_line.strip_prefix("tuned ") {
        let (score_hex, desc) = rest
            .split_once(' ')
            .ok_or_else(|| artifact_err(path, "tuned line lacks a description"))?;
        let score = u64::from_str_radix(score_hex, 16)
            .map(f64::from_bits)
            .map_err(|_| artifact_err(path, format!("tuned score `{score_hex}` is not hex")))?;
        Some((desc.to_string(), score))
    } else {
        return Err(artifact_err(
            path,
            format!("expected `tuned ...` or `untuned`, found `{tuned_line}`"),
        ));
    };

    let n_payload: usize = parse_num(field(next("the payload line")?, "payload", path)?, path)?;
    let mut payload = String::new();
    for _ in 0..n_payload {
        payload.push_str(next("a payload line")?);
        payload.push('\n');
    }

    let end = next("the end sentinel")?;
    if end != "end" {
        return Err(artifact_err(
            path,
            format!("expected the `end` sentinel, found `{end}`"),
        ));
    }

    Ok(ModelArtifact {
        target,
        feature_names,
        provenance: Provenance {
            seed,
            grid,
            workloads,
            training_rows,
            training_hash,
        },
        tuned,
        payload,
        source: path.display().to_string(),
    })
}

fn field<'a>(line: &'a str, key: &str, path: &Path) -> Result<&'a str, NapelError> {
    line.strip_prefix(key)
        .and_then(|rest| {
            rest.strip_prefix(' ')
                .or(Some(rest).filter(|r| r.is_empty()))
        })
        .ok_or_else(|| artifact_err(path, format!("expected a `{key} ...` line, found `{line}`")))
}

fn parse_num<T: std::str::FromStr>(tok: &str, path: &Path) -> Result<T, NapelError> {
    tok.parse()
        .map_err(|_| artifact_err(path, format!("`{tok}` is not a number")))
}

/// Artifact-directory policy for experiment drivers: where trained models
/// are saved after training (`--model-out` / `NAPEL_MODEL_DIR`) and where
/// evaluation loads them from instead of retraining (`--model-in`).
#[derive(Debug, Clone, Default)]
pub struct ModelIo {
    save_dir: Option<PathBuf>,
    load_dir: Option<PathBuf>,
}

impl ModelIo {
    /// No saving, no loading — every experiment trains in memory (the
    /// pre-artifact behavior).
    pub fn none() -> ModelIo {
        ModelIo::default()
    }

    /// A policy saving trained models under `save_dir` and/or loading them
    /// from `load_dir`.
    pub fn new(save_dir: Option<PathBuf>, load_dir: Option<PathBuf>) -> ModelIo {
        ModelIo { save_dir, load_dir }
    }

    /// Whether this policy does anything at all.
    pub fn is_none(&self) -> bool {
        self.save_dir.is_none() && self.load_dir.is_none()
    }

    /// Where trained models are saved, if anywhere.
    pub fn save_dir(&self) -> Option<&Path> {
        self.save_dir.as_deref()
    }

    /// Where models are loaded from, if anywhere.
    pub fn load_dir(&self) -> Option<&Path> {
        self.load_dir.as_deref()
    }

    /// The bundle path for a model key in `dir` (`<dir>/<key>.napel`).
    pub fn bundle_path(dir: &Path, key: &str) -> PathBuf {
        dir.join(format!("{key}.{BUNDLE_EXTENSION}"))
    }

    /// The train-once/predict-many pivot: loads `<load_dir>/<key>.napel`
    /// when a load directory is set (schema-validated against this build,
    /// bypassing training entirely); otherwise trains via `train` and, if
    /// a save directory is set, persists the result as
    /// `<save_dir>/<key>.napel`.
    ///
    /// # Errors
    ///
    /// Training errors pass through; save/load failures and artifact
    /// mismatches surface as [`NapelError::Artifact`].
    pub fn train_or_load(
        &self,
        key: &str,
        train: impl FnOnce() -> Result<TrainedNapel, NapelError>,
    ) -> Result<TrainedNapel, NapelError> {
        if let Some(dir) = &self.load_dir {
            return TrainedNapel::load(Self::bundle_path(dir, key));
        }
        let model = train()?;
        if let Some(dir) = &self.save_dir {
            std::fs::create_dir_all(dir)
                .map_err(|e| artifact_err(dir, format!("create failed: {e}")))?;
            model.save(Self::bundle_path(dir, key))?;
        }
        Ok(model)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use napel_ml::dataset::Dataset;
    use napel_ml::forest::RandomForestParams;
    use napel_ml::log_space::{LogModel, LogOf};
    use napel_ml::{Estimator, Regressor};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn fitted_forest() -> LogModel<napel_ml::forest::RandomForest> {
        let mut b = Dataset::builder(vec!["a".into(), "b".into()]);
        for i in 0..30 {
            let x = i as f64;
            b.push_row(vec![x, (i % 4) as f64], (x + 1.0).sqrt())
                .unwrap();
        }
        LogOf(RandomForestParams {
            num_trees: 7,
            ..Default::default()
        })
        .fit(&b.build().unwrap(), &mut StdRng::seed_from_u64(3))
        .unwrap()
    }

    fn sample_artifact() -> ModelArtifact {
        let m = fitted_forest();
        ModelArtifact::from_predictor(
            TargetKind::Ipc,
            vec!["a".into(), "b".into()],
            Provenance {
                seed: 0xDAC19,
                grid: vec![
                    "log(forest(trees=60, max_depth=8))".into(),
                    "log(forest(trees=120, max_depth=16))".into(),
                ],
                workloads: vec!["atax".into(), "gemv".into()],
                training_rows: 30,
                training_hash: 0xdead_beef_cafe_f00d,
            },
            Some(("log(forest(trees=120, max_depth=16))".into(), 0.083)),
            &m,
        )
        .unwrap()
    }

    #[test]
    fn document_round_trip_preserves_everything() {
        let a = sample_artifact();
        let doc = a.to_document();
        let parsed = parse_artifacts(&doc, Path::new("test.model")).unwrap();
        assert_eq!(parsed.len(), 1);
        let b = &parsed[0];
        assert_eq!(b.target, TargetKind::Ipc);
        assert_eq!(b.feature_names, a.feature_names);
        assert_eq!(b.provenance, a.provenance);
        assert_eq!(b.tuned.as_ref().unwrap().0, a.tuned.as_ref().unwrap().0);
        assert_eq!(
            b.tuned.as_ref().unwrap().1.to_bits(),
            a.tuned.as_ref().unwrap().1.to_bits(),
            "tuning score must round-trip bit-exactly"
        );
        assert_eq!(b.payload(), a.payload());
        assert_eq!(b.source(), "test.model");
        // Deterministic rendering.
        assert_eq!(doc, b.to_document());
    }

    #[test]
    fn decoded_predictor_matches_original_bits() {
        let m = fitted_forest();
        let a = sample_artifact();
        let p = a.predictor().unwrap();
        assert_eq!(p.model_kind(), "log(forest)");
        for probe in [[0.0, 1.0], [12.5, 3.0], [29.0, 0.0]] {
            assert_eq!(
                m.predict_one(&probe).to_bits(),
                p.predict_one(&probe).to_bits()
            );
        }
    }

    #[test]
    fn bundle_files_hold_multiple_artifacts() {
        let a = sample_artifact();
        let mut b = sample_artifact();
        b.target = TargetKind::EnergyPerInst;
        let text = format!("{}{}", a.to_document(), b.to_document());
        let parsed = parse_artifacts(&text, Path::new("bundle.napel")).unwrap();
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0].target, TargetKind::Ipc);
        assert_eq!(parsed[1].target, TargetKind::EnergyPerInst);
    }

    #[test]
    fn schema_validation_names_the_discrepancy() {
        let a = sample_artifact();
        let names = vec!["a".to_string(), "b".to_string()];
        a.expect_schema(TargetKind::Ipc, &names).unwrap();

        let err = a
            .expect_schema(TargetKind::EnergyPerInst, &names)
            .unwrap_err();
        assert!(err.to_string().contains("predicts ipc"), "{err}");

        let err = a
            .expect_schema(TargetKind::Ipc, &["a".to_string()])
            .unwrap_err();
        assert!(err.to_string().contains("trained on 2 features"), "{err}");

        let renamed = vec!["a".to_string(), "b2".to_string()];
        let err = a.expect_schema(TargetKind::Ipc, &renamed).unwrap_err();
        assert!(err.to_string().contains("`b`"), "{err}");
        assert!(err.to_string().contains("`b2`"), "{err}");
        assert!(matches!(err, NapelError::Artifact { .. }));
    }

    #[test]
    fn malformed_documents_are_typed_errors() {
        let p = Path::new("x.model");
        for (text, needle) in [
            ("some random file\n", "unsupported artifact header"),
            (
                &format!("{ARTIFACT_HEADER}\ntarget watts\n") as &str,
                "unknown target kind",
            ),
            (&format!("{ARTIFACT_HEADER}\ntarget ipc\n"), "document ends"),
        ] {
            let err = parse_artifacts(text, p).unwrap_err();
            match &err {
                NapelError::Artifact { path, what } => {
                    assert_eq!(path, "x.model");
                    assert!(what.contains(needle), "`{what}` lacks `{needle}`");
                }
                other => panic!("expected Artifact error, got {other}"),
            }
        }
        assert!(parse_artifacts("", p).is_err());
        assert!(parse_artifacts("\n\n", p).is_err());
    }

    #[test]
    fn corrupt_payload_is_a_typed_error() {
        let a = sample_artifact();
        let doc = a.to_document();
        // Flip the payload's model kind to something unknown.
        let bad = doc.replacen("napel-ml-model v1 log forest", "napel-ml-model v1 blob", 1);
        let parsed = parse_artifacts(&bad, Path::new("x.model"));
        // The artifact layer parses (payload is opaque to it)...
        let artifact = &parsed.unwrap()[0];
        // ...but decoding the predictor fails loudly.
        let err = artifact.predictor().unwrap_err();
        assert!(matches!(err, NapelError::Artifact { .. }), "{err}");
    }

    #[test]
    fn save_and_load_round_trip_on_disk() {
        let dir = std::env::temp_dir().join("napel-artifact-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("unit.model");
        let a = sample_artifact();
        let bytes = a.save(&path).unwrap();
        assert_eq!(bytes, a.to_document().len() as u64);
        let back = ModelArtifact::load(&path).unwrap();
        assert_eq!(back.payload(), a.payload());
        assert_eq!(back.provenance, a.provenance);
        assert_eq!(back.source(), path.display().to_string());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_is_a_typed_error() {
        let err = ModelArtifact::load("/nonexistent/nope.model").unwrap_err();
        match err {
            NapelError::Artifact { path, what } => {
                assert!(path.contains("nope.model"));
                assert!(what.contains("read failed"), "{what}");
            }
            other => panic!("expected Artifact error, got {other}"),
        }
    }
}
