//! Phase ③/⑤ — model training, tuning, and prediction.
//!
//! Training produces a [`TrainedNapel`] that can be persisted as a
//! two-artifact `.napel` bundle ([`TrainedNapel::save`]) and later
//! reloaded ([`TrainedNapel::load`]) without retraining — the
//! train-once/predict-many split the paper's speedup claims rest on. The
//! loaded model reproduces the in-memory model's predictions bit for bit.

use std::path::Path;

use rand::rngs::StdRng;
use rand::SeedableRng;

use napel_ml::cv::{k_fold, GridSearch};
use napel_ml::forest::{RandomForest, RandomForestParams};
use napel_ml::log_space::{LogModel, LogOf};
use napel_ml::tree::{DecisionTreeParams, FeatureSubset};
use napel_ml::{Estimator, Regressor};
use napel_pisa::ApplicationProfile;
use nmc_sim::ArchConfig;

use crate::artifact::{self, ModelArtifact, Provenance, TargetKind};
use crate::features::{combined_feature_names, combined_features, TrainingSet};
use crate::NapelError;

/// Training configuration: the hyper-parameter grid and CV policy of the
/// paper's "Train + Tune" phase.
#[derive(Debug, Clone, PartialEq)]
pub struct NapelConfig {
    /// Candidate forests for grid search.
    pub grid: Vec<RandomForestParams>,
    /// Cross-validation folds used for tuning (clamped to the sample
    /// count).
    pub cv_folds: usize,
    /// RNG seed (training is fully deterministic given the seed).
    pub seed: u64,
}

impl NapelConfig {
    /// The default tuning grid: forest size × tree depth × feature-subset
    /// rule (12 candidates, mirroring the paper's "as many iterations of
    /// cross-validation as hyper-parameter combinations").
    pub fn default_grid() -> Vec<RandomForestParams> {
        let mut grid = Vec::new();
        for &num_trees in &[60, 120] {
            for &max_depth in &[8, 16] {
                for &subset in &[
                    FeatureSubset::Sqrt,
                    FeatureSubset::Third,
                    FeatureSubset::All,
                ] {
                    grid.push(RandomForestParams {
                        num_trees,
                        tree: DecisionTreeParams {
                            max_depth,
                            min_samples_leaf: 1,
                            min_samples_split: 2,
                            feature_subset: subset,
                        },
                        bootstrap: true,
                    });
                }
            }
        }
        grid
    }

    /// A single mid-sized forest, skipping the tuning loop (for tests and
    /// the cheap path of the ablation bench).
    pub fn untuned() -> Self {
        NapelConfig {
            grid: vec![RandomForestParams {
                num_trees: 80,
                tree: DecisionTreeParams {
                    max_depth: 14,
                    feature_subset: FeatureSubset::Third,
                    ..DecisionTreeParams::default()
                },
                bootstrap: true,
            }],
            cv_folds: 4,
            seed: 0xDAC19,
        }
    }
}

impl Default for NapelConfig {
    fn default() -> Self {
        NapelConfig {
            grid: Self::default_grid(),
            cv_folds: 4,
            seed: 0xDAC19,
        }
    }
}

/// The trainer.
#[derive(Debug, Clone, Default)]
pub struct Napel {
    config: NapelConfig,
}

impl Napel {
    /// Creates a trainer with the given configuration.
    pub fn new(config: NapelConfig) -> Self {
        Napel { config }
    }

    /// Trains the IPC and energy models on a labeled set, tuning
    /// hyper-parameters by cross-validated MRE.
    ///
    /// # Errors
    ///
    /// Returns [`NapelError`] if the set is empty, degenerate, or too small
    /// to cross-validate.
    pub fn train(&self, set: &TrainingSet) -> Result<TrainedNapel, NapelError> {
        if set.runs.len() < 4 {
            return Err(NapelError::BadTrainingSet {
                what: format!("{} rows is too few to train and validate", set.runs.len()),
            });
        }
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let ipc_data = set.ipc_dataset()?;
        let energy_data = set.energy_dataset()?;
        let folds = k_fold(
            ipc_data.len(),
            self.config.cv_folds.clamp(2, ipc_data.len()),
            &mut rng,
        )?;

        // IPC and energy-per-instruction are positive and span orders of
        // magnitude across applications: fit in log-space so squared-error
        // splits align with the relative-error metric (see
        // `napel_ml::log_space`).
        let log_grid: Vec<LogOf<RandomForestParams>> =
            self.config.grid.iter().cloned().map(LogOf).collect();
        let search = GridSearch::new(log_grid.clone());
        let (perf, perf_tune) = if log_grid.len() == 1 {
            (log_grid[0].fit(&ipc_data, &mut rng)?, None)
        } else {
            let outcome = search.run(&ipc_data, &folds, &mut rng)?;
            let model = outcome.best.fit(&ipc_data, &mut rng)?;
            (model, Some((outcome.best.describe(), outcome.best_score)))
        };
        let (energy, energy_tune) = if log_grid.len() == 1 {
            (log_grid[0].fit(&energy_data, &mut rng)?, None)
        } else {
            let outcome = search.run(&energy_data, &folds, &mut rng)?;
            let model = outcome.best.fit(&energy_data, &mut rng)?;
            (model, Some((outcome.best.describe(), outcome.best_score)))
        };

        let provenance = Provenance {
            seed: self.config.seed,
            grid: log_grid.iter().map(|g| g.describe()).collect(),
            workloads: set
                .workloads()
                .iter()
                .map(|w| w.name().to_string())
                .collect(),
            training_rows: set.runs.len(),
            training_hash: set.content_hash(),
        };

        Ok(TrainedNapel {
            perf,
            energy,
            feature_names: set.feature_names.clone(),
            perf_tune,
            energy_tune,
            provenance,
        })
    }
}

/// A trained NAPEL instance: one (log-space) forest for IPC, one for
/// energy.
#[derive(Debug, Clone)]
pub struct TrainedNapel {
    perf: LogModel<RandomForest>,
    energy: LogModel<RandomForest>,
    feature_names: Vec<String>,
    perf_tune: Option<(String, f64)>,
    energy_tune: Option<(String, f64)>,
    provenance: Provenance,
}

impl TrainedNapel {
    /// Predicts IPC and energy-per-instruction for an application profile
    /// on an architecture configuration.
    pub fn predict(&self, profile: &ApplicationProfile, arch: &ArchConfig) -> Prediction {
        let x = combined_features(profile, arch);
        self.predict_features(&x, arch)
    }

    /// Predicts from a pre-assembled combined feature vector.
    ///
    /// # Panics
    ///
    /// Panics if `x` has the wrong length.
    pub fn predict_features(&self, x: &[f64], arch: &ArchConfig) -> Prediction {
        assert_eq!(x.len(), self.feature_names.len(), "feature vector mismatch");
        Prediction {
            ipc: self.perf.predict_one(x),
            energy_per_inst_pj: self.energy.predict_one(x),
            freq_ghz: arch.freq_ghz,
        }
    }

    /// Like [`TrainedNapel::predict`], but also reports a multiplicative
    /// uncertainty band derived from the spread of per-tree predictions
    /// (one geometric standard deviation; the forest is fitted in
    /// log-space, so the band is `[ipc / factor, ipc * factor]`).
    pub fn predict_with_uncertainty(
        &self,
        profile: &ApplicationProfile,
        arch: &ArchConfig,
    ) -> (Prediction, f64) {
        let x = combined_features(profile, arch);
        let pred = self.predict_features(&x, arch);
        let spread = self.perf.inner().prediction_std(&x).exp();
        (pred, spread)
    }

    /// The combined feature names the models expect.
    pub fn feature_names(&self) -> &[String] {
        &self.feature_names
    }

    /// Winning hyper-parameters and CV score for the performance model, if
    /// tuning ran.
    pub fn perf_tuning(&self) -> Option<&(String, f64)> {
        self.perf_tune.as_ref()
    }

    /// Winning hyper-parameters and CV score for the energy model, if
    /// tuning ran.
    pub fn energy_tuning(&self) -> Option<&(String, f64)> {
        self.energy_tune.as_ref()
    }

    /// The underlying IPC forest (exposed for importance analyses; note it
    /// is fitted on log-IPC).
    pub fn perf_forest(&self) -> &RandomForest {
        self.perf.inner()
    }

    /// Training provenance: seed, grid, workload set, and the content hash
    /// of the training data.
    pub fn provenance(&self) -> &Provenance {
        &self.provenance
    }

    /// Packages both models as artifacts (IPC first, then energy) — the
    /// in-memory form of the `.napel` bundle.
    ///
    /// # Errors
    ///
    /// Returns [`NapelError`] if a model's input dimensionality disagrees
    /// with the stored feature schema (cannot happen for a model produced
    /// by [`Napel::train`]).
    pub fn to_artifacts(&self) -> Result<(ModelArtifact, ModelArtifact), NapelError> {
        let perf = ModelArtifact::from_predictor(
            TargetKind::Ipc,
            self.feature_names.clone(),
            self.provenance.clone(),
            self.perf_tune.clone(),
            &self.perf,
        )?;
        let energy = ModelArtifact::from_predictor(
            TargetKind::EnergyPerInst,
            self.feature_names.clone(),
            self.provenance.clone(),
            self.energy_tune.clone(),
            &self.energy,
        )?;
        Ok((perf, energy))
    }

    /// Saves both models to `path` as a two-artifact `.napel` bundle,
    /// returning the bytes written. The loaded bundle reproduces this
    /// model's predictions bit for bit ([`TrainedNapel::load`]).
    ///
    /// # Errors
    ///
    /// [`NapelError::Artifact`] on I/O failure.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<u64, NapelError> {
        let (perf, energy) = self.to_artifacts()?;
        artifact::write_artifacts(path.as_ref(), &[&perf, &energy])
    }

    /// Loads a `.napel` bundle saved by [`TrainedNapel::save`], validating
    /// it against this build: the bundle must hold exactly an IPC and an
    /// energy artifact whose feature schema matches
    /// [`combined_feature_names`]. No training (and no RNG) is involved.
    ///
    /// # Errors
    ///
    /// [`NapelError::Artifact`] on I/O failure, a malformed bundle, or a
    /// version/schema mismatch — a model trained by an incompatible build
    /// fails loudly here instead of silently mispredicting.
    pub fn load(path: impl AsRef<Path>) -> Result<TrainedNapel, NapelError> {
        let path = path.as_ref();
        let artifacts = artifact::read_artifacts(path)?;
        if artifacts.len() != 2 {
            return Err(NapelError::Artifact {
                path: path.display().to_string(),
                what: format!(
                    "bundle holds {} artifacts, expected ipc + energy_per_inst",
                    artifacts.len()
                ),
            });
        }
        let expected = combined_feature_names();
        artifacts[0].expect_schema(TargetKind::Ipc, &expected)?;
        artifacts[1].expect_schema(TargetKind::EnergyPerInst, &expected)?;
        let perf: LogModel<RandomForest> = artifacts[0].decode_payload()?;
        let energy: LogModel<RandomForest> = artifacts[1].decode_payload()?;
        Ok(TrainedNapel {
            perf,
            energy,
            feature_names: expected,
            perf_tune: artifacts[0].tuned.clone(),
            energy_tune: artifacts[1].tuned.clone(),
            provenance: artifacts[0].provenance.clone(),
        })
    }

    /// Predicts from one raw combined feature row (the inference-only
    /// entry point: no profile or [`ArchConfig`] object needed, e.g. rows
    /// read from a file by the `predict` bench). The architecture
    /// frequency for the time/EDP formulas is taken from the row's
    /// `arch.freq_ghz` column.
    ///
    /// # Errors
    ///
    /// [`NapelError::FeatureSchema`] if the row has the wrong length or a
    /// non-finite value.
    pub fn predict_row(&self, x: &[f64]) -> Result<Prediction, NapelError> {
        let freq_ghz = self.validate_row(x)?;
        Ok(Prediction {
            ipc: self.perf.predict_one(x),
            energy_per_inst_pj: self.energy.predict_one(x),
            freq_ghz,
        })
    }

    /// Validates one raw combined feature row against this model's schema
    /// (length and finiteness), returning the row's `arch.freq_ghz` value.
    ///
    /// # Errors
    ///
    /// [`NapelError::FeatureSchema`] naming the discrepancy.
    fn validate_row(&self, x: &[f64]) -> Result<f64, NapelError> {
        if x.len() != self.feature_names.len() {
            return Err(NapelError::FeatureSchema {
                what: format!(
                    "row has {} features, model expects {}",
                    x.len(),
                    self.feature_names.len()
                ),
            });
        }
        if let Some(i) = x.iter().position(|v| !v.is_finite()) {
            return Err(NapelError::FeatureSchema {
                what: format!(
                    "feature `{}` is not finite ({})",
                    self.feature_names[i], x[i]
                ),
            });
        }
        self.feature_names
            .iter()
            .position(|n| n == "arch.freq_ghz")
            .map(|i| x[i])
            .ok_or_else(|| NapelError::FeatureSchema {
                what: "schema lacks `arch.freq_ghz`, cannot derive time/EDP".to_string(),
            })
    }

    /// Batch inference over raw feature rows: each row yields a
    /// [`Prediction`] plus the geometric per-tree uncertainty factor of
    /// the IPC forest (as in [`TrainedNapel::predict_with_uncertainty`]).
    /// Every row is validated before any is scored, then both forests run
    /// through the batch entry point ([`Regressor::predict_many`]) — this
    /// is the hot path of `napel-serve`, which turns queued requests into
    /// exactly these calls. Emits the `model.predict_batch` telemetry span
    /// and the `model.predictions` counter.
    ///
    /// # Errors
    ///
    /// [`NapelError::FeatureSchema`] on the first malformed row (before
    /// anything is scored).
    pub fn predict_batch(&self, rows: &[Vec<f64>]) -> Result<Vec<(Prediction, f64)>, NapelError> {
        let telemetry = napel_telemetry::global();
        let _span = telemetry
            .span("model.predict_batch")
            .attr("rows", rows.len());
        let freqs = rows
            .iter()
            .map(|x| self.validate_row(x))
            .collect::<Result<Vec<_>, NapelError>>()?;
        let ipc = self.perf.predict_many(rows);
        let energy = self.energy.predict_many(rows);
        // One pass over the forest for all rows' spreads; bit-identical to
        // calling `prediction_std` per row (see `prediction_std_many`).
        let spreads = self.perf.inner().prediction_std_many(rows);
        let out = freqs
            .into_iter()
            .zip(ipc.into_iter().zip(energy))
            .zip(spreads)
            .map(|((freq_ghz, (ipc, energy_per_inst_pj)), spread)| {
                (
                    Prediction {
                        ipc,
                        energy_per_inst_pj,
                        freq_ghz,
                    },
                    spread.exp(),
                )
            })
            .collect();
        telemetry.counter("model.predictions", rows.len() as u64);
        Ok(out)
    }
}

/// A NAPEL prediction for one (application, architecture) pair.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Prediction {
    /// Predicted instructions per cycle.
    pub ipc: f64,
    /// Predicted energy per instruction, picojoules.
    pub energy_per_inst_pj: f64,
    /// Core frequency of the target architecture (for the time formula).
    pub freq_ghz: f64,
}

impl Prediction {
    /// Execution time via the paper's formula
    /// `Π_NMC = I_offload / (IPC · f_core)`.
    pub fn exec_time_seconds(&self, instructions: u64) -> f64 {
        instructions as f64 / (self.ipc.max(1e-6) * self.freq_ghz * 1e9)
    }

    /// Total energy in joules for `instructions` offloaded instructions.
    pub fn energy_joules(&self, instructions: u64) -> f64 {
        self.energy_per_inst_pj * instructions as f64 * 1e-12
    }

    /// Energy-delay product for `instructions` offloaded instructions.
    pub fn edp(&self, instructions: u64) -> f64 {
        self.exec_time_seconds(instructions) * self.energy_joules(instructions)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collect::{collect, CollectionPlan};
    use napel_workloads::{Scale, Workload};

    fn tiny_set() -> TrainingSet {
        collect(&CollectionPlan {
            workloads: vec![Workload::Atax, Workload::Gemv],
            scale: Scale::tiny(),
            ..Default::default()
        })
    }

    #[test]
    fn untuned_training_and_prediction() {
        let set = tiny_set();
        let trained = Napel::new(NapelConfig::untuned()).train(&set).unwrap();
        assert!(trained.perf_tuning().is_none());
        // Predict one of the training configurations; should be in a sane
        // band around the label.
        let r = &set.runs[0];
        let pred = trained.predict_features(&r.features, &ArchConfig::paper_default());
        assert!(pred.ipc > 0.0);
        assert!(
            (pred.ipc - r.ipc).abs() / r.ipc < 0.6,
            "{} vs {}",
            pred.ipc,
            r.ipc
        );
        assert!(pred.energy_per_inst_pj > 0.0);
    }

    #[test]
    fn prediction_formulas() {
        let p = Prediction {
            ipc: 0.5,
            energy_per_inst_pj: 100.0,
            freq_ghz: 1.25,
        };
        let t = p.exec_time_seconds(1_000_000);
        assert!((t - 1.6e-3).abs() < 1e-9);
        let e = p.energy_joules(1_000_000);
        assert!((e - 1e-4).abs() < 1e-12);
        assert!((p.edp(1_000_000) - t * e).abs() < 1e-18);
    }

    #[test]
    fn too_small_set_rejected() {
        let set = tiny_set();
        let tiny = TrainingSet {
            feature_names: set.feature_names.clone(),
            runs: set.runs[..2].to_vec(),
            stats: set.stats,
        };
        let err = Napel::new(NapelConfig::untuned()).train(&tiny).unwrap_err();
        assert!(matches!(err, NapelError::BadTrainingSet { .. }));
    }

    #[test]
    fn uncertainty_band_is_sane() {
        let set = tiny_set();
        let trained = Napel::new(NapelConfig::untuned()).train(&set).unwrap();
        let trace = Workload::Atax.generate(&Workload::Atax.spec().central_values(), Scale::tiny());
        let profile = napel_pisa::ApplicationProfile::of(&trace);
        let (pred, spread) =
            trained.predict_with_uncertainty(&profile, &ArchConfig::paper_default());
        assert!(pred.ipc > 0.0);
        assert!(
            spread >= 1.0,
            "geometric std factor is at least 1, got {spread}"
        );
        assert!(spread < 50.0, "implausible uncertainty {spread}");
    }

    #[test]
    fn default_grid_has_multiple_candidates() {
        let g = NapelConfig::default_grid();
        assert_eq!(g.len(), 12);
        let mut seen = std::collections::HashSet::new();
        for c in &g {
            assert!(
                seen.insert(c.describe()),
                "duplicate candidate {}",
                c.describe()
            );
        }
    }

    #[test]
    fn save_load_round_trip_is_bit_identical() {
        let set = tiny_set();
        let trained = Napel::new(NapelConfig::untuned()).train(&set).unwrap();
        let dir = std::env::temp_dir().join("napel-model-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("round-trip.napel");
        let bytes = trained.save(&path).unwrap();
        assert!(bytes > 0);
        let loaded = TrainedNapel::load(&path).unwrap();
        std::fs::remove_file(&path).ok();

        assert_eq!(loaded.feature_names(), trained.feature_names());
        assert_eq!(loaded.provenance(), trained.provenance());
        assert_eq!(loaded.perf_tuning(), trained.perf_tuning());
        let arch = ArchConfig::paper_default();
        for r in &set.runs {
            let a = trained.predict_features(&r.features, &arch);
            let b = loaded.predict_features(&r.features, &arch);
            assert_eq!(a.ipc.to_bits(), b.ipc.to_bits());
            assert_eq!(
                a.energy_per_inst_pj.to_bits(),
                b.energy_per_inst_pj.to_bits()
            );
        }
    }

    #[test]
    fn provenance_records_the_training_run() {
        let set = tiny_set();
        let trained = Napel::new(NapelConfig::untuned()).train(&set).unwrap();
        let p = trained.provenance();
        assert_eq!(p.seed, 0xDAC19);
        assert_eq!(p.grid.len(), 1);
        assert!(p.grid[0].starts_with("log(forest("), "{}", p.grid[0]);
        assert_eq!(p.workloads, vec!["atax", "gemv"]);
        assert_eq!(p.training_rows, set.runs.len());
        assert_eq!(p.training_hash, set.content_hash());
    }

    #[test]
    fn predict_row_matches_predict_features() {
        let set = tiny_set();
        let trained = Napel::new(NapelConfig::untuned()).train(&set).unwrap();
        let r = &set.runs[1];
        let via_row = trained.predict_row(&r.features).unwrap();
        let via_arch = trained.predict_features(&r.features, &ArchConfig::paper_default());
        assert_eq!(via_row.ipc.to_bits(), via_arch.ipc.to_bits());
        assert_eq!(
            via_row.energy_per_inst_pj.to_bits(),
            via_arch.energy_per_inst_pj.to_bits()
        );
        // Frequency comes out of the row itself.
        let freq_idx = trained
            .feature_names()
            .iter()
            .position(|n| n == "arch.freq_ghz")
            .unwrap();
        assert_eq!(via_row.freq_ghz, r.features[freq_idx]);
    }

    #[test]
    fn predict_row_rejects_malformed_rows() {
        let set = tiny_set();
        let trained = Napel::new(NapelConfig::untuned()).train(&set).unwrap();
        let err = trained.predict_row(&[1.0, 2.0]).unwrap_err();
        assert!(matches!(err, NapelError::FeatureSchema { .. }), "{err}");
        let mut bad = set.runs[0].features.clone();
        bad[5] = f64::NAN;
        let err = trained.predict_row(&bad).unwrap_err();
        assert!(err.to_string().contains("not finite"), "{err}");
    }

    #[test]
    fn predict_batch_reports_uncertainty_per_row() {
        let set = tiny_set();
        let trained = Napel::new(NapelConfig::untuned()).train(&set).unwrap();
        let rows: Vec<Vec<f64>> = set
            .runs
            .iter()
            .take(3)
            .map(|r| r.features.clone())
            .collect();
        let out = trained.predict_batch(&rows).unwrap();
        assert_eq!(out.len(), 3);
        for (i, (pred, spread)) in out.iter().enumerate() {
            assert_eq!(
                pred.ipc.to_bits(),
                trained.predict_row(&rows[i]).unwrap().ipc.to_bits()
            );
            assert!(*spread >= 1.0);
        }
    }

    #[test]
    fn predict_batch_spread_matches_per_row_walk() {
        // Regression: the batched spread path must be bit-identical to
        // walking the forest per row the way predict_with_uncertainty does.
        let set = tiny_set();
        let trained = Napel::new(NapelConfig::untuned()).train(&set).unwrap();
        let rows: Vec<Vec<f64>> = set.runs.iter().map(|r| r.features.clone()).collect();
        let out = trained.predict_batch(&rows).unwrap();
        for (row, (_, spread)) in rows.iter().zip(&out) {
            let per_row = trained.perf_forest().prediction_std(row).exp();
            assert_eq!(spread.to_bits(), per_row.to_bits());
        }
    }

    #[test]
    fn training_is_deterministic() {
        let set = tiny_set();
        let a = Napel::new(NapelConfig::untuned()).train(&set).unwrap();
        let b = Napel::new(NapelConfig::untuned()).train(&set).unwrap();
        let r = &set.runs[3];
        let arch = ArchConfig::paper_default();
        assert_eq!(
            a.predict_features(&r.features, &arch).ipc,
            b.predict_features(&r.features, &arch).ipc
        );
    }
}
