//! Phase ③/⑤ — model training, tuning, and prediction.

use rand::rngs::StdRng;
use rand::SeedableRng;

use napel_ml::cv::{k_fold, GridSearch};
use napel_ml::forest::{RandomForest, RandomForestParams};
use napel_ml::log_space::{LogModel, LogOf};
use napel_ml::tree::{DecisionTreeParams, FeatureSubset};
use napel_ml::{Estimator, Regressor};
use napel_pisa::ApplicationProfile;
use nmc_sim::ArchConfig;

use crate::features::{combined_features, TrainingSet};
use crate::NapelError;

/// Training configuration: the hyper-parameter grid and CV policy of the
/// paper's "Train + Tune" phase.
#[derive(Debug, Clone, PartialEq)]
pub struct NapelConfig {
    /// Candidate forests for grid search.
    pub grid: Vec<RandomForestParams>,
    /// Cross-validation folds used for tuning (clamped to the sample
    /// count).
    pub cv_folds: usize,
    /// RNG seed (training is fully deterministic given the seed).
    pub seed: u64,
}

impl NapelConfig {
    /// The default tuning grid: forest size × tree depth × feature-subset
    /// rule (12 candidates, mirroring the paper's "as many iterations of
    /// cross-validation as hyper-parameter combinations").
    pub fn default_grid() -> Vec<RandomForestParams> {
        let mut grid = Vec::new();
        for &num_trees in &[60, 120] {
            for &max_depth in &[8, 16] {
                for &subset in &[
                    FeatureSubset::Sqrt,
                    FeatureSubset::Third,
                    FeatureSubset::All,
                ] {
                    grid.push(RandomForestParams {
                        num_trees,
                        tree: DecisionTreeParams {
                            max_depth,
                            min_samples_leaf: 1,
                            min_samples_split: 2,
                            feature_subset: subset,
                        },
                        bootstrap: true,
                    });
                }
            }
        }
        grid
    }

    /// A single mid-sized forest, skipping the tuning loop (for tests and
    /// the cheap path of the ablation bench).
    pub fn untuned() -> Self {
        NapelConfig {
            grid: vec![RandomForestParams {
                num_trees: 80,
                tree: DecisionTreeParams {
                    max_depth: 14,
                    feature_subset: FeatureSubset::Third,
                    ..DecisionTreeParams::default()
                },
                bootstrap: true,
            }],
            cv_folds: 4,
            seed: 0xDAC19,
        }
    }
}

impl Default for NapelConfig {
    fn default() -> Self {
        NapelConfig {
            grid: Self::default_grid(),
            cv_folds: 4,
            seed: 0xDAC19,
        }
    }
}

/// The trainer.
#[derive(Debug, Clone, Default)]
pub struct Napel {
    config: NapelConfig,
}

impl Napel {
    /// Creates a trainer with the given configuration.
    pub fn new(config: NapelConfig) -> Self {
        Napel { config }
    }

    /// Trains the IPC and energy models on a labeled set, tuning
    /// hyper-parameters by cross-validated MRE.
    ///
    /// # Errors
    ///
    /// Returns [`NapelError`] if the set is empty, degenerate, or too small
    /// to cross-validate.
    pub fn train(&self, set: &TrainingSet) -> Result<TrainedNapel, NapelError> {
        if set.runs.len() < 4 {
            return Err(NapelError::BadTrainingSet {
                what: format!("{} rows is too few to train and validate", set.runs.len()),
            });
        }
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let ipc_data = set.ipc_dataset()?;
        let energy_data = set.energy_dataset()?;
        let folds = k_fold(
            ipc_data.len(),
            self.config.cv_folds.clamp(2, ipc_data.len()),
            &mut rng,
        )?;

        // IPC and energy-per-instruction are positive and span orders of
        // magnitude across applications: fit in log-space so squared-error
        // splits align with the relative-error metric (see
        // `napel_ml::log_space`).
        let log_grid: Vec<LogOf<RandomForestParams>> =
            self.config.grid.iter().cloned().map(LogOf).collect();
        let search = GridSearch::new(log_grid.clone());
        let (perf, perf_tune) = if log_grid.len() == 1 {
            (log_grid[0].fit(&ipc_data, &mut rng)?, None)
        } else {
            let outcome = search.run(&ipc_data, &folds, &mut rng)?;
            let model = outcome.best.fit(&ipc_data, &mut rng)?;
            (model, Some((outcome.best.describe(), outcome.best_score)))
        };
        let (energy, energy_tune) = if log_grid.len() == 1 {
            (log_grid[0].fit(&energy_data, &mut rng)?, None)
        } else {
            let outcome = search.run(&energy_data, &folds, &mut rng)?;
            let model = outcome.best.fit(&energy_data, &mut rng)?;
            (model, Some((outcome.best.describe(), outcome.best_score)))
        };

        Ok(TrainedNapel {
            perf,
            energy,
            feature_names: set.feature_names.clone(),
            perf_tune,
            energy_tune,
        })
    }
}

/// A trained NAPEL instance: one (log-space) forest for IPC, one for
/// energy.
#[derive(Debug, Clone)]
pub struct TrainedNapel {
    perf: LogModel<RandomForest>,
    energy: LogModel<RandomForest>,
    feature_names: Vec<String>,
    perf_tune: Option<(String, f64)>,
    energy_tune: Option<(String, f64)>,
}

impl TrainedNapel {
    /// Predicts IPC and energy-per-instruction for an application profile
    /// on an architecture configuration.
    pub fn predict(&self, profile: &ApplicationProfile, arch: &ArchConfig) -> Prediction {
        let x = combined_features(profile, arch);
        self.predict_features(&x, arch)
    }

    /// Predicts from a pre-assembled combined feature vector.
    ///
    /// # Panics
    ///
    /// Panics if `x` has the wrong length.
    pub fn predict_features(&self, x: &[f64], arch: &ArchConfig) -> Prediction {
        assert_eq!(x.len(), self.feature_names.len(), "feature vector mismatch");
        Prediction {
            ipc: self.perf.predict_one(x),
            energy_per_inst_pj: self.energy.predict_one(x),
            freq_ghz: arch.freq_ghz,
        }
    }

    /// Like [`TrainedNapel::predict`], but also reports a multiplicative
    /// uncertainty band derived from the spread of per-tree predictions
    /// (one geometric standard deviation; the forest is fitted in
    /// log-space, so the band is `[ipc / factor, ipc * factor]`).
    pub fn predict_with_uncertainty(
        &self,
        profile: &ApplicationProfile,
        arch: &ArchConfig,
    ) -> (Prediction, f64) {
        let x = combined_features(profile, arch);
        let pred = self.predict_features(&x, arch);
        let spread = self.perf.inner().prediction_std(&x).exp();
        (pred, spread)
    }

    /// The combined feature names the models expect.
    pub fn feature_names(&self) -> &[String] {
        &self.feature_names
    }

    /// Winning hyper-parameters and CV score for the performance model, if
    /// tuning ran.
    pub fn perf_tuning(&self) -> Option<&(String, f64)> {
        self.perf_tune.as_ref()
    }

    /// Winning hyper-parameters and CV score for the energy model, if
    /// tuning ran.
    pub fn energy_tuning(&self) -> Option<&(String, f64)> {
        self.energy_tune.as_ref()
    }

    /// The underlying IPC forest (exposed for importance analyses; note it
    /// is fitted on log-IPC).
    pub fn perf_forest(&self) -> &RandomForest {
        self.perf.inner()
    }
}

/// A NAPEL prediction for one (application, architecture) pair.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Prediction {
    /// Predicted instructions per cycle.
    pub ipc: f64,
    /// Predicted energy per instruction, picojoules.
    pub energy_per_inst_pj: f64,
    /// Core frequency of the target architecture (for the time formula).
    pub freq_ghz: f64,
}

impl Prediction {
    /// Execution time via the paper's formula
    /// `Π_NMC = I_offload / (IPC · f_core)`.
    pub fn exec_time_seconds(&self, instructions: u64) -> f64 {
        instructions as f64 / (self.ipc.max(1e-6) * self.freq_ghz * 1e9)
    }

    /// Total energy in joules for `instructions` offloaded instructions.
    pub fn energy_joules(&self, instructions: u64) -> f64 {
        self.energy_per_inst_pj * instructions as f64 * 1e-12
    }

    /// Energy-delay product for `instructions` offloaded instructions.
    pub fn edp(&self, instructions: u64) -> f64 {
        self.exec_time_seconds(instructions) * self.energy_joules(instructions)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collect::{collect, CollectionPlan};
    use napel_workloads::{Scale, Workload};

    fn tiny_set() -> TrainingSet {
        collect(&CollectionPlan {
            workloads: vec![Workload::Atax, Workload::Gemv],
            scale: Scale::tiny(),
            ..Default::default()
        })
    }

    #[test]
    fn untuned_training_and_prediction() {
        let set = tiny_set();
        let trained = Napel::new(NapelConfig::untuned()).train(&set).unwrap();
        assert!(trained.perf_tuning().is_none());
        // Predict one of the training configurations; should be in a sane
        // band around the label.
        let r = &set.runs[0];
        let pred = trained.predict_features(&r.features, &ArchConfig::paper_default());
        assert!(pred.ipc > 0.0);
        assert!(
            (pred.ipc - r.ipc).abs() / r.ipc < 0.6,
            "{} vs {}",
            pred.ipc,
            r.ipc
        );
        assert!(pred.energy_per_inst_pj > 0.0);
    }

    #[test]
    fn prediction_formulas() {
        let p = Prediction {
            ipc: 0.5,
            energy_per_inst_pj: 100.0,
            freq_ghz: 1.25,
        };
        let t = p.exec_time_seconds(1_000_000);
        assert!((t - 1.6e-3).abs() < 1e-9);
        let e = p.energy_joules(1_000_000);
        assert!((e - 1e-4).abs() < 1e-12);
        assert!((p.edp(1_000_000) - t * e).abs() < 1e-18);
    }

    #[test]
    fn too_small_set_rejected() {
        let set = tiny_set();
        let tiny = TrainingSet {
            feature_names: set.feature_names.clone(),
            runs: set.runs[..2].to_vec(),
            stats: set.stats,
        };
        let err = Napel::new(NapelConfig::untuned()).train(&tiny).unwrap_err();
        assert!(matches!(err, NapelError::BadTrainingSet { .. }));
    }

    #[test]
    fn uncertainty_band_is_sane() {
        let set = tiny_set();
        let trained = Napel::new(NapelConfig::untuned()).train(&set).unwrap();
        let trace = Workload::Atax.generate(&Workload::Atax.spec().central_values(), Scale::tiny());
        let profile = napel_pisa::ApplicationProfile::of(&trace);
        let (pred, spread) =
            trained.predict_with_uncertainty(&profile, &ArchConfig::paper_default());
        assert!(pred.ipc > 0.0);
        assert!(
            spread >= 1.0,
            "geometric std factor is at least 1, got {spread}"
        );
        assert!(spread < 50.0, "implausible uncertainty {spread}");
    }

    #[test]
    fn default_grid_has_multiple_candidates() {
        let g = NapelConfig::default_grid();
        assert_eq!(g.len(), 12);
        let mut seen = std::collections::HashSet::new();
        for c in &g {
            assert!(
                seen.insert(c.describe()),
                "duplicate candidate {}",
                c.describe()
            );
        }
    }

    #[test]
    fn training_is_deterministic() {
        let set = tiny_set();
        let a = Napel::new(NapelConfig::untuned()).train(&set).unwrap();
        let b = Napel::new(NapelConfig::untuned()).train(&set).unwrap();
        let r = &set.runs[3];
        let arch = ArchConfig::paper_default();
        assert_eq!(
            a.predict_features(&r.features, &arch).ipc,
            b.predict_features(&r.features, &arch).ipc
        );
    }
}
