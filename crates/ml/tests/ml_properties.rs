//! Property tests for the ML estimators.

use proptest::prelude::*;

use napel_ml::cv::{k_fold, leave_one_group_out};
use napel_ml::dataset::Dataset;
use napel_ml::forest::RandomForestParams;
use napel_ml::metrics::{mean_absolute_error, mean_relative_error, root_mean_squared_error};
use napel_ml::tree::DecisionTreeParams;
use napel_ml::{Estimator, Regressor};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Random small regression dataset.
fn datasets() -> impl Strategy<Value = Dataset> {
    prop::collection::vec((any::<i16>(), any::<i16>(), any::<i16>()), 4..60).prop_map(|rows| {
        let mut b = Dataset::builder(vec!["a".into(), "b".into()]);
        for (x, y, z) in rows {
            b.push_row(vec![f64::from(x), f64::from(y)], f64::from(z))
                .expect("finite");
        }
        b.build().expect("non-empty")
    })
}

proptest! {
    #[test]
    fn tree_predictions_stay_in_target_range(d in datasets(), seed in 0u64..100) {
        let mut rng = StdRng::seed_from_u64(seed);
        let tree = DecisionTreeParams::default().fit(&d, &mut rng).expect("fit");
        let (lo, hi) = d.target_range();
        for i in 0..d.len() {
            let p = tree.predict_one(d.row(i));
            prop_assert!(p >= lo - 1e-9 && p <= hi + 1e-9);
        }
        // Probes outside the training distribution too.
        for probe in [[-1e6, 1e6], [0.0, 0.0], [42.0, -42.0]] {
            let p = tree.predict_one(&probe);
            prop_assert!(p >= lo - 1e-9 && p <= hi + 1e-9);
        }
    }

    #[test]
    fn forest_is_deterministic_and_bounded(d in datasets(), seed in 0u64..100) {
        let params = RandomForestParams { num_trees: 7, ..Default::default() };
        let a = params.fit(&d, &mut StdRng::seed_from_u64(seed)).expect("fit");
        let b = params.fit(&d, &mut StdRng::seed_from_u64(seed)).expect("fit");
        let (lo, hi) = d.target_range();
        for i in 0..d.len() {
            let pa = a.predict_one(d.row(i));
            prop_assert_eq!(pa.to_bits(), b.predict_one(d.row(i)).to_bits());
            prop_assert!(pa >= lo - 1e-9 && pa <= hi + 1e-9);
        }
    }

    #[test]
    fn depth_zero_tree_predicts_the_mean(d in datasets(), seed in 0u64..100) {
        let mut rng = StdRng::seed_from_u64(seed);
        let stump = DecisionTreeParams { max_depth: 0, ..Default::default() }
            .fit(&d, &mut rng)
            .expect("fit");
        let p = stump.predict_one(d.row(0));
        prop_assert!((p - d.target_mean()).abs() < 1e-9);
    }

    #[test]
    fn kfold_is_a_partition(n in 4usize..200, k in 2usize..6, seed in 0u64..100) {
        prop_assume!(n >= k);
        let mut rng = StdRng::seed_from_u64(seed);
        let folds = k_fold(n, k, &mut rng).expect("valid");
        prop_assert_eq!(folds.len(), k);
        let mut covered = vec![0u32; n];
        for f in &folds {
            prop_assert_eq!(f.train.len() + f.test.len(), n);
            for &i in &f.test {
                covered[i] += 1;
            }
            let train: std::collections::HashSet<usize> = f.train.iter().copied().collect();
            prop_assert!(f.test.iter().all(|i| !train.contains(i)));
        }
        prop_assert!(covered.iter().all(|&c| c == 1));
    }

    #[test]
    fn logo_never_leaks_the_held_out_group(groups in prop::collection::vec(0usize..5, 4..60)) {
        let distinct: std::collections::HashSet<usize> = groups.iter().copied().collect();
        prop_assume!(distinct.len() >= 2);
        let folds = leave_one_group_out(&groups).expect("valid");
        prop_assert_eq!(folds.len(), distinct.len());
        for f in &folds {
            let test_groups: std::collections::HashSet<usize> =
                f.test.iter().map(|&i| groups[i]).collect();
            prop_assert_eq!(test_groups.len(), 1);
            let g = *test_groups.iter().next().expect("one");
            prop_assert!(f.train.iter().all(|&i| groups[i] != g));
        }
    }

    #[test]
    fn error_metrics_are_nonnegative_and_zero_iff_exact(
        pairs in prop::collection::vec((any::<i16>(), any::<i16>()), 1..50)
    ) {
        let pred: Vec<f64> = pairs.iter().map(|&(p, _)| f64::from(p)).collect();
        let actual: Vec<f64> = pairs.iter().map(|&(_, a)| f64::from(a)).collect();
        let mre = mean_relative_error(&pred, &actual);
        let mae = mean_absolute_error(&pred, &actual);
        let rmse = root_mean_squared_error(&pred, &actual);
        prop_assert!(mre >= 0.0 && mae >= 0.0 && rmse >= 0.0);
        prop_assert!(rmse + 1e-12 >= mae, "RMSE dominates MAE");
        let exact = pred.iter().zip(&actual).all(|(p, a)| p == a);
        if exact {
            prop_assert_eq!(mae, 0.0);
        }
    }

    #[test]
    fn min_samples_leaf_controls_granularity(d in datasets(), seed in 0u64..50) {
        // A tree with a huge min leaf cannot have more distinct predictions
        // than n / min_leaf.
        let min_leaf = (d.len() / 2).max(1);
        let mut rng = StdRng::seed_from_u64(seed);
        let tree = DecisionTreeParams { min_samples_leaf: min_leaf, ..Default::default() }
            .fit(&d, &mut rng)
            .expect("fit");
        let distinct: std::collections::HashSet<u64> =
            (0..d.len()).map(|i| tree.predict_one(d.row(i)).to_bits()).collect();
        prop_assert!(distinct.len() <= d.len() / min_leaf + 1);
    }
}
