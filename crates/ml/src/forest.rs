//! Random forest regression — NAPEL's predictor.
//!
//! A bagged ensemble of CART trees ([`crate::tree`]), each trained on a
//! bootstrap resample with a random feature subset per split, predicting the
//! mean of the trees. The paper picked random forests because they "embed
//! automatic procedures to screen many input features" — with ~400 profile
//! features and tens of training points, per-split feature subsampling and
//! averaging provide that screening. Out-of-bag error and permutation
//! importance are included for the feature-screening ablation.

use rand::Rng;
use rand::RngCore;

use crate::dataset::Dataset;
use crate::tree::{DecisionTree, DecisionTreeParams, FeatureSubset};
use crate::{Estimator, MlError, Regressor};

/// Hyper-parameters of a random forest.
#[derive(Debug, Clone, PartialEq)]
pub struct RandomForestParams {
    /// Number of trees.
    pub num_trees: usize,
    /// Per-tree CART parameters (feature subset applies per split).
    pub tree: DecisionTreeParams,
    /// Whether each tree trains on a bootstrap resample (vs the full set).
    pub bootstrap: bool,
}

/// Bucket bounds (seconds) for the per-tree build-time histogram
/// `ml.forest.tree_build_seconds`. Decade-spaced from 10 µs to 1 s; trees
/// on NAPEL-scale datasets land in the middle buckets, so drift in either
/// direction is visible in the end-of-run summary.
const TREE_BUILD_BOUNDS: &[f64] = &[1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0];

impl Default for RandomForestParams {
    fn default() -> Self {
        RandomForestParams {
            num_trees: 100,
            tree: DecisionTreeParams {
                feature_subset: FeatureSubset::Third,
                ..DecisionTreeParams::default()
            },
            bootstrap: true,
        }
    }
}

impl Estimator for RandomForestParams {
    type Model = RandomForest;

    fn fit(&self, data: &Dataset, rng: &mut dyn RngCore) -> Result<RandomForest, MlError> {
        if data.is_empty() {
            return Err(MlError::EmptyDataset);
        }
        if self.num_trees == 0 {
            return Err(MlError::InvalidHyperParameter {
                what: "num_trees must be >= 1",
            });
        }
        let telemetry = napel_telemetry::global();
        let _span = telemetry
            .span("ml.forest.fit")
            .attr("trees", self.num_trees)
            .attr("rows", data.len());
        let n = data.len();
        let mut trees = Vec::with_capacity(self.num_trees);
        let mut oob: Vec<(f64, u32)> = vec![(0.0, 0); n];
        for _ in 0..self.num_trees {
            let tree_start = telemetry.is_enabled().then(std::time::Instant::now);
            let (sample, in_bag) = if self.bootstrap {
                let mut in_bag = vec![false; n];
                let idx: Vec<usize> = (0..n)
                    .map(|_| {
                        let i = rng.gen_range(0..n);
                        in_bag[i] = true;
                        i
                    })
                    .collect();
                (data.subset(&idx), in_bag)
            } else {
                (data.clone(), vec![true; n])
            };
            let tree = self.tree.fit(&sample, rng)?;
            if let Some(start) = tree_start {
                telemetry.observe(
                    "ml.forest.tree_build_seconds",
                    TREE_BUILD_BOUNDS,
                    start.elapsed().as_secs_f64(),
                );
            }
            for (i, bagged) in in_bag.iter().enumerate() {
                if !bagged {
                    let (sum, cnt) = oob[i];
                    oob[i] = (sum + tree.predict_one(data.row(i)), cnt + 1);
                }
            }
            trees.push(tree);
        }

        // Out-of-bag mean squared error over the rows that were ever OOB.
        let mut oob_sq = 0.0;
        let mut oob_n = 0usize;
        for (i, &(sum, cnt)) in oob.iter().enumerate() {
            if cnt > 0 {
                let pred = sum / cnt as f64;
                oob_sq += (pred - data.target(i)).powi(2);
                oob_n += 1;
            }
        }
        let oob_mse = (oob_n > 0).then(|| oob_sq / oob_n as f64);

        Ok(RandomForest {
            trees,
            num_features: data.num_features(),
            oob_mse,
        })
    }

    fn describe(&self) -> String {
        format!(
            "forest(trees={}, max_depth={}, min_leaf={}, features={:?}, bootstrap={})",
            self.num_trees,
            self.tree.max_depth,
            self.tree.min_samples_leaf,
            self.tree.feature_subset,
            self.bootstrap
        )
    }
}

/// A fitted random forest.
///
/// # Example
///
/// ```
/// use napel_ml::dataset::Dataset;
/// use napel_ml::forest::RandomForestParams;
/// use napel_ml::{Estimator, Regressor};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut b = Dataset::builder(vec!["x".into()]);
/// for i in 0..50 {
///     let x = i as f64 / 5.0;
///     b.push_row(vec![x], x.sin())?;
/// }
/// let f = RandomForestParams::default().fit(&b.build()?, &mut StdRng::seed_from_u64(1))?;
/// assert!((f.predict_one(&[1.5]) - 1.5f64.sin()).abs() < 0.25);
/// # Ok::<(), napel_ml::MlError>(())
/// ```
#[derive(Debug, Clone)]
pub struct RandomForest {
    trees: Vec<DecisionTree>,
    num_features: usize,
    oob_mse: Option<f64>,
}

impl RandomForest {
    /// Number of features the forest was fitted on.
    pub fn num_features(&self) -> usize {
        self.num_features
    }

    /// Number of trees in the ensemble.
    pub fn num_trees(&self) -> usize {
        self.trees.len()
    }

    /// The fitted trees (for serialization).
    pub(crate) fn trees(&self) -> &[DecisionTree] {
        &self.trees
    }

    /// Rebuilds a forest from its serialized parts. The caller
    /// ([`crate::persist`]) has already validated tree count and feature
    /// dimensions.
    pub(crate) fn from_parts(
        trees: Vec<DecisionTree>,
        num_features: usize,
        oob_mse: Option<f64>,
    ) -> RandomForest {
        RandomForest {
            trees,
            num_features,
            oob_mse,
        }
    }

    /// Out-of-bag mean squared error, if bootstrap left any row out of at
    /// least one bag.
    pub fn oob_mse(&self) -> Option<f64> {
        self.oob_mse
    }

    /// Per-tree predictions for one input (useful for uncertainty bands).
    /// Empty for a zero-tree forest (unreachable via [`Estimator::fit`],
    /// which rejects `num_trees == 0`).
    pub fn tree_predictions(&self, x: &[f64]) -> Vec<f64> {
        self.trees.iter().map(|t| t.predict_one(x)).collect()
    }

    /// Standard deviation of per-tree predictions — a cheap epistemic
    /// uncertainty proxy. A zero-tree forest yields `0.0` rather than NaN;
    /// such a forest cannot come from [`Estimator::fit`] (it rejects
    /// `num_trees == 0`) or from deserialization (the decoder rejects it),
    /// so this is defense in depth.
    pub fn prediction_std(&self, x: &[f64]) -> f64 {
        let preds = self.tree_predictions(x);
        if preds.is_empty() {
            return 0.0;
        }
        let mean = preds.iter().sum::<f64>() / preds.len() as f64;
        (preds.iter().map(|p| (p - mean).powi(2)).sum::<f64>() / preds.len() as f64).sqrt()
    }

    /// Batched [`Self::prediction_std`]: mean and spread of the per-tree
    /// predictions for every row in one pass over the forest. Each tree is
    /// fetched once and walked across all rows (cache-friendly for wide
    /// batches), instead of re-walking the whole ensemble per row the way
    /// a `prediction_std` loop would. Per row the arithmetic is identical
    /// to [`Self::prediction_std`] — per-tree predictions accumulated in
    /// tree order, then the population standard deviation — so results are
    /// bit-identical to the per-row path.
    pub fn prediction_std_many(&self, rows: &[Vec<f64>]) -> Vec<f64> {
        if self.trees.is_empty() {
            return vec![0.0; rows.len()];
        }
        // Transposed accumulation: per_row[i] collects tree predictions in
        // tree order, matching what `tree_predictions` would build row-wise.
        let mut per_row: Vec<Vec<f64>> = vec![Vec::with_capacity(self.trees.len()); rows.len()];
        for tree in &self.trees {
            for (preds, x) in per_row.iter_mut().zip(rows) {
                preds.push(tree.predict_one(x));
            }
        }
        per_row
            .iter()
            .map(|preds| {
                let mean = preds.iter().sum::<f64>() / preds.len() as f64;
                (preds.iter().map(|p| (p - mean).powi(2)).sum::<f64>() / preds.len() as f64).sqrt()
            })
            .collect()
    }

    /// Permutation feature importance on `data`: the increase in MSE when
    /// feature `j` is shuffled, for every `j`. Larger = more important.
    pub fn permutation_importance<R: Rng + ?Sized>(&self, data: &Dataset, rng: &mut R) -> Vec<f64> {
        let base = mse(&self.predict(data), data.targets());
        let n = data.len();
        let d = data.num_features();
        let mut importances = Vec::with_capacity(d);
        for j in 0..d {
            // Shuffle column j by drawing a random permutation of rows.
            let mut perm: Vec<usize> = (0..n).collect();
            for i in (1..n).rev() {
                perm.swap(i, rng.gen_range(0..=i));
            }
            let preds: Vec<f64> = (0..n)
                .map(|i| {
                    let mut row = data.row(i).to_vec();
                    row[j] = data.row(perm[i])[j];
                    self.predict_one(&row)
                })
                .collect();
            importances.push(mse(&preds, data.targets()) - base);
        }
        importances
    }
}

impl Regressor for RandomForest {
    fn predict_one(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.num_features, "feature count mismatch");
        self.trees.iter().map(|t| t.predict_one(x)).sum::<f64>() / self.trees.len() as f64
    }
}

fn mse(pred: &[f64], actual: &[f64]) -> f64 {
    pred.iter()
        .zip(actual)
        .map(|(&p, &a)| (p - a).powi(2))
        .sum::<f64>()
        / actual.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(7)
    }

    fn nonlinear_data() -> Dataset {
        // y = x0^2 + 10, noise-free; second feature irrelevant. The offset keeps
        // every target away from zero so relative error stays meaningful.
        let mut b = Dataset::builder(vec!["x".into(), "junk".into()]);
        for i in 0..80 {
            let x = i as f64 / 10.0;
            b.push_row(vec![x, ((i * 7) % 13) as f64], x * x + 10.0)
                .unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn forest_fits_nonlinear_function() {
        let d = nonlinear_data();
        let f = RandomForestParams {
            num_trees: 60,
            ..Default::default()
        }
        .fit(&d, &mut rng())
        .unwrap();
        let mre = crate::metrics::mean_relative_error(&f.predict(&d), d.targets());
        // In-sample error should be small but need not be zero (bagging).
        assert!(mre < 0.3, "forest MRE {mre} too high");
    }

    #[test]
    fn forest_prediction_is_tree_mean() {
        let d = nonlinear_data();
        let f = RandomForestParams {
            num_trees: 9,
            ..Default::default()
        }
        .fit(&d, &mut rng())
        .unwrap();
        let x = d.row(5);
        let preds = f.tree_predictions(x);
        let mean = preds.iter().sum::<f64>() / preds.len() as f64;
        assert!((f.predict_one(x) - mean).abs() < 1e-12);
        assert_eq!(f.num_trees(), 9);
    }

    #[test]
    fn prediction_stays_in_label_range() {
        // Forest averages tree means, so predictions are convex combinations
        // of training targets.
        let d = nonlinear_data();
        let f = RandomForestParams::default().fit(&d, &mut rng()).unwrap();
        let (lo, hi) = d.target_range();
        for probe in [-100.0, 0.0, 3.5, 1e6] {
            let p = f.predict_one(&[probe, 0.0]);
            assert!(
                p >= lo - 1e-9 && p <= hi + 1e-9,
                "prediction {p} escapes [{lo},{hi}]"
            );
        }
    }

    #[test]
    fn oob_is_reported_with_bootstrap() {
        let d = nonlinear_data();
        let f = RandomForestParams {
            num_trees: 30,
            ..Default::default()
        }
        .fit(&d, &mut rng())
        .unwrap();
        let oob = f.oob_mse().expect("bootstrap forests report OOB");
        assert!(oob.is_finite() && oob >= 0.0);
    }

    #[test]
    fn no_bootstrap_has_no_oob() {
        let d = nonlinear_data();
        let f = RandomForestParams {
            bootstrap: false,
            num_trees: 5,
            ..Default::default()
        }
        .fit(&d, &mut rng())
        .unwrap();
        assert_eq!(f.oob_mse(), None);
    }

    #[test]
    fn permutation_importance_finds_relevant_feature() {
        let d = nonlinear_data();
        let f = RandomForestParams {
            num_trees: 40,
            ..Default::default()
        }
        .fit(&d, &mut rng())
        .unwrap();
        let imp = f.permutation_importance(&d, &mut rng());
        assert!(
            imp[0] > imp[1].max(0.0) * 5.0 + 1e-9,
            "x importance {} should dominate junk importance {}",
            imp[0],
            imp[1]
        );
    }

    #[test]
    fn zero_trees_rejected() {
        let d = nonlinear_data();
        let err = RandomForestParams {
            num_trees: 0,
            ..Default::default()
        }
        .fit(&d, &mut rng())
        .unwrap_err();
        assert!(matches!(err, MlError::InvalidHyperParameter { .. }));
    }

    #[test]
    fn zero_tree_forest_uncertainty_is_zero_not_nan() {
        // Unreachable through fit/decode, but constructible in principle;
        // the uncertainty accessors must stay well-defined.
        let f = RandomForest {
            trees: vec![],
            num_features: 2,
            oob_mse: None,
        };
        assert_eq!(f.tree_predictions(&[1.0, 2.0]), Vec::<f64>::new());
        assert_eq!(f.prediction_std(&[1.0, 2.0]), 0.0);
    }

    #[test]
    fn prediction_std_many_is_bit_identical_to_per_row_path() {
        let d = nonlinear_data();
        let f = RandomForestParams {
            num_trees: 25,
            ..Default::default()
        }
        .fit(&d, &mut rng())
        .unwrap();
        let rows: Vec<Vec<f64>> = (0..d.len()).map(|i| d.row(i).to_vec()).collect();
        let batched = f.prediction_std_many(&rows);
        assert_eq!(batched.len(), rows.len());
        for (row, b) in rows.iter().zip(&batched) {
            assert_eq!(
                b.to_bits(),
                f.prediction_std(row).to_bits(),
                "batched spread diverges from per-row spread at {row:?}"
            );
        }
        // Empty batch and zero-tree forest stay well-defined.
        assert_eq!(f.prediction_std_many(&[]), Vec::<f64>::new());
        let empty = RandomForest {
            trees: vec![],
            num_features: 2,
            oob_mse: None,
        };
        assert_eq!(empty.prediction_std_many(&rows[..3]), vec![0.0; 3]);
    }

    #[test]
    fn deterministic_given_seed() {
        let d = nonlinear_data();
        let p = RandomForestParams {
            num_trees: 10,
            ..Default::default()
        };
        let f1 = p.fit(&d, &mut StdRng::seed_from_u64(5)).unwrap();
        let f2 = p.fit(&d, &mut StdRng::seed_from_u64(5)).unwrap();
        for i in 0..d.len() {
            assert_eq!(f1.predict_one(d.row(i)), f2.predict_one(d.row(i)));
        }
    }

    #[test]
    fn uncertainty_grows_off_distribution() {
        let d = nonlinear_data();
        let f = RandomForestParams {
            num_trees: 50,
            ..Default::default()
        }
        .fit(&d, &mut rng())
        .unwrap();
        let std_in = f.prediction_std(&[4.0, 1.0]);
        assert!(std_in.is_finite() && std_in >= 0.0);
    }
}
