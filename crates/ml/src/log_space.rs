//! Log-space target transformation for any estimator.
//!
//! NAPEL's targets (IPC, energy-per-instruction) are strictly positive and
//! span orders of magnitude across applications, while the evaluation
//! metric (MRE, Equation 1 of the paper) is *relative*. Fitting in
//! log-space makes the squared-error objective the estimators minimize
//! align with the relative-error metric they are judged on: a tree that
//! averages log-targets predicts geometric means, and an error of ±0.1 in
//! log-space is ±10 % regardless of the target's magnitude.
//!
//! [`LogOf`] wraps any [`Estimator`]; the wrapped model exponentiates its
//! predictions back. Applied uniformly to NAPEL and the baselines so the
//! Figure 5 comparison stays fair.

use rand::RngCore;

use crate::dataset::Dataset;
use crate::{Estimator, MlError, Regressor};

/// Floor applied before taking logarithms (targets are physical quantities
/// that should never be zero, but simulation of a degenerate configuration
/// could produce one).
const FLOOR: f64 = 1e-12;

/// Wraps an estimator to fit on `ln(max(y, FLOOR))` and predict `exp(·)`.
///
/// # Example
///
/// ```
/// use napel_ml::dataset::Dataset;
/// use napel_ml::forest::RandomForestParams;
/// use napel_ml::log_space::LogOf;
/// use napel_ml::{Estimator, Regressor};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// // Targets spanning four orders of magnitude.
/// let mut b = Dataset::builder(vec!["x".into()]);
/// for i in 0..30 {
///     let x = i as f64;
///     b.push_row(vec![x], 10f64.powf(x / 7.0))?;
/// }
/// let m = LogOf(RandomForestParams::default()).fit(&b.build()?, &mut StdRng::seed_from_u64(1))?;
/// let p = m.predict_one(&[14.0]);
/// assert!(p > 30.0 && p < 300.0, "{p}");
/// # Ok::<(), napel_ml::MlError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct LogOf<E>(pub E);

impl<E: Estimator> Estimator for LogOf<E> {
    type Model = LogModel<E::Model>;

    fn fit(&self, data: &Dataset, rng: &mut dyn RngCore) -> Result<Self::Model, MlError> {
        let mut b = Dataset::builder(data.feature_names().to_vec());
        for i in 0..data.len() {
            b.push_row(data.row(i).to_vec(), data.target(i).max(FLOOR).ln())?;
        }
        let mut logged = b.build()?;
        // Group labels are orthogonal to the target transform; keep them
        // so group-aware inner estimators (the ensemble) still see them.
        if let Some(groups) = data.groups() {
            logged = logged.with_groups(groups.to_vec())?;
        }
        let inner = self.0.fit(&logged, rng)?;
        Ok(LogModel { inner })
    }

    fn describe(&self) -> String {
        format!("log({})", self.0.describe())
    }
}

/// A model fitted in log-space; predictions are exponentiated back.
#[derive(Debug, Clone)]
pub struct LogModel<M> {
    inner: M,
}

impl<M> LogModel<M> {
    /// Wraps an already-fitted log-space model (the deserialization path;
    /// training goes through [`LogOf`]).
    pub fn new(inner: M) -> LogModel<M> {
        LogModel { inner }
    }

    /// The wrapped log-space model.
    pub fn inner(&self) -> &M {
        &self.inner
    }
}

impl<M: Regressor> Regressor for LogModel<M> {
    fn predict_one(&self, x: &[f64]) -> f64 {
        self.inner.predict_one(x).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::forest::RandomForestParams;
    use crate::metrics::mean_relative_error;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn wide_range_data() -> Dataset {
        // y = e^(x/3): spans e^0 .. e^10.
        let mut b = Dataset::builder(vec!["x".into()]);
        for i in 0..60 {
            let x = i as f64 / 2.0;
            b.push_row(vec![x], (x / 3.0).exp()).unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn log_space_beats_raw_space_on_relative_error() {
        // Sparse training grid, held-out evaluation between the grid points:
        // raw-space leaves average targets arithmetically (skewed toward the
        // large end of each leaf), log-space leaves average geometrically.
        let mut train = Dataset::builder(vec!["x".into()]);
        let mut test = Dataset::builder(vec!["x".into()]);
        for i in 0..60 {
            let x = i as f64 / 2.0;
            let y = (x / 3.0).exp();
            if i % 4 == 0 {
                train.push_row(vec![x], y).unwrap();
            } else {
                test.push_row(vec![x], y).unwrap();
            }
        }
        let (train, test) = (train.build().unwrap(), test.build().unwrap());
        let params = RandomForestParams {
            num_trees: 40,
            ..Default::default()
        };
        let raw = params.fit(&train, &mut StdRng::seed_from_u64(3)).unwrap();
        let log = LogOf(params)
            .fit(&train, &mut StdRng::seed_from_u64(3))
            .unwrap();
        let raw_mre = mean_relative_error(&raw.predict(&test), test.targets());
        let log_mre = mean_relative_error(&log.predict(&test), test.targets());
        assert!(
            log_mre < raw_mre,
            "log-space MRE {log_mre} should beat raw-space {raw_mre}"
        );
    }

    #[test]
    fn predictions_are_always_positive() {
        let d = wide_range_data();
        let m = LogOf(RandomForestParams::default())
            .fit(&d, &mut StdRng::seed_from_u64(1))
            .unwrap();
        for probe in [-100.0, 0.0, 50.0] {
            assert!(m.predict_one(&[probe]) > 0.0);
        }
    }

    #[test]
    fn zero_targets_survive_via_floor() {
        let mut b = Dataset::builder(vec!["x".into()]);
        b.push_row(vec![0.0], 0.0).unwrap();
        b.push_row(vec![1.0], 1.0).unwrap();
        b.push_row(vec![2.0], 2.0).unwrap();
        b.push_row(vec![3.0], 3.0).unwrap();
        let d = b.build().unwrap();
        let m = LogOf(RandomForestParams {
            num_trees: 5,
            ..Default::default()
        })
        .fit(&d, &mut StdRng::seed_from_u64(1))
        .unwrap();
        assert!(m.predict_one(&[0.0]).is_finite());
    }

    #[test]
    fn describe_mentions_log() {
        let e = LogOf(RandomForestParams::default());
        assert!(e.describe().starts_with("log("));
    }
}
