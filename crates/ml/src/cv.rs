//! Cross-validation and hyper-parameter tuning.
//!
//! NAPEL's third training phase (Section 2.5) performs "as many iterations
//! of the cross-validation process as hyper-parameter combinations",
//! compares the generated models, and keeps the best — i.e. grid search with
//! cross-validated scoring, implemented here by [`GridSearch`]. The
//! accuracy analysis (Section 3.3) uses *leave-one-application-out* folds,
//! provided by [`leave_one_group_out`].

use rand::Rng;
use rand::RngCore;

use crate::dataset::Dataset;
use crate::metrics::mean_relative_error;
use crate::{Estimator, MlError, Regressor};

/// Train/test index splits of a dataset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fold {
    /// Row indices to train on.
    pub train: Vec<usize>,
    /// Row indices to evaluate on.
    pub test: Vec<usize>,
}

/// `k`-fold split with shuffled assignment.
///
/// # Errors
///
/// Returns [`MlError::NotEnoughSamples`] if `n < k` or `k < 2`.
pub fn k_fold<R: Rng + ?Sized>(n: usize, k: usize, rng: &mut R) -> Result<Vec<Fold>, MlError> {
    if k < 2 || n < k {
        return Err(MlError::NotEnoughSamples {
            needed: k.max(2),
            available: n,
        });
    }
    let mut order: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        order.swap(i, rng.gen_range(0..=i));
    }
    let mut folds = Vec::with_capacity(k);
    for f in 0..k {
        let test: Vec<usize> = order.iter().copied().skip(f).step_by(k).collect();
        let train: Vec<usize> = order
            .iter()
            .copied()
            .filter(|i| !test.contains(i))
            .collect();
        folds.push(Fold { train, test });
    }
    Ok(folds)
}

/// Leave-one-group-out folds: one fold per distinct group label, testing on
/// that group and training on all others. This is exactly the paper's
/// "training data comprises all the collected data for all applications
/// *except* the application for which the prediction will be made".
///
/// # Errors
///
/// Returns [`MlError::NotEnoughSamples`] if there are fewer than two groups.
pub fn leave_one_group_out(groups: &[usize]) -> Result<Vec<Fold>, MlError> {
    let mut distinct: Vec<usize> = groups.to_vec();
    distinct.sort_unstable();
    distinct.dedup();
    if distinct.len() < 2 {
        return Err(MlError::NotEnoughSamples {
            needed: 2,
            available: distinct.len(),
        });
    }
    Ok(distinct
        .into_iter()
        .map(|g| {
            let (test, train): (Vec<usize>, Vec<usize>) =
                (0..groups.len()).partition(|&i| groups[i] == g);
            Fold { train, test }
        })
        .collect())
}

/// Cross-validated mean relative error of `estimator` over `folds`.
///
/// # Errors
///
/// Propagates fitting errors; returns [`MlError::NotEnoughSamples`] if any
/// fold has an empty side.
pub fn cross_val_mre<E: Estimator>(
    estimator: &E,
    data: &Dataset,
    folds: &[Fold],
    rng: &mut dyn RngCore,
) -> Result<f64, MlError> {
    let telemetry = napel_telemetry::global();
    let _span = telemetry
        .span("ml.cross_validate")
        .attr("folds", folds.len())
        .attr("rows", data.len());
    let mut total = 0.0;
    for (i, fold) in folds.iter().enumerate() {
        if fold.train.is_empty() || fold.test.is_empty() {
            return Err(MlError::NotEnoughSamples {
                needed: 1,
                available: 0,
            });
        }
        let train = data.subset(&fold.train);
        let test = data.subset(&fold.test);
        let model = {
            let _fit = telemetry
                .span("ml.cv.fit")
                .attr("fold", i)
                .attr("train_rows", fold.train.len());
            estimator.fit(&train, rng)?
        };
        let preds = {
            let _predict = telemetry
                .span("ml.cv.predict")
                .attr("fold", i)
                .attr("test_rows", fold.test.len());
            model.predict(&test)
        };
        total += mean_relative_error(&preds, test.targets());
    }
    Ok(total / folds.len() as f64)
}

/// Result of a grid search: the winning estimator, its cross-validated MRE,
/// and the per-candidate scores in grid order.
#[derive(Debug, Clone)]
pub struct TuneOutcome<E> {
    /// The best hyper-parameter configuration.
    pub best: E,
    /// Its cross-validated mean relative error.
    pub best_score: f64,
    /// `(description, score)` for every candidate.
    pub scores: Vec<(String, f64)>,
}

/// Exhaustive hyper-parameter search scored by cross-validated MRE — the
/// paper's "Train + Tune" step.
#[derive(Debug, Clone)]
pub struct GridSearch<E> {
    candidates: Vec<E>,
}

impl<E: Estimator> GridSearch<E> {
    /// Creates a search over the given candidate configurations.
    ///
    /// # Panics
    ///
    /// Panics if `candidates` is empty.
    pub fn new(candidates: Vec<E>) -> Self {
        assert!(
            !candidates.is_empty(),
            "grid search needs at least one candidate"
        );
        GridSearch { candidates }
    }

    /// The candidate configurations.
    pub fn candidates(&self) -> &[E] {
        &self.candidates
    }

    /// Runs the search over the provided folds.
    ///
    /// Candidates that fail to fit (e.g. singular systems) are skipped; the
    /// search fails only if every candidate fails.
    ///
    /// # Errors
    ///
    /// Returns the last fitting error if no candidate could be evaluated.
    pub fn run(
        &self,
        data: &Dataset,
        folds: &[Fold],
        rng: &mut dyn RngCore,
    ) -> Result<TuneOutcome<E>, MlError> {
        let telemetry = napel_telemetry::global();
        let _span = telemetry
            .span("ml.grid_search")
            .attr("candidates", self.candidates.len())
            .attr("folds", folds.len());
        let mut best: Option<(usize, f64)> = None;
        let mut scores = Vec::with_capacity(self.candidates.len());
        let mut last_err = MlError::EmptyDataset;
        for (i, cand) in self.candidates.iter().enumerate() {
            match cross_val_mre(cand, data, folds, rng) {
                Ok(score) => {
                    scores.push((cand.describe(), score));
                    if best.as_ref().is_none_or(|&(_, b)| score < b) {
                        best = Some((i, score));
                    }
                }
                Err(e) => {
                    scores.push((cand.describe(), f64::INFINITY));
                    last_err = e;
                }
            }
        }
        match best {
            Some((i, score)) => Ok(TuneOutcome {
                best: self.candidates[i].clone(),
                best_score: score,
                scores,
            }),
            None => Err(last_err),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::DecisionTreeParams;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(21)
    }

    fn data() -> Dataset {
        let mut b = Dataset::builder(vec!["x".into()]);
        for i in 0..30 {
            let x = i as f64;
            b.push_row(vec![x], if x < 15.0 { 1.0 } else { 4.0 })
                .unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn k_fold_partitions_everything_once() {
        let folds = k_fold(23, 5, &mut rng()).unwrap();
        assert_eq!(folds.len(), 5);
        let mut seen = vec![0usize; 23];
        for f in &folds {
            assert_eq!(f.train.len() + f.test.len(), 23);
            for &i in &f.test {
                seen[i] += 1;
            }
            for &i in &f.train {
                assert!(!f.test.contains(&i), "index {i} in both sides");
            }
        }
        assert!(
            seen.iter().all(|&c| c == 1),
            "each row tests exactly once: {seen:?}"
        );
    }

    #[test]
    fn k_fold_rejects_tiny_inputs() {
        assert!(k_fold(1, 2, &mut rng()).is_err());
        assert!(k_fold(10, 1, &mut rng()).is_err());
    }

    #[test]
    fn logo_isolates_each_group() {
        let groups = [0, 0, 1, 1, 2, 2, 2];
        let folds = leave_one_group_out(&groups).unwrap();
        assert_eq!(folds.len(), 3);
        for f in &folds {
            let test_groups: std::collections::HashSet<usize> =
                f.test.iter().map(|&i| groups[i]).collect();
            assert_eq!(test_groups.len(), 1, "test side must be a single group");
            let g = *test_groups.iter().next().unwrap();
            assert!(
                f.train.iter().all(|&i| groups[i] != g),
                "group {g} leaked into train"
            );
        }
    }

    #[test]
    fn logo_needs_two_groups() {
        assert!(leave_one_group_out(&[3, 3, 3]).is_err());
    }

    #[test]
    fn cross_val_scores_good_model_well() {
        let d = data();
        let folds = k_fold(d.len(), 5, &mut rng()).unwrap();
        let mre = cross_val_mre(&DecisionTreeParams::default(), &d, &folds, &mut rng()).unwrap();
        assert!(
            mre < 0.25,
            "tree should cross-validate well on a step, mre={mre}"
        );
    }

    #[test]
    fn grid_search_picks_lower_error_candidate() {
        let d = data();
        let folds = k_fold(d.len(), 5, &mut rng()).unwrap();
        let stump = DecisionTreeParams {
            max_depth: 0,
            ..Default::default()
        };
        let tree = DecisionTreeParams::default();
        let search = GridSearch::new(vec![stump.clone(), tree.clone()]);
        let outcome = search.run(&d, &folds, &mut rng()).unwrap();
        assert_eq!(
            outcome.best, tree,
            "deeper tree should win on a step function"
        );
        assert_eq!(outcome.scores.len(), 2);
        assert!(outcome.best_score <= outcome.scores[0].1);
    }

    #[test]
    #[should_panic(expected = "at least one candidate")]
    fn empty_grid_panics() {
        let _ = GridSearch::<DecisionTreeParams>::new(vec![]);
    }
}
