//! Feature/target standardization for scale-sensitive estimators (the MLP
//! and ridge regression).

use crate::dataset::Dataset;

/// Z-score standardizer fitted on a dataset's features (and optionally its
/// target), applied at prediction time.
#[derive(Debug, Clone, PartialEq)]
pub struct Scaler {
    feature_moments: Vec<(f64, f64)>,
    target_mean: f64,
    target_std: f64,
}

impl Scaler {
    /// Fits the scaler to `data`.
    ///
    /// # Panics
    ///
    /// Panics if `data` is empty.
    pub fn fit(data: &Dataset) -> Self {
        assert!(!data.is_empty(), "cannot fit scaler to empty dataset");
        let n = data.len() as f64;
        let tm = data.target_mean();
        let tv = data
            .targets()
            .iter()
            .map(|&y| (y - tm).powi(2))
            .sum::<f64>()
            / n;
        Scaler {
            // Floor each feature std the way the target is floored below:
            // a constant column must standardize to finite values (0.0 at
            // the fitted constant), never NaN/Inf, regardless of what the
            // dataset reports for it.
            feature_moments: data
                .feature_moments()
                .into_iter()
                .map(|(mean, std)| (mean, std.max(1e-12)))
                .collect(),
            target_mean: tm,
            target_std: tv.sqrt().max(1e-12),
        }
    }

    /// Per-feature (mean, std) moments (for serialization).
    pub(crate) fn moments(&self) -> &[(f64, f64)] {
        &self.feature_moments
    }

    /// Target (mean, std) moments (for serialization).
    pub(crate) fn target_moments(&self) -> (f64, f64) {
        (self.target_mean, self.target_std)
    }

    /// Rebuilds a scaler from its serialized parts. The caller
    /// ([`crate::persist`]) has already validated the moments; values are
    /// taken verbatim to keep round trips bit-exact.
    pub(crate) fn from_parts(
        feature_moments: Vec<(f64, f64)>,
        target_mean: f64,
        target_std: f64,
    ) -> Scaler {
        Scaler {
            feature_moments,
            target_mean,
            target_std,
        }
    }

    /// Number of features the scaler was fitted on.
    pub fn num_features(&self) -> usize {
        self.feature_moments.len()
    }

    /// Standardizes one feature vector.
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` differs from the fitted feature count.
    pub fn transform_features(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(
            x.len(),
            self.feature_moments.len(),
            "feature count mismatch"
        );
        x.iter()
            .zip(&self.feature_moments)
            .map(|(&v, &(mean, std))| (v - mean) / std)
            .collect()
    }

    /// Standardizes a target value.
    pub fn transform_target(&self, y: f64) -> f64 {
        (y - self.target_mean) / self.target_std
    }

    /// Inverts [`Scaler::transform_target`].
    pub fn inverse_target(&self, z: f64) -> f64 {
        z * self.target_std + self.target_mean
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data() -> Dataset {
        let mut b = Dataset::builder(vec!["a".into(), "b".into()]);
        b.push_row(vec![0.0, 100.0], 10.0).unwrap();
        b.push_row(vec![2.0, 300.0], 30.0).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn standardized_features_have_unit_scale() {
        let d = data();
        let s = Scaler::fit(&d);
        let z0 = s.transform_features(d.row(0));
        let z1 = s.transform_features(d.row(1));
        for j in 0..2 {
            assert!((z0[j] + 1.0).abs() < 1e-9, "{z0:?}");
            assert!((z1[j] - 1.0).abs() < 1e-9, "{z1:?}");
        }
    }

    #[test]
    fn target_roundtrip() {
        let s = Scaler::fit(&data());
        for y in [10.0, 20.0, 30.0, -5.0] {
            let z = s.transform_target(y);
            assert!((s.inverse_target(z) - y).abs() < 1e-9);
        }
    }

    #[test]
    fn constant_feature_does_not_divide_by_zero() {
        let mut b = Dataset::builder(vec!["c".into()]);
        b.push_row(vec![5.0], 1.0).unwrap();
        b.push_row(vec![5.0], 2.0).unwrap();
        let s = Scaler::fit(&b.build().unwrap());
        let z = s.transform_features(&[5.0]);
        assert!(z[0].is_finite());
    }

    #[test]
    fn constant_column_among_varying_ones_stays_finite() {
        // Regression test for the per-feature std floor: a constant column
        // next to varying ones must standardize to exactly 0.0 at the
        // fitted constant and to finite values everywhere else, and must
        // not poison its neighbors.
        let mut b = Dataset::builder(vec!["k".into(), "x".into()]);
        for i in 0..8 {
            b.push_row(vec![42.0, i as f64], i as f64).unwrap();
        }
        let s = Scaler::fit(&b.build().unwrap());
        let z = s.transform_features(&[42.0, 3.5]);
        assert_eq!(z[0], 0.0, "constant column standardizes to 0 exactly");
        assert!(z[1].is_finite());
        // Off the constant: still finite (huge, but not Inf/NaN).
        let z = s.transform_features(&[43.0, 3.5]);
        assert!(z[0].is_finite(), "shifted constant column must stay finite");
    }
}
