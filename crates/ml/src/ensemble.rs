//! Adaptive weighted-voting ensemble over the crate's estimator families.
//!
//! The paper's title promises *ensemble learning*; this module combines all
//! four estimator families — random forest, model tree, MLP, and ridge —
//! into one predictor the way the Amorsize exemplar combines its k-NN /
//! linear / cluster strategies: **weighted voting with adaptive weights**,
//! where the vote is a weighted median so one wayward member cannot drag
//! the prediction (see [`weighted_median`]).
//! Per-strategy weights start equal, then adapt by exponential moving
//! average of each member's normalized per-fold validation error
//! (`|pred − actual| / max(1, |actual|)`), with a minimum-weight floor so
//! no strategy is ever excluded outright. Weights are part of the fitted
//! model and round-trip bit-exactly through [`crate::persist`] (kind token
//! `ensemble`), so adaptation accumulated in one training session resumes
//! — rather than resets — in the next via
//! [`EnsembleParams::with_prior_weights`].

use rand::RngCore;

use crate::cv::{k_fold, leave_one_group_out};
use crate::dataset::Dataset;
use crate::forest::{RandomForest, RandomForestParams};
use crate::linear::{Ridge, RidgeParams};
use crate::mlp::{Mlp, MlpParams};
use crate::model_tree::{ModelTree, ModelTreeParams};
use crate::{Estimator, MlError, Regressor};

/// Number of member strategies (forest, model tree, MLP, ridge).
pub const NUM_MEMBERS: usize = 4;

/// Default adaptive learning rate (the exemplar's conservative 0.05).
pub const DEFAULT_LEARNING_RATE: f64 = 0.05;

/// Default minimum weight: no strategy's raw weight falls below this, so
/// every member keeps a vote and can recover if it starts predicting well.
/// Kept small because a catastrophically wrong member (ridge extrapolating
/// energy to an unseen application) pollutes the vote in proportion to its
/// normalized weight.
pub const DEFAULT_WEIGHT_FLOOR: f64 = 0.05;

/// Fewest rows for which weight adaptation runs (the exemplar's
/// `MIN_SAMPLES_FOR_ENSEMBLE` idea): below this, per-fold error estimates
/// are noise, so the fit keeps its starting weights.
pub const MIN_ADAPTATION_ROWS: usize = 8;

/// Hyper-parameters of the weighted ensemble: one configuration per member
/// family plus the weight-adaptation policy.
#[derive(Debug, Clone, PartialEq)]
pub struct EnsembleParams {
    /// Random-forest member (the paper's headline estimator).
    pub forest: RandomForestParams,
    /// Model-tree member (Guo et al. baseline).
    pub model_tree: ModelTreeParams,
    /// MLP member (Ipek et al. baseline).
    pub mlp: MlpParams,
    /// Ridge member (cheap linear floor).
    pub ridge: RidgeParams,
    /// EMA learning rate for weight adaptation, in `(0, 1)`.
    pub learning_rate: f64,
    /// Minimum raw weight per strategy, in `(0, 1]`.
    pub weight_floor: f64,
    /// Cross-validation folds used to estimate per-fold member errors
    /// (clamped to the sample count).
    pub cv_folds: usize,
    /// EMA steps applied per fit toward the fold-derived member scores:
    /// more passes let a single session converge further toward the
    /// members' observed quality, fewer preserve more of the prior
    /// weights' cross-session memory.
    pub adaptation_passes: usize,
    /// Starting weights. `None` starts equal (a fresh ensemble);
    /// `Some(w)` resumes from a previous session's adapted weights.
    pub prior_weights: Option<[f64; NUM_MEMBERS]>,
}

impl Default for EnsembleParams {
    fn default() -> Self {
        EnsembleParams {
            forest: RandomForestParams::default(),
            model_tree: ModelTreeParams::default(),
            mlp: MlpParams::default(),
            ridge: RidgeParams::default(),
            learning_rate: DEFAULT_LEARNING_RATE,
            weight_floor: DEFAULT_WEIGHT_FLOOR,
            cv_folds: 4,
            // Enough EMA steps that the weights converge to the observed
            // member quality within one session: with the conservative
            // per-step rate, a bad member must actually approach the
            // floor rather than linger near its starting weight.
            adaptation_passes: 60,
            prior_weights: None,
        }
    }
}

impl EnsembleParams {
    /// Returns the same configuration resuming from previously adapted
    /// weights (e.g. read back from a persisted [`WeightedEnsemble`]), so
    /// learning accumulates across training sessions instead of resetting.
    #[must_use]
    pub fn with_prior_weights(mut self, weights: [f64; NUM_MEMBERS]) -> Self {
        self.prior_weights = Some(weights);
        self
    }

    fn validate(&self) -> Result<(), MlError> {
        if !(self.learning_rate > 0.0 && self.learning_rate < 1.0) {
            return Err(MlError::InvalidHyperParameter {
                what: "ensemble learning_rate must be in (0, 1)",
            });
        }
        if !(self.weight_floor > 0.0 && self.weight_floor <= 1.0) {
            return Err(MlError::InvalidHyperParameter {
                what: "ensemble weight_floor must be in (0, 1]",
            });
        }
        if let Some(w) = &self.prior_weights {
            if w.iter().any(|v| !v.is_finite() || *v <= 0.0) {
                return Err(MlError::InvalidHyperParameter {
                    what: "ensemble prior weights must be finite and positive",
                });
            }
        }
        Ok(())
    }
}

impl Estimator for EnsembleParams {
    type Model = WeightedEnsemble;

    fn fit(&self, data: &Dataset, rng: &mut dyn RngCore) -> Result<WeightedEnsemble, MlError> {
        self.validate()?;
        if data.is_empty() {
            return Err(MlError::EmptyDataset);
        }
        let telemetry = napel_telemetry::global();
        let _span = telemetry
            .span("ml.ensemble.fit")
            .attr("rows", data.len())
            .attr("folds", self.cv_folds);

        let mut weights = self
            .prior_weights
            .unwrap_or([1.0; NUM_MEMBERS])
            .map(|w| w.max(self.weight_floor));

        // Per-fold member errors drive the EMA. Too few rows to
        // cross-validate (or a degenerate member on some fold) is the
        // exemplar's "insufficient data" case: keep the starting weights
        // rather than fail — the full-data members below still decide
        // whether the fit succeeds at all.
        if let Some(fold_errors) = self.per_fold_errors(data, rng) {
            // Collapse the folds into one error estimate per member (an
            // EMA over folds, seeded by the first) BEFORE converting to a
            // score. Averaging errors keeps a catastrophic fold's
            // magnitude visible; averaging per-fold scores would let a
            // member that narrowly wins three folds and explodes on the
            // fourth (ridge extrapolating energy to an unseen
            // application) still look good on average.
            let alpha = 2.0 / (fold_errors.len() as f64 + 1.0);
            let mut est = fold_errors[0];
            for errs in fold_errors.iter().skip(1) {
                for (a, e) in est.iter_mut().zip(errs) {
                    *a = (1.0 - alpha) * *a + alpha * e;
                }
            }
            for _ in 0..self.adaptation_passes {
                update_weights(&mut weights, &est, self.learning_rate, self.weight_floor);
            }
        }

        Ok(WeightedEnsemble {
            forest: self.forest.fit(data, rng)?,
            model_tree: self.model_tree.fit(data, rng)?,
            mlp: self.mlp.fit(data, rng)?,
            ridge: self.ridge.fit(data, rng)?,
            weights,
            num_features: data.num_features(),
        })
    }

    fn describe(&self) -> String {
        format!(
            "ensemble(lr={}, floor={}, passes={}, members=[{}, {}, {}, {}])",
            self.learning_rate,
            self.weight_floor,
            self.adaptation_passes,
            self.forest.describe(),
            self.model_tree.describe(),
            self.mlp.describe(),
            self.ridge.describe()
        )
    }
}

impl EnsembleParams {
    /// Mean normalized validation error of every member on every fold, in
    /// fold order, or `None` when the data cannot support the scheme
    /// (too few rows, or a member that cannot fit a fold's subset).
    ///
    /// When the dataset carries group labels (e.g. which application each
    /// row came from), the folds are leave-one-group-out: a member's error
    /// then measures generalization to an *unseen group*, which is the
    /// regime the ensemble is evaluated in. Random k-folds mix every group
    /// into both sides, so an interpolating member (ridge on a wide
    /// feature set) looks deceptively good and earns weight it cannot
    /// justify out of distribution.
    fn per_fold_errors(
        &self,
        data: &Dataset,
        rng: &mut dyn RngCore,
    ) -> Option<Vec<[f64; NUM_MEMBERS]>> {
        if data.len() < MIN_ADAPTATION_ROWS {
            return None;
        }
        let k = self.cv_folds.clamp(2, data.len());
        let folds = match data.groups() {
            Some(groups) => leave_one_group_out(groups)
                .or_else(|_| k_fold(data.len(), k, rng))
                .ok()?,
            None => k_fold(data.len(), k, rng).ok()?,
        };
        let mut out = Vec::with_capacity(folds.len());
        for fold in &folds {
            let train = data.subset(&fold.train);
            let test = data.subset(&fold.test);
            let errs = [
                member_error(&self.forest.fit(&train, rng).ok()?, &test),
                member_error(&self.model_tree.fit(&train, rng).ok()?, &test),
                member_error(&self.mlp.fit(&train, rng).ok()?, &test),
                member_error(&self.ridge.fit(&train, rng).ok()?, &test),
            ];
            out.push(errs);
        }
        Some(out)
    }
}

/// Mean normalized error of one fitted member over a validation split —
/// the exemplar's `abs(pred - actual) / max(1, actual)` rule, averaged.
fn member_error<M: Regressor>(model: &M, test: &Dataset) -> f64 {
    let preds = model.predict(test);
    preds
        .iter()
        .zip(test.targets())
        .map(|(&p, &a)| (p - a).abs() / a.abs().max(1.0))
        .sum::<f64>()
        / test.len() as f64
}

/// One EMA step: each weight moves toward its member's quality score —
/// the *squared* ratio of the fold's best error to the member's own
/// (1 for the fold winner, → 0 as a member falls behind it) — then the
/// floor is applied so no strategy dies. Scoring *relative* to the best
/// member is what lets the weights actually skew: in log space all
/// absolute errors are small, and an absolute score like `1/(1+e)` leaves
/// every member near weight 1, reducing the ensemble to a plain average
/// of good and bad members. Squaring sharpens the skew so a member that
/// is several times worse than the winner (ridge extrapolating energy to
/// an unseen application) is driven to the floor, not merely discounted.
pub fn update_weights(
    weights: &mut [f64; NUM_MEMBERS],
    errors: &[f64; NUM_MEMBERS],
    learning_rate: f64,
    floor: f64,
) {
    const EPS: f64 = 1e-12;
    let best = errors.iter().fold(f64::INFINITY, |b, &e| b.min(e.max(0.0)));
    for (w, e) in weights.iter_mut().zip(errors) {
        let score = ((best + EPS) / (e.max(0.0) + EPS)).powi(2);
        *w = (1.0 - learning_rate) * *w + learning_rate * score;
        if *w < floor {
            *w = floor;
        }
    }
}

/// The fitted ensemble: all four members plus their adapted voting
/// weights. Prediction is the weighted median of the member predictions
/// (see [`weighted_median`]).
///
/// # Example
///
/// ```
/// use napel_ml::dataset::Dataset;
/// use napel_ml::ensemble::EnsembleParams;
/// use napel_ml::{Estimator, Regressor};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut b = Dataset::builder(vec!["x".into()]);
/// for i in 0..40 {
///     let x = i as f64 / 4.0;
///     b.push_row(vec![x], x * x + 1.0)?;
/// }
/// let m = EnsembleParams::default().fit(&b.build()?, &mut StdRng::seed_from_u64(1))?;
/// assert!((m.predict_one(&[5.0]) - 26.0).abs() < 13.0);
/// # Ok::<(), napel_ml::MlError>(())
/// ```
#[derive(Debug, Clone)]
pub struct WeightedEnsemble {
    forest: RandomForest,
    model_tree: ModelTree,
    mlp: Mlp,
    ridge: Ridge,
    weights: [f64; NUM_MEMBERS],
    num_features: usize,
}

impl WeightedEnsemble {
    /// Number of features the ensemble was fitted on.
    pub fn num_features(&self) -> usize {
        self.num_features
    }

    /// The adapted raw weights, in member order (forest, model tree, MLP,
    /// ridge). Feed these to [`EnsembleParams::with_prior_weights`] to
    /// resume adaptation in a later session.
    pub fn weights(&self) -> [f64; NUM_MEMBERS] {
        self.weights
    }

    /// The voting weights normalized to sum to 1 (each member's share of
    /// the vote in the weighted-median combination).
    pub fn normalized_weights(&self) -> [f64; NUM_MEMBERS] {
        let total: f64 = self.weights.iter().sum();
        self.weights.map(|w| w / total)
    }

    /// The forest member (the spread-based uncertainty source).
    pub fn forest(&self) -> &RandomForest {
        &self.forest
    }

    /// The model-tree member.
    pub fn model_tree(&self) -> &ModelTree {
        &self.model_tree
    }

    /// The MLP member.
    pub fn mlp(&self) -> &Mlp {
        &self.mlp
    }

    /// The ridge member.
    pub fn ridge(&self) -> &Ridge {
        &self.ridge
    }

    /// Rebuilds an ensemble from its serialized parts; the caller
    /// ([`crate::persist`]) has already validated weights and member
    /// dimensions.
    pub(crate) fn from_parts(
        forest: RandomForest,
        model_tree: ModelTree,
        mlp: Mlp,
        ridge: Ridge,
        weights: [f64; NUM_MEMBERS],
        num_features: usize,
    ) -> WeightedEnsemble {
        WeightedEnsemble {
            forest,
            model_tree,
            mlp,
            ridge,
            weights,
            num_features,
        }
    }
}

/// Weighted median of the member predictions: sort by value, return the
/// first prediction at which the cumulative weight reaches half the
/// total. Voting by median instead of mean makes the ensemble robust to
/// a single wayward member — a low-weight strategy extrapolating wildly
/// on an input unlike anything adaptation validated on can never drag
/// the vote past the majority's predictions, which a weighted average
/// (even with the weight at the floor) always can.
pub fn weighted_median(values: &[f64; NUM_MEMBERS], weights: &[f64; NUM_MEMBERS]) -> f64 {
    let mut order: [usize; NUM_MEMBERS] = [0, 1, 2, 3];
    order.sort_by(|&a, &b| values[a].total_cmp(&values[b]));
    let half: f64 = weights.iter().sum::<f64>() / 2.0;
    let mut cum = 0.0;
    for &i in &order {
        cum += weights[i];
        if cum >= half {
            return values[i];
        }
    }
    values[order[NUM_MEMBERS - 1]]
}

impl Regressor for WeightedEnsemble {
    fn predict_one(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.num_features, "feature count mismatch");
        let preds = [
            self.forest.predict_one(x),
            self.model_tree.predict_one(x),
            self.mlp.predict_one(x),
            self.ridge.predict_one(x),
        ];
        weighted_median(&preds, &self.weights)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(11)
    }

    fn quadratic_data() -> Dataset {
        let mut b = Dataset::builder(vec!["x".into(), "z".into()]);
        for i in 0..60 {
            let x = i as f64 / 6.0;
            let z = ((i * 3) % 11) as f64;
            b.push_row(vec![x, z], x * x + 0.5 * z + 5.0).unwrap();
        }
        b.build().unwrap()
    }

    fn quick_params() -> EnsembleParams {
        EnsembleParams {
            forest: RandomForestParams {
                num_trees: 15,
                ..Default::default()
            },
            mlp: MlpParams {
                epochs: 30,
                ..Default::default()
            },
            ..Default::default()
        }
    }

    #[test]
    fn ensemble_fits_and_predicts_reasonably() {
        let d = quadratic_data();
        let m = quick_params().fit(&d, &mut rng()).unwrap();
        let mre = crate::metrics::mean_relative_error(&m.predict(&d), d.targets());
        assert!(mre < 0.35, "ensemble in-sample MRE {mre} too high");
        assert_eq!(m.num_features(), 2);
    }

    #[test]
    fn prediction_is_the_weighted_median_of_the_members() {
        let d = quadratic_data();
        let m = quick_params().fit(&d, &mut rng()).unwrap();
        let x = d.row(7);
        let preds = [
            m.forest().predict_one(x),
            m.model_tree().predict_one(x),
            m.mlp().predict_one(x),
            m.ridge().predict_one(x),
        ];
        let by_hand = weighted_median(&preds, &m.weights());
        assert_eq!(m.predict_one(x).to_bits(), by_hand.to_bits());
        let norm: f64 = m.normalized_weights().iter().sum();
        assert!((norm - 1.0).abs() < 1e-12);
    }

    #[test]
    fn weighted_median_ignores_a_low_weight_outlier() {
        // One member predicting nonsense with minority weight can never
        // move the vote past the majority's values.
        let v = [10.0, 11.0, 12.0, 1e9];
        let p = weighted_median(&v, &[1.0, 1.0, 1.0, 0.1]);
        assert_eq!(p, 11.0);
        // Even at equal weights the median stays inside the cluster.
        let p = weighted_median(&v, &[1.0; NUM_MEMBERS]);
        assert_eq!(p, 11.0);
        // A dominant-weight member carries the vote.
        let p = weighted_median(&v, &[0.1, 0.1, 0.1, 10.0]);
        assert_eq!(p, 1e9);
    }

    #[test]
    fn weights_adapt_away_from_equal() {
        let d = quadratic_data();
        let m = quick_params().fit(&d, &mut rng()).unwrap();
        let w = m.weights();
        assert!(
            w.iter().any(|&v| (v - w[0]).abs() > 1e-9),
            "adaptation should differentiate the members: {w:?}"
        );
        assert!(w.iter().all(|&v| v >= DEFAULT_WEIGHT_FLOOR));
    }

    #[test]
    fn floor_keeps_every_strategy_alive() {
        let mut w = [1.0, 0.11, 1.0, 1.0];
        // A terrible second member: error → score near 0.
        for _ in 0..500 {
            update_weights(&mut w, &[0.0, 1e9, 0.0, 0.0], 0.5, 0.1);
        }
        assert_eq!(w[1], 0.1, "floor must hold under sustained bad scores");
        assert!(w[0] > 0.9, "good members converge toward score 1");
    }

    #[test]
    fn prior_weights_resume_instead_of_reset() {
        // Short sessions (few EMA steps) are where resuming matters: the
        // default pass count converges to the data regardless of the
        // start, so use a one-pass session to observe the prior's pull.
        let params = EnsembleParams {
            adaptation_passes: 1,
            ..quick_params()
        };
        let d = quadratic_data();
        let fresh = params.clone().fit(&d, &mut rng()).unwrap();
        // Resume from a deliberately skewed prior: the session's EMA steps
        // decay it toward the data-driven scores, but the prior's memory
        // must still show — the resumed weight stays above where a fresh
        // (equal-weight) session lands, not reset to it.
        let prior = [3.0, 0.2, 0.2, 0.2];
        let resumed = params
            .with_prior_weights(prior)
            .fit(&d, &mut rng())
            .unwrap();
        let w = resumed.weights();
        assert!(
            w[0] > fresh.weights()[0] + 0.3,
            "resumed forest weight {} must retain the prior's pull ({} fresh)",
            w[0],
            fresh.weights()[0]
        );
        assert!(
            w[1] < fresh.weights()[1] - 0.1,
            "resumed weight {} must retain the low prior ({} fresh)",
            w[1],
            fresh.weights()[1]
        );
    }

    #[test]
    fn invalid_hyper_parameters_are_rejected() {
        let d = quadratic_data();
        for bad in [
            EnsembleParams {
                learning_rate: 0.0,
                ..quick_params()
            },
            EnsembleParams {
                learning_rate: 1.0,
                ..quick_params()
            },
            EnsembleParams {
                weight_floor: 0.0,
                ..quick_params()
            },
            quick_params().with_prior_weights([1.0, f64::NAN, 1.0, 1.0]),
            quick_params().with_prior_weights([1.0, -1.0, 1.0, 1.0]),
        ] {
            assert!(matches!(
                bad.fit(&d, &mut rng()).unwrap_err(),
                MlError::InvalidHyperParameter { .. }
            ));
        }
    }

    #[test]
    fn tiny_datasets_skip_adaptation_but_still_fit() {
        let mut b = Dataset::builder(vec!["x".into()]);
        for i in 0..3 {
            b.push_row(vec![i as f64], i as f64 + 1.0).unwrap();
        }
        let d = b.build().unwrap();
        // 3 rows < MIN_ADAPTATION_ROWS: weights stay at the start, and
        // whether the members themselves can fit decides success.
        if let Ok(m) = quick_params().fit(&d, &mut rng()) {
            assert_eq!(m.weights(), [1.0; NUM_MEMBERS]);
        }
    }

    #[test]
    fn grouped_data_adapts_on_leave_one_group_out_folds() {
        // Two groups with different target regimes: group 0 is quadratic,
        // group 1 linear. Under LOGO folds every member is judged on a
        // group it never saw, so adaptation still differentiates them —
        // and a single-group dataset must fall back to k-fold rather than
        // silently skip adaptation.
        let mut b = Dataset::builder(vec!["x".into()]);
        let mut groups = Vec::new();
        for i in 0..40 {
            let x = i as f64 / 4.0;
            let (y, g) = if i % 2 == 0 {
                (x * x + 1.0, 0)
            } else {
                (3.0 * x + 2.0, 1)
            };
            b.push_row(vec![x], y).unwrap();
            groups.push(g);
        }
        let d = b.build().unwrap().with_groups(groups.clone()).unwrap();
        let m = quick_params().fit(&d, &mut rng()).unwrap();
        let w = m.weights();
        assert!(
            w.iter().any(|&v| (v - w[0]).abs() > 1e-9),
            "LOGO adaptation should differentiate the members: {w:?}"
        );

        let single = d.subset(&(0..40).step_by(2).collect::<Vec<_>>());
        assert_eq!(single.groups().unwrap().iter().max(), Some(&0));
        let m = quick_params().fit(&single, &mut rng()).unwrap();
        let w = m.weights();
        assert!(
            w.iter().any(|&v| (v - w[0]).abs() > 1e-9),
            "single-group data should fall back to k-fold adaptation: {w:?}"
        );
    }

    #[test]
    fn fit_is_deterministic_given_seed() {
        let d = quadratic_data();
        let a = quick_params()
            .fit(&d, &mut StdRng::seed_from_u64(9))
            .unwrap();
        let b = quick_params()
            .fit(&d, &mut StdRng::seed_from_u64(9))
            .unwrap();
        assert_eq!(a.weights(), b.weights());
        for i in 0..d.len() {
            assert_eq!(
                a.predict_one(d.row(i)).to_bits(),
                b.predict_one(d.row(i)).to_bits()
            );
        }
    }

    #[test]
    fn describe_names_all_members() {
        let s = quick_params().describe();
        for part in ["ensemble(", "forest(", "mlp(", "ridge("] {
            assert!(s.contains(part), "{s}");
        }
    }
}
