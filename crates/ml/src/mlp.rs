//! Multilayer perceptron regressor — the ANN baseline of Figure 5.
//!
//! Ipek et al. (ASPLOS 2006) predict CPU performance with a fully-connected
//! feed-forward network; the paper compares NAPEL against that approach and
//! finds the ANN needs "a much larger training dataset to reach NAPEL's
//! accuracy" and up to 5× more training time. The implementation here is a
//! classic tanh MLP trained with mini-batch SGD + momentum on standardized
//! features and targets.

use rand::Rng;
use rand::RngCore;

use crate::dataset::Dataset;
use crate::scaler::Scaler;
use crate::{Estimator, MlError, Regressor};

/// Hyper-parameters of the MLP.
#[derive(Debug, Clone, PartialEq)]
pub struct MlpParams {
    /// Hidden layer widths, e.g. `[16, 16]`.
    pub hidden: Vec<usize>,
    /// Learning rate.
    pub learning_rate: f64,
    /// Momentum coefficient.
    pub momentum: f64,
    /// Number of passes over the training set.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// L2 weight decay.
    pub weight_decay: f64,
}

impl Default for MlpParams {
    fn default() -> Self {
        MlpParams {
            hidden: vec![16, 16],
            learning_rate: 0.01,
            momentum: 0.9,
            epochs: 400,
            batch_size: 8,
            weight_decay: 1e-4,
        }
    }
}

impl Estimator for MlpParams {
    type Model = Mlp;

    fn fit(&self, data: &Dataset, rng: &mut dyn RngCore) -> Result<Mlp, MlError> {
        if data.is_empty() {
            return Err(MlError::EmptyDataset);
        }
        if self.hidden.contains(&0) {
            return Err(MlError::InvalidHyperParameter {
                what: "hidden layer of width 0",
            });
        }
        if self.batch_size == 0 {
            return Err(MlError::InvalidHyperParameter {
                what: "batch_size must be >= 1",
            });
        }
        if !(self.learning_rate > 0.0 && self.learning_rate.is_finite()) {
            return Err(MlError::InvalidHyperParameter {
                what: "learning_rate must be positive",
            });
        }

        let scaler = Scaler::fit(data);
        let d = data.num_features();
        let mut sizes = Vec::with_capacity(self.hidden.len() + 2);
        sizes.push(d);
        sizes.extend_from_slice(&self.hidden);
        sizes.push(1);

        let mut net = Network::init(&sizes, rng);
        let mut velocity = net.zeros_like();

        // Standardize once.
        let n = data.len();
        let xs: Vec<Vec<f64>> = (0..n)
            .map(|i| scaler.transform_features(data.row(i)))
            .collect();
        let ys: Vec<f64> = (0..n)
            .map(|i| scaler.transform_target(data.target(i)))
            .collect();

        let mut order: Vec<usize> = (0..n).collect();
        for _ in 0..self.epochs {
            // Fisher-Yates shuffle with the trait-object RNG.
            for i in (1..n).rev() {
                order.swap(i, rng.gen_range(0..=i));
            }
            for batch in order.chunks(self.batch_size) {
                let mut grads = net.zeros_like();
                for &i in batch {
                    net.accumulate_gradient(&xs[i], ys[i], &mut grads);
                }
                let scale = 1.0 / batch.len() as f64;
                for l in 0..net.layers.len() {
                    for (w, (g, v)) in net.layers[l].w.iter_mut().zip(
                        grads.layers[l]
                            .w
                            .iter()
                            .zip(velocity.layers[l].w.iter_mut()),
                    ) {
                        *v = self.momentum * *v
                            - self.learning_rate * (g * scale + self.weight_decay * *w);
                        *w += *v;
                    }
                    for (b, (g, v)) in net.layers[l].b.iter_mut().zip(
                        grads.layers[l]
                            .b
                            .iter()
                            .zip(velocity.layers[l].b.iter_mut()),
                    ) {
                        *v = self.momentum * *v - self.learning_rate * g * scale;
                        *b += *v;
                    }
                }
            }
        }
        Ok(Mlp { scaler, net })
    }

    fn describe(&self) -> String {
        format!(
            "mlp(hidden={:?}, lr={}, epochs={}, batch={})",
            self.hidden, self.learning_rate, self.epochs, self.batch_size
        )
    }
}

/// One dense layer's parameters (row-major `out × in` weights).
#[derive(Debug, Clone)]
pub(crate) struct Layer {
    pub(crate) w: Vec<f64>,
    pub(crate) b: Vec<f64>,
    pub(crate) rows: usize,
    pub(crate) cols: usize,
}

#[derive(Debug, Clone)]
pub(crate) struct Network {
    pub(crate) layers: Vec<Layer>,
}

impl Network {
    fn init(sizes: &[usize], rng: &mut dyn RngCore) -> Network {
        let mut layers = Vec::with_capacity(sizes.len() - 1);
        for win in sizes.windows(2) {
            let (cols, rows) = (win[0], win[1]);
            // Xavier/Glorot uniform initialization.
            let limit = (6.0 / (rows + cols) as f64).sqrt();
            let w = (0..rows * cols)
                .map(|_| rng.gen_range(-limit..limit))
                .collect();
            layers.push(Layer {
                w,
                b: vec![0.0; rows],
                rows,
                cols,
            });
        }
        Network { layers }
    }

    fn zeros_like(&self) -> Network {
        Network {
            layers: self
                .layers
                .iter()
                .map(|l| Layer {
                    w: vec![0.0; l.w.len()],
                    b: vec![0.0; l.b.len()],
                    rows: l.rows,
                    cols: l.cols,
                })
                .collect(),
        }
    }

    /// Forward pass; returns per-layer activations (including the input).
    fn forward(&self, x: &[f64]) -> Vec<Vec<f64>> {
        let mut acts = Vec::with_capacity(self.layers.len() + 1);
        acts.push(x.to_vec());
        for (li, layer) in self.layers.iter().enumerate() {
            let input = &acts[li];
            let last = li == self.layers.len() - 1;
            let mut out = Vec::with_capacity(layer.rows);
            for r in 0..layer.rows {
                let mut z = layer.b[r];
                let row = &layer.w[r * layer.cols..(r + 1) * layer.cols];
                for (wi, xi) in row.iter().zip(input) {
                    z += wi * xi;
                }
                out.push(if last { z } else { z.tanh() });
            }
            acts.push(out);
        }
        acts
    }

    /// Backprop of squared error 0.5 (ŷ − y)² into `grads`.
    fn accumulate_gradient(&self, x: &[f64], y: f64, grads: &mut Network) {
        let acts = self.forward(x);
        let num_layers = self.layers.len();
        // Output delta (linear output).
        let mut delta = vec![acts[num_layers][0] - y];
        for li in (0..num_layers).rev() {
            let layer = &self.layers[li];
            let input = &acts[li];
            let g = &mut grads.layers[li];
            for (r, &d) in delta.iter().enumerate().take(layer.rows) {
                g.b[r] += d;
                let grow = &mut g.w[r * layer.cols..(r + 1) * layer.cols];
                for (gw, xi) in grow.iter_mut().zip(input) {
                    *gw += d * xi;
                }
            }
            if li > 0 {
                // delta_prev = (Wᵀ delta) ⊙ tanh'(a_prev)
                let mut prev = vec![0.0; layer.cols];
                for (r, &d) in delta.iter().enumerate().take(layer.rows) {
                    let row = &layer.w[r * layer.cols..(r + 1) * layer.cols];
                    for (p, wi) in prev.iter_mut().zip(row) {
                        *p += wi * d;
                    }
                }
                for (p, a) in prev.iter_mut().zip(&acts[li]) {
                    *p *= 1.0 - a * a; // derivative of tanh at the activation
                }
                delta = prev;
            }
        }
    }

    fn predict(&self, x: &[f64]) -> f64 {
        let acts = self.forward(x);
        acts[self.layers.len()][0]
    }
}

/// A fitted MLP regressor.
///
/// # Example
///
/// ```
/// use napel_ml::dataset::Dataset;
/// use napel_ml::mlp::MlpParams;
/// use napel_ml::{Estimator, Regressor};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut b = Dataset::builder(vec!["x".into()]);
/// for i in 0..32 {
///     let x = i as f64 / 4.0;
///     b.push_row(vec![x], 2.0 * x + 1.0)?;
/// }
/// let params = MlpParams { epochs: 200, ..Default::default() };
/// let m = params.fit(&b.build()?, &mut StdRng::seed_from_u64(3))?;
/// assert!((m.predict_one(&[4.0]) - 9.0).abs() < 1.0);
/// # Ok::<(), napel_ml::MlError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Mlp {
    scaler: Scaler,
    net: Network,
}

impl Mlp {
    /// Number of features the network was fitted on.
    pub fn num_features(&self) -> usize {
        self.scaler.num_features()
    }

    /// Total number of trainable parameters.
    pub fn num_parameters(&self) -> usize {
        self.net.layers.iter().map(|l| l.w.len() + l.b.len()).sum()
    }

    /// The fitted scaler and network (for serialization).
    pub(crate) fn parts(&self) -> (&Scaler, &Network) {
        (&self.scaler, &self.net)
    }

    /// Rebuilds an MLP from its serialized parts. The caller
    /// ([`crate::persist`]) has already validated the layer-shape chain.
    pub(crate) fn from_parts(scaler: Scaler, net: Network) -> Mlp {
        Mlp { scaler, net }
    }
}

impl Regressor for Mlp {
    fn predict_one(&self, x: &[f64]) -> f64 {
        let z = self.scaler.transform_features(x);
        self.scaler.inverse_target(self.net.predict(&z))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(9)
    }

    #[test]
    fn learns_linear_function() {
        let mut b = Dataset::builder(vec!["x".into()]);
        for i in 0..40 {
            let x = i as f64 / 4.0;
            b.push_row(vec![x], 3.0 * x - 2.0).unwrap();
        }
        let d = b.build().unwrap();
        let m = MlpParams {
            epochs: 300,
            ..Default::default()
        }
        .fit(&d, &mut rng())
        .unwrap();
        let mre = crate::metrics::mean_absolute_error(&m.predict(&d), d.targets());
        assert!(mre < 0.8, "MLP MAE {mre} too high on linear data");
    }

    #[test]
    fn learns_mild_nonlinearity() {
        let mut b = Dataset::builder(vec!["x".into()]);
        for i in 0..60 {
            let x = i as f64 / 10.0 - 3.0;
            b.push_row(vec![x], x * x).unwrap();
        }
        let d = b.build().unwrap();
        let m = MlpParams {
            epochs: 800,
            hidden: vec![16],
            ..Default::default()
        }
        .fit(&d, &mut rng())
        .unwrap();
        let rmse = crate::metrics::root_mean_squared_error(&m.predict(&d), d.targets());
        assert!(rmse < 1.5, "MLP should approximate x^2, rmse={rmse}");
    }

    #[test]
    fn gradient_check_single_layer() {
        // Numeric gradient check on a tiny network.
        let mut r = rng();
        let net = Network::init(&[2, 3, 1], &mut r);
        let x = [0.3, -0.7];
        let y = 0.5;
        let mut grads = net.zeros_like();
        net.accumulate_gradient(&x, y, &mut grads);

        let eps = 1e-6;
        let loss = |n: &Network| 0.5 * (n.predict(&x) - y).powi(2);
        for l in 0..net.layers.len() {
            for wi in 0..net.layers[l].w.len() {
                let mut plus = net.clone();
                plus.layers[l].w[wi] += eps;
                let mut minus = net.clone();
                minus.layers[l].w[wi] -= eps;
                let numeric = (loss(&plus) - loss(&minus)) / (2.0 * eps);
                let analytic = grads.layers[l].w[wi];
                assert!(
                    (numeric - analytic).abs() < 1e-4,
                    "layer {l} w[{wi}]: numeric {numeric} vs analytic {analytic}"
                );
            }
        }
    }

    #[test]
    fn invalid_params_rejected() {
        let mut b = Dataset::builder(vec!["x".into()]);
        b.push_row(vec![1.0], 1.0).unwrap();
        let d = b.build().unwrap();
        for params in [
            MlpParams {
                hidden: vec![0],
                ..Default::default()
            },
            MlpParams {
                batch_size: 0,
                ..Default::default()
            },
            MlpParams {
                learning_rate: 0.0,
                ..Default::default()
            },
        ] {
            assert!(matches!(
                params.fit(&d, &mut rng()).unwrap_err(),
                MlError::InvalidHyperParameter { .. }
            ));
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let mut b = Dataset::builder(vec!["x".into()]);
        for i in 0..10 {
            b.push_row(vec![i as f64], i as f64).unwrap();
        }
        let d = b.build().unwrap();
        let p = MlpParams {
            epochs: 50,
            ..Default::default()
        };
        let m1 = p.fit(&d, &mut StdRng::seed_from_u64(1)).unwrap();
        let m2 = p.fit(&d, &mut StdRng::seed_from_u64(1)).unwrap();
        assert_eq!(m1.predict_one(&[3.0]), m2.predict_one(&[3.0]));
    }

    #[test]
    fn parameter_count() {
        let mut b = Dataset::builder(vec!["a".into(), "b".into()]);
        b.push_row(vec![0.0, 0.0], 0.0).unwrap();
        b.push_row(vec![1.0, 1.0], 1.0).unwrap();
        let d = b.build().unwrap();
        let m = MlpParams {
            hidden: vec![4],
            epochs: 1,
            ..Default::default()
        }
        .fit(&d, &mut rng())
        .unwrap();
        // (2*4 + 4) + (4*1 + 1) = 17
        assert_eq!(m.num_parameters(), 17);
    }
}
