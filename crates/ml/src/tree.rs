//! CART regression trees with variance-reduction splitting.
//!
//! This is the base learner of NAPEL's random forest (Section 2.5 of the
//! paper: "starting from a root node, constructs a tree and iteratively
//! grows the tree by associating it with a splitting value for an input
//! variable to generate two child nodes; each node is associated with a
//! prediction of the target metric equal to the mean observed value ... for
//! the input subspace the node represents").

use rand::seq::SliceRandom;
use rand::RngCore;

use crate::dataset::Dataset;
use crate::{Estimator, MlError, Regressor};

/// How many candidate features a node considers when splitting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FeatureSubset {
    /// Consider all features (classic CART).
    All,
    /// Consider `ceil(sqrt(d))` random features (random-forest default).
    Sqrt,
    /// Consider `ceil(d/3)` random features (common regression-forest rule).
    Third,
    /// Consider exactly `n` random features (clamped to `d`).
    Fixed(usize),
}

impl FeatureSubset {
    /// Resolves the subset size for `d` features (at least 1).
    pub fn size(self, d: usize) -> usize {
        let n = match self {
            FeatureSubset::All => d,
            FeatureSubset::Sqrt => (d as f64).sqrt().ceil() as usize,
            FeatureSubset::Third => d.div_ceil(3),
            FeatureSubset::Fixed(n) => n,
        };
        n.clamp(1, d.max(1))
    }
}

/// Hyper-parameters of a CART regression tree.
#[derive(Debug, Clone, PartialEq)]
pub struct DecisionTreeParams {
    /// Maximum tree depth (root has depth 0).
    pub max_depth: usize,
    /// Minimum samples a node must hold to be split.
    pub min_samples_split: usize,
    /// Minimum samples each child of a split must receive.
    pub min_samples_leaf: usize,
    /// Features considered per split.
    pub feature_subset: FeatureSubset,
}

impl Default for DecisionTreeParams {
    fn default() -> Self {
        DecisionTreeParams {
            max_depth: 16,
            min_samples_split: 2,
            min_samples_leaf: 1,
            feature_subset: FeatureSubset::All,
        }
    }
}

impl Estimator for DecisionTreeParams {
    type Model = DecisionTree;

    fn fit(&self, data: &Dataset, rng: &mut dyn RngCore) -> Result<DecisionTree, MlError> {
        if data.is_empty() {
            return Err(MlError::EmptyDataset);
        }
        if self.min_samples_leaf == 0 {
            return Err(MlError::InvalidHyperParameter {
                what: "min_samples_leaf must be >= 1",
            });
        }
        let mut nodes = Vec::new();
        let mut indices: Vec<usize> = (0..data.len()).collect();
        let mut builder = TreeBuilder {
            data,
            params: self,
            rng,
            nodes: &mut nodes,
        };
        builder.grow(&mut indices, 0);
        Ok(DecisionTree {
            nodes,
            num_features: data.num_features(),
        })
    }

    fn describe(&self) -> String {
        format!(
            "tree(max_depth={}, min_split={}, min_leaf={}, features={:?})",
            self.max_depth, self.min_samples_split, self.min_samples_leaf, self.feature_subset
        )
    }
}

/// A node of the fitted tree, in a flat arena. Children always come after
/// their parent in the arena (the builder reserves the parent slot before
/// growing either child) — [`crate::persist`] relies on this invariant to
/// validate decoded trees.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum Node {
    Leaf {
        value: f64,
    },
    Split {
        feature: usize,
        threshold: f64,
        /// Arena index of the `<= threshold` child.
        left: usize,
        /// Arena index of the `> threshold` child.
        right: usize,
    },
}

/// A fitted CART regression tree.
///
/// # Example
///
/// ```
/// use napel_ml::dataset::Dataset;
/// use napel_ml::tree::DecisionTreeParams;
/// use napel_ml::{Estimator, Regressor};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut b = Dataset::builder(vec!["x".into()]);
/// for i in 0..20 {
///     let x = i as f64;
///     b.push_row(vec![x], if x < 10.0 { 1.0 } else { 5.0 })?;
/// }
/// let tree = DecisionTreeParams::default().fit(&b.build()?, &mut StdRng::seed_from_u64(0))?;
/// assert_eq!(tree.predict_one(&[3.0]), 1.0);
/// assert_eq!(tree.predict_one(&[15.0]), 5.0);
/// # Ok::<(), napel_ml::MlError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DecisionTree {
    nodes: Vec<Node>,
    num_features: usize,
}

impl DecisionTree {
    /// Number of features the tree was fitted on.
    pub fn num_features(&self) -> usize {
        self.num_features
    }

    /// Number of nodes in the tree.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// The node arena (for serialization).
    pub(crate) fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Rebuilds a tree from its serialized parts. The caller
    /// ([`crate::persist`]) has already validated the arena invariants.
    pub(crate) fn from_parts(nodes: Vec<Node>, num_features: usize) -> DecisionTree {
        DecisionTree {
            nodes,
            num_features,
        }
    }

    /// Number of leaves.
    pub fn num_leaves(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| matches!(n, Node::Leaf { .. }))
            .count()
    }

    /// Maximum depth of any leaf (root = 0).
    pub fn depth(&self) -> usize {
        fn depth_of(nodes: &[Node], i: usize) -> usize {
            match &nodes[i] {
                Node::Leaf { .. } => 0,
                Node::Split { left, right, .. } => {
                    1 + depth_of(nodes, *left).max(depth_of(nodes, *right))
                }
            }
        }
        depth_of(&self.nodes, 0)
    }

    /// Which features the tree actually splits on (sorted, deduplicated).
    pub fn used_features(&self) -> Vec<usize> {
        let mut f: Vec<usize> = self
            .nodes
            .iter()
            .filter_map(|n| match n {
                Node::Split { feature, .. } => Some(*feature),
                Node::Leaf { .. } => None,
            })
            .collect();
        f.sort_unstable();
        f.dedup();
        f
    }
}

impl Regressor for DecisionTree {
    fn predict_one(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.num_features, "feature count mismatch");
        let mut i = 0;
        loop {
            match &self.nodes[i] {
                Node::Leaf { value } => return *value,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    i = if x[*feature] <= *threshold {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }
}

struct TreeBuilder<'a> {
    data: &'a Dataset,
    params: &'a DecisionTreeParams,
    rng: &'a mut dyn RngCore,
    nodes: &'a mut Vec<Node>,
}

impl TreeBuilder<'_> {
    /// Grows a subtree over `indices`, returning its arena index.
    fn grow(&mut self, indices: &mut [usize], depth: usize) -> usize {
        let mean = indices.iter().map(|&i| self.data.target(i)).sum::<f64>() / indices.len() as f64;

        if depth >= self.params.max_depth
            || indices.len() < self.params.min_samples_split
            || indices.len() < 2 * self.params.min_samples_leaf
        {
            return self.leaf(mean);
        }

        match self.best_split(indices) {
            None => self.leaf(mean),
            Some((feature, threshold)) => {
                // Partition in place.
                let mut split_at = 0;
                for i in 0..indices.len() {
                    if self.data.row(indices[i])[feature] <= threshold {
                        indices.swap(i, split_at);
                        split_at += 1;
                    }
                }
                debug_assert!(split_at > 0 && split_at < indices.len());
                let node = self.placeholder();
                let (left_idx, right_idx) = indices.split_at_mut(split_at);
                let left = self.grow(left_idx, depth + 1);
                let right = self.grow(right_idx, depth + 1);
                self.nodes[node] = Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                };
                node
            }
        }
    }

    fn leaf(&mut self, value: f64) -> usize {
        self.nodes.push(Node::Leaf { value });
        self.nodes.len() - 1
    }

    fn placeholder(&mut self) -> usize {
        self.nodes.push(Node::Leaf { value: f64::NAN });
        self.nodes.len() - 1
    }

    /// Finds the (feature, threshold) split maximizing variance reduction,
    /// honoring `min_samples_leaf`. Returns `None` if no valid split helps.
    fn best_split(&mut self, indices: &[usize]) -> Option<(usize, f64)> {
        let d = self.data.num_features();
        let n = indices.len();
        let k = self.params.feature_subset.size(d);
        let features: Vec<usize> = if k >= d {
            (0..d).collect()
        } else {
            let mut all: Vec<usize> = (0..d).collect();
            all.shuffle(&mut self.rng);
            all.truncate(k);
            all
        };

        let total_sum: f64 = indices.iter().map(|&i| self.data.target(i)).sum();
        let total_sq: f64 = indices.iter().map(|&i| self.data.target(i).powi(2)).sum();
        let base_sse = total_sq - total_sum * total_sum / n as f64;

        let mut best: Option<(usize, f64, f64)> = None; // (feature, threshold, sse)
        let mut order: Vec<usize> = indices.to_vec();
        for &f in &features {
            order.sort_unstable_by(|&a, &b| self.data.row(a)[f].total_cmp(&self.data.row(b)[f]));
            let mut left_sum = 0.0;
            let mut left_sq = 0.0;
            for split in 1..n {
                let prev = order[split - 1];
                let y = self.data.target(prev);
                left_sum += y;
                left_sq += y * y;
                let (xl, xr) = (self.data.row(prev)[f], self.data.row(order[split])[f]);
                if xl == xr {
                    continue; // cannot split between equal values
                }
                if split < self.params.min_samples_leaf || n - split < self.params.min_samples_leaf
                {
                    continue;
                }
                let right_sum = total_sum - left_sum;
                let right_sq = total_sq - left_sq;
                let sse = (left_sq - left_sum * left_sum / split as f64)
                    + (right_sq - right_sum * right_sum / (n - split) as f64);
                if best.as_ref().is_none_or(|&(_, _, b)| sse < b - 1e-12) {
                    best = Some((f, 0.5 * (xl + xr), sse));
                }
            }
        }
        best.and_then(|(f, t, sse)| (sse < base_sse - 1e-12).then_some((f, t)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn step_data() -> Dataset {
        let mut b = Dataset::builder(vec!["x".into(), "noise".into()]);
        for i in 0..40 {
            let x = i as f64;
            let y = if x < 20.0 { -1.0 } else { 3.0 };
            b.push_row(vec![x, (i % 3) as f64], y).unwrap();
        }
        b.build().unwrap()
    }

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn learns_step_function() {
        let t = DecisionTreeParams::default()
            .fit(&step_data(), &mut rng())
            .unwrap();
        assert_eq!(t.predict_one(&[5.0, 0.0]), -1.0);
        assert_eq!(t.predict_one(&[35.0, 0.0]), 3.0);
        assert_eq!(
            t.used_features(),
            vec![0],
            "noise feature should be ignored"
        );
    }

    #[test]
    fn depth_zero_gives_mean_stump() {
        let params = DecisionTreeParams {
            max_depth: 0,
            ..Default::default()
        };
        let d = step_data();
        let t = params.fit(&d, &mut rng()).unwrap();
        assert_eq!(t.num_nodes(), 1);
        assert!((t.predict_one(&[0.0, 0.0]) - d.target_mean()).abs() < 1e-12);
    }

    #[test]
    fn min_samples_leaf_is_respected() {
        let params = DecisionTreeParams {
            min_samples_leaf: 10,
            ..Default::default()
        };
        let d = step_data();
        let t = params.fit(&d, &mut rng()).unwrap();
        // Count samples reaching each leaf.
        let mut counts = std::collections::HashMap::new();
        for i in 0..d.len() {
            // identify leaf by predicted value + path; value suffices here
            let key = format!("{:.6}", t.predict_one(d.row(i)));
            *counts.entry(key).or_insert(0usize) += 1;
        }
        for (_, c) in counts {
            assert!(c >= 10, "leaf with {c} samples violates min_samples_leaf");
        }
    }

    #[test]
    fn constant_target_yields_single_leaf() {
        let mut b = Dataset::builder(vec!["x".into()]);
        for i in 0..10 {
            b.push_row(vec![i as f64], 7.0).unwrap();
        }
        let t = DecisionTreeParams::default()
            .fit(&b.build().unwrap(), &mut rng())
            .unwrap();
        assert_eq!(t.num_nodes(), 1);
        assert_eq!(t.predict_one(&[100.0]), 7.0);
    }

    #[test]
    fn constant_feature_cannot_split() {
        let mut b = Dataset::builder(vec!["c".into()]);
        for i in 0..10 {
            b.push_row(vec![1.0], i as f64).unwrap();
        }
        let t = DecisionTreeParams::default()
            .fit(&b.build().unwrap(), &mut rng())
            .unwrap();
        assert_eq!(t.num_nodes(), 1);
        assert!((t.predict_one(&[1.0]) - 4.5).abs() < 1e-12);
    }

    #[test]
    fn empty_dataset_rejected() {
        let b = Dataset::builder(vec!["x".into()]);
        assert!(b.build().is_err());
    }

    #[test]
    fn invalid_min_leaf_rejected() {
        let params = DecisionTreeParams {
            min_samples_leaf: 0,
            ..Default::default()
        };
        let err = params.fit(&step_data(), &mut rng()).unwrap_err();
        assert!(matches!(err, MlError::InvalidHyperParameter { .. }));
    }

    #[test]
    fn subset_sizes() {
        assert_eq!(FeatureSubset::All.size(10), 10);
        assert_eq!(FeatureSubset::Sqrt.size(100), 10);
        assert_eq!(FeatureSubset::Sqrt.size(10), 4);
        assert_eq!(FeatureSubset::Third.size(9), 3);
        assert_eq!(FeatureSubset::Fixed(5).size(3), 3);
        assert_eq!(FeatureSubset::Fixed(0).size(3), 1);
    }

    #[test]
    fn deeper_trees_fit_tighter() {
        // Quadratic target: deeper trees should reduce training error.
        let mut b = Dataset::builder(vec!["x".into()]);
        for i in 0..100 {
            let x = i as f64 / 10.0;
            b.push_row(vec![x], x * x).unwrap();
        }
        let d = b.build().unwrap();
        let shallow = DecisionTreeParams {
            max_depth: 2,
            ..Default::default()
        }
        .fit(&d, &mut rng())
        .unwrap();
        let deep = DecisionTreeParams {
            max_depth: 8,
            ..Default::default()
        }
        .fit(&d, &mut rng())
        .unwrap();
        let err =
            |m: &DecisionTree| crate::metrics::root_mean_squared_error(&m.predict(&d), d.targets());
        assert!(err(&deep) < err(&shallow));
        assert!(deep.depth() > shallow.depth());
        assert!(deep.num_leaves() > shallow.num_leaves());
    }

    #[test]
    fn prediction_within_target_range() {
        let d = step_data();
        let t = DecisionTreeParams::default().fit(&d, &mut rng()).unwrap();
        let (lo, hi) = d.target_range();
        for i in 0..d.len() {
            let p = t.predict_one(d.row(i));
            assert!(p >= lo - 1e-12 && p <= hi + 1e-12);
        }
    }
}
