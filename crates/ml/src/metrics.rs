//! Regression accuracy metrics.
//!
//! The paper evaluates NAPEL with the *mean relative error* of Equation 1:
//! `MRE = (1/N) Σ |y'ᵢ − yᵢ| / yᵢ`. [`mean_relative_error`] implements it
//! with a tiny denominator floor so zero-valued targets cannot produce
//! infinities.

/// Mean relative error (Equation 1 of the paper), as a fraction (0.085 =
/// 8.5 %).
///
/// # Panics
///
/// Panics if the slices have different lengths or are empty.
pub fn mean_relative_error(predicted: &[f64], actual: &[f64]) -> f64 {
    assert_eq!(
        predicted.len(),
        actual.len(),
        "prediction/actual length mismatch"
    );
    assert!(!actual.is_empty(), "MRE of empty slice");
    let n = actual.len() as f64;
    predicted
        .iter()
        .zip(actual)
        .map(|(&p, &a)| (p - a).abs() / a.abs().max(1e-12))
        .sum::<f64>()
        / n
}

/// Mean absolute error.
///
/// # Panics
///
/// Panics if the slices have different lengths or are empty.
pub fn mean_absolute_error(predicted: &[f64], actual: &[f64]) -> f64 {
    assert_eq!(
        predicted.len(),
        actual.len(),
        "prediction/actual length mismatch"
    );
    assert!(!actual.is_empty(), "MAE of empty slice");
    predicted
        .iter()
        .zip(actual)
        .map(|(&p, &a)| (p - a).abs())
        .sum::<f64>()
        / actual.len() as f64
}

/// Root mean squared error.
///
/// # Panics
///
/// Panics if the slices have different lengths or are empty.
pub fn root_mean_squared_error(predicted: &[f64], actual: &[f64]) -> f64 {
    assert_eq!(
        predicted.len(),
        actual.len(),
        "prediction/actual length mismatch"
    );
    assert!(!actual.is_empty(), "RMSE of empty slice");
    (predicted
        .iter()
        .zip(actual)
        .map(|(&p, &a)| (p - a).powi(2))
        .sum::<f64>()
        / actual.len() as f64)
        .sqrt()
}

/// Coefficient of determination R². Returns 0 when the actuals are constant
/// and predictions match them exactly; can be negative for models worse than
/// predicting the mean.
///
/// # Panics
///
/// Panics if the slices have different lengths or are empty.
pub fn r_squared(predicted: &[f64], actual: &[f64]) -> f64 {
    assert_eq!(
        predicted.len(),
        actual.len(),
        "prediction/actual length mismatch"
    );
    assert!(!actual.is_empty(), "R^2 of empty slice");
    let mean = actual.iter().sum::<f64>() / actual.len() as f64;
    let ss_tot: f64 = actual.iter().map(|&a| (a - mean).powi(2)).sum();
    let ss_res: f64 = predicted
        .iter()
        .zip(actual)
        .map(|(&p, &a)| (a - p).powi(2))
        .sum();
    if ss_tot <= f64::EPSILON {
        return if ss_res <= f64::EPSILON {
            0.0
        } else {
            f64::NEG_INFINITY
        };
    }
    1.0 - ss_res / ss_tot
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_prediction_is_zero_error() {
        let y = [1.0, 2.0, 4.0];
        assert_eq!(mean_relative_error(&y, &y), 0.0);
        assert_eq!(mean_absolute_error(&y, &y), 0.0);
        assert_eq!(root_mean_squared_error(&y, &y), 0.0);
        assert!((r_squared(&y, &y) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn mre_matches_equation_one() {
        // |1.1-1|/1 = 0.1, |1.8-2|/2 = 0.1 -> mean 0.1
        let mre = mean_relative_error(&[1.1, 1.8], &[1.0, 2.0]);
        assert!((mre - 0.1).abs() < 1e-12);
    }

    #[test]
    fn mre_survives_zero_actual() {
        let mre = mean_relative_error(&[0.5], &[0.0]);
        assert!(mre.is_finite());
    }

    #[test]
    fn rmse_penalizes_outliers_more_than_mae() {
        let p = [0.0, 0.0, 10.0];
        let a = [0.0, 0.0, 0.0];
        assert!(root_mean_squared_error(&p, &a) > mean_absolute_error(&p, &a));
    }

    #[test]
    fn r2_of_mean_predictor_is_zero() {
        let a = [1.0, 2.0, 3.0];
        let p = [2.0, 2.0, 2.0];
        assert!(r_squared(&p, &a).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        let _ = mean_relative_error(&[1.0], &[1.0, 2.0]);
    }
}
