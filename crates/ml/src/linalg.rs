//! Minimal dense linear algebra for the linear estimators.
//!
//! Only what ridge regression needs: symmetric positive-definite solves via
//! Cholesky factorization. Matrices are tiny (≤ a few hundred columns), so a
//! straightforward `Vec<f64>`-backed implementation is plenty.

use crate::MlError;

/// Solves `A x = b` for symmetric positive-definite `A` (row-major, `n × n`)
/// via Cholesky factorization.
///
/// # Errors
///
/// Returns [`MlError::SingularSystem`] if `A` is not positive definite.
///
/// # Panics
///
/// Panics if dimensions are inconsistent.
pub fn solve_spd(a: &[f64], b: &[f64], n: usize) -> Result<Vec<f64>, MlError> {
    assert_eq!(a.len(), n * n, "A must be n x n");
    assert_eq!(b.len(), n, "b must have n entries");

    // Cholesky: A = L Lᵀ, L lower-triangular (stored row-major).
    let mut l = vec![0.0f64; n * n];
    for i in 0..n {
        for j in 0..=i {
            let mut sum = a[i * n + j];
            for k in 0..j {
                sum -= l[i * n + k] * l[j * n + k];
            }
            if i == j {
                // Relative tolerance: exactly collinear columns can leave a
                // tiny positive residual pivot from rounding; treat it as
                // singular rather than amplifying noise.
                let tol = 1e-10 * a[i * n + i].abs().max(1.0);
                if sum <= tol || !sum.is_finite() {
                    return Err(MlError::SingularSystem);
                }
                l[i * n + j] = sum.sqrt();
            } else {
                l[i * n + j] = sum / l[j * n + j];
            }
        }
    }

    // Forward substitution: L z = b.
    let mut z = vec![0.0f64; n];
    for i in 0..n {
        let mut sum = b[i];
        for k in 0..i {
            sum -= l[i * n + k] * z[k];
        }
        z[i] = sum / l[i * n + i];
    }

    // Back substitution: Lᵀ x = z.
    let mut x = vec![0.0f64; n];
    for i in (0..n).rev() {
        let mut sum = z[i];
        for k in (i + 1)..n {
            sum -= l[k * n + i] * x[k];
        }
        x[i] = sum / l[i * n + i];
    }
    Ok(x)
}

/// Computes `XᵀX + λI` and `Xᵀy` for a row-major `n × d` matrix `X` — the
/// normal equations of ridge regression.
pub fn normal_equations(
    x: &[f64],
    y: &[f64],
    n: usize,
    d: usize,
    lambda: f64,
) -> (Vec<f64>, Vec<f64>) {
    assert_eq!(x.len(), n * d);
    assert_eq!(y.len(), n);
    let mut xtx = vec![0.0f64; d * d];
    let mut xty = vec![0.0f64; d];
    for r in 0..n {
        let row = &x[r * d..(r + 1) * d];
        for i in 0..d {
            xty[i] += row[i] * y[r];
            for j in i..d {
                xtx[i * d + j] += row[i] * row[j];
            }
        }
    }
    // Mirror the upper triangle and add the ridge.
    for i in 0..d {
        for j in 0..i {
            xtx[i * d + j] = xtx[j * d + i];
        }
        xtx[i * d + i] += lambda;
    }
    (xtx, xty)
}

/// Dot product of two equal-length slices.
///
/// # Panics
///
/// Panics if lengths differ.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot of unequal lengths");
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solves_identity() {
        let a = vec![1.0, 0.0, 0.0, 1.0];
        let b = vec![3.0, 4.0];
        let x = solve_spd(&a, &b, 2).unwrap();
        assert!((x[0] - 3.0).abs() < 1e-12);
        assert!((x[1] - 4.0).abs() < 1e-12);
    }

    #[test]
    fn solves_spd_system() {
        // A = [[4,2],[2,3]], b = [10, 9] -> x = [1.5, 2]
        let a = vec![4.0, 2.0, 2.0, 3.0];
        let b = vec![10.0, 9.0];
        let x = solve_spd(&a, &b, 2).unwrap();
        assert!((x[0] - 1.5).abs() < 1e-10, "{x:?}");
        assert!((x[1] - 2.0).abs() < 1e-10, "{x:?}");
    }

    #[test]
    fn rejects_indefinite() {
        let a = vec![0.0, 0.0, 0.0, 0.0];
        assert_eq!(
            solve_spd(&a, &[1.0, 1.0], 2).unwrap_err(),
            MlError::SingularSystem
        );
        let a = vec![1.0, 2.0, 2.0, 1.0]; // eigenvalues 3 and -1
        assert_eq!(
            solve_spd(&a, &[1.0, 1.0], 2).unwrap_err(),
            MlError::SingularSystem
        );
    }

    #[test]
    fn normal_equations_match_manual() {
        // X = [[1,2],[3,4]], y = [5, 6]
        let (xtx, xty) = normal_equations(&[1.0, 2.0, 3.0, 4.0], &[5.0, 6.0], 2, 2, 0.5);
        assert_eq!(xtx, vec![10.0 + 0.5, 14.0, 14.0, 20.0 + 0.5]);
        assert_eq!(xty, vec![23.0, 34.0]);
    }

    #[test]
    fn dot_matches_manual() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
    }

    #[test]
    fn ridge_solve_recovers_coefficients() {
        // y = 2 x0 - x1 over a well-conditioned design, tiny lambda.
        let n = 50;
        let d = 2;
        let mut x = Vec::with_capacity(n * d);
        let mut y = Vec::with_capacity(n);
        for i in 0..n {
            let a = (i % 7) as f64;
            let b = (i % 11) as f64;
            x.extend_from_slice(&[a, b]);
            y.push(2.0 * a - b);
        }
        let (xtx, xty) = normal_equations(&x, &y, n, d, 1e-9);
        let w = solve_spd(&xtx, &xty, d).unwrap();
        assert!((w[0] - 2.0).abs() < 1e-6, "{w:?}");
        assert!((w[1] + 1.0).abs() < 1e-6, "{w:?}");
    }
}
