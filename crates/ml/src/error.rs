//! Error type shared by every estimator in the crate.

use std::error::Error;
use std::fmt;

/// Error fitting or evaluating a model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MlError {
    /// The training set has no rows.
    EmptyDataset,
    /// A row had the wrong number of features.
    FeatureMismatch {
        /// Number of features the dataset declares.
        expected: usize,
        /// Number of features the row carried.
        got: usize,
    },
    /// The dataset contains a non-finite feature or target value.
    NonFiniteValue {
        /// Row index of the offending value.
        row: usize,
    },
    /// Not enough samples for the requested validation scheme.
    NotEnoughSamples {
        /// Samples required.
        needed: usize,
        /// Samples available.
        available: usize,
    },
    /// A linear system was singular (e.g. ridge with zero regularization on
    /// collinear features).
    SingularSystem,
    /// A hyper-parameter value is invalid (zero trees, zero hidden units...).
    InvalidHyperParameter {
        /// Description of what was wrong.
        what: &'static str,
    },
}

impl fmt::Display for MlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MlError::EmptyDataset => write!(f, "training set has no rows"),
            MlError::FeatureMismatch { expected, got } => {
                write!(f, "row has {got} features, dataset declares {expected}")
            }
            MlError::NonFiniteValue { row } => {
                write!(f, "non-finite value in dataset at row {row}")
            }
            MlError::NotEnoughSamples { needed, available } => {
                write!(f, "needs {needed} samples, only {available} available")
            }
            MlError::SingularSystem => write!(f, "linear system is singular"),
            MlError::InvalidHyperParameter { what } => {
                write!(f, "invalid hyper-parameter: {what}")
            }
        }
    }
}

impl Error for MlError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_concise() {
        let msgs = [
            MlError::EmptyDataset.to_string(),
            MlError::FeatureMismatch {
                expected: 3,
                got: 2,
            }
            .to_string(),
            MlError::NonFiniteValue { row: 7 }.to_string(),
            MlError::NotEnoughSamples {
                needed: 5,
                available: 2,
            }
            .to_string(),
            MlError::SingularSystem.to_string(),
            MlError::InvalidHyperParameter { what: "zero trees" }.to_string(),
        ];
        for m in msgs {
            assert!(!m.is_empty());
            assert!(m.chars().next().unwrap().is_lowercase(), "{m}");
            assert!(!m.ends_with('.'), "{m}");
        }
    }
}
