//! Ridge (L2-regularized linear) regression.
//!
//! Used both as a standalone baseline (Joseph et al. in Table 5 of the paper
//! predict CPU performance with linear regression) and as the leaf model of
//! the [`crate::model_tree`].

use rand::RngCore;

use crate::dataset::Dataset;
use crate::linalg::{dot, normal_equations, solve_spd};
use crate::scaler::Scaler;
use crate::{Estimator, MlError, Regressor};

/// Hyper-parameters of ridge regression.
#[derive(Debug, Clone, PartialEq)]
pub struct RidgeParams {
    /// L2 regularization strength (on standardized features).
    pub lambda: f64,
}

impl Default for RidgeParams {
    fn default() -> Self {
        RidgeParams { lambda: 1e-3 }
    }
}

impl Estimator for RidgeParams {
    type Model = Ridge;

    fn fit(&self, data: &Dataset, _rng: &mut dyn RngCore) -> Result<Ridge, MlError> {
        if data.is_empty() {
            return Err(MlError::EmptyDataset);
        }
        if self.lambda.is_nan() || self.lambda < 0.0 {
            return Err(MlError::InvalidHyperParameter {
                what: "lambda must be >= 0",
            });
        }
        Ridge::fit_with(data, self.lambda)
    }

    fn describe(&self) -> String {
        format!("ridge(lambda={})", self.lambda)
    }
}

/// A fitted ridge regression model over standardized features.
///
/// # Example
///
/// ```
/// use napel_ml::dataset::Dataset;
/// use napel_ml::linear::RidgeParams;
/// use napel_ml::{Estimator, Regressor};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut b = Dataset::builder(vec!["x".into()]);
/// for i in 0..10 {
///     b.push_row(vec![i as f64], 3.0 * i as f64 + 1.0)?;
/// }
/// let m = RidgeParams::default().fit(&b.build()?, &mut StdRng::seed_from_u64(0))?;
/// assert!((m.predict_one(&[20.0]) - 61.0).abs() < 0.5);
/// # Ok::<(), napel_ml::MlError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Ridge {
    scaler: Scaler,
    /// Weights over standardized features, plus intercept as last element.
    weights: Vec<f64>,
}

impl Ridge {
    /// Fits ridge regression with the given `lambda` on standardized
    /// features (intercept unpenalized via target centering).
    ///
    /// # Errors
    ///
    /// Returns [`MlError::SingularSystem`] when `lambda == 0` and the design
    /// is rank-deficient, or [`MlError::EmptyDataset`].
    pub fn fit_with(data: &Dataset, lambda: f64) -> Result<Ridge, MlError> {
        if data.is_empty() {
            return Err(MlError::EmptyDataset);
        }
        let scaler = Scaler::fit(data);
        let n = data.len();
        let d = data.num_features();
        let mut x = Vec::with_capacity(n * d);
        let mut y = Vec::with_capacity(n);
        for i in 0..n {
            x.extend_from_slice(&scaler.transform_features(data.row(i)));
            y.push(scaler.transform_target(data.target(i)));
        }
        // Guard rank deficiency with a tiny implicit ridge even at lambda=0?
        // No: honor lambda exactly; callers get SingularSystem and can retry.
        let (xtx, xty) = normal_equations(&x, &y, n, d, lambda.max(0.0));
        let w = solve_spd(&xtx, &xty, d)?;
        let mut weights = w;
        weights.push(0.0); // standardized-target intercept is 0 by centering
        Ok(Ridge { scaler, weights })
    }

    /// The learned weights over standardized features (without intercept).
    pub fn weights(&self) -> &[f64] {
        &self.weights[..self.weights.len() - 1]
    }

    /// Number of features the model was fitted on.
    pub fn num_features(&self) -> usize {
        self.scaler.num_features()
    }

    /// The fitted scaler (for serialization).
    pub(crate) fn scaler(&self) -> &Scaler {
        &self.scaler
    }

    /// The full weight vector, intercept included (for serialization).
    pub(crate) fn raw_weights(&self) -> &[f64] {
        &self.weights
    }

    /// Rebuilds a ridge model from its serialized parts. The caller
    /// ([`crate::persist`]) has already checked the weight count against
    /// the scaler's feature count.
    pub(crate) fn from_parts(scaler: Scaler, weights: Vec<f64>) -> Ridge {
        Ridge { scaler, weights }
    }
}

impl Regressor for Ridge {
    fn predict_one(&self, x: &[f64]) -> f64 {
        let z = self.scaler.transform_features(x);
        let d = z.len();
        let pred_std = dot(&z, &self.weights[..d]) + self.weights[d];
        self.scaler.inverse_target(pred_std)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn recovers_linear_relationship() {
        let mut b = Dataset::builder(vec!["a".into(), "b".into()]);
        for i in 0..30 {
            let a = (i % 6) as f64;
            let c = (i % 5) as f64;
            b.push_row(vec![a, c], 2.0 * a - 3.0 * c + 10.0).unwrap();
        }
        let d = b.build().unwrap();
        let m = RidgeParams { lambda: 1e-9 }
            .fit(&d, &mut StdRng::seed_from_u64(0))
            .unwrap();
        for i in 0..d.len() {
            assert!((m.predict_one(d.row(i)) - d.target(i)).abs() < 1e-6);
        }
    }

    #[test]
    fn heavier_lambda_shrinks_weights() {
        let mut b = Dataset::builder(vec!["x".into()]);
        for i in 0..20 {
            b.push_row(vec![i as f64], 5.0 * i as f64).unwrap();
        }
        let d = b.build().unwrap();
        let light = Ridge::fit_with(&d, 1e-6).unwrap();
        let heavy = Ridge::fit_with(&d, 100.0).unwrap();
        assert!(heavy.weights()[0].abs() < light.weights()[0].abs());
    }

    #[test]
    fn collinear_features_need_regularization() {
        let mut b = Dataset::builder(vec!["x".into(), "x_copy".into()]);
        for i in 0..10 {
            let x = i as f64;
            b.push_row(vec![x, x], x).unwrap();
        }
        let d = b.build().unwrap();
        assert_eq!(
            Ridge::fit_with(&d, 0.0).unwrap_err(),
            MlError::SingularSystem
        );
        assert!(Ridge::fit_with(&d, 1e-3).is_ok());
    }

    #[test]
    fn negative_lambda_rejected() {
        let mut b = Dataset::builder(vec!["x".into()]);
        b.push_row(vec![1.0], 1.0).unwrap();
        b.push_row(vec![2.0], 2.0).unwrap();
        let d = b.build().unwrap();
        let err = RidgeParams { lambda: -1.0 }
            .fit(&d, &mut StdRng::seed_from_u64(0))
            .unwrap_err();
        assert!(matches!(err, MlError::InvalidHyperParameter { .. }));
    }

    #[test]
    fn linear_model_cannot_capture_nonlinearity() {
        // This is the paper's core argument against linear models (Fig. 5).
        let mut b = Dataset::builder(vec!["x".into()]);
        for i in 0..40 {
            let x = i as f64 - 20.0;
            b.push_row(vec![x], x * x).unwrap();
        }
        let d = b.build().unwrap();
        let m = RidgeParams::default()
            .fit(&d, &mut StdRng::seed_from_u64(0))
            .unwrap();
        let rmse = crate::metrics::root_mean_squared_error(&m.predict(&d), d.targets());
        assert!(rmse > 50.0, "a line cannot fit a parabola (rmse={rmse})");
    }
}
