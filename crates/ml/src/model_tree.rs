//! Model tree: a decision tree with linear-regression leaves.
//!
//! This is the "linear decision tree used by Guo et al." baseline of
//! Figure 5 in the paper (an M5-style model tree). The structure is grown by
//! the same variance-reduction CART procedure as [`crate::tree`], but each
//! leaf fits a ridge regression over the samples it receives — piecewise
//! *linear* rather than piecewise constant, which is precisely why the paper
//! finds it unable to capture NMC nonlinearities.

use rand::RngCore;

use crate::dataset::Dataset;
use crate::linear::Ridge;
use crate::tree::{DecisionTreeParams, FeatureSubset};
use crate::{Estimator, MlError, Regressor};

/// Hyper-parameters of a model tree.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelTreeParams {
    /// Maximum depth of the splitting structure.
    pub max_depth: usize,
    /// Minimum samples per leaf; also the minimum fitting set of each leaf
    /// ridge model.
    pub min_samples_leaf: usize,
    /// Ridge strength of the leaf models.
    pub leaf_lambda: f64,
}

impl Default for ModelTreeParams {
    fn default() -> Self {
        ModelTreeParams {
            max_depth: 4,
            min_samples_leaf: 6,
            leaf_lambda: 1e-2,
        }
    }
}

impl Estimator for ModelTreeParams {
    type Model = ModelTree;

    fn fit(&self, data: &Dataset, rng: &mut dyn RngCore) -> Result<ModelTree, MlError> {
        if data.is_empty() {
            return Err(MlError::EmptyDataset);
        }
        if self.min_samples_leaf == 0 {
            return Err(MlError::InvalidHyperParameter {
                what: "min_samples_leaf must be >= 1",
            });
        }
        let mut nodes = Vec::new();
        let indices: Vec<usize> = (0..data.len()).collect();
        grow(self, data, rng, &mut nodes, indices, 0)?;
        Ok(ModelTree {
            nodes,
            num_features: data.num_features(),
        })
    }

    fn describe(&self) -> String {
        format!(
            "model_tree(max_depth={}, min_leaf={}, leaf_lambda={})",
            self.max_depth, self.min_samples_leaf, self.leaf_lambda
        )
    }
}

/// A node of the fitted model tree. As in [`crate::tree`], children always
/// come after their parent in the arena; [`crate::persist`] relies on this
/// invariant to validate decoded trees.
#[derive(Debug, Clone)]
pub(crate) enum Node {
    Leaf {
        model: LeafModel,
    },
    Split {
        feature: usize,
        threshold: f64,
        left: usize,
        right: usize,
    },
}

#[derive(Debug, Clone)]
pub(crate) enum LeafModel {
    /// Ridge model over the leaf's samples.
    Linear(Ridge),
    /// Mean fallback when the leaf design is degenerate.
    Constant(f64),
}

/// A fitted model tree.
///
/// # Example
///
/// ```
/// use napel_ml::dataset::Dataset;
/// use napel_ml::model_tree::ModelTreeParams;
/// use napel_ml::{Estimator, Regressor};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// // Piecewise-linear target: model tree fits it almost exactly.
/// let mut b = Dataset::builder(vec!["x".into()]);
/// for i in 0..60 {
///     let x = i as f64;
///     let y = if x < 30.0 { 2.0 * x } else { 120.0 - 2.0 * x };
///     b.push_row(vec![x], y)?;
/// }
/// let m = ModelTreeParams::default().fit(&b.build()?, &mut StdRng::seed_from_u64(0))?;
/// assert!((m.predict_one(&[10.0]) - 20.0).abs() < 4.0);
/// # Ok::<(), napel_ml::MlError>(())
/// ```
#[derive(Debug, Clone)]
pub struct ModelTree {
    nodes: Vec<Node>,
    num_features: usize,
}

impl ModelTree {
    /// Number of features the tree was fitted on.
    pub fn num_features(&self) -> usize {
        self.num_features
    }

    /// Number of leaves (each carrying a linear model).
    pub fn num_leaves(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| matches!(n, Node::Leaf { .. }))
            .count()
    }

    /// The node arena (for serialization).
    pub(crate) fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Rebuilds a model tree from its serialized parts. The caller
    /// ([`crate::persist`]) has already validated the arena invariants.
    pub(crate) fn from_parts(nodes: Vec<Node>, num_features: usize) -> ModelTree {
        ModelTree {
            nodes,
            num_features,
        }
    }
}

impl Regressor for ModelTree {
    fn predict_one(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.num_features, "feature count mismatch");
        let mut i = 0;
        loop {
            match &self.nodes[i] {
                Node::Leaf { model } => {
                    return match model {
                        LeafModel::Linear(r) => r.predict_one(x),
                        LeafModel::Constant(c) => *c,
                    }
                }
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    i = if x[*feature] <= *threshold {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }
}

fn grow(
    params: &ModelTreeParams,
    data: &Dataset,
    rng: &mut dyn RngCore,
    nodes: &mut Vec<Node>,
    indices: Vec<usize>,
    depth: usize,
) -> Result<usize, MlError> {
    if depth >= params.max_depth || indices.len() < 2 * params.min_samples_leaf {
        let idx = nodes.len();
        nodes.push(Node::Leaf {
            model: fit_leaf(params, data, &indices),
        });
        return Ok(idx);
    }
    // Reuse CART's split search by fitting a depth-1 stump over the subset.
    let subset = data.subset(&indices);
    let stump_params = DecisionTreeParams {
        max_depth: 1,
        min_samples_split: 2 * params.min_samples_leaf,
        min_samples_leaf: params.min_samples_leaf,
        feature_subset: FeatureSubset::All,
    };
    let stump = stump_params.fit(&subset, rng)?;
    let Some(&feature) = stump.used_features().first() else {
        let idx = nodes.len();
        nodes.push(Node::Leaf {
            model: fit_leaf(params, data, &indices),
        });
        return Ok(idx);
    };
    // Recover the threshold: probe values on either side of the split by
    // scanning the subset's feature values for the boundary the stump chose.
    let mut vals: Vec<f64> = indices.iter().map(|&i| data.row(i)[feature]).collect();
    vals.sort_by(f64::total_cmp);
    vals.dedup();
    let mut threshold = None;
    for w in vals.windows(2) {
        let mid = 0.5 * (w[0] + w[1]);
        let mut probe_lo = vec![0.0; data.num_features()];
        let mut probe_hi = vec![0.0; data.num_features()];
        probe_lo[feature] = w[0];
        probe_hi[feature] = w[1];
        if stump.predict_one(&probe_lo) != stump.predict_one(&probe_hi) {
            threshold = Some(mid);
            break;
        }
    }
    let Some(threshold) = threshold else {
        let idx = nodes.len();
        nodes.push(Node::Leaf {
            model: fit_leaf(params, data, &indices),
        });
        return Ok(idx);
    };

    let (left_idx, right_idx): (Vec<usize>, Vec<usize>) = indices
        .iter()
        .partition(|&&i| data.row(i)[feature] <= threshold);
    if left_idx.len() < params.min_samples_leaf || right_idx.len() < params.min_samples_leaf {
        let idx = nodes.len();
        nodes.push(Node::Leaf {
            model: fit_leaf(params, data, &indices),
        });
        return Ok(idx);
    }

    let node = nodes.len();
    nodes.push(Node::Leaf {
        model: LeafModel::Constant(f64::NAN),
    }); // placeholder
    let left = grow(params, data, rng, nodes, left_idx, depth + 1)?;
    let right = grow(params, data, rng, nodes, right_idx, depth + 1)?;
    nodes[node] = Node::Split {
        feature,
        threshold,
        left,
        right,
    };
    Ok(node)
}

fn fit_leaf(params: &ModelTreeParams, data: &Dataset, indices: &[usize]) -> LeafModel {
    let subset = data.subset(indices);
    let mean = subset.target_mean();
    if subset.len() <= subset.num_features() {
        // Under-determined even with ridge: fall back to the mean.
        return LeafModel::Constant(mean);
    }
    match Ridge::fit_with(&subset, params.leaf_lambda) {
        Ok(r) => LeafModel::Linear(r),
        Err(_) => LeafModel::Constant(mean),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(11)
    }

    #[test]
    fn fits_piecewise_linear_exactly() {
        let mut b = Dataset::builder(vec!["x".into()]);
        for i in 0..100 {
            let x = i as f64;
            let y = if x < 50.0 {
                3.0 * x + 1.0
            } else {
                400.0 - 5.0 * x
            };
            b.push_row(vec![x], y).unwrap();
        }
        let d = b.build().unwrap();
        let m = ModelTreeParams {
            max_depth: 5,
            ..Default::default()
        }
        .fit(&d, &mut rng())
        .unwrap();
        let rmse = crate::metrics::root_mean_squared_error(&m.predict(&d), d.targets());
        // Only the leaf straddling the kink carries residual error.
        assert!(
            rmse < 8.0,
            "model tree should fit piecewise-linear data, rmse={rmse}"
        );
        assert!(m.num_leaves() >= 2);
    }

    #[test]
    fn outperforms_plain_linear_on_kinked_data() {
        let mut b = Dataset::builder(vec!["x".into()]);
        for i in 0..60 {
            let x = i as f64;
            let y = if x < 30.0 { x } else { 60.0 - x };
            b.push_row(vec![x], y).unwrap();
        }
        let d = b.build().unwrap();
        let mt = ModelTreeParams::default().fit(&d, &mut rng()).unwrap();
        let lin = crate::linear::RidgeParams::default()
            .fit(&d, &mut rng())
            .unwrap();
        let mt_err = crate::metrics::root_mean_squared_error(&mt.predict(&d), d.targets());
        let lin_err = crate::metrics::root_mean_squared_error(&lin.predict(&d), d.targets());
        assert!(mt_err < lin_err, "model tree {mt_err} vs linear {lin_err}");
    }

    #[test]
    fn tiny_dataset_degrades_to_constant() {
        let mut b = Dataset::builder(vec!["x".into(), "y".into(), "z".into()]);
        b.push_row(vec![1.0, 2.0, 3.0], 5.0).unwrap();
        b.push_row(vec![2.0, 3.0, 4.0], 7.0).unwrap();
        let d = b.build().unwrap();
        let m = ModelTreeParams::default().fit(&d, &mut rng()).unwrap();
        let p = m.predict_one(&[1.5, 2.5, 3.5]);
        assert!((p - 6.0).abs() < 1e-9, "mean fallback expected, got {p}");
    }

    #[test]
    fn depth_limit_bounds_leaves() {
        let mut b = Dataset::builder(vec!["x".into()]);
        for i in 0..200 {
            let x = i as f64;
            b.push_row(vec![x], (x / 10.0).sin()).unwrap();
        }
        let d = b.build().unwrap();
        let m = ModelTreeParams {
            max_depth: 2,
            min_samples_leaf: 5,
            ..Default::default()
        }
        .fit(&d, &mut rng())
        .unwrap();
        assert!(m.num_leaves() <= 4);
    }

    #[test]
    fn invalid_hyperparameter_rejected() {
        let mut b = Dataset::builder(vec!["x".into()]);
        b.push_row(vec![1.0], 1.0).unwrap();
        let d = b.build().unwrap();
        let err = ModelTreeParams {
            min_samples_leaf: 0,
            ..Default::default()
        }
        .fit(&d, &mut rng())
        .unwrap_err();
        assert!(matches!(err, MlError::InvalidHyperParameter { .. }));
    }
}
