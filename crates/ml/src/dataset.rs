//! Regression datasets with named features.

use crate::MlError;

/// A dense regression dataset: `n` rows × `d` named features plus a target.
///
/// Rows are stored row-major so tree training can slice features cheaply.
///
/// # Example
///
/// ```
/// use napel_ml::dataset::Dataset;
///
/// let mut b = Dataset::builder(vec!["ipc_hint".into(), "misses".into()]);
/// b.push_row(vec![0.5, 100.0], 0.42)?;
/// b.push_row(vec![0.9, 10.0], 0.88)?;
/// let d = b.build()?;
/// assert_eq!(d.len(), 2);
/// assert_eq!(d.num_features(), 2);
/// assert_eq!(d.feature_names()[1], "misses");
/// # Ok::<(), napel_ml::MlError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    features: Vec<String>,
    x: Vec<f64>,
    y: Vec<f64>,
    d: usize,
    groups: Option<Vec<usize>>,
}

impl Dataset {
    /// Starts building a dataset with the given feature names.
    pub fn builder(features: Vec<String>) -> DatasetBuilder {
        DatasetBuilder {
            inner: Dataset {
                d: features.len(),
                features,
                x: Vec::new(),
                y: Vec::new(),
                groups: None,
            },
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.y.len()
    }

    /// Whether the dataset has no rows.
    pub fn is_empty(&self) -> bool {
        self.y.is_empty()
    }

    /// Number of features per row.
    pub fn num_features(&self) -> usize {
        self.d
    }

    /// Feature names, in column order.
    pub fn feature_names(&self) -> &[String] {
        &self.features
    }

    /// Feature vector of row `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.x[i * self.d..(i + 1) * self.d]
    }

    /// Target of row `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    #[inline]
    pub fn target(&self, i: usize) -> f64 {
        self.y[i]
    }

    /// All targets.
    pub fn targets(&self) -> &[f64] {
        &self.y
    }

    /// Per-row group labels, if any (see [`Dataset::with_groups`]).
    pub fn groups(&self) -> Option<&[usize]> {
        self.groups.as_deref()
    }

    /// Attaches a group label to every row — e.g. which application a
    /// training row came from. Estimators that validate across
    /// distribution shifts (the ensemble's weight adaptation) use the
    /// labels for leave-one-group-out folds; everything else ignores them.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::FeatureMismatch`] if `groups.len()` differs from
    /// the row count.
    pub fn with_groups(mut self, groups: Vec<usize>) -> Result<Dataset, MlError> {
        if groups.len() != self.len() {
            return Err(MlError::FeatureMismatch {
                expected: self.len(),
                got: groups.len(),
            });
        }
        self.groups = Some(groups);
        Ok(self)
    }

    /// A new dataset containing the given rows (duplicates allowed, as in
    /// bootstrap resampling).
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range.
    pub fn subset(&self, indices: &[usize]) -> Dataset {
        let mut x = Vec::with_capacity(indices.len() * self.d);
        let mut y = Vec::with_capacity(indices.len());
        for &i in indices {
            x.extend_from_slice(self.row(i));
            y.push(self.y[i]);
        }
        Dataset {
            features: self.features.clone(),
            x,
            y,
            d: self.d,
            groups: self
                .groups
                .as_ref()
                .map(|g| indices.iter().map(|&i| g[i]).collect()),
        }
    }

    /// Mean of the targets.
    ///
    /// # Panics
    ///
    /// Panics if the dataset is empty.
    pub fn target_mean(&self) -> f64 {
        assert!(!self.is_empty(), "target_mean of empty dataset");
        self.y.iter().sum::<f64>() / self.y.len() as f64
    }

    /// Minimum and maximum target values.
    ///
    /// # Panics
    ///
    /// Panics if the dataset is empty.
    pub fn target_range(&self) -> (f64, f64) {
        assert!(!self.is_empty(), "target_range of empty dataset");
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for &v in &self.y {
            lo = lo.min(v);
            hi = hi.max(v);
        }
        (lo, hi)
    }

    /// Per-feature (mean, standard deviation) over all rows, with std floored
    /// at a tiny epsilon so constant features stay usable.
    pub fn feature_moments(&self) -> Vec<(f64, f64)> {
        let n = self.len().max(1) as f64;
        let mut out = Vec::with_capacity(self.d);
        for j in 0..self.d {
            let mean = (0..self.len()).map(|i| self.row(i)[j]).sum::<f64>() / n;
            let var = (0..self.len())
                .map(|i| (self.row(i)[j] - mean).powi(2))
                .sum::<f64>()
                / n;
            out.push((mean, var.sqrt().max(1e-12)));
        }
        out
    }
}

/// Incremental builder returned by [`Dataset::builder`].
#[derive(Debug, Clone)]
pub struct DatasetBuilder {
    inner: Dataset,
}

impl DatasetBuilder {
    /// Appends a row.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::FeatureMismatch`] if `features.len()` differs from
    /// the declared feature count, and [`MlError::NonFiniteValue`] if any
    /// value is NaN or infinite.
    pub fn push_row(&mut self, features: Vec<f64>, target: f64) -> Result<&mut Self, MlError> {
        if features.len() != self.inner.d {
            return Err(MlError::FeatureMismatch {
                expected: self.inner.d,
                got: features.len(),
            });
        }
        if !target.is_finite() || features.iter().any(|v| !v.is_finite()) {
            return Err(MlError::NonFiniteValue {
                row: self.inner.len(),
            });
        }
        self.inner.x.extend_from_slice(&features);
        self.inner.y.push(target);
        Ok(self)
    }

    /// Number of rows accumulated so far.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Whether no rows have been added yet.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Finishes the dataset.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::EmptyDataset`] if no rows were added.
    pub fn build(self) -> Result<Dataset, MlError> {
        if self.inner.is_empty() {
            return Err(MlError::EmptyDataset);
        }
        Ok(self.inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Dataset {
        let mut b = Dataset::builder(vec!["a".into(), "b".into()]);
        b.push_row(vec![1.0, 10.0], 100.0).unwrap();
        b.push_row(vec![2.0, 20.0], 200.0).unwrap();
        b.push_row(vec![3.0, 30.0], 300.0).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn rows_and_targets_align() {
        let d = sample();
        assert_eq!(d.row(1), &[2.0, 20.0]);
        assert_eq!(d.target(1), 200.0);
        assert_eq!(d.targets(), &[100.0, 200.0, 300.0]);
    }

    #[test]
    fn mismatched_row_rejected() {
        let mut b = Dataset::builder(vec!["a".into()]);
        let err = b.push_row(vec![1.0, 2.0], 0.0).unwrap_err();
        assert_eq!(
            err,
            MlError::FeatureMismatch {
                expected: 1,
                got: 2
            }
        );
    }

    #[test]
    fn non_finite_rejected() {
        let mut b = Dataset::builder(vec!["a".into()]);
        assert_eq!(
            b.push_row(vec![f64::NAN], 0.0).unwrap_err(),
            MlError::NonFiniteValue { row: 0 }
        );
        assert_eq!(
            b.push_row(vec![1.0], f64::INFINITY).unwrap_err(),
            MlError::NonFiniteValue { row: 0 }
        );
    }

    #[test]
    fn empty_build_rejected() {
        let b = Dataset::builder(vec!["a".into()]);
        assert_eq!(b.build().unwrap_err(), MlError::EmptyDataset);
    }

    #[test]
    fn subset_allows_duplicates() {
        let d = sample();
        let s = d.subset(&[2, 2, 0]);
        assert_eq!(s.len(), 3);
        assert_eq!(s.target(0), 300.0);
        assert_eq!(s.target(1), 300.0);
        assert_eq!(s.target(2), 100.0);
    }

    #[test]
    fn groups_attach_validate_and_survive_subsetting() {
        assert_eq!(sample().groups(), None);
        let d = sample().with_groups(vec![7, 7, 9]).unwrap();
        assert_eq!(d.groups(), Some(&[7, 7, 9][..]));
        let s = d.subset(&[2, 0]);
        assert_eq!(s.groups(), Some(&[9, 7][..]));

        let err = sample().with_groups(vec![1]).unwrap_err();
        assert_eq!(
            err,
            MlError::FeatureMismatch {
                expected: 3,
                got: 1
            }
        );
    }

    #[test]
    fn moments_and_range() {
        let d = sample();
        let (lo, hi) = d.target_range();
        assert_eq!((lo, hi), (100.0, 300.0));
        assert!((d.target_mean() - 200.0).abs() < 1e-12);
        let m = d.feature_moments();
        assert!((m[0].0 - 2.0).abs() < 1e-12);
        assert!(m[0].1 > 0.0);
    }
}
