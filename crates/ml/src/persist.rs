//! Deterministic, versioned model serialization — the artifact half of the
//! train → artifact → inference pipeline.
//!
//! NAPEL's economics (Section 4 of the paper) hinge on paying the training
//! cost once and consulting the fitted model many times; that requires
//! fitted models to outlive the process that trained them. This module
//! serializes **every** estimator family in the crate — [`DecisionTree`],
//! [`RandomForest`], [`Ridge`], [`Mlp`], [`ModelTree`], the
//! [`LogModel`] wrapper, and the [`Scaler`] — with three properties the
//! inference layer depends on:
//!
//! - **Bit-exact**: floats are written as big-endian `f64::to_bits()` hex
//!   (the same idiom as the campaign checkpoint journal), so
//!   `decode(encode(m))` predicts bit-identically to `m`. No decimal
//!   round-tripping, no platform-dependent formatting.
//! - **Deterministic**: the same model always encodes to the same bytes,
//!   so artifact diffs and content hashes are meaningful.
//! - **Versioned and validated**: every document begins with
//!   `napel-ml-model v1`; decoding checks structural invariants (child
//!   indices strictly increase, layer shapes chain, weight counts match
//!   the scaler) so a corrupt or truncated document fails with a typed
//!   [`PersistError`] instead of mispredicting or looping forever.
//!
//! The format is plain whitespace-separated tokens (hand-rolled, zero-dep,
//! like the telemetry crate's JSONL): human-greppable, trivially stable.
//!
//! # Example
//!
//! ```
//! use napel_ml::dataset::Dataset;
//! use napel_ml::forest::RandomForestParams;
//! use napel_ml::persist::{decode, encode};
//! use napel_ml::{Estimator, Regressor};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let mut b = Dataset::builder(vec!["x".into()]);
//! for i in 0..30 {
//!     b.push_row(vec![i as f64], (i as f64).sqrt())?;
//! }
//! let d = b.build()?;
//! let f = RandomForestParams::default().fit(&d, &mut StdRng::seed_from_u64(1))?;
//! let text = encode(&f);
//! let back: napel_ml::forest::RandomForest = decode(&text).unwrap();
//! assert_eq!(f.predict_one(&[7.0]).to_bits(), back.predict_one(&[7.0]).to_bits());
//! # Ok::<(), napel_ml::MlError>(())
//! ```

use std::error::Error;
use std::fmt;

use crate::ensemble::{WeightedEnsemble, NUM_MEMBERS};
use crate::forest::RandomForest;
use crate::linear::Ridge;
use crate::log_space::LogModel;
use crate::mlp::{Layer, Mlp, Network};
use crate::model_tree::Node as ModelTreeNode;
use crate::model_tree::{LeafModel, ModelTree};
use crate::scaler::Scaler;
use crate::tree::{DecisionTree, Node as TreeNode};
use crate::Regressor;

/// Leading marker token of every serialized model document.
pub const FORMAT: &str = "napel-ml-model";

/// Format version this build reads and writes.
pub const VERSION: u32 = 1;

/// Upper bound on any serialized count (features, nodes, trees, weights).
/// Far above anything a real model produces; exists so a corrupt count
/// cannot drive a huge allocation before token parsing fails.
const MAX_COUNT: usize = 1 << 24;

/// How a model document can fail to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PersistError {
    /// The document is not a `napel-ml-model` document of a version this
    /// build understands.
    Version {
        /// The marker or version token actually found.
        found: String,
    },
    /// The document holds a different model kind than the caller asked for.
    KindMismatch {
        /// The kind the caller expected.
        expected: &'static str,
        /// The kind recorded in the document.
        found: String,
    },
    /// The document's kind token names no model family this build knows.
    UnknownKind {
        /// The unrecognized kind token.
        kind: String,
    },
    /// The document is structurally invalid: truncated, trailing data, or
    /// an invariant violation (bad child index, shape mismatch, ...).
    Corrupt {
        /// What was wrong.
        what: String,
    },
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Version { found } => write!(
                f,
                "unsupported model document `{found}` (this build reads {FORMAT} v{VERSION})"
            ),
            PersistError::KindMismatch { expected, found } => {
                write!(
                    f,
                    "model kind mismatch: expected `{expected}`, found `{found}`"
                )
            }
            PersistError::UnknownKind { kind } => write!(f, "unknown model kind `{kind}`"),
            PersistError::Corrupt { what } => write!(f, "corrupt model document: {what}"),
        }
    }
}

impl Error for PersistError {}

/// Token-stream writer: space-separated tokens, wrapped for greppability,
/// floats as 16-hex-digit bit patterns.
pub struct Writer {
    buf: String,
    toks_on_line: usize,
}

/// Tokens per line before wrapping (cosmetic only; the reader is
/// whitespace-agnostic).
const TOKS_PER_LINE: usize = 16;

impl Writer {
    fn new() -> Writer {
        Writer {
            buf: String::new(),
            toks_on_line: 0,
        }
    }

    /// Appends one token. Tokens must be non-empty and whitespace-free.
    pub fn tok(&mut self, t: &str) {
        debug_assert!(
            !t.is_empty() && !t.contains(char::is_whitespace),
            "invalid token {t:?}"
        );
        if self.toks_on_line == TOKS_PER_LINE {
            self.buf.push('\n');
            self.toks_on_line = 0;
        } else if self.toks_on_line > 0 {
            self.buf.push(' ');
        }
        self.buf.push_str(t);
        self.toks_on_line += 1;
    }

    /// Appends an integer token.
    pub fn int(&mut self, v: usize) {
        self.tok(&v.to_string());
    }

    /// Appends a float as its exact big-endian bit pattern in hex.
    pub fn float(&mut self, v: f64) {
        self.tok(&format!("{:016x}", v.to_bits()));
    }

    fn finish(mut self) -> String {
        if !self.buf.is_empty() {
            self.buf.push('\n');
        }
        self.buf
    }
}

/// Token-stream reader over a serialized document.
pub struct Reader<'a> {
    toks: std::str::SplitAsciiWhitespace<'a>,
}

impl<'a> Reader<'a> {
    fn new(text: &'a str) -> Reader<'a> {
        Reader {
            toks: text.split_ascii_whitespace(),
        }
    }

    /// Next token, or [`PersistError::Corrupt`] naming `what` was expected.
    pub fn tok(&mut self, what: &str) -> Result<&'a str, PersistError> {
        self.toks.next().ok_or_else(|| PersistError::Corrupt {
            what: format!("document ends where {what} was expected"),
        })
    }

    /// Consumes a token that must equal `lit`.
    pub fn expect(&mut self, lit: &str) -> Result<(), PersistError> {
        let t = self.tok(lit)?;
        if t == lit {
            Ok(())
        } else {
            Err(PersistError::Corrupt {
                what: format!("expected `{lit}`, found `{t}`"),
            })
        }
    }

    /// Parses an integer token.
    pub fn int(&mut self, what: &str) -> Result<usize, PersistError> {
        let t = self.tok(what)?;
        t.parse().map_err(|_| PersistError::Corrupt {
            what: format!("{what} is not an integer: `{t}`"),
        })
    }

    /// Parses an integer token bounded by [`MAX_COUNT`] (for allocations).
    pub fn count(&mut self, what: &str) -> Result<usize, PersistError> {
        let n = self.int(what)?;
        if n > MAX_COUNT {
            return Err(PersistError::Corrupt {
                what: format!("{what} {n} exceeds the format bound {MAX_COUNT}"),
            });
        }
        Ok(n)
    }

    /// Parses a float token (16 hex digits of the IEEE-754 bit pattern).
    pub fn float(&mut self, what: &str) -> Result<f64, PersistError> {
        let t = self.tok(what)?;
        if t.len() != 16 {
            return Err(PersistError::Corrupt {
                what: format!("{what} is not a 16-digit hex float: `{t}`"),
            });
        }
        u64::from_str_radix(t, 16)
            .map(f64::from_bits)
            .map_err(|_| PersistError::Corrupt {
                what: format!("{what} is not a 16-digit hex float: `{t}`"),
            })
    }

    /// Asserts the document is fully consumed (drift / trailing-garbage
    /// detection).
    fn finish(&mut self) -> Result<(), PersistError> {
        match self.toks.next() {
            None => Ok(()),
            Some(t) => Err(PersistError::Corrupt {
                what: format!("trailing data starting at `{t}`"),
            }),
        }
    }
}

/// A model family with a stable on-disk payload.
///
/// Implementations write/read only their payload; [`encode`] and [`decode`]
/// add the `napel-ml-model v1 <kind>` envelope around it.
pub trait Persist: Sized {
    /// Stable kind token identifying this family in a document.
    const KIND: &'static str;

    /// Writes the payload (everything after the kind token).
    fn write_payload(&self, w: &mut Writer);

    /// Reads the payload, validating structural invariants.
    ///
    /// # Errors
    ///
    /// [`PersistError::Corrupt`] on any structural violation.
    fn read_payload(r: &mut Reader) -> Result<Self, PersistError>;
}

/// Serializes a model as a complete versioned document.
pub fn encode<P: Persist>(model: &P) -> String {
    let mut w = Writer::new();
    w.tok(FORMAT);
    w.tok(&format!("v{VERSION}"));
    w.tok(P::KIND);
    model.write_payload(&mut w);
    w.finish()
}

fn read_header(r: &mut Reader) -> Result<(), PersistError> {
    let marker = r.tok("format marker")?;
    if marker != FORMAT {
        return Err(PersistError::Version {
            found: marker.to_string(),
        });
    }
    let version = r.tok("format version")?;
    if version != format!("v{VERSION}") {
        return Err(PersistError::Version {
            found: version.to_string(),
        });
    }
    Ok(())
}

fn expect_kind(r: &mut Reader, expected: &'static str) -> Result<(), PersistError> {
    let kind = r.tok("model kind")?;
    if kind == expected {
        Ok(())
    } else {
        Err(PersistError::KindMismatch {
            expected,
            found: kind.to_string(),
        })
    }
}

/// Deserializes a model of a statically known family.
///
/// # Errors
///
/// [`PersistError::Version`] on a foreign or newer document,
/// [`PersistError::KindMismatch`] if the document holds another family, and
/// [`PersistError::Corrupt`] on structural damage (including trailing data).
pub fn decode<P: Persist>(text: &str) -> Result<P, PersistError> {
    let mut r = Reader::new(text);
    read_header(&mut r)?;
    expect_kind(&mut r, P::KIND)?;
    let model = P::read_payload(&mut r)?;
    r.finish()?;
    Ok(model)
}

/// A fitted model that can be served behind a uniform, object-safe
/// interface: predict, introspect, re-serialize.
///
/// This is the inference layer's currency — `Box<dyn Predictor>` is what a
/// loaded artifact hands back when the caller does not (or cannot) name the
/// concrete family at compile time.
pub trait Predictor: Regressor + fmt::Debug {
    /// Stable kind label, e.g. `forest` or `log(forest)`.
    fn model_kind(&self) -> String;

    /// Input dimensionality the model was fitted on.
    fn num_features(&self) -> usize;

    /// Serializes the model as a complete versioned document
    /// (round-trips through [`decode`] / [`decode_any`]).
    fn encode_model(&self) -> String;
}

macro_rules! impl_predictor {
    ($ty:ty) => {
        impl Predictor for $ty {
            fn model_kind(&self) -> String {
                <$ty as Persist>::KIND.to_string()
            }

            fn num_features(&self) -> usize {
                // Inherent accessor, not a recursive trait call.
                <$ty>::num_features(self)
            }

            fn encode_model(&self) -> String {
                encode(self)
            }
        }
    };
}

impl_predictor!(DecisionTree);
impl_predictor!(RandomForest);
impl_predictor!(Ridge);
impl_predictor!(Mlp);
impl_predictor!(ModelTree);
impl_predictor!(WeightedEnsemble);

impl<M: Predictor + Persist> Predictor for LogModel<M> {
    fn model_kind(&self) -> String {
        format!("log({})", self.inner().model_kind())
    }

    fn num_features(&self) -> usize {
        self.inner().num_features()
    }

    fn encode_model(&self) -> String {
        encode(self)
    }
}

impl Predictor for Box<dyn Predictor> {
    fn model_kind(&self) -> String {
        (**self).model_kind()
    }

    fn num_features(&self) -> usize {
        (**self).num_features()
    }

    fn encode_model(&self) -> String {
        (**self).encode_model()
    }
}

impl Predictor for Box<dyn Predictor + Send + Sync> {
    fn model_kind(&self) -> String {
        (**self).model_kind()
    }

    fn num_features(&self) -> usize {
        (**self).num_features()
    }

    fn encode_model(&self) -> String {
        (**self).encode_model()
    }
}

/// Deserializes a model whose family is known only from the document
/// itself, returning it behind the object-safe [`Predictor`] interface.
///
/// # Errors
///
/// As [`decode`], plus [`PersistError::UnknownKind`] for a kind token this
/// build does not implement.
pub fn decode_any(text: &str) -> Result<Box<dyn Predictor + Send + Sync>, PersistError> {
    let mut r = Reader::new(text);
    read_header(&mut r)?;
    let kind = r.tok("model kind")?;
    let model: Box<dyn Predictor + Send + Sync> = match kind {
        DecisionTree::KIND => Box::new(DecisionTree::read_payload(&mut r)?),
        RandomForest::KIND => Box::new(RandomForest::read_payload(&mut r)?),
        Ridge::KIND => Box::new(Ridge::read_payload(&mut r)?),
        Mlp::KIND => Box::new(Mlp::read_payload(&mut r)?),
        ModelTree::KIND => Box::new(ModelTree::read_payload(&mut r)?),
        WeightedEnsemble::KIND => Box::new(WeightedEnsemble::read_payload(&mut r)?),
        "log" => {
            let inner = r.tok("log-wrapped model kind")?;
            match inner {
                DecisionTree::KIND => Box::new(LogModel::new(DecisionTree::read_payload(&mut r)?)),
                RandomForest::KIND => Box::new(LogModel::new(RandomForest::read_payload(&mut r)?)),
                Ridge::KIND => Box::new(LogModel::new(Ridge::read_payload(&mut r)?)),
                Mlp::KIND => Box::new(LogModel::new(Mlp::read_payload(&mut r)?)),
                ModelTree::KIND => Box::new(LogModel::new(ModelTree::read_payload(&mut r)?)),
                WeightedEnsemble::KIND => {
                    Box::new(LogModel::new(WeightedEnsemble::read_payload(&mut r)?))
                }
                // No estimator produces a doubly-wrapped log model; a
                // document claiming one is damaged, not merely foreign.
                "log" => {
                    return Err(PersistError::Corrupt {
                        what: "nested log wrapper".to_string(),
                    })
                }
                other => {
                    return Err(PersistError::UnknownKind {
                        kind: format!("log({other})"),
                    })
                }
            }
        }
        other => {
            return Err(PersistError::UnknownKind {
                kind: other.to_string(),
            })
        }
    };
    r.finish()?;
    Ok(model)
}

impl Persist for Scaler {
    const KIND: &'static str = "scaler";

    fn write_payload(&self, w: &mut Writer) {
        w.int(self.num_features());
        for &(mean, std) in self.moments() {
            w.float(mean);
            w.float(std);
        }
        let (tm, ts) = self.target_moments();
        w.float(tm);
        w.float(ts);
    }

    fn read_payload(r: &mut Reader) -> Result<Self, PersistError> {
        let n = r.count("scaler feature count")?;
        let mut moments = Vec::with_capacity(n);
        for j in 0..n {
            let mean = r.float("feature mean")?;
            let std = r.float("feature std")?;
            if !(mean.is_finite() && std.is_finite() && std > 0.0) {
                return Err(PersistError::Corrupt {
                    what: format!("feature {j} moments ({mean}, {std}) are not usable"),
                });
            }
            moments.push((mean, std));
        }
        let tm = r.float("target mean")?;
        let ts = r.float("target std")?;
        if !(tm.is_finite() && ts.is_finite() && ts > 0.0) {
            return Err(PersistError::Corrupt {
                what: format!("target moments ({tm}, {ts}) are not usable"),
            });
        }
        Ok(Scaler::from_parts(moments, tm, ts))
    }
}

impl Persist for DecisionTree {
    const KIND: &'static str = "tree";

    fn write_payload(&self, w: &mut Writer) {
        w.int(self.num_features());
        w.int(self.num_nodes());
        for node in self.nodes() {
            match node {
                TreeNode::Leaf { value } => {
                    w.tok("l");
                    w.float(*value);
                }
                TreeNode::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    w.tok("s");
                    w.int(*feature);
                    w.float(*threshold);
                    w.int(*left);
                    w.int(*right);
                }
            }
        }
    }

    fn read_payload(r: &mut Reader) -> Result<Self, PersistError> {
        let num_features = r.count("tree feature count")?;
        let num_nodes = r.count("tree node count")?;
        if num_nodes == 0 {
            return Err(PersistError::Corrupt {
                what: "tree has zero nodes".to_string(),
            });
        }
        let mut nodes = Vec::with_capacity(num_nodes);
        for i in 0..num_nodes {
            match r.tok("tree node tag")? {
                "l" => nodes.push(TreeNode::Leaf {
                    value: r.float("leaf value")?,
                }),
                "s" => {
                    let feature = r.int("split feature")?;
                    let threshold = r.float("split threshold")?;
                    let left = r.int("split left child")?;
                    let right = r.int("split right child")?;
                    if feature >= num_features {
                        return Err(PersistError::Corrupt {
                            what: format!("node {i} splits on feature {feature} of {num_features}"),
                        });
                    }
                    // Fitted arenas place children strictly after their
                    // parent; enforcing that here keeps traversal of any
                    // accepted document finite and cycle-free.
                    if left <= i || left >= num_nodes || right <= i || right >= num_nodes {
                        return Err(PersistError::Corrupt {
                            what: format!(
                                "node {i} children ({left}, {right}) escape ({i}, {num_nodes})"
                            ),
                        });
                    }
                    nodes.push(TreeNode::Split {
                        feature,
                        threshold,
                        left,
                        right,
                    });
                }
                t => {
                    return Err(PersistError::Corrupt {
                        what: format!("unknown tree node tag `{t}`"),
                    })
                }
            }
        }
        Ok(DecisionTree::from_parts(nodes, num_features))
    }
}

impl Persist for RandomForest {
    const KIND: &'static str = "forest";

    fn write_payload(&self, w: &mut Writer) {
        w.int(self.num_features());
        w.int(self.num_trees());
        match self.oob_mse() {
            Some(v) => {
                w.tok("oob");
                w.float(v);
            }
            None => w.tok("no-oob"),
        }
        for tree in self.trees() {
            tree.write_payload(w);
        }
    }

    fn read_payload(r: &mut Reader) -> Result<Self, PersistError> {
        let num_features = r.count("forest feature count")?;
        let num_trees = r.count("forest tree count")?;
        if num_trees == 0 {
            return Err(PersistError::Corrupt {
                what: "forest has zero trees".to_string(),
            });
        }
        let oob_mse = match r.tok("forest oob tag")? {
            "oob" => Some(r.float("oob mse")?),
            "no-oob" => None,
            t => {
                return Err(PersistError::Corrupt {
                    what: format!("unknown forest oob tag `{t}`"),
                })
            }
        };
        let mut trees = Vec::with_capacity(num_trees);
        for k in 0..num_trees {
            let tree = DecisionTree::read_payload(r)?;
            if tree.num_features() != num_features {
                return Err(PersistError::Corrupt {
                    what: format!(
                        "tree {k} has {} features, forest has {num_features}",
                        tree.num_features()
                    ),
                });
            }
            trees.push(tree);
        }
        Ok(RandomForest::from_parts(trees, num_features, oob_mse))
    }
}

impl Persist for Ridge {
    const KIND: &'static str = "ridge";

    fn write_payload(&self, w: &mut Writer) {
        self.scaler().write_payload(w);
        let weights = self.raw_weights();
        w.int(weights.len());
        for &v in weights {
            w.float(v);
        }
    }

    fn read_payload(r: &mut Reader) -> Result<Self, PersistError> {
        let scaler = Scaler::read_payload(r)?;
        let k = r.count("ridge weight count")?;
        if k != scaler.num_features() + 1 {
            return Err(PersistError::Corrupt {
                what: format!(
                    "ridge has {k} weights for {} features (+1 intercept expected)",
                    scaler.num_features()
                ),
            });
        }
        let mut weights = Vec::with_capacity(k);
        for _ in 0..k {
            weights.push(r.float("ridge weight")?);
        }
        Ok(Ridge::from_parts(scaler, weights))
    }
}

impl Persist for Mlp {
    const KIND: &'static str = "mlp";

    fn write_payload(&self, w: &mut Writer) {
        let (scaler, net) = self.parts();
        scaler.write_payload(w);
        w.int(net.layers.len());
        for layer in &net.layers {
            w.int(layer.rows);
            w.int(layer.cols);
            for &v in &layer.w {
                w.float(v);
            }
            for &v in &layer.b {
                w.float(v);
            }
        }
    }

    fn read_payload(r: &mut Reader) -> Result<Self, PersistError> {
        let scaler = Scaler::read_payload(r)?;
        let num_layers = r.count("mlp layer count")?;
        if num_layers == 0 {
            return Err(PersistError::Corrupt {
                what: "mlp has zero layers".to_string(),
            });
        }
        let mut layers: Vec<Layer> = Vec::with_capacity(num_layers);
        for l in 0..num_layers {
            let rows = r.count("layer rows")?;
            let cols = r.count("layer cols")?;
            if rows == 0 || cols == 0 {
                return Err(PersistError::Corrupt {
                    what: format!("layer {l} has degenerate shape {rows}x{cols}"),
                });
            }
            let expect_cols = if l == 0 {
                scaler.num_features()
            } else {
                layers[l - 1].rows
            };
            if cols != expect_cols {
                return Err(PersistError::Corrupt {
                    what: format!("layer {l} takes {cols} inputs, {expect_cols} produced"),
                });
            }
            let nw = rows.checked_mul(cols).filter(|&n| n <= MAX_COUNT).ok_or(
                PersistError::Corrupt {
                    what: format!("layer {l} shape {rows}x{cols} exceeds the format bound"),
                },
            )?;
            let mut weights = Vec::with_capacity(nw);
            for _ in 0..nw {
                weights.push(r.float("layer weight")?);
            }
            let mut biases = Vec::with_capacity(rows);
            for _ in 0..rows {
                biases.push(r.float("layer bias")?);
            }
            layers.push(Layer {
                w: weights,
                b: biases,
                rows,
                cols,
            });
        }
        if layers[num_layers - 1].rows != 1 {
            return Err(PersistError::Corrupt {
                what: format!(
                    "output layer produces {} values, regression needs 1",
                    layers[num_layers - 1].rows
                ),
            });
        }
        Ok(Mlp::from_parts(scaler, Network { layers }))
    }
}

impl Persist for ModelTree {
    const KIND: &'static str = "model_tree";

    fn write_payload(&self, w: &mut Writer) {
        w.int(self.num_features());
        w.int(self.nodes().len());
        for node in self.nodes() {
            match node {
                ModelTreeNode::Leaf {
                    model: LeafModel::Linear(ridge),
                } => {
                    w.tok("ll");
                    ridge.write_payload(w);
                }
                ModelTreeNode::Leaf {
                    model: LeafModel::Constant(c),
                } => {
                    w.tok("lc");
                    w.float(*c);
                }
                ModelTreeNode::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    w.tok("s");
                    w.int(*feature);
                    w.float(*threshold);
                    w.int(*left);
                    w.int(*right);
                }
            }
        }
    }

    fn read_payload(r: &mut Reader) -> Result<Self, PersistError> {
        let num_features = r.count("model-tree feature count")?;
        let num_nodes = r.count("model-tree node count")?;
        if num_nodes == 0 {
            return Err(PersistError::Corrupt {
                what: "model tree has zero nodes".to_string(),
            });
        }
        let mut nodes = Vec::with_capacity(num_nodes);
        for i in 0..num_nodes {
            match r.tok("model-tree node tag")? {
                "ll" => {
                    let ridge = Ridge::read_payload(r)?;
                    if ridge.num_features() != num_features {
                        return Err(PersistError::Corrupt {
                            what: format!(
                                "leaf {i} ridge has {} features, tree has {num_features}",
                                ridge.num_features()
                            ),
                        });
                    }
                    nodes.push(ModelTreeNode::Leaf {
                        model: LeafModel::Linear(ridge),
                    });
                }
                "lc" => nodes.push(ModelTreeNode::Leaf {
                    model: LeafModel::Constant(r.float("leaf constant")?),
                }),
                "s" => {
                    let feature = r.int("split feature")?;
                    let threshold = r.float("split threshold")?;
                    let left = r.int("split left child")?;
                    let right = r.int("split right child")?;
                    if feature >= num_features {
                        return Err(PersistError::Corrupt {
                            what: format!("node {i} splits on feature {feature} of {num_features}"),
                        });
                    }
                    if left <= i || left >= num_nodes || right <= i || right >= num_nodes {
                        return Err(PersistError::Corrupt {
                            what: format!(
                                "node {i} children ({left}, {right}) escape ({i}, {num_nodes})"
                            ),
                        });
                    }
                    nodes.push(ModelTreeNode::Split {
                        feature,
                        threshold,
                        left,
                        right,
                    });
                }
                t => {
                    return Err(PersistError::Corrupt {
                        what: format!("unknown model-tree node tag `{t}`"),
                    })
                }
            }
        }
        Ok(ModelTree::from_parts(nodes, num_features))
    }
}

impl Persist for WeightedEnsemble {
    const KIND: &'static str = "ensemble";

    fn write_payload(&self, w: &mut Writer) {
        w.int(self.num_features());
        for weight in self.weights() {
            w.float(weight);
        }
        // Each member payload is prefixed by its own kind token, so a
        // reordered or truncated document fails on the token, not deep
        // inside the wrong member's structure.
        w.tok(RandomForest::KIND);
        self.forest().write_payload(w);
        w.tok(ModelTree::KIND);
        self.model_tree().write_payload(w);
        w.tok(Mlp::KIND);
        self.mlp().write_payload(w);
        w.tok(Ridge::KIND);
        self.ridge().write_payload(w);
    }

    fn read_payload(r: &mut Reader) -> Result<Self, PersistError> {
        let num_features = r.count("ensemble feature count")?;
        let mut weights = [0.0; NUM_MEMBERS];
        for (i, slot) in weights.iter_mut().enumerate() {
            let w = r.float("ensemble weight")?;
            if !w.is_finite() || w <= 0.0 {
                return Err(PersistError::Corrupt {
                    what: format!("ensemble weight {i} ({w}) is not positive and finite"),
                });
            }
            *slot = w;
        }
        r.expect(RandomForest::KIND)?;
        let forest = RandomForest::read_payload(r)?;
        r.expect(ModelTree::KIND)?;
        let model_tree = ModelTree::read_payload(r)?;
        r.expect(Mlp::KIND)?;
        let mlp = Mlp::read_payload(r)?;
        r.expect(Ridge::KIND)?;
        let ridge = Ridge::read_payload(r)?;
        for (name, got) in [
            ("forest", forest.num_features()),
            ("model tree", model_tree.num_features()),
            ("mlp", mlp.num_features()),
            ("ridge", ridge.num_features()),
        ] {
            if got != num_features {
                return Err(PersistError::Corrupt {
                    what: format!("{name} member has {got} features, ensemble has {num_features}"),
                });
            }
        }
        Ok(WeightedEnsemble::from_parts(
            forest,
            model_tree,
            mlp,
            ridge,
            weights,
            num_features,
        ))
    }
}

impl<M: Persist + Regressor> Persist for LogModel<M> {
    const KIND: &'static str = "log";

    fn write_payload(&self, w: &mut Writer) {
        w.tok(M::KIND);
        self.inner().write_payload(w);
    }

    fn read_payload(r: &mut Reader) -> Result<Self, PersistError> {
        expect_kind(r, M::KIND)?;
        Ok(LogModel::new(M::read_payload(r)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Dataset;
    use crate::forest::RandomForestParams;
    use crate::linear::RidgeParams;
    use crate::log_space::LogOf;
    use crate::mlp::MlpParams;
    use crate::model_tree::ModelTreeParams;
    use crate::tree::DecisionTreeParams;
    use crate::Estimator;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn data() -> Dataset {
        let mut b = Dataset::builder(vec!["x".into(), "z".into()]);
        for i in 0..40 {
            let x = i as f64 / 4.0;
            let z = ((i * 5) % 7) as f64;
            b.push_row(vec![x, z], (x * x + z).max(0.1)).unwrap();
        }
        b.build().unwrap()
    }

    fn rng() -> StdRng {
        StdRng::seed_from_u64(2024)
    }

    /// Asserts encode → decode → predict is bit-identical over every row
    /// (and a couple of off-distribution probes), and that re-encoding the
    /// decoded model reproduces the exact same document.
    fn assert_round_trip<M: Persist + Regressor>(m: &M, d: &Dataset) {
        let text = encode(m);
        let back: M = decode(&text).expect("round trip decodes");
        for i in 0..d.len() {
            assert_eq!(
                m.predict_one(d.row(i)).to_bits(),
                back.predict_one(d.row(i)).to_bits(),
                "row {i} prediction drifted"
            );
        }
        for probe in [[-3.0, 0.0], [1e6, -5.0]] {
            assert_eq!(
                m.predict_one(&probe).to_bits(),
                back.predict_one(&probe).to_bits()
            );
        }
        assert_eq!(text, encode(&back), "re-encoding must be deterministic");
    }

    #[test]
    fn tree_round_trip() {
        let d = data();
        let m = DecisionTreeParams::default().fit(&d, &mut rng()).unwrap();
        assert_round_trip(&m, &d);
    }

    #[test]
    fn forest_round_trip_preserves_oob() {
        let d = data();
        let m = RandomForestParams {
            num_trees: 12,
            ..Default::default()
        }
        .fit(&d, &mut rng())
        .unwrap();
        assert_round_trip(&m, &d);
        let back: RandomForest = decode(&encode(&m)).unwrap();
        assert_eq!(back.num_trees(), 12);
        assert_eq!(
            m.oob_mse().unwrap().to_bits(),
            back.oob_mse().unwrap().to_bits()
        );
    }

    #[test]
    fn ridge_round_trip_is_exact() {
        let d = data();
        let m = RidgeParams::default().fit(&d, &mut rng()).unwrap();
        assert_round_trip(&m, &d);
        let back: Ridge = decode(&encode(&m)).unwrap();
        assert_eq!(m, back, "ridge derives PartialEq; decoded value must match");
    }

    #[test]
    fn mlp_round_trip() {
        let d = data();
        let m = MlpParams {
            hidden: vec![6, 4],
            epochs: 40,
            ..Default::default()
        }
        .fit(&d, &mut rng())
        .unwrap();
        assert_round_trip(&m, &d);
    }

    #[test]
    fn model_tree_round_trip() {
        let d = data();
        let m = ModelTreeParams::default().fit(&d, &mut rng()).unwrap();
        assert_round_trip(&m, &d);
    }

    fn quick_ensemble_params() -> crate::ensemble::EnsembleParams {
        crate::ensemble::EnsembleParams {
            forest: RandomForestParams {
                num_trees: 6,
                ..Default::default()
            },
            mlp: MlpParams {
                epochs: 20,
                ..Default::default()
            },
            ..Default::default()
        }
    }

    #[test]
    fn ensemble_round_trip_preserves_weights() {
        let d = data();
        let m = quick_ensemble_params().fit(&d, &mut rng()).unwrap();
        assert_round_trip(&m, &d);
        let back: WeightedEnsemble = decode(&encode(&m)).unwrap();
        for (a, b) in m.weights().iter().zip(back.weights()) {
            assert_eq!(a.to_bits(), b.to_bits(), "weight drifted through persist");
        }
    }

    #[test]
    fn log_wrapped_ensemble_round_trip() {
        let d = data();
        let m = LogOf(quick_ensemble_params()).fit(&d, &mut rng()).unwrap();
        assert_round_trip(&m, &d);
        let any = decode_any(&encode(&m)).unwrap();
        assert_eq!(any.model_kind(), "log(ensemble)");
        assert_eq!(
            any.predict_one(d.row(4)).to_bits(),
            m.predict_one(d.row(4)).to_bits()
        );
        assert_eq!(any.encode_model(), encode(&m));
    }

    #[test]
    fn ensemble_decode_rejects_bad_weights_and_member_order() {
        let d = data();
        let m = quick_ensemble_params().fit(&d, &mut rng()).unwrap();
        let text = encode(&m);
        // Corrupt the first weight into a NaN bit pattern.
        let w0 = format!("{:016x}", m.weights()[0].to_bits());
        let nan = format!("{:016x}", f64::NAN.to_bits());
        let bad = text.replacen(&w0, &nan, 1);
        assert!(matches!(
            decode::<WeightedEnsemble>(&bad).unwrap_err(),
            PersistError::Corrupt { .. }
        ));
        // Swap the first member's kind token: fails on the token itself.
        let bad = text.replacen(" forest ", " mlp ", 1);
        assert!(matches!(
            decode::<WeightedEnsemble>(&bad).unwrap_err(),
            PersistError::Corrupt { .. }
        ));
    }

    #[test]
    fn log_wrapped_round_trip() {
        let d = data();
        let m = LogOf(RandomForestParams {
            num_trees: 8,
            ..Default::default()
        })
        .fit(&d, &mut rng())
        .unwrap();
        assert_round_trip(&m, &d);
        let mt = LogOf(ModelTreeParams::default())
            .fit(&d, &mut rng())
            .unwrap();
        assert_round_trip(&mt, &d);
        let mlp = LogOf(MlpParams {
            epochs: 20,
            ..Default::default()
        })
        .fit(&d, &mut rng())
        .unwrap();
        assert_round_trip(&mlp, &d);
    }

    #[test]
    fn scaler_round_trip_is_exact() {
        let d = data();
        let s = Scaler::fit(&d);
        let back: Scaler = decode(&encode(&s)).unwrap();
        assert_eq!(s, back);
        for i in 0..d.len() {
            let a = s.transform_features(d.row(i));
            let b = back.transform_features(d.row(i));
            for (x, y) in a.iter().zip(&b) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
    }

    #[test]
    fn decode_any_dispatches_on_kind() {
        let d = data();
        let forest = RandomForestParams {
            num_trees: 6,
            ..Default::default()
        }
        .fit(&d, &mut rng())
        .unwrap();
        let any = decode_any(&encode(&forest)).unwrap();
        assert_eq!(any.model_kind(), "forest");
        assert_eq!(any.num_features(), 2);
        assert_eq!(
            any.predict_one(d.row(3)).to_bits(),
            forest.predict_one(d.row(3)).to_bits()
        );

        let log = LogOf(RandomForestParams {
            num_trees: 6,
            ..Default::default()
        })
        .fit(&d, &mut rng())
        .unwrap();
        let any = decode_any(&encode(&log)).unwrap();
        assert_eq!(any.model_kind(), "log(forest)");
        assert_eq!(
            any.predict_one(d.row(3)).to_bits(),
            log.predict_one(d.row(3)).to_bits()
        );
        // decode_any output re-encodes to the same document.
        assert_eq!(any.encode_model(), encode(&log));
    }

    #[test]
    fn version_and_format_are_enforced() {
        let d = data();
        let m = DecisionTreeParams::default().fit(&d, &mut rng()).unwrap();
        let text = encode(&m);
        let newer = text.replacen("v1", "v9", 1);
        assert_eq!(
            decode::<DecisionTree>(&newer).unwrap_err(),
            PersistError::Version {
                found: "v9".to_string()
            }
        );
        assert!(matches!(
            decode::<DecisionTree>("some other file\n").unwrap_err(),
            PersistError::Version { .. }
        ));
        assert!(matches!(
            decode::<DecisionTree>("").unwrap_err(),
            PersistError::Corrupt { .. }
        ));
    }

    #[test]
    fn kind_mismatch_is_typed() {
        let d = data();
        let m = DecisionTreeParams::default().fit(&d, &mut rng()).unwrap();
        let err = decode::<RandomForest>(&encode(&m)).unwrap_err();
        assert_eq!(
            err,
            PersistError::KindMismatch {
                expected: "forest",
                found: "tree".to_string()
            }
        );
    }

    #[test]
    fn unknown_kind_is_typed() {
        let text = format!("{FORMAT} v{VERSION} blob 1 2 3\n");
        assert_eq!(
            decode_any(&text).unwrap_err(),
            PersistError::UnknownKind {
                kind: "blob".to_string()
            }
        );
    }

    #[test]
    fn truncated_and_trailing_documents_are_rejected() {
        let d = data();
        let m = RandomForestParams {
            num_trees: 4,
            ..Default::default()
        }
        .fit(&d, &mut rng())
        .unwrap();
        let text = encode(&m);
        let cut = &text[..text.len() - 20];
        assert!(matches!(
            decode::<RandomForest>(cut).unwrap_err(),
            PersistError::Corrupt { .. }
        ));
        let trailing = format!("{text} deadbeef");
        assert!(matches!(
            decode::<RandomForest>(&trailing).unwrap_err(),
            PersistError::Corrupt { .. }
        ));
    }

    #[test]
    fn cyclic_child_indices_are_rejected() {
        // A split whose child points at itself would loop forever if
        // accepted; the arena invariant (children strictly after parent)
        // must reject it.
        let zero = format!("{:016x}", 0f64.to_bits());
        let text = format!("{FORMAT} v{VERSION} tree 1 2 s 0 {zero} 0 1 l {zero}\n");
        let err = decode::<DecisionTree>(&text).unwrap_err();
        assert!(
            matches!(&err, PersistError::Corrupt { what } if what.contains("children")),
            "{err}"
        );
    }

    #[test]
    fn zero_tree_forest_document_is_rejected() {
        let text = format!("{FORMAT} v{VERSION} forest 2 0 no-oob\n");
        let err = decode::<RandomForest>(&text).unwrap_err();
        assert!(
            matches!(&err, PersistError::Corrupt { what } if what.contains("zero trees")),
            "{err}"
        );
    }

    #[test]
    fn nested_log_wrapper_is_rejected() {
        let text = format!("{FORMAT} v{VERSION} log log forest\n");
        assert!(matches!(
            decode_any(&text).unwrap_err(),
            PersistError::Corrupt { .. }
        ));
    }

    #[test]
    fn huge_count_fails_before_allocating() {
        let text = format!("{FORMAT} v{VERSION} scaler 99999999999\n");
        assert!(matches!(
            decode::<Scaler>(&text).unwrap_err(),
            PersistError::Corrupt { .. }
        ));
    }

    #[test]
    fn error_messages_follow_house_style() {
        // Lowercase start, no trailing period — same contract as MlError.
        for err in [
            PersistError::Version { found: "x".into() },
            PersistError::KindMismatch {
                expected: "forest",
                found: "tree".into(),
            },
            PersistError::UnknownKind { kind: "x".into() },
            PersistError::Corrupt { what: "y".into() },
        ] {
            let msg = err.to_string();
            assert!(msg.chars().next().unwrap().is_lowercase(), "{msg}");
            assert!(!msg.ends_with('.'), "{msg}");
        }
    }
}
