//! From-scratch ensemble machine learning for NAPEL.
//!
//! NAPEL's predictor is a **random forest** regressor (Section 2.5 of the
//! paper); the accuracy analysis (Figure 5) compares it against an
//! **artificial neural network** (Ipek et al.) and a **linear decision
//! tree** / model tree (Guo et al.). The Rust ML ecosystem is thin, so this
//! crate implements all of them from first principles:
//!
//! - [`dataset::Dataset`] — named-feature regression dataset,
//! - [`tree::DecisionTree`] — CART regression tree (variance reduction),
//! - [`forest::RandomForest`] — bagged trees with random feature subsets,
//!   out-of-bag error and permutation importance,
//! - [`mlp::Mlp`] — multilayer perceptron with SGD + momentum,
//! - [`model_tree::ModelTree`] — decision tree with ridge-regression leaves,
//! - [`linear::Ridge`] — ridge regression via normal equations,
//! - [`cv`] — k-fold and leave-one-group-out cross-validation plus grid
//!   hyper-parameter search (the paper's "train + tune" phase),
//! - [`ensemble::WeightedEnsemble`] — adaptive weighted voting over all
//!   four families, with EMA weight learning and a minimum-weight floor,
//! - [`log_space::LogOf`] — log-target wrapper aligning the estimators'
//!   squared-error objective with the paper's relative-error metric,
//! - [`metrics`] — mean relative error (Equation 1 of the paper), MAE,
//!   RMSE, R²,
//! - [`persist`] — deterministic, versioned, bit-exact serialization for
//!   every fitted model plus the object-safe [`Predictor`] trait (the
//!   train-once/predict-many artifact layer).
//!
//! Every estimator is deterministic given a seeded RNG, which the
//! experiment harness relies on for reproducibility.
//!
//! # Example
//!
//! ```
//! use napel_ml::dataset::Dataset;
//! use napel_ml::forest::RandomForestParams;
//! use napel_ml::{Estimator, Regressor};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! // y = x0 + 2*x1, learnable from a handful of samples.
//! let mut data = Dataset::builder(vec!["x0".into(), "x1".into()]);
//! for i in 0..40 {
//!     let (a, b) = ((i % 7) as f64, (i % 5) as f64);
//!     data.push_row(vec![a, b], a + 2.0 * b)?;
//! }
//! let data = data.build()?;
//! let mut rng = StdRng::seed_from_u64(7);
//! let model = RandomForestParams::default().fit(&data, &mut rng)?;
//! let pred = model.predict_one(&[3.0, 4.0]);
//! assert!((pred - 11.0).abs() < 2.5);
//! # Ok::<(), napel_ml::MlError>(())
//! ```

pub mod cv;
pub mod dataset;
pub mod ensemble;
mod error;
pub mod forest;
pub mod linalg;
pub mod linear;
pub mod log_space;
pub mod metrics;
pub mod mlp;
pub mod model_tree;
pub mod persist;
pub mod scaler;
pub mod tree;

pub use error::MlError;
pub use persist::{Persist, PersistError, Predictor};

use rand::RngCore;

use dataset::Dataset;

/// A fitted regression model.
pub trait Regressor {
    /// Predicts the target for one feature vector.
    ///
    /// # Panics
    ///
    /// Implementations may panic if `x` has the wrong dimensionality.
    fn predict_one(&self, x: &[f64]) -> f64;

    /// Predicts the targets for every row of `data`.
    fn predict(&self, data: &Dataset) -> Vec<f64> {
        (0..data.len())
            .map(|i| self.predict_one(data.row(i)))
            .collect()
    }

    /// Predicts the targets for a batch of raw feature rows — the
    /// inference-service entry point ([`Dataset`] carries labels; a
    /// server scoring live requests has none). The default loops over
    /// [`Regressor::predict_one`]; implementations with a cheaper batch
    /// path may override.
    ///
    /// # Panics
    ///
    /// Implementations may panic if a row has the wrong dimensionality —
    /// callers serving untrusted rows must validate lengths first.
    fn predict_many(&self, rows: &[Vec<f64>]) -> Vec<f64> {
        rows.iter().map(|x| self.predict_one(x)).collect()
    }
}

impl<R: Regressor + ?Sized> Regressor for Box<R> {
    fn predict_one(&self, x: &[f64]) -> f64 {
        (**self).predict_one(x)
    }
}

/// A hyper-parameter configuration that can fit a model to data.
///
/// Estimator values are cheap, cloneable descriptions (e.g.
/// [`forest::RandomForestParams`]); [`Estimator::fit`] does the work.
pub trait Estimator: Clone {
    /// The fitted model type.
    type Model: Regressor;

    /// Fits a model to `data` using `rng` for any randomized choices.
    ///
    /// # Errors
    ///
    /// Returns [`MlError`] if the dataset is empty or degenerate for this
    /// estimator.
    fn fit(&self, data: &Dataset, rng: &mut dyn RngCore) -> Result<Self::Model, MlError>;

    /// Human-readable description of the hyper-parameters (for tuning logs).
    fn describe(&self) -> String {
        std::any::type_name::<Self>().to_string()
    }
}
