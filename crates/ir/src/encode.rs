//! Compact, lossless trace encoding for bounded-memory campaigns.
//!
//! A materialized [`Inst`] costs 32 bytes; campaigns that pin one trace per
//! DoE point in the [`ProfileCache`](../../napel/core/campaign) therefore
//! scale their resident set with *dynamic instruction count*. This module
//! shrinks that to a few bytes per instruction with a delta/varint scheme
//! tuned to what kernel streams actually look like:
//!
//! - **pc** is a zigzag varint delta against the previous instruction's pc
//!   (loop bodies revisit a handful of small static pcs → 1 byte);
//! - **dst** is usually the next SSA register the
//!   [`Emitter`](crate::Emitter) would allocate — a one-bit flag and zero
//!   bytes when the prediction hits, an explicit varint otherwise;
//! - **srcs** reference recently defined registers, encoded as small
//!   zigzag deltas below the SSA watermark; absent operand slots
//!   ([`NO_REG`]) cost one flag bit for the common no-operand case;
//! - **addr** is a zigzag varint delta against the previous memory
//!   address (strided walks → 1 byte), present only when the instruction
//!   has one;
//! - **size** is elided for the dominant cases (8-byte memory accesses,
//!   0 for compute).
//!
//! The encoder and decoder run the same per-thread state machine
//! (`prev_pc`, `prev_addr`, SSA watermark), so decoding is a pure function
//! of the bytes: round-trips are bit-exact for *arbitrary* [`Inst`]
//! streams, not just emitter-produced ones (property-tested below).
//!
//! [`EncodedTraceSink`] implements [`ThreadedTraceSink`], so a kernel can
//! stream straight into the compact form (typically via a
//! [`TeeSink`](crate::TeeSink) that also feeds the PISA observer), and
//! [`EncodedTrace::thread_iter`] decodes per-thread instruction iterators
//! for the simulator's pull model without ever materializing a
//! [`MultiTrace`](crate::MultiTrace).

use crate::inst::{Inst, Opcode, NO_ADDR, NO_REG};
use crate::trace::{MultiTrace, ThreadedTraceSink, TraceSink};

/// Low 4 bits of the header byte: `Opcode::index()`.
const OP_MASK: u8 = 0x0f;
/// The destination register equals the SSA watermark (encoded implicitly).
const F_DST_SEQ: u8 = 0x10;
/// The instruction carries a memory address (`addr != NO_ADDR`).
const F_HAS_ADDR: u8 = 0x20;
/// The access size is the default for the opcode (8 for memory, 0 else).
const F_DEFAULT_SIZE: u8 = 0x40;
/// At least one source-register slot is populated.
const F_SRCS: u8 = 0x80;

/// Per-thread encoder/decoder state. Both sides advance it identically
/// after every instruction, which is what keeps the stream self-describing.
#[derive(Debug, Clone, Copy, Default)]
struct LaneState {
    prev_pc: u32,
    prev_addr: u64,
    /// The next SSA register an [`Emitter`](crate::Emitter) would define —
    /// the predictor for `dst` and the base for `src` deltas.
    watermark: u32,
}

impl LaneState {
    #[inline]
    fn advance(&mut self, inst: &Inst) {
        self.prev_pc = inst.pc;
        if inst.addr != NO_ADDR {
            self.prev_addr = inst.addr;
        }
        if inst.dst != NO_REG {
            self.watermark = inst.dst.wrapping_add(1);
        }
    }
}

#[inline]
fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

#[inline]
fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

#[inline]
fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let b = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(b);
            return;
        }
        out.push(b | 0x80);
    }
}

/// Reads one LEB128 varint, advancing `pos`. Returns `None` on truncated
/// or over-long (> 10 byte) input.
#[inline]
fn get_varint(bytes: &[u8], pos: &mut usize) -> Option<u64> {
    let mut v = 0u64;
    for shift in (0..64).step_by(7) {
        let b = *bytes.get(*pos)?;
        *pos += 1;
        v |= u64::from(b & 0x7f) << shift;
        if b & 0x80 == 0 {
            return Some(v);
        }
    }
    None
}

/// Default access size implied by `F_DEFAULT_SIZE` for this opcode.
#[inline]
fn default_size(op: Opcode) -> u8 {
    if op.is_mem() {
        8
    } else {
        0
    }
}

/// Encodes `inst` onto `out`, advancing `state`.
fn encode_inst(out: &mut Vec<u8>, state: &mut LaneState, inst: &Inst) {
    let mut header = inst.op.index() as u8 & OP_MASK;
    let dst_seq = inst.dst != NO_REG && inst.dst == state.watermark;
    if dst_seq {
        header |= F_DST_SEQ;
    }
    if inst.addr != NO_ADDR {
        header |= F_HAS_ADDR;
    }
    if inst.size == default_size(inst.op) {
        header |= F_DEFAULT_SIZE;
    }
    let has_srcs = inst.srcs.iter().any(|&s| s != NO_REG);
    if has_srcs {
        header |= F_SRCS;
    }
    out.push(header);

    put_varint(out, zigzag(i64::from(inst.pc) - i64::from(state.prev_pc)));
    if has_srcs {
        for &s in &inst.srcs {
            if s == NO_REG {
                put_varint(out, 0);
            } else {
                // Sources are recent definitions just below the watermark,
                // so the delta is a small non-negative number; zigzag keeps
                // arbitrary (adversarial) registers encodable.
                let delta = i64::from(state.watermark) - i64::from(s);
                put_varint(out, 1 + zigzag(delta));
            }
        }
    }
    if !dst_seq {
        // `NO_REG` (u32::MAX) wraps to 0 → one byte for the common
        // "no destination" case.
        put_varint(out, u64::from(inst.dst.wrapping_add(1)));
    }
    if inst.size != default_size(inst.op) {
        out.push(inst.size);
    }
    if inst.addr != NO_ADDR {
        put_varint(out, zigzag(inst.addr.wrapping_sub(state.prev_addr) as i64));
    }
    state.advance(inst);
}

/// Decodes one instruction, advancing `pos` and `state`. Returns `None`
/// on truncated or malformed input (only reachable on corrupted bytes;
/// encoder output always decodes).
fn decode_inst(bytes: &[u8], pos: &mut usize, state: &mut LaneState) -> Option<Inst> {
    let header = *bytes.get(*pos)?;
    *pos += 1;
    let op = *Opcode::ALL.get(usize::from(header & OP_MASK))?;
    let pc_delta = unzigzag(get_varint(bytes, pos)?);
    let pc = (i64::from(state.prev_pc) + pc_delta) as u32;
    let mut srcs = [NO_REG, NO_REG];
    if header & F_SRCS != 0 {
        for slot in &mut srcs {
            let v = get_varint(bytes, pos)?;
            if v != 0 {
                let delta = unzigzag(v - 1);
                *slot = (i64::from(state.watermark) - delta) as u32;
            }
        }
    }
    let dst = if header & F_DST_SEQ != 0 {
        state.watermark
    } else {
        (get_varint(bytes, pos)? as u32).wrapping_sub(1)
    };
    let size = if header & F_DEFAULT_SIZE != 0 {
        default_size(op)
    } else {
        let b = *bytes.get(*pos)?;
        *pos += 1;
        b
    };
    let addr = if header & F_HAS_ADDR != 0 {
        let delta = unzigzag(get_varint(bytes, pos)?);
        state.prev_addr.wrapping_add(delta as u64)
    } else {
        NO_ADDR
    };
    let inst = Inst {
        pc,
        op,
        size,
        dst,
        srcs,
        addr,
    };
    state.advance(&inst);
    Some(inst)
}

/// One thread's compact stream.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
struct EncodedLane {
    bytes: Vec<u8>,
    insts: usize,
}

/// A losslessly compressed [`MultiTrace`] (see the module docs for the
/// format). Per-thread streams decode independently via
/// [`thread_iter`](EncodedTrace::thread_iter).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EncodedTrace {
    lanes: Vec<EncodedLane>,
}

impl EncodedTrace {
    /// Encodes an existing in-memory trace.
    pub fn from_multi(trace: &MultiTrace) -> Self {
        let mut sink = EncodedTraceSink::new();
        sink.begin(trace.num_threads());
        for (t, lane) in trace.iter().enumerate() {
            for inst in lane.iter() {
                ThreadedTraceSink::record(&mut sink, t, *inst);
            }
        }
        sink.finish()
    }

    /// Number of threads.
    pub fn num_threads(&self) -> usize {
        self.lanes.len()
    }

    /// Total dynamic instructions across all threads.
    pub fn total_insts(&self) -> usize {
        self.lanes.iter().map(|l| l.insts).sum()
    }

    /// Dynamic instructions of thread `t`.
    ///
    /// # Panics
    ///
    /// Panics if `t >= self.num_threads()`.
    pub fn thread_insts(&self, t: usize) -> usize {
        self.lanes[t].insts
    }

    /// Encoded bytes resident in memory (the compressed payload; the
    /// `Vec` headers are negligible).
    pub fn encoded_bytes(&self) -> usize {
        self.lanes.iter().map(|l| l.bytes.len()).sum()
    }

    /// Bytes the same trace would occupy as materialized [`Inst`]s.
    pub fn materialized_bytes(&self) -> usize {
        self.total_insts() * std::mem::size_of::<Inst>()
    }

    /// A decoding iterator over thread `t`'s instructions.
    ///
    /// # Panics
    ///
    /// Panics if `t >= self.num_threads()`.
    pub fn thread_iter(&self, t: usize) -> DecodeIter<'_> {
        let lane = &self.lanes[t];
        DecodeIter {
            bytes: &lane.bytes,
            pos: 0,
            remaining: lane.insts,
            state: LaneState::default(),
        }
    }

    /// Decoding iterators for every thread, in thread order — the shape
    /// `NmcSystem::run_streams` consumes.
    pub fn thread_iters(&self) -> Vec<DecodeIter<'_>> {
        (0..self.num_threads())
            .map(|t| self.thread_iter(t))
            .collect()
    }

    /// Decodes the whole trace back into a [`MultiTrace`] (tests and
    /// explicitly materializing callers only — the point of the format is
    /// not to do this).
    pub fn decode(&self) -> MultiTrace {
        let mut m = MultiTrace::new(self.lanes.len().max(1));
        for t in 0..self.lanes.len() {
            let sink = m.thread_sink(t);
            for inst in self.thread_iter(t) {
                sink.record(inst);
            }
        }
        m
    }
}

/// Iterator created by [`EncodedTrace::thread_iter`]; decodes one
/// instruction per step with O(1) state.
#[derive(Debug, Clone)]
pub struct DecodeIter<'a> {
    bytes: &'a [u8],
    pos: usize,
    remaining: usize,
    state: LaneState,
}

impl Iterator for DecodeIter<'_> {
    type Item = Inst;

    fn next(&mut self) -> Option<Inst> {
        if self.remaining == 0 {
            return None;
        }
        match decode_inst(self.bytes, &mut self.pos, &mut self.state) {
            Some(inst) => {
                self.remaining -= 1;
                Some(inst)
            }
            // Unreachable for encoder-produced bytes; stop rather than
            // panic if the payload was corrupted in memory.
            None => {
                self.remaining = 0;
                None
            }
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }
}

impl ExactSizeIterator for DecodeIter<'_> {}

/// A [`ThreadedTraceSink`] that builds an [`EncodedTrace`] incrementally.
#[derive(Debug, Clone, Default)]
pub struct EncodedTraceSink {
    lanes: Vec<EncodedLane>,
    states: Vec<LaneState>,
}

impl EncodedTraceSink {
    /// Creates an empty sink; [`begin`](ThreadedTraceSink::begin) sizes it.
    pub fn new() -> Self {
        Self::default()
    }

    /// Finishes encoding and returns the compact trace.
    pub fn finish(self) -> EncodedTrace {
        EncodedTrace { lanes: self.lanes }
    }

    /// Total encoded bytes so far.
    pub fn encoded_bytes(&self) -> usize {
        self.lanes.iter().map(|l| l.bytes.len()).sum()
    }
}

impl ThreadedTraceSink for EncodedTraceSink {
    fn begin(&mut self, num_threads: usize) {
        assert!(
            num_threads > 0,
            "a kernel execution has at least one thread"
        );
        self.lanes = vec![EncodedLane::default(); num_threads];
        self.states = vec![LaneState::default(); num_threads];
    }

    #[inline]
    fn record(&mut self, thread: usize, inst: Inst) {
        let lane = &mut self.lanes[thread];
        encode_inst(&mut lane.bytes, &mut self.states[thread], &inst);
        lane.insts += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::emitter::Emitter;

    fn emitter_trace(threads: usize, n: u64) -> MultiTrace {
        let mut t = MultiTrace::new(threads);
        for th in 0..threads {
            let mut e = Emitter::new(t.thread_sink(th));
            let base = (th as u64) << 28;
            for i in 0..n {
                let x = e.load(0, base + 8 * i, 8);
                let y = e.fmul(1, x, x);
                let z = e.fadd(2, x, y);
                e.store(3, base + 0x100_0000 + 8 * i, 8, z);
                e.branch(4);
            }
        }
        t
    }

    #[test]
    fn round_trip_is_bit_exact() {
        let t = emitter_trace(3, 200);
        let enc = EncodedTrace::from_multi(&t);
        assert_eq!(enc.decode(), t);
        assert_eq!(enc.total_insts(), t.total_insts());
        assert_eq!(enc.num_threads(), 3);
    }

    #[test]
    fn thread_iter_matches_lane() {
        let t = emitter_trace(2, 50);
        let enc = EncodedTrace::from_multi(&t);
        for th in 0..2 {
            let decoded: Vec<Inst> = enc.thread_iter(th).collect();
            assert_eq!(decoded, t.thread(th).insts());
            assert_eq!(enc.thread_iter(th).len(), t.thread(th).len());
        }
    }

    #[test]
    fn emitter_streams_compress_below_8_bytes_per_inst() {
        let t = emitter_trace(4, 500);
        let enc = EncodedTrace::from_multi(&t);
        let per_inst = enc.encoded_bytes() as f64 / enc.total_insts() as f64;
        assert!(
            per_inst <= 8.0,
            "encoded {per_inst:.2} bytes/inst, want ≤ 8 (vs {} materialized)",
            std::mem::size_of::<Inst>()
        );
        assert!(enc.encoded_bytes() * 4 <= enc.materialized_bytes());
    }

    #[test]
    fn adversarial_insts_round_trip() {
        // Hand-built instructions that violate every emitter convention:
        // wild registers, register wrap-around, huge pc jumps (forward and
        // back), odd sizes, compute ops with addresses, extreme addresses.
        let weird = [
            Inst {
                pc: u32::MAX,
                op: Opcode::Other,
                size: 255,
                dst: u32::MAX - 1,
                srcs: [0, u32::MAX - 1],
                addr: u64::MAX - 1,
            },
            Inst {
                pc: 0,
                op: Opcode::IntAlu,
                size: 3,
                dst: 0,
                srcs: [NO_REG, 7],
                addr: NO_ADDR,
            },
            Inst {
                pc: 1 << 30,
                op: Opcode::Store,
                size: 0,
                dst: NO_REG,
                srcs: [NO_REG, NO_REG],
                addr: 0,
            },
            Inst {
                pc: 5,
                op: Opcode::Load,
                size: 8,
                dst: 0,
                srcs: [1, 2],
                addr: 1 << 63,
            },
            // Register id wrap: watermark goes 1 after dst 0, then dst
            // u32::MAX, then a src referencing above the watermark.
            Inst {
                pc: 6,
                op: Opcode::Mov,
                size: 0,
                dst: u32::MAX - 2,
                srcs: [NO_REG, NO_REG],
                addr: NO_ADDR,
            },
            Inst {
                pc: 7,
                op: Opcode::FpAdd,
                size: 0,
                dst: 2,
                srcs: [u32::MAX - 2, u32::MAX - 1],
                addr: NO_ADDR,
            },
        ];
        let mut m = MultiTrace::new(1);
        for i in weird {
            m.thread_sink(0).record(i);
        }
        let enc = EncodedTrace::from_multi(&m);
        assert_eq!(enc.decode(), m);
    }

    #[test]
    fn empty_and_unbalanced_lanes_round_trip() {
        let mut m = MultiTrace::new(3);
        m.thread_sink(1)
            .record(Inst::compute(9, Opcode::Branch, NO_REG, [NO_REG, NO_REG]));
        let enc = EncodedTrace::from_multi(&m);
        assert_eq!(enc.decode(), m);
        assert_eq!(enc.thread_iter(0).count(), 0);
        assert_eq!(enc.thread_insts(1), 1);
    }

    #[test]
    fn streaming_sink_equals_from_multi() {
        let t = emitter_trace(2, 100);
        let via_multi = EncodedTrace::from_multi(&t);
        let mut sink = EncodedTraceSink::new();
        sink.begin(t.num_threads());
        for (th, lane) in t.iter().enumerate() {
            for inst in lane.iter() {
                ThreadedTraceSink::record(&mut sink, th, *inst);
            }
        }
        assert_eq!(sink.finish(), via_multi);
    }

    #[test]
    fn truncated_bytes_stop_instead_of_panicking() {
        let t = emitter_trace(1, 20);
        let mut enc = EncodedTrace::from_multi(&t);
        let keep = enc.lanes[0].bytes.len() / 2;
        enc.lanes[0].bytes.truncate(keep);
        let decoded: Vec<Inst> = enc.thread_iter(0).collect();
        assert!(decoded.len() < t.total_insts());
        // Whatever decoded before the truncation point is still exact.
        assert_eq!(decoded[..], t.thread(0).insts()[..decoded.len()]);
    }
}
