//! A minimal Fx-style hasher for the hot per-instruction maps.
//!
//! Trace analysis performs several hash-map operations per dynamic
//! instruction; SipHash (std's default) dominates the profile there. This
//! is the well-known `FxHasher` multiply-rotate scheme (as used by rustc),
//! reimplemented to keep the workspace dependency-free. It is *not* DoS
//! resistant — fine for register IDs and addresses we generate ourselves.

use std::hash::{BuildHasherDefault, Hasher};

/// The Fx multiply-rotate hasher.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.add(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add(u64::from(v));
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add(v as u64);
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// A `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = std::collections::HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_roundtrip() {
        let mut m: FxHashMap<u64, u32> = FxHashMap::default();
        for i in 0..1000u64 {
            m.insert(i * 7919, i as u32);
        }
        for i in 0..1000u64 {
            assert_eq!(m.get(&(i * 7919)), Some(&(i as u32)));
        }
        assert_eq!(m.len(), 1000);
    }

    #[test]
    fn distinct_keys_rarely_collide() {
        use std::hash::BuildHasher;
        let bh = FxBuildHasher::default();
        let hash = |v: u64| bh.hash_one(v);
        let mut seen = std::collections::HashSet::new();
        for i in 0..10_000u64 {
            seen.insert(hash(i));
        }
        assert_eq!(seen.len(), 10_000, "sequential keys must not collide");
    }

    #[test]
    fn set_alias_works() {
        let mut s: FxHashSet<u64> = FxHashSet::default();
        assert!(s.insert(42));
        assert!(!s.insert(42));
    }
}
