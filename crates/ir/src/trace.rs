//! Trace containers and streaming sinks.

use crate::inst::{Inst, Opcode};

/// A consumer of a dynamic instruction stream.
///
/// Workload kernels are written against this trait so that profiles and
/// simulations can be computed either from an in-memory [`Trace`] or fully
/// streaming without materializing the trace. Note that a `&mut T` where
/// `T: TraceSink` is itself a sink, so sinks can be passed by mutable
/// reference.
pub trait TraceSink {
    /// Records one dynamic instruction.
    fn record(&mut self, inst: Inst);
}

impl<T: TraceSink + ?Sized> TraceSink for &mut T {
    #[inline]
    fn record(&mut self, inst: Inst) {
        (**self).record(inst);
    }
}

/// A consumer of a *multi-threaded* dynamic instruction stream.
///
/// Workload kernels generate one instruction stream per software thread.
/// This trait is the streaming counterpart of [`MultiTrace`]: a kernel
/// announces its thread count with [`begin`](ThreadedTraceSink::begin) and
/// then records `(thread, inst)` pairs — thread-major, i.e. thread 0's full
/// stream, then thread 1's, and so on, matching both the kernels' emission
/// order and the per-thread order the PISA profiler analyzes in.
///
/// The [`thread`](ThreadedTraceSink::thread) adapter yields a plain
/// [`TraceSink`] view pinned to one thread, so an
/// [`Emitter`](crate::Emitter) works against any threaded sink unchanged.
pub trait ThreadedTraceSink {
    /// Announces the number of software threads before any instruction is
    /// recorded. Implementations may allocate per-thread state here; the
    /// count includes threads that end up recording nothing.
    fn begin(&mut self, num_threads: usize);

    /// Records one dynamic instruction of thread `thread`.
    fn record(&mut self, thread: usize, inst: Inst);

    /// A [`TraceSink`] view pinned to `thread`, for use with
    /// [`Emitter`](crate::Emitter).
    fn thread(&mut self, thread: usize) -> PerThread<'_, Self> {
        PerThread { sink: self, thread }
    }
}

impl<T: ThreadedTraceSink + ?Sized> ThreadedTraceSink for &mut T {
    #[inline]
    fn begin(&mut self, num_threads: usize) {
        (**self).begin(num_threads);
    }

    #[inline]
    fn record(&mut self, thread: usize, inst: Inst) {
        (**self).record(thread, inst);
    }
}

/// A single-thread [`TraceSink`] view over a [`ThreadedTraceSink`]; created
/// by [`ThreadedTraceSink::thread`].
#[derive(Debug)]
pub struct PerThread<'a, S: ?Sized> {
    sink: &'a mut S,
    thread: usize,
}

impl<S: ThreadedTraceSink + ?Sized> TraceSink for PerThread<'_, S> {
    #[inline]
    fn record(&mut self, inst: Inst) {
        self.sink.record(self.thread, inst);
    }
}

/// An in-memory dynamic instruction trace for one hardware thread.
///
/// # Example
///
/// ```
/// use napel_ir::{Inst, Opcode, Trace, TraceSink};
///
/// let mut t = Trace::new();
/// t.record(Inst::compute(0, Opcode::IntAlu, 1, [napel_ir::NO_REG; 2]));
/// assert_eq!(t.len(), 1);
/// assert_eq!(t.count_op(Opcode::IntAlu), 1);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Trace {
    insts: Vec<Inst>,
}

impl Trace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Trace { insts: Vec::new() }
    }

    /// Creates an empty trace with room for `cap` instructions.
    pub fn with_capacity(cap: usize) -> Self {
        Trace {
            insts: Vec::with_capacity(cap),
        }
    }

    /// Number of dynamic instructions.
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// The instructions as a slice.
    pub fn insts(&self) -> &[Inst] {
        &self.insts
    }

    /// Iterator over the instructions.
    pub fn iter(&self) -> std::slice::Iter<'_, Inst> {
        self.insts.iter()
    }

    /// Number of dynamic instances of `op`.
    pub fn count_op(&self, op: Opcode) -> usize {
        self.insts.iter().filter(|i| i.op == op).count()
    }

    /// Number of memory-accessing instructions.
    pub fn mem_insts(&self) -> usize {
        self.insts.iter().filter(|i| i.op.is_mem()).count()
    }
}

impl TraceSink for Trace {
    #[inline]
    fn record(&mut self, inst: Inst) {
        self.insts.push(inst);
    }
}

impl Extend<Inst> for Trace {
    fn extend<I: IntoIterator<Item = Inst>>(&mut self, iter: I) {
        self.insts.extend(iter);
    }
}

impl FromIterator<Inst> for Trace {
    fn from_iter<I: IntoIterator<Item = Inst>>(iter: I) -> Self {
        Trace {
            insts: iter.into_iter().collect(),
        }
    }
}

impl<'a> IntoIterator for &'a Trace {
    type Item = &'a Inst;
    type IntoIter = std::slice::Iter<'a, Inst>;
    fn into_iter(self) -> Self::IntoIter {
        self.insts.iter()
    }
}

impl IntoIterator for Trace {
    type Item = Inst;
    type IntoIter = std::vec::IntoIter<Inst>;
    fn into_iter(self) -> Self::IntoIter {
        self.insts.into_iter()
    }
}

/// Per-thread traces of one kernel execution.
///
/// The paper's kernels are offloaded with a *threads* input parameter; each
/// software thread maps onto one NMC processing element. `MultiTrace` holds
/// one [`Trace`] per thread plus convenience views over the union stream.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MultiTrace {
    threads: Vec<Trace>,
}

impl MultiTrace {
    /// Creates a multi-trace with `num_threads` empty per-thread traces.
    ///
    /// # Panics
    ///
    /// Panics if `num_threads` is zero.
    pub fn new(num_threads: usize) -> Self {
        assert!(
            num_threads > 0,
            "a kernel execution has at least one thread"
        );
        MultiTrace {
            threads: vec![Trace::new(); num_threads],
        }
    }

    /// Number of threads.
    pub fn num_threads(&self) -> usize {
        self.threads.len()
    }

    /// The trace of thread `t`.
    ///
    /// # Panics
    ///
    /// Panics if `t >= self.num_threads()`.
    pub fn thread(&self, t: usize) -> &Trace {
        &self.threads[t]
    }

    /// Mutable sink for thread `t`, for use with [`Emitter`](crate::Emitter).
    ///
    /// # Panics
    ///
    /// Panics if `t >= self.num_threads()`.
    pub fn thread_sink(&mut self, t: usize) -> &mut Trace {
        &mut self.threads[t]
    }

    /// Iterator over the per-thread traces.
    pub fn iter(&self) -> std::slice::Iter<'_, Trace> {
        self.threads.iter()
    }

    /// Total dynamic instructions across all threads.
    pub fn total_insts(&self) -> usize {
        self.threads.iter().map(Trace::len).sum()
    }

    /// Iterator over the union stream: threads interleaved round-robin, one
    /// instruction at a time, in thread order. This is the deterministic
    /// merged view the PISA profiler analyzes.
    pub fn interleaved(&self) -> Interleaved<'_> {
        Interleaved {
            threads: &self.threads,
            cursor: vec![0; self.threads.len()],
            t: 0,
            remaining: self.total_insts(),
        }
    }
}

impl<'a> IntoIterator for &'a MultiTrace {
    type Item = &'a Trace;
    type IntoIter = std::slice::Iter<'a, Trace>;
    fn into_iter(self) -> Self::IntoIter {
        self.threads.iter()
    }
}

impl ThreadedTraceSink for MultiTrace {
    /// Resets the container to `num_threads` empty lanes, so a
    /// `MultiTrace::default()` can be handed to a streaming kernel and
    /// collect its full trace.
    ///
    /// # Panics
    ///
    /// Panics if `num_threads` is zero (same contract as
    /// [`MultiTrace::new`]).
    fn begin(&mut self, num_threads: usize) {
        assert!(
            num_threads > 0,
            "a kernel execution has at least one thread"
        );
        self.threads = vec![Trace::new(); num_threads];
    }

    #[inline]
    fn record(&mut self, thread: usize, inst: Inst) {
        self.threads[thread].record(inst);
    }
}

/// Iterator created by [`MultiTrace::interleaved`].
#[derive(Debug, Clone)]
pub struct Interleaved<'a> {
    threads: &'a [Trace],
    cursor: Vec<usize>,
    t: usize,
    remaining: usize,
}

impl<'a> Iterator for Interleaved<'a> {
    type Item = &'a Inst;

    fn next(&mut self) -> Option<Self::Item> {
        if self.remaining == 0 {
            return None;
        }
        loop {
            let t = self.t;
            self.t = (self.t + 1) % self.threads.len();
            let c = self.cursor[t];
            if c < self.threads[t].len() {
                self.cursor[t] = c + 1;
                self.remaining -= 1;
                return Some(&self.threads[t].insts()[c]);
            }
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }
}

impl ExactSizeIterator for Interleaved<'_> {}

/// A sink that duplicates every instruction into two downstream sinks.
///
/// Useful to feed the profiler and the simulator from a single kernel
/// execution without materializing the trace.
#[derive(Debug)]
pub struct TeeSink<A, B> {
    first: A,
    second: B,
}

impl<A, B> TeeSink<A, B> {
    /// Creates a tee over two sinks (plain [`TraceSink`]s or
    /// [`ThreadedTraceSink`]s — the tee implements whichever both halves
    /// do).
    pub fn new(first: A, second: B) -> Self {
        TeeSink { first, second }
    }

    /// Consumes the tee and returns the two sinks.
    pub fn into_inner(self) -> (A, B) {
        (self.first, self.second)
    }
}

impl<A: TraceSink, B: TraceSink> TraceSink for TeeSink<A, B> {
    #[inline]
    fn record(&mut self, inst: Inst) {
        self.first.record(inst);
        self.second.record(inst);
    }
}

impl<A: ThreadedTraceSink, B: ThreadedTraceSink> ThreadedTraceSink for TeeSink<A, B> {
    fn begin(&mut self, num_threads: usize) {
        self.first.begin(num_threads);
        self.second.begin(num_threads);
    }

    #[inline]
    fn record(&mut self, thread: usize, inst: Inst) {
        self.first.record(thread, inst);
        self.second.record(thread, inst);
    }
}

/// A sink that only counts instructions (per opcode), discarding the stream.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CountingSink {
    total: u64,
    per_op: [u64; Opcode::ALL.len()],
}

impl CountingSink {
    /// Creates a zeroed counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total instructions observed.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Instructions of opcode `op` observed.
    pub fn count(&self, op: Opcode) -> u64 {
        self.per_op[op.index()]
    }
}

impl TraceSink for CountingSink {
    #[inline]
    fn record(&mut self, inst: Inst) {
        self.total += 1;
        self.per_op[inst.op.index()] += 1;
    }
}

impl ThreadedTraceSink for CountingSink {
    fn begin(&mut self, _num_threads: usize) {}

    #[inline]
    fn record(&mut self, thread: usize, inst: Inst) {
        let _ = thread;
        TraceSink::record(self, inst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::NO_REG;

    fn inst(pc: u32) -> Inst {
        Inst::compute(pc, Opcode::IntAlu, NO_REG, [NO_REG, NO_REG])
    }

    #[test]
    fn trace_records_in_order() {
        let mut t = Trace::new();
        for pc in 0..10 {
            t.record(inst(pc));
        }
        assert_eq!(t.len(), 10);
        assert!(t.iter().enumerate().all(|(i, ins)| ins.pc as usize == i));
    }

    #[test]
    fn multitrace_interleaves_round_robin() {
        let mut m = MultiTrace::new(2);
        m.thread_sink(0).record(inst(0));
        m.thread_sink(0).record(inst(2));
        m.thread_sink(1).record(inst(1));
        let pcs: Vec<u32> = m.interleaved().map(|i| i.pc).collect();
        assert_eq!(pcs, vec![0, 1, 2]);
        assert_eq!(m.interleaved().len(), 3);
    }

    #[test]
    fn interleave_handles_unbalanced_threads() {
        let mut m = MultiTrace::new(3);
        for pc in 0..5 {
            m.thread_sink(0).record(inst(pc));
        }
        m.thread_sink(2).record(inst(100));
        assert_eq!(m.interleaved().count(), 6);
        assert_eq!(m.total_insts(), 6);
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_panics() {
        let _ = MultiTrace::new(0);
    }

    #[test]
    fn tee_duplicates() {
        let mut tee = TeeSink::new(Trace::new(), CountingSink::new());
        tee.record(inst(1));
        tee.record(inst(2));
        let (t, c) = tee.into_inner();
        assert_eq!(t.len(), 2);
        assert_eq!(c.total(), 2);
        assert_eq!(c.count(Opcode::IntAlu), 2);
        assert_eq!(c.count(Opcode::FpMul), 0);
    }

    #[test]
    fn trace_from_iterator() {
        let t: Trace = (0..4).map(inst).collect();
        assert_eq!(t.len(), 4);
        let mut t2 = Trace::new();
        t2.extend(t.clone());
        assert_eq!(t2, t);
    }

    #[test]
    fn sink_via_mut_ref() {
        fn feed<S: TraceSink>(mut s: S) {
            s.record(inst(0));
        }
        let mut t = Trace::new();
        feed(&mut t);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn threaded_sink_collects_into_multitrace() {
        fn kernel<S: ThreadedTraceSink + ?Sized>(sink: &mut S) {
            sink.begin(2);
            for t in 0..2 {
                let mut lane = sink.thread(t);
                lane.record(inst(t as u32));
                lane.record(inst(10 + t as u32));
            }
        }
        let mut m = MultiTrace::default();
        kernel(&mut m);
        assert_eq!(m.num_threads(), 2);
        assert_eq!(m.thread(0).insts()[1].pc, 10);
        assert_eq!(m.thread(1).insts()[0].pc, 1);

        // The same kernel against a counting sink and a threaded tee.
        let mut tee = TeeSink::new(MultiTrace::default(), CountingSink::new());
        kernel(&mut tee);
        let (m2, c) = tee.into_inner();
        assert_eq!(m2, m);
        assert_eq!(c.total(), 4);
    }

    #[test]
    fn threaded_begin_resets_lanes() {
        let mut m = MultiTrace::new(1);
        ThreadedTraceSink::record(&mut m, 0, inst(0));
        m.begin(3);
        assert_eq!(m.num_threads(), 3);
        assert_eq!(m.total_insts(), 0, "begin discards stale lanes");
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn threaded_begin_zero_panics() {
        MultiTrace::default().begin(0);
    }
}
