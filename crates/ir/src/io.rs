//! Binary serialization of traces.
//!
//! Trace generation is deterministic but not free; a real trace-driven
//! toolchain (like the paper's Pin → Ramulator flow) dumps traces once and
//! replays them many times. The format is a little-endian stream of
//! fixed-size records with a small header:
//!
//! ```text
//! magic  "NAPLTRC1"                      8 bytes
//! num_threads                            u32
//! per thread: count (u64), then count records of
//!   pc (u32) op (u8) size (u8) dst (u32) src0 (u32) src1 (u32) addr (u64)
//! ```

use std::io::{self, Read, Write};

use crate::inst::{Inst, Opcode};
use crate::trace::{MultiTrace, TraceSink};

const MAGIC: &[u8; 8] = b"NAPLTRC1";

/// Writes a multi-trace to `w`.
///
/// # Errors
///
/// Propagates I/O errors from the writer. Note that a `&mut W` is itself a
/// writer, so callers can pass `&mut file`.
pub fn write_trace<W: Write>(trace: &MultiTrace, mut w: W) -> io::Result<()> {
    w.write_all(MAGIC)?;
    w.write_all(&(trace.num_threads() as u32).to_le_bytes())?;
    for t in trace.iter() {
        w.write_all(&(t.len() as u64).to_le_bytes())?;
        for i in t.iter() {
            w.write_all(&i.pc.to_le_bytes())?;
            w.write_all(&[i.op as u8, i.size])?;
            w.write_all(&i.dst.to_le_bytes())?;
            w.write_all(&i.srcs[0].to_le_bytes())?;
            w.write_all(&i.srcs[1].to_le_bytes())?;
            w.write_all(&i.addr.to_le_bytes())?;
        }
    }
    Ok(())
}

/// Reads a multi-trace from `r`.
///
/// # Errors
///
/// Returns `InvalidData` on a bad magic number, an unknown opcode, or a
/// truncated stream; propagates underlying I/O errors.
pub fn read_trace<R: Read>(mut r: R) -> io::Result<MultiTrace> {
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "not a NAPEL trace file",
        ));
    }
    let threads = read_u32(&mut r)? as usize;
    if threads == 0 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "trace has zero threads",
        ));
    }
    let mut trace = MultiTrace::new(threads);
    for t in 0..threads {
        let count = read_u64(&mut r)?;
        let sink = trace.thread_sink(t);
        for _ in 0..count {
            let pc = read_u32(&mut r)?;
            let mut two = [0u8; 2];
            r.read_exact(&mut two)?;
            let op = opcode_from(two[0])?;
            let size = two[1];
            let dst = read_u32(&mut r)?;
            let src0 = read_u32(&mut r)?;
            let src1 = read_u32(&mut r)?;
            let addr = read_u64(&mut r)?;
            sink.record(Inst {
                pc,
                op,
                size,
                dst,
                srcs: [src0, src1],
                addr,
            });
        }
    }
    Ok(trace)
}

fn read_u32<R: Read>(r: &mut R) -> io::Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

fn read_u64<R: Read>(r: &mut R) -> io::Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

fn opcode_from(byte: u8) -> io::Result<Opcode> {
    Opcode::ALL
        .into_iter()
        .find(|&op| op as u8 == byte)
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, format!("bad opcode {byte}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Emitter;

    fn sample_trace() -> MultiTrace {
        let mut t = MultiTrace::new(3);
        for th in 0..3 {
            let mut e = Emitter::new(t.thread_sink(th));
            for i in 0..50u64 {
                let a = e.load(0, 0x1000 + 8 * i, 8);
                let b = e.fmul(1, a, a);
                e.store(2, 0x2000 + 8 * i, 8, b);
                e.branch(3);
            }
        }
        t
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let original = sample_trace();
        let mut buf = Vec::new();
        write_trace(&original, &mut buf).unwrap();
        let restored = read_trace(buf.as_slice()).unwrap();
        assert_eq!(original, restored);
    }

    #[test]
    fn bad_magic_is_rejected() {
        let err = read_trace(&b"NOTATRACE........."[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn truncated_stream_is_rejected() {
        let mut buf = Vec::new();
        write_trace(&sample_trace(), &mut buf).unwrap();
        buf.truncate(buf.len() - 3);
        assert!(read_trace(buf.as_slice()).is_err());
    }

    #[test]
    fn bad_opcode_is_rejected() {
        let mut buf = Vec::new();
        write_trace(&sample_trace(), &mut buf).unwrap();
        // Corrupt the first record's opcode byte:
        // magic(8) + threads(4) + count(8) + pc(4) = offset 24.
        buf[24] = 0xFF;
        let err = read_trace(buf.as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn empty_threads_are_preserved() {
        let mut t = MultiTrace::new(2);
        let mut e = Emitter::new(t.thread_sink(0));
        e.imm(0);
        drop(e);
        // Thread 1 stays empty.
        let mut buf = Vec::new();
        write_trace(&t, &mut buf).unwrap();
        let restored = read_trace(buf.as_slice()).unwrap();
        assert_eq!(restored.num_threads(), 2);
        assert_eq!(restored.thread(0).len(), 1);
        assert_eq!(restored.thread(1).len(), 0);
    }

    #[test]
    fn record_size_is_stable() {
        // Header 8+4, per-thread 8 + n*26 (pc 4, op 1, size 1, dst 4,
        // srcs 2x4, addr 8).
        let mut t = MultiTrace::new(1);
        let mut e = Emitter::new(t.thread_sink(0));
        e.imm(0);
        e.imm(1);
        drop(e);
        let mut buf = Vec::new();
        write_trace(&t, &mut buf).unwrap();
        assert_eq!(buf.len(), 8 + 4 + 8 + 2 * 26);
    }
}
