//! The dynamic instruction record and its opcode taxonomy.

use std::fmt;

/// Virtual register identifier produced by the [`Emitter`](crate::Emitter).
///
/// Registers are in static single assignment form: every value-producing
/// instruction defines a fresh register. This is what an LLVM-IR-level
/// instrumentation pass observes, and it makes ideal-machine ILP analysis a
/// pure dataflow computation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Reg(pub u32);

/// Sentinel meaning "no register operand in this slot".
pub const NO_REG: u32 = u32::MAX;

/// Sentinel meaning "this instruction has no memory address".
pub const NO_ADDR: u64 = u64::MAX;

/// Dynamic opcode, at the granularity the PISA profile distinguishes.
///
/// The taxonomy follows Table 1 of the paper ("fraction of instruction types:
/// integer, floating point, memory read, memory write, etc."), refined enough
/// for the simulator to assign distinct latencies and energies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum Opcode {
    /// Integer add/subtract/compare-style single-cycle ALU operation.
    IntAlu,
    /// Integer multiply.
    IntMul,
    /// Integer divide / remainder.
    IntDiv,
    /// Floating-point add/subtract.
    FpAdd,
    /// Floating-point multiply.
    FpMul,
    /// Floating-point divide / sqrt.
    FpDiv,
    /// Memory read.
    Load,
    /// Memory write.
    Store,
    /// Conditional or unconditional control transfer.
    Branch,
    /// Register-to-register move / constant materialization.
    Mov,
    /// Address-generation arithmetic (base + index*scale).
    AddrCalc,
    /// Anything else (fences, calls, ...). Rare in the evaluated kernels.
    Other,
}

impl Opcode {
    /// All opcodes, in `repr` order. Useful for building per-opcode feature
    /// vectors with a stable layout.
    pub const ALL: [Opcode; 12] = [
        Opcode::IntAlu,
        Opcode::IntMul,
        Opcode::IntDiv,
        Opcode::FpAdd,
        Opcode::FpMul,
        Opcode::FpDiv,
        Opcode::Load,
        Opcode::Store,
        Opcode::Branch,
        Opcode::Mov,
        Opcode::AddrCalc,
        Opcode::Other,
    ];

    /// Stable index of this opcode in [`Opcode::ALL`].
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    /// Coarse class used for the instruction-mix features.
    #[inline]
    pub fn class(self) -> OpClass {
        match self {
            Opcode::IntAlu | Opcode::IntMul | Opcode::IntDiv | Opcode::AddrCalc => OpClass::Int,
            Opcode::FpAdd | Opcode::FpMul | Opcode::FpDiv => OpClass::Fp,
            Opcode::Load => OpClass::MemRead,
            Opcode::Store => OpClass::MemWrite,
            Opcode::Branch => OpClass::Control,
            Opcode::Mov | Opcode::Other => OpClass::Other,
        }
    }

    /// Whether the opcode reads or writes memory.
    #[inline]
    pub fn is_mem(self) -> bool {
        matches!(self, Opcode::Load | Opcode::Store)
    }

    /// Short lowercase mnemonic, stable across releases (used in feature
    /// names and reports).
    pub fn mnemonic(self) -> &'static str {
        match self {
            Opcode::IntAlu => "ialu",
            Opcode::IntMul => "imul",
            Opcode::IntDiv => "idiv",
            Opcode::FpAdd => "fadd",
            Opcode::FpMul => "fmul",
            Opcode::FpDiv => "fdiv",
            Opcode::Load => "load",
            Opcode::Store => "store",
            Opcode::Branch => "branch",
            Opcode::Mov => "mov",
            Opcode::AddrCalc => "addr",
            Opcode::Other => "other",
        }
    }
}

impl fmt::Display for Opcode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// Coarse instruction class, matching the paper's instruction-mix taxonomy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum OpClass {
    /// Integer arithmetic (including address generation).
    Int,
    /// Floating-point arithmetic.
    Fp,
    /// Memory reads.
    MemRead,
    /// Memory writes.
    MemWrite,
    /// Control flow.
    Control,
    /// Moves and miscellanea.
    Other,
}

impl OpClass {
    /// All classes in a stable order.
    pub const ALL: [OpClass; 6] = [
        OpClass::Int,
        OpClass::Fp,
        OpClass::MemRead,
        OpClass::MemWrite,
        OpClass::Control,
        OpClass::Other,
    ];

    /// Stable index of this class in [`OpClass::ALL`].
    #[inline]
    pub fn index(self) -> usize {
        match self {
            OpClass::Int => 0,
            OpClass::Fp => 1,
            OpClass::MemRead => 2,
            OpClass::MemWrite => 3,
            OpClass::Control => 4,
            OpClass::Other => 5,
        }
    }

    /// Short lowercase label, stable across releases.
    pub fn label(self) -> &'static str {
        match self {
            OpClass::Int => "int",
            OpClass::Fp => "fp",
            OpClass::MemRead => "mem_read",
            OpClass::MemWrite => "mem_write",
            OpClass::Control => "control",
            OpClass::Other => "other",
        }
    }
}

impl fmt::Display for OpClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One dynamic instruction, as observed by an IR-level instrumentation pass.
///
/// Fields use compact sentinel encodings ([`NO_REG`], [`NO_ADDR`]) so the
/// record stays 32 bytes and traces of millions of instructions are cheap.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Inst {
    /// Static instruction identifier (analogous to a program counter). Two
    /// dynamic instances of the same source-level operation share a `pc`,
    /// which is what instruction-reuse-distance analysis keys on.
    pub pc: u32,
    /// Opcode.
    pub op: Opcode,
    /// Access size in bytes for loads/stores; 0 otherwise.
    pub size: u8,
    /// Destination virtual register, or [`NO_REG`].
    pub dst: u32,
    /// Source virtual registers; unused slots hold [`NO_REG`].
    pub srcs: [u32; 2],
    /// Byte address for loads/stores, or [`NO_ADDR`].
    pub addr: u64,
}

impl Inst {
    /// Creates a non-memory instruction.
    #[inline]
    pub fn compute(pc: u32, op: Opcode, dst: u32, srcs: [u32; 2]) -> Self {
        debug_assert!(!op.is_mem());
        Inst {
            pc,
            op,
            size: 0,
            dst,
            srcs,
            addr: NO_ADDR,
        }
    }

    /// Creates a load of `size` bytes at `addr` defining `dst`.
    #[inline]
    pub fn load(pc: u32, addr: u64, size: u8, dst: u32, addr_src: u32) -> Self {
        Inst {
            pc,
            op: Opcode::Load,
            size,
            dst,
            srcs: [addr_src, NO_REG],
            addr,
        }
    }

    /// Creates a store of `size` bytes of register `val` to `addr`.
    #[inline]
    pub fn store(pc: u32, addr: u64, size: u8, val: u32, addr_src: u32) -> Self {
        Inst {
            pc,
            op: Opcode::Store,
            size,
            dst: NO_REG,
            srcs: [val, addr_src],
            addr,
        }
    }

    /// Destination register, if any.
    #[inline]
    pub fn dst_reg(&self) -> Option<Reg> {
        (self.dst != NO_REG).then_some(Reg(self.dst))
    }

    /// Iterator over the defined source registers.
    #[inline]
    pub fn src_regs(&self) -> impl Iterator<Item = Reg> + '_ {
        self.srcs.iter().filter(|&&r| r != NO_REG).map(|&r| Reg(r))
    }

    /// Number of register operands read by this instruction.
    #[inline]
    pub fn num_src_regs(&self) -> usize {
        self.srcs.iter().filter(|&&r| r != NO_REG).count()
    }

    /// Memory address, if this is a load or store.
    #[inline]
    pub fn mem_addr(&self) -> Option<u64> {
        (self.addr != NO_ADDR).then_some(self.addr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn opcode_all_matches_indices() {
        for (i, op) in Opcode::ALL.iter().enumerate() {
            assert_eq!(op.index(), i, "opcode {op} out of order in ALL");
        }
    }

    #[test]
    fn opclass_all_matches_indices() {
        for (i, c) in OpClass::ALL.iter().enumerate() {
            assert_eq!(c.index(), i, "class {c} out of order in ALL");
        }
    }

    #[test]
    fn opcode_classes_are_consistent() {
        assert_eq!(Opcode::Load.class(), OpClass::MemRead);
        assert_eq!(Opcode::Store.class(), OpClass::MemWrite);
        assert_eq!(Opcode::FpMul.class(), OpClass::Fp);
        assert_eq!(Opcode::AddrCalc.class(), OpClass::Int);
        assert_eq!(Opcode::Branch.class(), OpClass::Control);
        assert!(Opcode::Load.is_mem());
        assert!(Opcode::Store.is_mem());
        assert!(!Opcode::FpAdd.is_mem());
    }

    #[test]
    fn inst_is_compact() {
        assert!(std::mem::size_of::<Inst>() <= 32, "Inst grew past 32 bytes");
    }

    #[test]
    fn compute_inst_has_no_addr() {
        let i = Inst::compute(7, Opcode::FpAdd, 3, [1, 2]);
        assert_eq!(i.mem_addr(), None);
        assert_eq!(i.dst_reg(), Some(Reg(3)));
        assert_eq!(i.num_src_regs(), 2);
    }

    #[test]
    fn load_store_roundtrip() {
        let l = Inst::load(1, 0xdead_beef, 8, 5, NO_REG);
        assert_eq!(l.mem_addr(), Some(0xdead_beef));
        assert_eq!(l.dst_reg(), Some(Reg(5)));
        assert_eq!(l.num_src_regs(), 0);

        let s = Inst::store(2, 0x42, 4, 5, 6);
        assert_eq!(s.mem_addr(), Some(0x42));
        assert_eq!(s.dst_reg(), None);
        assert_eq!(s.num_src_regs(), 2);
    }

    #[test]
    fn mnemonics_are_unique() {
        let mut seen = std::collections::HashSet::new();
        for op in Opcode::ALL {
            assert!(
                seen.insert(op.mnemonic()),
                "duplicate mnemonic {}",
                op.mnemonic()
            );
        }
    }
}
