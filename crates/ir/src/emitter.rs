//! Ergonomic construction of well-formed dynamic instruction streams.

use crate::inst::{Inst, Opcode, Reg, NO_REG};
use crate::trace::TraceSink;

/// Builds a dynamic instruction stream with SSA register management.
///
/// Workload kernels call value-producing methods ([`load`](Emitter::load),
/// [`fmul`](Emitter::fmul), ...) which allocate fresh virtual registers, and
/// value-consuming methods ([`store`](Emitter::store),
/// [`branch_on`](Emitter::branch_on)). Each call site passes a small static
/// `pc` identifying the source-level operation; dynamic instances of the same
/// operation share that `pc`, which is what instruction-reuse analysis keys
/// on.
///
/// Address-generation overhead: real compiled loop nests spend instructions
/// on index arithmetic. [`Emitter::load`]/[`Emitter::store`] model a folded
/// addressing mode (no extra instruction); kernels emit explicit
/// [`Emitter::addr_calc`] / [`Emitter::iadd`] operations where a compiler
/// would.
///
/// # Example
///
/// ```
/// use napel_ir::{Emitter, Trace};
///
/// let mut t = Trace::new();
/// let mut e = Emitter::new(&mut t);
/// let x = e.load(0, 0x100, 8);
/// let y = e.fmul(1, x, x);
/// e.store(2, 0x108, 8, y);
/// assert_eq!(t.len(), 3);
/// ```
#[derive(Debug)]
pub struct Emitter<S> {
    sink: S,
    next_reg: u32,
    emitted: u64,
}

impl<S: TraceSink> Emitter<S> {
    /// Creates an emitter writing to `sink`.
    pub fn new(sink: S) -> Self {
        Emitter {
            sink,
            next_reg: 0,
            emitted: 0,
        }
    }

    /// Consumes the emitter, returning the sink.
    pub fn into_inner(self) -> S {
        self.sink
    }

    /// Number of instructions emitted so far.
    pub fn emitted(&self) -> u64 {
        self.emitted
    }

    #[inline]
    fn fresh(&mut self) -> u32 {
        let r = self.next_reg;
        // Wrapping keeps very long traces well-formed; reuse of register ids
        // after 2^32 values is harmless for the dataflow analyses (they track
        // the *latest* definition).
        self.next_reg = self.next_reg.wrapping_add(1);
        r
    }

    #[inline]
    fn push(&mut self, inst: Inst) {
        self.emitted += 1;
        self.sink.record(inst);
    }

    #[inline]
    fn binop(&mut self, pc: u32, op: Opcode, a: Reg, b: Reg) -> Reg {
        let d = self.fresh();
        self.push(Inst::compute(pc, op, d, [a.0, b.0]));
        Reg(d)
    }

    #[inline]
    fn unop(&mut self, pc: u32, op: Opcode, a: Reg) -> Reg {
        let d = self.fresh();
        self.push(Inst::compute(pc, op, d, [a.0, NO_REG]));
        Reg(d)
    }

    /// Materializes a constant / loop-invariant value.
    #[inline]
    pub fn imm(&mut self, pc: u32) -> Reg {
        let d = self.fresh();
        self.push(Inst::compute(pc, Opcode::Mov, d, [NO_REG, NO_REG]));
        Reg(d)
    }

    /// Emits a load of `size` bytes at `addr`, returning the loaded value.
    #[inline]
    pub fn load(&mut self, pc: u32, addr: u64, size: u8) -> Reg {
        let d = self.fresh();
        self.push(Inst::load(pc, addr, size, d, NO_REG));
        Reg(d)
    }

    /// Emits a load whose address depends on `idx` (e.g. indirect access).
    #[inline]
    pub fn load_indexed(&mut self, pc: u32, addr: u64, size: u8, idx: Reg) -> Reg {
        let d = self.fresh();
        self.push(Inst::load(pc, addr, size, d, idx.0));
        Reg(d)
    }

    /// Emits a store of `val` (`size` bytes) to `addr`.
    #[inline]
    pub fn store(&mut self, pc: u32, addr: u64, size: u8, val: Reg) {
        self.push(Inst::store(pc, addr, size, val.0, NO_REG));
    }

    /// Integer add/subtract/logic.
    #[inline]
    pub fn iadd(&mut self, pc: u32, a: Reg, b: Reg) -> Reg {
        self.binop(pc, Opcode::IntAlu, a, b)
    }

    /// Integer add with a single register operand (reg + immediate).
    #[inline]
    pub fn iadd_imm(&mut self, pc: u32, a: Reg) -> Reg {
        self.unop(pc, Opcode::IntAlu, a)
    }

    /// Integer multiply.
    #[inline]
    pub fn imul(&mut self, pc: u32, a: Reg, b: Reg) -> Reg {
        self.binop(pc, Opcode::IntMul, a, b)
    }

    /// Integer divide.
    #[inline]
    pub fn idiv(&mut self, pc: u32, a: Reg, b: Reg) -> Reg {
        self.binop(pc, Opcode::IntDiv, a, b)
    }

    /// Floating-point add/subtract.
    #[inline]
    pub fn fadd(&mut self, pc: u32, a: Reg, b: Reg) -> Reg {
        self.binop(pc, Opcode::FpAdd, a, b)
    }

    /// Floating-point multiply.
    #[inline]
    pub fn fmul(&mut self, pc: u32, a: Reg, b: Reg) -> Reg {
        self.binop(pc, Opcode::FpMul, a, b)
    }

    /// Floating-point divide (also used for sqrt-class operations).
    #[inline]
    pub fn fdiv(&mut self, pc: u32, a: Reg, b: Reg) -> Reg {
        self.binop(pc, Opcode::FpDiv, a, b)
    }

    /// Fused multiply-accumulate lowered to mul+add (two instructions).
    #[inline]
    pub fn fma(&mut self, pc: u32, acc: Reg, a: Reg, b: Reg) -> Reg {
        let p = self.fmul(pc, a, b);
        self.fadd(pc.wrapping_add(1), acc, p)
    }

    /// Address-generation arithmetic (base + index * scale).
    #[inline]
    pub fn addr_calc(&mut self, pc: u32, a: Reg) -> Reg {
        self.unop(pc, Opcode::AddrCalc, a)
    }

    /// Unconditional or loop back-edge branch with no data dependence.
    #[inline]
    pub fn branch(&mut self, pc: u32) {
        self.push(Inst::compute(pc, Opcode::Branch, NO_REG, [NO_REG, NO_REG]));
    }

    /// Conditional branch depending on `cond`.
    #[inline]
    pub fn branch_on(&mut self, pc: u32, cond: Reg) {
        self.push(Inst::compute(pc, Opcode::Branch, NO_REG, [cond.0, NO_REG]));
    }

    /// Integer compare producing a flag value.
    #[inline]
    pub fn cmp(&mut self, pc: u32, a: Reg, b: Reg) -> Reg {
        self.binop(pc, Opcode::IntAlu, a, b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::Trace;

    #[test]
    fn registers_are_ssa() {
        let mut t = Trace::new();
        let mut e = Emitter::new(&mut t);
        let a = e.imm(0);
        let b = e.imm(1);
        let c = e.fadd(2, a, b);
        let d = e.fadd(2, a, c);
        assert_ne!(c, d, "each value-producing op defines a fresh register");
        drop(e);
        let dsts: Vec<u32> = t.iter().map(|i| i.dst).collect();
        let mut sorted = dsts.clone();
        sorted.dedup();
        assert_eq!(dsts, sorted, "destinations strictly increase");
    }

    #[test]
    fn fma_is_two_insts() {
        let mut t = Trace::new();
        let mut e = Emitter::new(&mut t);
        let a = e.imm(0);
        e.fma(10, a, a, a);
        drop(e);
        assert_eq!(t.len(), 3); // imm + mul + add
        assert_eq!(t.count_op(Opcode::FpMul), 1);
        assert_eq!(t.count_op(Opcode::FpAdd), 1);
    }

    #[test]
    fn emitted_counter_tracks_sink() {
        let mut t = Trace::new();
        let mut e = Emitter::new(&mut t);
        let x = e.load(0, 0, 8);
        e.store(1, 8, 8, x);
        e.branch(2);
        assert_eq!(e.emitted(), 3);
        drop(e);
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn dependencies_are_recorded() {
        let mut t = Trace::new();
        let mut e = Emitter::new(&mut t);
        let x = e.load(0, 0, 8);
        let y = e.fmul(1, x, x);
        e.store(2, 8, 8, y);
        drop(e);
        let insts = t.insts();
        assert_eq!(insts[1].srcs, [insts[0].dst, insts[0].dst]);
        assert_eq!(insts[2].srcs[0], insts[1].dst);
    }
}
