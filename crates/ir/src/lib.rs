//! Dynamic instruction-level intermediate representation for the NAPEL
//! reproduction.
//!
//! The NAPEL paper instruments application kernels with an LLVM plugin and
//! observes the resulting *dynamic* instruction stream: opcodes, register
//! operands, and memory addresses. Everything downstream — the
//! microarchitecture-independent PISA profile and the trace-driven NMC
//! simulator — consumes exactly that stream. This crate defines the stream
//! format ([`Inst`]), containers ([`Trace`], [`MultiTrace`]), streaming
//! consumers ([`TraceSink`]), and an ergonomic [`Emitter`] that workload
//! kernels use to produce well-formed streams.
//!
//! # Example
//!
//! ```
//! use napel_ir::{Emitter, MultiTrace, Opcode};
//!
//! // A tiny kernel: c[i] = a[i] * b[i] for i in 0..4, on one thread.
//! let mut trace = MultiTrace::new(1);
//! let mut e = Emitter::new(trace.thread_sink(0));
//! for i in 0..4u64 {
//!     let a = e.load(10, 0x1000 + 8 * i, 8);
//!     let b = e.load(11, 0x2000 + 8 * i, 8);
//!     let c = e.fmul(12, a, b);
//!     e.store(13, 0x3000 + 8 * i, 8, c);
//!     e.branch(14);
//! }
//! assert_eq!(trace.total_insts(), 20);
//! assert_eq!(trace.thread(0).count_op(Opcode::FpMul), 4);
//! ```

mod emitter;
pub mod encode;
pub mod fxhash;
mod inst;
pub mod io;
mod trace;

pub use emitter::Emitter;
pub use encode::{DecodeIter, EncodedTrace, EncodedTraceSink};
pub use inst::{Inst, OpClass, Opcode, Reg, NO_ADDR, NO_REG};
pub use trace::{
    CountingSink, MultiTrace, PerThread, TeeSink, ThreadedTraceSink, Trace, TraceSink,
};
