//! `obs` — convert a telemetry JSONL stream into a Perfetto-loadable
//! Chrome trace plus a self-time phase table.
//!
//! ```text
//! obs --in telemetry.jsonl [--trace-out trace.json] [--top N]
//! ```
//!
//! `--in` takes the JSONL a driver wrote with `--telemetry-out` (any of
//! the figure/table binaries, or `serve`). `--trace-out` writes Chrome
//! trace-event JSON — open it in Perfetto (ui.perfetto.dev) or
//! `chrome://tracing`. The top-`N` (default 15) phases by self time
//! print to stdout either way; counts of the stream's other record
//! types go to stderr so the table stays machine-friendly.

use napel_bench::obs;
use napel_telemetry::TelemetryReport;

struct Args {
    input: String,
    trace_out: Option<String>,
    top: usize,
}

fn parse_args() -> Args {
    let mut input = None;
    let mut trace_out = None;
    let mut top = 15;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |what: &str| args.next().unwrap_or_else(|| panic!("{arg} needs {what}"));
        match arg.as_str() {
            "--in" => input = Some(value("a JSONL path")),
            "--trace-out" => trace_out = Some(value("a path")),
            "--top" => {
                top = value("a count")
                    .parse()
                    .unwrap_or_else(|_| panic!("--top needs a positive count"));
            }
            other => panic!("unknown flag `{other}` (expected --in, --trace-out, --top)"),
        }
    }
    Args {
        input: input.expect("obs needs --in <telemetry.jsonl>"),
        trace_out,
        top: top.max(1),
    }
}

fn main() {
    let args = parse_args();
    let text = std::fs::read_to_string(&args.input)
        .unwrap_or_else(|e| panic!("cannot read --in `{}`: {e}", args.input));
    let report = TelemetryReport::from_jsonl(&text)
        .unwrap_or_else(|e| panic!("`{}` is not a telemetry JSONL stream: {e}", args.input));
    eprintln!(
        "obs: {} span(s), {} counter(s), {} histogram(s), {} quantile summarie(s) from {}",
        report.spans.len(),
        report.counters.len(),
        report.histograms.len(),
        report.log_histograms.len(),
        args.input
    );

    let placed = obs::place_spans(&report);
    if let Some(path) = &args.trace_out {
        let trace = obs::chrome_trace(&placed);
        std::fs::write(path, &trace)
            .unwrap_or_else(|e| panic!("cannot write --trace-out `{path}`: {e}"));
        eprintln!(
            "obs: wrote {} trace event(s) to {path} (load in Perfetto or chrome://tracing)",
            placed.len()
        );
    }
    if placed.is_empty() {
        println!("no spans in the stream — nothing to place on a timeline");
    } else {
        print!("{}", obs::self_time_table(&placed, args.top));
    }
}
