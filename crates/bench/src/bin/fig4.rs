//! Regenerates Figure 4 (NAPEL prediction speedup over simulation for a
//! design-space sweep of architecture configurations).

use napel_bench::Options;
use napel_core::experiments::{fig4, Context};

fn main() {
    let opts = Options::from_env();
    eprintln!("collecting training data ({:?})...", opts.scale);
    let ctx = Context::build(opts.scale, opts.seed);
    eprintln!("timing {} configurations per application...", opts.configs);
    let rows = fig4::run(&ctx, &opts.napel_config(), opts.configs).expect("fig 4 run");
    println!("Figure 4: prediction speedup over the simulator (increasing order)\n");
    print!("{}", fig4::render(&rows));
}
