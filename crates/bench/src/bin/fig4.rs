//! Regenerates Figure 4 (NAPEL prediction speedup over simulation for a
//! design-space sweep of architecture configurations).

use napel_bench::{announce_report, Options};
use napel_core::experiments::{fig4, Context};

fn main() {
    let opts = Options::from_env();
    opts.init_telemetry();
    let exec = opts.executor();
    napel_telemetry::info!("collecting training data ({:?})...", opts.scale);
    let (ctx, report) =
        Context::build_supervised(opts.scale, opts.seed, &exec, &opts.campaign_options())
            .unwrap_or_else(|e| panic!("collection campaign failed: {e}"));
    announce_report(&report);
    napel_telemetry::info!("timing {} configurations per application...", opts.configs);
    let rows = fig4::run_with_io(
        &ctx,
        &opts.napel_config(),
        opts.configs,
        &opts.model_io(),
        &exec,
    )
    .expect("fig 4 run");
    println!("Figure 4: prediction speedup over the simulator (increasing order)\n");
    print!("{}", fig4::render(&rows));
    opts.finish_telemetry();
}
