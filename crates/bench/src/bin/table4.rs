//! Regenerates Table 4 (DoE configuration counts, training and prediction
//! times). Times are seconds on this substrate; the paper reports minutes
//! on a server — see EXPERIMENTS.md for the side-by-side.

use napel_bench::{announce_report, Options};
use napel_core::experiments::{table4, Context};

fn main() {
    let opts = Options::from_env();
    opts.init_telemetry();
    let exec = opts.executor();
    napel_telemetry::info!("collecting training data ({:?})...", opts.scale);
    let (ctx, report) =
        Context::build_supervised(opts.scale, opts.seed, &exec, &opts.campaign_options())
            .unwrap_or_else(|e| panic!("collection campaign failed: {e}"));
    announce_report(&report);
    napel_telemetry::info!("running per-application timings...");
    let rows = table4::run_with_io(&ctx, &opts.napel_config(), &opts.model_io(), &exec)
        .expect("table 4 run");
    println!("Table 4: DoE configurations and training/prediction time\n");
    print!("{}", table4::render(&rows));
    opts.finish_telemetry();
}
