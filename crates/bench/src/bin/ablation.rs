//! Design-choice ablations: CCD vs LHS vs random sampling, forest size,
//! feature screening, the atax cache/scratchpad what-if, row policy, the
//! weighted ensemble vs the plain forest, and the active-DoE
//! accuracy-vs-budget curve.

use napel_bench::Options;
use napel_core::experiments::ablation;
use napel_workloads::Workload;

fn main() {
    let opts = Options::from_env();
    opts.init_telemetry();
    let exec = opts.executor();
    let apps = opts.workloads();

    napel_telemetry::info!("running sampler ablation ({:?})...", opts.scale);
    let io = opts.model_io();
    let samplers = ablation::sampler_ablation_io(&apps, opts.scale, opts.seed, &io, &exec)
        .expect("sampler ablation");

    napel_telemetry::info!("running forest-size sweep...");
    let set = ablation::collect_with_sampler(&apps, ablation::Sampler::Ccd, opts.scale, opts.seed)
        .expect("CCD collection");
    let sweep =
        ablation::forest_size_sweep_io(&set, &[10, 30, 60, 120, 240], opts.seed, &io, &exec)
            .expect("forest sweep");

    println!("Ablations: training-point sampler and forest size\n");
    print!("{}", ablation::render(&samplers, &sweep));

    napel_telemetry::info!("running feature-screening ablation...");
    let screening = ablation::screening_ablation_io(&set, &[10, 30, 100], opts.seed, &io, &exec)
        .expect("screening");
    println!("\nFeature screening (top-k by permutation importance):");
    for p in &screening {
        let kept = if p.kept == usize::MAX {
            "all".to_string()
        } else {
            p.kept.to_string()
        };
        println!("  keep {:>4}  perf MRE {:.1}%", kept, p.perf_mre * 100.0);
    }

    napel_telemetry::info!("running the atax cache/scratchpad what-if...");
    println!("\natax NMC L1 size what-if (Section 3.4's closing observation):");
    for p in ablation::cache_size_sweep(Workload::Atax, &[2, 8, 32, 128], opts.scale) {
        println!(
            "  {:>4} lines ({:>5} B)  IPC {:.3}  EDP {:.3e} J*s",
            p.cache_lines,
            p.cache_lines * 64,
            p.ipc,
            p.edp
        );
    }

    napel_telemetry::info!("running the offload-cost sensitivity study...");
    println!("\noffload-cost sensitivity (one-time SerDes transfer of the footprint):");
    for r in ablation::offload_sensitivity(&apps, opts.scale) {
        println!(
            "  {:<5} resident EDP {:.3e}  with transfer {:.3e}  (x{:.2})",
            r.workload.name(),
            r.edp_resident,
            r.edp_with_offload,
            r.inflation()
        );
    }

    napel_telemetry::info!("running the row-policy study...");
    println!("\nclosed- vs open-row EDP (J*s) at central configurations:");
    for (w, closed, open) in ablation::row_policy_study(&apps, opts.scale) {
        let better = if open < closed { "open" } else { "closed" };
        println!(
            "  {:<5} closed {:.3e}  open {:.3e}  -> {}",
            w.name(),
            closed,
            open,
            better
        );
    }

    napel_telemetry::info!("running the ensemble-vs-forest comparison...");
    let comparison =
        ablation::ensemble_vs_forest_io(&set, opts.seed, &io, &exec).expect("ensemble comparison");
    println!("\nweighted ensemble vs plain forest (LOAO):");
    print!("{}", ablation::render_ensemble(&comparison));

    napel_telemetry::info!("running the accuracy-vs-budget curve...");
    let budgets = opts.budget_list(&[5, 7, 9]);
    let curve = ablation::budget_curve_io(&apps, opts.scale, &budgets, opts.seed, &io, &exec)
        .expect("budget curve");
    println!("\naccuracy vs simulation budget (plain CCD prefix vs active sampling):");
    print!("{}", ablation::render_budget_curve(&curve));
    let verdict = if curve.active_no_worse(0.05) {
        "PASS (active sampling no worse than the CCD prefix at equal budget)"
    } else {
        "FAIL (active sampling worse than the CCD prefix)"
    };
    println!("active-doe verdict: {verdict}");

    opts.finish_telemetry();
}
