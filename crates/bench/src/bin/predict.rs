//! Inference-only entry point: feature rows in, predictions out — no
//! simulator, no training. This is phase ⑤ decoupled from the rest of the
//! pipeline: point `--model-in` at a `.napel` bundle saved by any of the
//! training drivers (`fig4 --model-out models` produces
//! `models/fig4-<workload>.napel`) and score rows against it.
//!
//! Input modes:
//!
//! - `--workload NAME`: profile the workload's test input once, then
//!   cross it with `--configs` architecture configurations sampled from
//!   the Table 1 ranges (`--seed`) — the design-space-exploration loop of
//!   Figure 4, running purely on the stored model.
//! - `--input PATH`: raw combined feature rows, one per line,
//!   whitespace- or comma-separated, `#` comments ignored. Row layout
//!   must match the model's schema (see `--print-schema`).
//!
//! Output: one line per row with predicted IPC, energy/instruction, and
//! the derived time/energy/EDP for `--instructions` offloaded
//! instructions, plus the forest's geometric per-tree spread (one
//! geometric standard deviation; the band is `[IPC/σ, IPC·σ]`).
//!
//! Every operational failure — missing flags, an unreadable or corrupt
//! bundle, malformed input rows, a schema mismatch — exits with status 1
//! and a single `predict: <what went wrong>` diagnostic on stderr, so
//! scripts wrapping this binary get machine-checkable failures instead
//! of panic backtraces.

use napel_bench::Options;
use napel_core::experiments::fig4::sample_arch_configs;
use napel_core::features::combined_features;
use napel_core::model::TrainedNapel;
use napel_pisa::ApplicationProfile;
use napel_workloads::Workload;

/// Parses raw feature rows: whitespace- or comma-separated floats, one
/// row per line, `#` starts a comment.
fn parse_rows(text: &str, source: &str) -> Result<Vec<Vec<f64>>, String> {
    let mut rows = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("");
        if line.trim().is_empty() {
            continue;
        }
        let mut row = Vec::new();
        for tok in line
            .split(|c: char| c == ',' || c.is_whitespace())
            .filter(|tok| !tok.is_empty())
        {
            let v: f64 = tok
                .parse()
                .map_err(|_| format!("{source}:{}: `{tok}` is not a number", lineno + 1))?;
            row.push(v);
        }
        rows.push(row);
    }
    if rows.is_empty() {
        return Err(format!("{source}: no feature rows (only blanks/comments)"));
    }
    Ok(rows)
}

fn run(opts: &Options) -> Result<(), String> {
    let path = opts
        .model_in
        .clone()
        .ok_or("predict needs --model-in <bundle.napel>")?;
    let model = TrainedNapel::load(&path).map_err(|e| e.to_string())?;
    let prov = model.provenance();
    napel_telemetry::info!(
        "loaded {path}: {} features, trained on {} rows of [{}] (seed {}, hash {:016x})",
        model.feature_names().len(),
        prov.training_rows,
        prov.workloads.join(" "),
        prov.seed,
        prov.training_hash
    );

    let rows: Vec<Vec<f64>> = if let Some(input) = &opts.input {
        let text = std::fs::read_to_string(input)
            .map_err(|e| format!("cannot read --input `{input}`: {e}"))?;
        parse_rows(&text, input)?
    } else if let Some(name) = &opts.workload {
        let workload = Workload::ALL
            .into_iter()
            .find(|w| w.name() == name)
            .ok_or_else(|| {
                format!(
                    "unknown workload `{name}` (expected one of: {})",
                    Workload::ALL.map(|w| w.name()).join(" ")
                )
            })?;
        napel_telemetry::info!(
            "profiling {name} at its test input, {} sampled architectures...",
            opts.configs
        );
        let trace = workload.generate_test(opts.scale);
        let profile = ApplicationProfile::of(&trace);
        sample_arch_configs(opts.configs, opts.seed)
            .iter()
            .map(|arch| combined_features(&profile, arch))
            .collect()
    } else {
        return Err("predict needs --input FILE or --workload NAME".to_string());
    };

    let predictions = model.predict_batch(&rows).map_err(|e| e.to_string())?;

    println!(
        "Predictions for {} rows ({} offloaded instructions):\n",
        predictions.len(),
        opts.instructions
    );
    println!(
        "{:>4}  {:>8}  {:>10}  {:>11}  {:>11}  {:>11}  {:>6}",
        "row", "IPC", "pJ/inst", "time (s)", "energy (J)", "EDP (J*s)", "geo-sd"
    );
    for (i, (pred, spread)) in predictions.iter().enumerate() {
        println!(
            "{:>4}  {:>8.4}  {:>10.2}  {:>11.4e}  {:>11.4e}  {:>11.4e}  {:>6.3}",
            i,
            pred.ipc,
            pred.energy_per_inst_pj,
            pred.exec_time_seconds(opts.instructions),
            pred.energy_joules(opts.instructions),
            pred.edp(opts.instructions),
            spread
        );
    }
    Ok(())
}

fn main() {
    let opts = Options::from_env();
    opts.init_telemetry();
    if let Err(message) = run(&opts) {
        eprintln!("predict: {message}");
        std::process::exit(1);
    }
    opts.finish_telemetry();
}
