//! Regenerates Table 2 (evaluated applications and DoE parameter levels).

use napel_bench::Options;

fn main() {
    let opts = Options::from_env();
    opts.init_telemetry();
    println!("Table 2: evaluated applications and their DoE parameters\n");
    print!("{}", napel_core::experiments::table2::render());
    opts.finish_telemetry();
}
