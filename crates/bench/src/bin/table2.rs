//! Regenerates Table 2 (evaluated applications and DoE parameter levels).

fn main() {
    println!("Table 2: evaluated applications and their DoE parameters\n");
    print!("{}", napel_core::experiments::table2::render());
}
