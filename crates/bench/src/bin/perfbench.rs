//! Simulator-throughput benchmark: measures the phase-split engine against
//! the reference interleaved engine on a multi-configuration simulation
//! campaign, plus the surrounding pipeline stages, and writes the numbers
//! to a JSON file (`BENCH_sim.json` by default) for CI artifacts and the
//! README perf note.
//!
//! Reported metrics:
//!
//! - `sim` — wall-clock for the same multi-config × all-kernels sweep on
//!   both engines (best of `--repeat` rounds), simulated cycles/sec each,
//!   and the end-to-end speedup,
//! - `campaign` — labeled training rows/sec through the full collection
//!   path (profile + encode + simulate + label),
//! - `trace` — compact-encoding ratio over every kernel's trace,
//! - `predict` — trained-model batch-prediction rows/sec.
//!
//! Flags: `--scale laptop|tiny|unit` (default `tiny`), `--configs N`
//! (architecture configurations, default all 6 of the neighborhood sweep),
//! `--repeat N` (timing rounds, default 3), `--out PATH` (default
//! `BENCH_sim.json`), `--quiet`.
//!
//! Run as `cargo run --release -p napel-bench --bin perfbench`.

use std::time::Instant;

use napel_core::campaign::Serial;
use napel_core::collect::{arch_neighborhood, collect_with, CollectionPlan};
use napel_core::model::{Napel, NapelConfig};
use napel_ir::{EncodedTrace, MultiTrace};
use napel_workloads::{Scale, Workload};
use nmc_sim::{ArchConfig, NmcSystem, SimEngine, SimReport};

struct Flags {
    scale: Scale,
    scale_name: String,
    configs: usize,
    repeat: usize,
    out: String,
    quiet: bool,
}

fn parse_flags() -> Flags {
    let mut f = Flags {
        scale: Scale::tiny(),
        scale_name: "tiny".into(),
        configs: usize::MAX,
        repeat: 3,
        out: "BENCH_sim.json".into(),
        quiet: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scale" => {
                let v = args.next().expect("--scale needs a value");
                f.scale = match v.as_str() {
                    "laptop" => Scale::laptop(),
                    "tiny" => Scale::tiny(),
                    "unit" => Scale::unit(),
                    other => panic!("unknown scale `{other}` (laptop|tiny|unit)"),
                };
                f.scale_name = v;
            }
            "--configs" => {
                f.configs = args
                    .next()
                    .expect("--configs needs a value")
                    .parse()
                    .expect("--configs must be an integer");
            }
            "--repeat" => {
                f.repeat = args
                    .next()
                    .expect("--repeat needs a value")
                    .parse::<usize>()
                    .expect("--repeat must be an integer")
                    .max(1);
            }
            "--out" => {
                f.out = args.next().expect("--out needs a path");
            }
            "--quiet" => f.quiet = true,
            other => panic!("unknown flag `{other}` (--scale|--configs|--repeat|--out|--quiet)"),
        }
    }
    f
}

/// One pre-materialized job of the sweep: a config paired with every
/// kernel trace, so the timed region contains simulation only.
struct Sweep {
    archs: Vec<ArchConfig>,
    traces: Vec<MultiTrace>,
}

impl Sweep {
    fn new(scale: Scale, configs: usize) -> Sweep {
        let mut archs = arch_neighborhood();
        archs.truncate(configs.max(1));
        let traces = Workload::ALL
            .into_iter()
            .map(|w| w.generate_test(scale))
            .collect();
        Sweep { archs, traces }
    }

    fn run<F: FnMut(&NmcSystem, &MultiTrace) -> SimReport>(&self, mut sim: F) -> (f64, u64, u64) {
        let t = Instant::now();
        let (mut cycles, mut insts) = (0u64, 0u64);
        for arch in &self.archs {
            let sys = NmcSystem::new(arch.clone());
            for trace in &self.traces {
                let report = sim(&sys, trace);
                cycles += report.cycles;
                insts += report.instructions;
            }
        }
        (t.elapsed().as_secs_f64(), cycles, insts)
    }
}

fn main() {
    let flags = parse_flags();
    let info = |msg: &str| {
        if !flags.quiet {
            eprintln!("perfbench: {msg}");
        }
    };

    // --- Simulator engines: reference vs phase-split -------------------
    let sweep = Sweep::new(flags.scale, flags.configs);
    info(&format!(
        "sim sweep: {} configs x {} kernels, best of {} rounds",
        sweep.archs.len(),
        sweep.traces.len(),
        flags.repeat
    ));
    let mut engine = SimEngine::new();
    let (mut ref_secs, mut phase_secs) = (f64::INFINITY, f64::INFINITY);
    let (mut cycles, mut insts) = (0, 0);
    for round in 0..flags.repeat {
        let (rs, rc, ri) = sweep.run(|sys, trace| sys.run_reference(trace));
        let (ps, pc, pi) = sweep.run(|sys, trace| engine.run(sys, trace));
        assert_eq!(
            (rc, ri),
            (pc, pi),
            "engines disagree on total cycles/instructions"
        );
        (cycles, insts) = (rc, ri);
        ref_secs = ref_secs.min(rs);
        phase_secs = phase_secs.min(ps);
        info(&format!(
            "  round {}: reference {rs:.3}s, phase {ps:.3}s",
            round + 1
        ));
    }
    let speedup = ref_secs / phase_secs;
    info(&format!(
        "sim: {:.2}x speedup ({:.3e} -> {:.3e} cycles/sec)",
        speedup,
        cycles as f64 / ref_secs,
        cycles as f64 / phase_secs
    ));

    // --- Campaign throughput (profile + encode + simulate + label) -----
    let plan = CollectionPlan {
        workloads: Workload::ALL.to_vec(),
        arch_configs: sweep.archs.clone(),
        scale: flags.scale,
        dedup: true,
    };
    let t = Instant::now();
    let set = collect_with(&plan, &Serial);
    let campaign_secs = t.elapsed().as_secs_f64();
    let campaign_rows = set.runs.len();
    info(&format!(
        "campaign: {campaign_rows} rows in {campaign_secs:.3}s ({:.1} rows/sec)",
        campaign_rows as f64 / campaign_secs
    ));

    // --- Trace encoding ratio ------------------------------------------
    let (mut raw_bytes, mut enc_bytes) = (0u64, 0u64);
    for trace in &sweep.traces {
        let enc = EncodedTrace::from_multi(trace);
        raw_bytes += enc.materialized_bytes() as u64;
        enc_bytes += enc.encoded_bytes() as u64;
    }
    let encode_ratio = raw_bytes as f64 / enc_bytes.max(1) as f64;
    info(&format!("trace: {encode_ratio:.2}x encoding ratio"));

    // --- Batch prediction throughput -----------------------------------
    let trained = Napel::new(NapelConfig::untuned())
        .train(&set)
        .expect("training on the campaign set succeeds");
    let rows: Vec<Vec<f64>> = set.runs.iter().map(|r| r.features.clone()).collect();
    // Repeat the batch until the timed region is long enough to resolve.
    let batches = (10_000 / rows.len().max(1)).max(1);
    let t = Instant::now();
    for _ in 0..batches {
        trained
            .predict_batch(&rows)
            .expect("prediction on training rows succeeds");
    }
    let predict_secs = t.elapsed().as_secs_f64();
    let predict_rows_per_sec = (batches * rows.len()) as f64 / predict_secs;
    info(&format!(
        "predict: {predict_rows_per_sec:.0} rows/sec ({batches} batches of {})",
        rows.len()
    ));

    // --- Emit JSON ------------------------------------------------------
    let json = format!(
        "{{\n  \"bench\": \"sim\",\n  \"scale\": \"{}\",\n  \"configs\": {},\n  \"kernels\": {},\n  \"repeat\": {},\n  \"sim\": {{\n    \"cycles\": {},\n    \"instructions\": {},\n    \"reference_seconds\": {:.6},\n    \"phase_seconds\": {:.6},\n    \"reference_cycles_per_sec\": {:.1},\n    \"phase_cycles_per_sec\": {:.1},\n    \"speedup\": {:.3}\n  }},\n  \"campaign\": {{\n    \"rows\": {},\n    \"seconds\": {:.6},\n    \"rows_per_sec\": {:.2}\n  }},\n  \"trace\": {{\n    \"materialized_bytes\": {},\n    \"encoded_bytes\": {},\n    \"encode_ratio\": {:.3}\n  }},\n  \"predict\": {{\n    \"rows\": {},\n    \"batches\": {},\n    \"rows_per_sec\": {:.1}\n  }}\n}}\n",
        flags.scale_name,
        sweep.archs.len(),
        sweep.traces.len(),
        flags.repeat,
        cycles,
        insts,
        ref_secs,
        phase_secs,
        cycles as f64 / ref_secs,
        cycles as f64 / phase_secs,
        speedup,
        campaign_rows,
        campaign_secs,
        campaign_rows as f64 / campaign_secs,
        raw_bytes,
        enc_bytes,
        encode_ratio,
        rows.len(),
        batches,
        predict_rows_per_sec,
    );
    std::fs::write(&flags.out, &json)
        .unwrap_or_else(|e| panic!("writing `{}` failed: {e}", flags.out));
    println!("{json}");
    info(&format!("wrote {}", flags.out));
}
