//! Runs every table and figure in sequence, printing the full evaluation.

use napel_bench::{announce_report, Options};
use napel_core::experiments::{fig4, fig5, fig6, fig7, table2, table3, table4, Context};
use napel_workloads::Workload;

fn main() {
    let opts = Options::from_env();
    opts.init_telemetry();
    let exec = opts.executor();
    println!("== Table 2 ==\n{}", table2::render());
    println!("== Table 3 ==\n{}", table3::render(opts.scale));

    napel_telemetry::info!("collecting training data ({:?})...", opts.scale);
    let (ctx, report) =
        Context::build_supervised(opts.scale, opts.seed, &exec, &opts.campaign_options())
            .unwrap_or_else(|e| panic!("collection campaign failed: {e}"));
    announce_report(&report);
    let cfg = opts.napel_config();

    napel_telemetry::info!("table 4...");
    let t4 = table4::run_with(&ctx, &cfg, &exec).expect("table 4");
    println!("== Table 4 ==\n{}", table4::render(&t4));

    napel_telemetry::info!("figure 4...");
    let f4 = fig4::run_with(&ctx, &cfg, opts.configs, &exec).expect("fig 4");
    println!("== Figure 4 ==\n{}", fig4::render(&f4));

    napel_telemetry::info!("figure 5...");
    let f5 = fig5::run_with(&ctx, &exec).expect("fig 5");
    println!("== Figure 5 ==\n{}", fig5::render(&f5));

    napel_telemetry::info!("figure 6...");
    let f6 = fig6::run(&Workload::ALL, opts.scale);
    println!("== Figure 6 ==\n{}", fig6::render(&f6));

    napel_telemetry::info!("figure 7...");
    let f7 = fig7::run_with(&ctx, &cfg, &exec).expect("fig 7");
    println!("== Figure 7 ==\n{}", fig7::render(&f7));
    opts.finish_telemetry();
}
