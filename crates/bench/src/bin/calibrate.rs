//! Calibration probe: host vs NMC time/energy per workload (no ML).

use napel_bench::Options;
use napel_hostmodel::HostModel;
use napel_pisa::ApplicationProfile;
use napel_workloads::Workload;
use nmc_sim::{ArchConfig, NmcSystem};

fn main() {
    let opts = Options::from_env();
    opts.init_telemetry();
    let host = HostModel::power9(opts.scale);
    println!(
        "{:<6} {:>9} {:>11} {:>11} {:>11} {:>11} {:>9} {:>8} {:>8}",
        "app", "insts", "host_t", "nmc_t", "host_E", "nmc_E", "EDPred", "hostCPI", "nmcIPC"
    );
    for w in Workload::ALL {
        let trace = w.generate_test(opts.scale);
        let profile = ApplicationProfile::of(&trace);
        let h = host.evaluate(&profile);
        let r = NmcSystem::new(ArchConfig::paper_default()).run(&trace);
        let edp_red =
            (h.exec_time_seconds * h.energy_joules) / (r.exec_time_seconds() * r.energy_joules());
        println!(
            "{:<6} {:>9} {:>11.3e} {:>11.3e} {:>11.3e} {:>11.3e} {:>9.3} {:>8.2} {:>8.3}",
            w.name(),
            trace.total_insts(),
            h.exec_time_seconds,
            r.exec_time_seconds(),
            h.energy_joules,
            r.energy_joules(),
            edp_red,
            h.cpi,
            r.ipc()
        );
        napel_telemetry::info!(
            "       spatial {:.2} vec {:.2} dram {:.3} stall {:.2} base {:.3} branch {:.2} bw_bound {}",
            h.spatial, h.vectorizability, h.dram_fraction, h.stall_per_mem, h.base_cpi, h.branch_cpi, h.bandwidth_bound
        );
    }
    opts.finish_telemetry();
}

// Internal diagnostics appended per run (see module docs).
