//! Regenerates Figure 6 (execution time and energy on the host model).

use napel_bench::Options;
use napel_core::experiments::fig6;
use napel_workloads::Workload;

fn main() {
    let opts = Options::from_env();
    opts.init_telemetry();
    napel_telemetry::info!("evaluating test inputs on the host model...");
    let rows = fig6::run(&Workload::ALL, opts.scale);
    println!("Figure 6: execution time and energy on the POWER9-class host\n");
    print!("{}", fig6::render(&rows));
    opts.finish_telemetry();
}
