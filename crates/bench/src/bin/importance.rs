//! Which profile features drive NAPEL's IPC predictions?
//!
//! Trains the forest on the full corpus, then ranks the combined feature
//! vector by permutation importance. The paper motivates its 395-feature
//! profile by saying "such a large number of features enables complex
//! relationships to be identified" — this binary shows which of them the
//! forest actually leans on.

use napel_bench::Options;
use napel_core::collect::{collect, CollectionPlan};
use napel_ml::log_space::LogOf;
use napel_ml::Estimator;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let opts = Options::from_env();
    opts.init_telemetry();
    napel_telemetry::info!("collecting training data ({:?})...", opts.scale);
    let set = collect(&CollectionPlan {
        scale: opts.scale,
        ..Default::default()
    });
    let data = set.ipc_dataset().expect("dataset");

    napel_telemetry::info!("training and computing permutation importance...");
    let mut rng = StdRng::seed_from_u64(opts.seed);
    let est = LogOf(napel_core::experiments::fig5::napel_estimator());
    let model = est.fit(&data, &mut rng).expect("fit");
    let importances = model.inner().permutation_importance(&data, &mut rng);

    let mut ranked: Vec<(usize, f64)> = importances.iter().copied().enumerate().collect();
    ranked.sort_by(|a, b| b.1.total_cmp(&a.1));

    println!("top 25 features by permutation importance (IPC model):\n");
    let max = ranked.first().map(|r| r.1).unwrap_or(1.0).max(1e-12);
    for (rank, (idx, imp)) in ranked.iter().take(25).enumerate() {
        let bar = "#".repeat(((imp / max) * 40.0).round() as usize);
        println!(
            "{:>2}. {:<32} {:>9.2e}  {}",
            rank + 1,
            set.feature_names[*idx],
            imp,
            bar
        );
    }
    let dead = importances.iter().filter(|&&v| v <= 0.0).count();
    println!(
        "\n{} of {} features have non-positive importance (screening candidates)",
        dead,
        importances.len()
    );
    opts.finish_telemetry();
}
