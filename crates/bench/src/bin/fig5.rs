//! Regenerates Figure 5 (leave-one-application-out MRE of NAPEL vs an ANN
//! vs a linear decision tree, for performance and energy).

use napel_bench::{announce_report, Options};
use napel_core::experiments::{fig5, Context};

fn main() {
    let opts = Options::from_env();
    opts.init_telemetry();
    let exec = opts.executor();
    napel_telemetry::info!("collecting training data ({:?})...", opts.scale);
    let (ctx, report) =
        Context::build_supervised(opts.scale, opts.seed, &exec, &opts.campaign_options())
            .unwrap_or_else(|e| panic!("collection campaign failed: {e}"));
    announce_report(&report);
    napel_telemetry::info!("running leave-one-application-out comparisons...");
    let result = fig5::run_with_io(&ctx, &opts.model_io(), &exec).expect("fig 5 run");
    println!("Figure 5: mean relative error, performance (a) and energy (b)\n");
    print!("{}", fig5::render(&result));
    opts.finish_telemetry();
}
