//! Regenerates Figure 7 (estimated EDP reduction of NMC offloading vs the
//! host; NAPEL prediction next to the simulator's "Actual").

use napel_bench::{announce_report, Options};
use napel_core::experiments::{fig7, Context};

fn main() {
    let opts = Options::from_env();
    opts.init_telemetry();
    let exec = opts.executor();
    napel_telemetry::info!("collecting training data ({:?})...", opts.scale);
    let (ctx, report) =
        Context::build_supervised(opts.scale, opts.seed, &exec, &opts.campaign_options())
            .unwrap_or_else(|e| panic!("collection campaign failed: {e}"));
    announce_report(&report);
    napel_telemetry::info!("running the NMC-suitability analysis...");
    let result =
        fig7::run_with_io(&ctx, &opts.napel_config(), &opts.model_io(), &exec).expect("fig 7 run");
    println!("Figure 7: EDP reduction of NMC offloading vs host execution\n");
    print!("{}", fig7::render(&result));
    opts.finish_telemetry();
}
