//! Regenerates Table 3 (system parameters and configuration).

use napel_bench::Options;

fn main() {
    let opts = Options::from_env();
    println!("Table 3: system parameters and configuration\n");
    print!("{}", napel_core::experiments::table3::render(opts.scale));
}
