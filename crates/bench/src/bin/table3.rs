//! Regenerates Table 3 (system parameters and configuration).

use napel_bench::Options;

fn main() {
    let opts = Options::from_env();
    opts.init_telemetry();
    println!("Table 3: system parameters and configuration\n");
    print!("{}", napel_core::experiments::table3::render(opts.scale));
    opts.finish_telemetry();
}
