//! Harness support for the table/figure regenerator binaries.
//!
//! Every binary accepts the same flags:
//!
//! - `--scale laptop|tiny|unit` — workload input scale (default `laptop`),
//! - `--quick` — skip hyper-parameter tuning (single forest configuration),
//! - `--seed N` — RNG seed (default 25019, "DAC 2019"),
//! - `--configs N` — architecture configurations for Figure 4 (default 256),
//! - `--jobs N|auto` — campaign worker threads (default: the `NAPEL_JOBS`
//!   environment variable, falling back to serial). Parallelism never
//!   changes results, only wall-clock time.
//!
//! Run them as `cargo run --release -p napel-bench --bin fig5 -- --quick`.

use napel_core::campaign::AnyExecutor;
use napel_core::model::NapelConfig;
use napel_workloads::Scale;

/// Parsed command-line options.
#[derive(Debug, Clone, PartialEq)]
pub struct Options {
    /// Workload scale.
    pub scale: Scale,
    /// Skip tuning.
    pub quick: bool,
    /// RNG seed.
    pub seed: u64,
    /// Figure 4 architecture-configuration count.
    pub configs: usize,
    /// Campaign worker threads (`--jobs`); `None` defers to `NAPEL_JOBS`.
    pub jobs: Option<String>,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            scale: Scale::laptop(),
            quick: false,
            seed: 25019,
            configs: 256,
            jobs: None,
        }
    }
}

impl Options {
    /// Parses options from an argument iterator (binary name excluded).
    ///
    /// # Panics
    ///
    /// Panics with a usage message on unknown flags or malformed values —
    /// appropriate for a CLI entry point.
    pub fn parse(args: impl Iterator<Item = String>) -> Options {
        let mut opts = Options::default();
        let mut args = args.peekable();
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--scale" => {
                    let v = args.next().expect("--scale needs a value");
                    opts.scale = match v.as_str() {
                        "laptop" => Scale::laptop(),
                        "tiny" => Scale::tiny(),
                        "unit" => Scale::unit(),
                        other => panic!("unknown scale `{other}` (laptop|tiny|unit)"),
                    };
                }
                "--quick" => opts.quick = true,
                "--seed" => {
                    opts.seed = args
                        .next()
                        .expect("--seed needs a value")
                        .parse()
                        .expect("--seed must be an integer");
                }
                "--configs" => {
                    opts.configs = args
                        .next()
                        .expect("--configs needs a value")
                        .parse()
                        .expect("--configs must be an integer");
                }
                "--jobs" => {
                    opts.jobs = Some(args.next().expect("--jobs needs a value (N or `auto`)"));
                }
                other => panic!("unknown flag `{other}`"),
            }
        }
        opts
    }

    /// Parses from the process arguments.
    pub fn from_env() -> Options {
        Self::parse(std::env::args().skip(1))
    }

    /// The campaign executor implied by the options: `--jobs` wins,
    /// otherwise the `NAPEL_JOBS` environment variable (serial by
    /// default).
    pub fn executor(&self) -> AnyExecutor {
        match &self.jobs {
            Some(spec) => AnyExecutor::from_spec(spec),
            None => AnyExecutor::from_env(),
        }
    }

    /// The NAPEL training configuration implied by the options.
    pub fn napel_config(&self) -> NapelConfig {
        if self.quick {
            NapelConfig {
                seed: self.seed,
                ..NapelConfig::untuned()
            }
        } else {
            NapelConfig {
                seed: self.seed,
                ..NapelConfig::default()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Options {
        Options::parse(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults() {
        let o = parse(&[]);
        assert_eq!(o, Options::default());
        assert_eq!(o.scale, Scale::laptop());
        assert!(!o.quick);
    }

    #[test]
    fn all_flags() {
        let o = parse(&[
            "--scale",
            "tiny",
            "--quick",
            "--seed",
            "7",
            "--configs",
            "16",
            "--jobs",
            "2",
        ]);
        assert_eq!(o.scale, Scale::tiny());
        assert!(o.quick);
        assert_eq!(o.seed, 7);
        assert_eq!(o.configs, 16);
        assert_eq!(o.jobs.as_deref(), Some("2"));
        use napel_core::campaign::Executor;
        assert_eq!(o.executor().workers(), 2);
    }

    #[test]
    #[should_panic(expected = "unknown flag")]
    fn unknown_flag_panics() {
        let _ = parse(&["--frobnicate"]);
    }

    #[test]
    fn quick_config_has_single_candidate() {
        let o = parse(&["--quick"]);
        assert_eq!(o.napel_config().grid.len(), 1);
        let o = parse(&[]);
        assert!(o.napel_config().grid.len() > 1);
    }
}
