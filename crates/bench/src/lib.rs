//! Harness support for the table/figure regenerator binaries.
//!
//! Every binary accepts the same flags:
//!
//! - `--scale laptop|tiny|unit` — workload input scale (default `laptop`),
//! - `--quick` — skip hyper-parameter tuning (single forest configuration),
//! - `--seed N` — RNG seed (default 25019, "DAC 2019"),
//! - `--configs N` — architecture configurations for Figure 4 (default 256),
//! - `--jobs N|auto` — campaign worker threads (default: the `NAPEL_JOBS`
//!   environment variable, falling back to serial). Parallelism never
//!   changes results, only wall-clock time.
//! - `--checkpoint PATH` — journal completed campaign jobs to `PATH` and
//!   resume from it on restart (default: the `NAPEL_CHECKPOINT`
//!   environment variable, falling back to no journal),
//! - `--fail-policy fast|quarantine` — stop at the first failed campaign
//!   job (default) or complete the campaign and itemize failures,
//! - `--retries N` — re-run a panicked campaign job up to `N` extra times,
//! - `--telemetry-out PATH` — enable telemetry, write the JSONL event
//!   stream to `PATH` at exit, and print a phase-time summary on stderr
//!   (default: the `NAPEL_TELEMETRY` environment variable, falling back
//!   to telemetry off),
//! - `--quiet` — suppress informational stderr output (progress lines,
//!   campaign notices, the telemetry summary); errors still print.
//! - `--model-out DIR` — save every trained model as a `.napel` artifact
//!   bundle under `DIR` (default: the `NAPEL_MODEL_DIR` environment
//!   variable, falling back to no saving),
//! - `--model-in DIR|FILE` — load models from stored artifacts instead of
//!   training (the train-once/predict-many path; takes precedence over
//!   `--model-out`),
//! - `--apps LIST` — comma-separated workload subset (default: all 12
//!   applications) — e.g. `--apps atax,gemv,mvt,syrk` for a smoke run,
//! - `--budgets LIST` — comma-separated points-per-application budgets for
//!   the `ablation` accuracy-vs-budget curve (default `5,7,9`),
//! - `--input PATH` — for `predict`: file of raw feature rows to score,
//! - `--workload NAME` — for `predict`: profile this workload's test
//!   input instead of reading `--input`,
//! - `--instructions N` — for `predict`: offloaded instruction count for
//!   the time/energy/EDP columns (default 1,000,000).
//!
//! Run them as `cargo run --release -p napel-bench --bin fig5 -- --quick`.

use std::path::PathBuf;

pub mod obs;

use napel_core::artifact::ModelIo;
use napel_core::campaign::AnyExecutor;
use napel_core::fault::{CampaignOptions, CampaignReport, FaultPolicy};
use napel_core::model::NapelConfig;
use napel_workloads::{Scale, Workload};

/// Parsed command-line options.
#[derive(Debug, Clone, PartialEq)]
pub struct Options {
    /// Workload scale.
    pub scale: Scale,
    /// Skip tuning.
    pub quick: bool,
    /// RNG seed.
    pub seed: u64,
    /// Figure 4 architecture-configuration count.
    pub configs: usize,
    /// Campaign worker threads (`--jobs`); `None` defers to `NAPEL_JOBS`.
    pub jobs: Option<String>,
    /// Checkpoint-journal path (`--checkpoint`); `None` defers to
    /// `NAPEL_CHECKPOINT`.
    pub checkpoint: Option<String>,
    /// Campaign fault policy (`--fail-policy`); `None` defers to
    /// `NAPEL_FAIL_POLICY`.
    pub fail_policy: Option<FaultPolicy>,
    /// Per-job retry budget (`--retries`); `None` defers to
    /// `NAPEL_RETRIES`.
    pub retries: Option<u32>,
    /// Telemetry JSONL output path (`--telemetry-out`); `None` defers to
    /// `NAPEL_TELEMETRY`.
    pub telemetry_out: Option<String>,
    /// Suppress informational stderr output (`--quiet`).
    pub quiet: bool,
    /// Artifact save directory (`--model-out`); `None` defers to
    /// `NAPEL_MODEL_DIR`.
    pub model_out: Option<String>,
    /// Artifact load directory or bundle file (`--model-in`).
    pub model_in: Option<String>,
    /// Comma-separated workload subset (`--apps`); `None` means all.
    pub apps: Option<String>,
    /// Comma-separated accuracy-vs-budget budgets (`--budgets`).
    pub budgets: Option<String>,
    /// Raw feature-row input file for the `predict` binary (`--input`).
    pub input: Option<String>,
    /// Workload name for the `predict` binary (`--workload`).
    pub workload: Option<String>,
    /// Offloaded instruction count for derived time/energy/EDP
    /// (`--instructions`).
    pub instructions: u64,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            scale: Scale::laptop(),
            quick: false,
            seed: 25019,
            configs: 256,
            jobs: None,
            checkpoint: None,
            fail_policy: None,
            retries: None,
            telemetry_out: None,
            quiet: false,
            model_out: None,
            model_in: None,
            apps: None,
            budgets: None,
            input: None,
            workload: None,
            instructions: 1_000_000,
        }
    }
}

impl Options {
    /// Parses options from an argument iterator (binary name excluded).
    ///
    /// # Panics
    ///
    /// Panics with a usage message on unknown flags or malformed values —
    /// appropriate for a CLI entry point.
    pub fn parse(args: impl Iterator<Item = String>) -> Options {
        let mut opts = Options::default();
        let mut args = args.peekable();
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--scale" => {
                    let v = args.next().expect("--scale needs a value");
                    opts.scale = match v.as_str() {
                        "laptop" => Scale::laptop(),
                        "tiny" => Scale::tiny(),
                        "unit" => Scale::unit(),
                        other => panic!("unknown scale `{other}` (laptop|tiny|unit)"),
                    };
                }
                "--quick" => opts.quick = true,
                "--seed" => {
                    opts.seed = args
                        .next()
                        .expect("--seed needs a value")
                        .parse()
                        .expect("--seed must be an integer");
                }
                "--configs" => {
                    opts.configs = args
                        .next()
                        .expect("--configs needs a value")
                        .parse()
                        .expect("--configs must be an integer");
                }
                "--jobs" => {
                    opts.jobs = Some(args.next().expect("--jobs needs a value (N or `auto`)"));
                }
                "--checkpoint" => {
                    opts.checkpoint = Some(args.next().expect("--checkpoint needs a path"));
                }
                "--fail-policy" => {
                    let v = args
                        .next()
                        .expect("--fail-policy needs a value (fast|quarantine)");
                    opts.fail_policy =
                        Some(FaultPolicy::parse_spec(&v).unwrap_or_else(|e| panic!("{e}")));
                }
                "--retries" => {
                    opts.retries = Some(
                        args.next()
                            .expect("--retries needs a value")
                            .parse()
                            .expect("--retries must be an integer"),
                    );
                }
                "--telemetry-out" => {
                    opts.telemetry_out = Some(args.next().expect("--telemetry-out needs a path"));
                }
                "--quiet" => opts.quiet = true,
                "--model-out" => {
                    opts.model_out = Some(args.next().expect("--model-out needs a directory"));
                }
                "--model-in" => {
                    opts.model_in = Some(args.next().expect("--model-in needs a path"));
                }
                "--apps" => {
                    opts.apps = Some(args.next().expect("--apps needs a comma-separated list"));
                }
                "--budgets" => {
                    opts.budgets =
                        Some(args.next().expect("--budgets needs a comma-separated list"));
                }
                "--input" => {
                    opts.input = Some(args.next().expect("--input needs a path"));
                }
                "--workload" => {
                    opts.workload = Some(args.next().expect("--workload needs a name"));
                }
                "--instructions" => {
                    opts.instructions = args
                        .next()
                        .expect("--instructions needs a value")
                        .parse()
                        .expect("--instructions must be an integer");
                }
                other => panic!("unknown flag `{other}`"),
            }
        }
        opts
    }

    /// Parses from the process arguments.
    pub fn from_env() -> Options {
        Self::parse(std::env::args().skip(1))
    }

    /// The campaign executor implied by the options: `--jobs` wins,
    /// otherwise the `NAPEL_JOBS` environment variable (serial by
    /// default).
    pub fn executor(&self) -> AnyExecutor {
        match &self.jobs {
            Some(spec) => AnyExecutor::from_spec(spec),
            None => AnyExecutor::from_env(),
        }
    }

    /// The supervised-campaign options implied by the flags: starts from
    /// the environment (`NAPEL_CHECKPOINT`, `NAPEL_FAIL_POLICY`,
    /// `NAPEL_RETRIES`), then lets explicit flags win.
    pub fn campaign_options(&self) -> CampaignOptions {
        let mut opts = CampaignOptions::from_env();
        if let Some(path) = &self.checkpoint {
            opts.checkpoint = Some(path.into());
        }
        if let Some(policy) = self.fail_policy {
            opts.policy = policy;
        }
        if let Some(retries) = self.retries {
            opts.retries = retries;
        }
        opts
    }

    /// The telemetry JSONL destination: `--telemetry-out` wins, otherwise
    /// the `NAPEL_TELEMETRY` environment variable. `None` means telemetry
    /// stays off (the noop global — near-zero cost on hot paths).
    pub fn telemetry_path(&self) -> Option<std::path::PathBuf> {
        match &self.telemetry_out {
            Some(path) => Some(path.into()),
            None => std::env::var_os("NAPEL_TELEMETRY").map(Into::into),
        }
    }

    /// Applies the observability options: caps the log facade at `error`
    /// under `--quiet`, and installs an enabled telemetry collector when a
    /// JSONL destination is configured. Call once, at the top of `main`.
    pub fn init_telemetry(&self) {
        if self.quiet {
            napel_telemetry::log::set_max_level(Some(napel_telemetry::log::Level::Error));
        }
        if self.telemetry_path().is_some() {
            napel_telemetry::install(napel_telemetry::Telemetry::enabled());
        }
    }

    /// Drains the telemetry collected since [`Self::init_telemetry`],
    /// writes the JSONL event stream to the configured path, and prints
    /// the phase-time / counter summary on stderr (suppressed by
    /// `--quiet`). A no-op when telemetry is off. Call once, at the end
    /// of `main`.
    pub fn finish_telemetry(&self) {
        let Some(path) = self.telemetry_path() else {
            return;
        };
        let report = napel_telemetry::global().drain();
        match std::fs::write(&path, report.to_jsonl()) {
            Ok(()) => napel_telemetry::info!(
                "telemetry: wrote {} events to {}",
                report.spans.len() + report.counters.len() + report.histograms.len(),
                path.display()
            ),
            Err(e) => napel_telemetry::warn!(
                "napel: telemetry output `{}` write failed ({e}); summary only",
                path.display()
            ),
        }
        if napel_telemetry::log::enabled(napel_telemetry::log::Level::Info) {
            eprintln!("{}", report.summary());
        }
    }

    /// The artifact policy implied by the options: `--model-in` sets the
    /// load directory (evaluation skips training); `--model-out` — or,
    /// failing that, the `NAPEL_MODEL_DIR` environment variable — sets
    /// the save directory for freshly trained models.
    pub fn model_io(&self) -> ModelIo {
        let save = self
            .model_out
            .clone()
            .map(PathBuf::from)
            .or_else(|| std::env::var_os("NAPEL_MODEL_DIR").map(PathBuf::from));
        let load = self.model_in.clone().map(PathBuf::from);
        ModelIo::new(save, load)
    }

    /// The workload subset implied by `--apps` (all 12 when absent).
    ///
    /// # Panics
    ///
    /// Panics with a usage message on an unknown application name.
    pub fn workloads(&self) -> Vec<Workload> {
        let Some(list) = &self.apps else {
            return Workload::ALL.to_vec();
        };
        list.split(',')
            .map(|name| {
                let name = name.trim();
                Workload::ALL
                    .into_iter()
                    .find(|w| w.name() == name)
                    .unwrap_or_else(|| panic!("unknown application `{name}` in --apps"))
            })
            .collect()
    }

    /// The accuracy-vs-budget budgets implied by `--budgets`, falling back
    /// to `default` when the flag is absent.
    ///
    /// # Panics
    ///
    /// Panics with a usage message on a malformed list.
    pub fn budget_list(&self, default: &[usize]) -> Vec<usize> {
        let Some(list) = &self.budgets else {
            return default.to_vec();
        };
        list.split(',')
            .map(|n| {
                n.trim()
                    .parse()
                    .unwrap_or_else(|_| panic!("--budgets entry `{n}` is not an integer"))
            })
            .collect()
    }

    /// The NAPEL training configuration implied by the options.
    pub fn napel_config(&self) -> NapelConfig {
        if self.quick {
            NapelConfig {
                seed: self.seed,
                ..NapelConfig::untuned()
            }
        } else {
            NapelConfig {
                seed: self.seed,
                ..NapelConfig::default()
            }
        }
    }
}

/// Surfaces a campaign's fault-tolerance activity on stderr — restored
/// and quarantined counts, and one line of provenance per quarantined
/// job — keeping stdout reserved for the table/figure itself. Silent on
/// a plain clean run, and under `--quiet` (quarantines are warnings;
/// restore notices are informational).
pub fn announce_report(report: &CampaignReport) {
    if report.is_clean() && report.restored == 0 {
        return;
    }
    if report.is_clean() {
        napel_telemetry::info!("campaign: {}", report.summary());
    } else {
        napel_telemetry::warn!("campaign: {}", report.summary());
    }
    for failure in &report.quarantined {
        napel_telemetry::warn!("  quarantined: {failure}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Options {
        Options::parse(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults() {
        let o = parse(&[]);
        assert_eq!(o, Options::default());
        assert_eq!(o.scale, Scale::laptop());
        assert!(!o.quick);
    }

    #[test]
    fn all_flags() {
        let o = parse(&[
            "--scale",
            "tiny",
            "--quick",
            "--seed",
            "7",
            "--configs",
            "16",
            "--jobs",
            "2",
        ]);
        assert_eq!(o.scale, Scale::tiny());
        assert!(o.quick);
        assert_eq!(o.seed, 7);
        assert_eq!(o.configs, 16);
        assert_eq!(o.jobs.as_deref(), Some("2"));
        use napel_core::campaign::Executor;
        assert_eq!(o.executor().workers(), 2);
    }

    #[test]
    #[should_panic(expected = "unknown flag")]
    fn unknown_flag_panics() {
        let _ = parse(&["--frobnicate"]);
    }

    #[test]
    fn fault_flags_override_campaign_options() {
        let o = parse(&[
            "--checkpoint",
            "/tmp/journal.ckpt",
            "--fail-policy",
            "quarantine",
            "--retries",
            "2",
        ]);
        let opts = o.campaign_options();
        assert_eq!(
            opts.checkpoint.as_deref(),
            Some(std::path::Path::new("/tmp/journal.ckpt"))
        );
        assert_eq!(opts.policy, FaultPolicy::Quarantine);
        assert_eq!(opts.retries, 2);
    }

    #[test]
    #[should_panic(expected = "fault policy")]
    fn bad_fail_policy_panics() {
        let _ = parse(&["--fail-policy", "maybe"]);
    }

    #[test]
    fn model_flags_build_the_io_policy() {
        let o = parse(&["--model-out", "/tmp/models", "--model-in", "/tmp/stored"]);
        let io = o.model_io();
        assert_eq!(io.save_dir(), Some(std::path::Path::new("/tmp/models")));
        assert_eq!(io.load_dir(), Some(std::path::Path::new("/tmp/stored")));

        let o = parse(&[]);
        if std::env::var_os("NAPEL_MODEL_DIR").is_none() {
            assert!(o.model_io().is_none());
        }
    }

    #[test]
    fn predict_flags_parse() {
        let o = parse(&[
            "--input",
            "rows.txt",
            "--workload",
            "atax",
            "--instructions",
            "5000000",
        ]);
        assert_eq!(o.input.as_deref(), Some("rows.txt"));
        assert_eq!(o.workload.as_deref(), Some("atax"));
        assert_eq!(o.instructions, 5_000_000);
        assert_eq!(Options::default().instructions, 1_000_000);
    }

    #[test]
    fn apps_and_budgets_flags_parse() {
        let o = parse(&["--apps", "atax, gemv", "--budgets", "5,7"]);
        assert_eq!(o.workloads(), vec![Workload::Atax, Workload::Gemv]);
        assert_eq!(o.budget_list(&[9]), vec![5, 7]);

        let o = parse(&[]);
        assert_eq!(o.workloads().len(), Workload::ALL.len());
        assert_eq!(o.budget_list(&[5, 8]), vec![5, 8]);
    }

    #[test]
    #[should_panic(expected = "unknown application")]
    fn unknown_app_panics() {
        let _ = parse(&["--apps", "frob"]).workloads();
    }

    #[test]
    fn quick_config_has_single_candidate() {
        let o = parse(&["--quick"]);
        assert_eq!(o.napel_config().grid.len(), 1);
        let o = parse(&[]);
        assert!(o.napel_config().grid.len() > 1);
    }
}
