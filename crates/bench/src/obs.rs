//! Trace-export tooling: telemetry JSONL → Chrome trace-event JSON.
//!
//! The telemetry stream records spans as *durations* ordered by
//! `(lane, seq)` — a span line is written when the span closes, so
//! children precede their parent in sequence order and no span carries
//! an absolute timestamp. Timeline viewers (Perfetto, `chrome://tracing`)
//! want the opposite: absolute `ts`/`dur` pairs with children nested
//! inside parents. [`place_spans`] synthesizes that timeline:
//!
//! - each lane becomes one track (`tid`), with a cursor per nesting
//!   depth advancing as spans are placed;
//! - a span claims every deeper span placed since the previous span at
//!   its depth as its children, starts where its first child started
//!   (or at its depth's cursor when childless), and ends no earlier
//!   than its last child — so containment holds *exactly*, even when
//!   recorded durations disagree slightly with the sum of their parts;
//! - self time (own duration minus claimed children) is tracked per
//!   span, feeding the [`self_time_table`] hot-phase summary.
//!
//! The synthesized timeline is faithful to per-span durations and
//! nesting, not to wall-clock gaps between spans: time the process
//! spent outside any span does not appear. That is the right trade for
//! the question the `obs` bin answers — *where did the measured time
//! go* — and it is what makes the output deterministic for a given
//! JSONL input.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;

use napel_telemetry::{SpanEvent, TelemetryReport};

/// Deepest nesting level the placer distinguishes; spans reporting a
/// larger depth are clamped (the telemetry macros produce 0–3).
const MAX_DEPTH: usize = 32;

/// Lanes at or above this base carry `napel-serve` per-request traces
/// (mirrors `napel_serve::TRACE_LANE_BASE`; not imported so the bench
/// crate stays independent of the serving stack).
const SERVE_TRACE_LANE_BASE: u64 = 1_000;

/// One span placed on the synthesized timeline (all times microseconds).
#[derive(Debug, Clone, PartialEq)]
pub struct PlacedSpan {
    /// Span name.
    pub name: String,
    /// Telemetry lane (one timeline track per lane).
    pub lane: u64,
    /// Nesting depth as recorded.
    pub depth: u64,
    /// Absolute start on the lane's synthesized clock.
    pub ts_us: f64,
    /// Duration, widened if needed to contain every claimed child.
    pub dur_us: f64,
    /// Duration minus claimed children — the span's own work.
    pub self_us: f64,
    /// Attributes carried by the span event.
    pub attrs: Vec<(String, String)>,
}

/// Places every span of `report` on a per-lane timeline. Output order:
/// lanes ascending, then placement (sequence) order within a lane.
pub fn place_spans(report: &TelemetryReport) -> Vec<PlacedSpan> {
    let mut lanes: BTreeMap<u64, Vec<&SpanEvent>> = BTreeMap::new();
    for span in &report.spans {
        lanes.entry(span.lane).or_default().push(span);
    }
    let mut placed = Vec::with_capacity(report.spans.len());
    for (lane, mut spans) in lanes {
        spans.sort_by_key(|s| s.seq);
        // cursor[d]: where the next span at depth d starts; pending[d]:
        // placed-but-unclaimed (start, end, dur) extents at depth d.
        let mut cursor = [0.0_f64; MAX_DEPTH + 1];
        let mut pending: Vec<Vec<(f64, f64, f64)>> = vec![Vec::new(); MAX_DEPTH + 1];
        for span in spans {
            let d = (span.depth as usize).min(MAX_DEPTH);
            let dur = span.seconds.max(0.0) * 1e6;
            let mut start = cursor[d];
            let mut child_end = f64::NEG_INFINITY;
            let mut child_dur = 0.0;
            for slot in pending.iter_mut().take(MAX_DEPTH + 1).skip(d + 1) {
                for (cs, ce, cd) in slot.drain(..) {
                    start = start.min(cs);
                    child_end = child_end.max(ce);
                    child_dur += cd;
                }
            }
            let end = (start + dur).max(child_end);
            let total = end - start;
            pending[d].push((start, end, total));
            for c in cursor.iter_mut().skip(d) {
                *c = end;
            }
            placed.push(PlacedSpan {
                name: span.name.clone(),
                lane,
                depth: span.depth,
                ts_us: start,
                dur_us: total,
                self_us: (total - child_dur).max(0.0),
                attrs: span.attrs.clone(),
            });
        }
    }
    placed
}

fn json_escape(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// A human track label for a lane.
fn lane_label(lane: u64) -> String {
    if lane >= SERVE_TRACE_LANE_BASE {
        format!("serve shard {}", lane - SERVE_TRACE_LANE_BASE)
    } else {
        format!("lane {lane}")
    }
}

/// Renders placed spans as Chrome trace-event JSON (the "JSON object
/// format"): complete `ph:"X"` events on `pid` 1 with one `tid` per
/// lane, plus `thread_name` metadata labeling each track. Loadable
/// directly in Perfetto or `chrome://tracing`.
pub fn chrome_trace(placed: &[PlacedSpan]) -> String {
    let mut out = String::with_capacity(128 + placed.len() * 160);
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    let mut first = true;
    let lanes: BTreeSet<u64> = placed.iter().map(|p| p.lane).collect();
    for lane in lanes {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(
            out,
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{lane},\
             \"args\":{{\"name\":\""
        );
        json_escape(&mut out, &lane_label(lane));
        out.push_str("\"}}");
    }
    for p in placed {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str("{\"name\":\"");
        json_escape(&mut out, &p.name);
        let _ = write!(
            out,
            "\",\"cat\":\"span\",\"ph\":\"X\",\"pid\":1,\"tid\":{},\
             \"ts\":{:.3},\"dur\":{:.3},\"args\":{{",
            p.lane, p.ts_us, p.dur_us
        );
        for (i, (k, v)) in p.attrs.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('"');
            json_escape(&mut out, k);
            out.push_str("\":\"");
            json_escape(&mut out, v);
            out.push('"');
        }
        out.push_str("}}");
    }
    out.push_str("]}\n");
    out
}

/// Aggregates placed spans by name and renders the top-`top` phases by
/// total self time: where the measured time actually went.
pub fn self_time_table(placed: &[PlacedSpan], top: usize) -> String {
    struct Agg {
        count: u64,
        self_us: f64,
        total_us: f64,
    }
    let mut by_name: BTreeMap<&str, Agg> = BTreeMap::new();
    for p in placed {
        let agg = by_name.entry(&p.name).or_insert(Agg {
            count: 0,
            self_us: 0.0,
            total_us: 0.0,
        });
        agg.count += 1;
        agg.self_us += p.self_us;
        agg.total_us += p.dur_us;
    }
    let grand_self: f64 = by_name.values().map(|a| a.self_us).sum();
    let mut rows: Vec<(&str, Agg)> = by_name.into_iter().collect();
    rows.sort_by(|a, b| b.1.self_us.total_cmp(&a.1.self_us).then(a.0.cmp(b.0)));
    let shown = rows.len().min(top.max(1));

    let mut out = String::new();
    let _ = writeln!(
        out,
        "top {shown} of {} phases by self time ({} spans placed):",
        rows.len(),
        placed.len()
    );
    let name_width = rows[..shown]
        .iter()
        .map(|(n, _)| n.len())
        .max()
        .unwrap_or(5)
        .max("phase".len());
    let _ = writeln!(
        out,
        "{:<name_width$}  {:>8}  {:>12}  {:>12}  {:>6}",
        "phase", "count", "self(ms)", "total(ms)", "self%"
    );
    for (name, agg) in rows.iter().take(shown) {
        let share = if grand_self > 0.0 {
            100.0 * agg.self_us / grand_self
        } else {
            0.0
        };
        let _ = writeln!(
            out,
            "{name:<name_width$}  {:>8}  {:>12.3}  {:>12.3}  {share:>5.1}%",
            agg.count,
            agg.self_us / 1e3,
            agg.total_us / 1e3,
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(name: &str, lane: u64, seq: u64, depth: u64, seconds: f64) -> SpanEvent {
        SpanEvent {
            name: name.to_string(),
            lane,
            seq,
            depth,
            parent: None,
            seconds,
            attrs: Vec::new(),
        }
    }

    fn report(spans: Vec<SpanEvent>) -> TelemetryReport {
        TelemetryReport {
            spans,
            counters: Vec::new(),
            histograms: Vec::new(),
            log_histograms: Vec::new(),
        }
    }

    #[test]
    fn parents_contain_their_children_exactly() {
        // Recorded close-order: two children, then their parent whose
        // duration is *smaller* than the children's sum (clock skew);
        // then a sibling leaf at depth 0.
        let r = report(vec![
            span("child.a", 0, 0, 1, 0.010),
            span("child.b", 0, 1, 1, 0.020),
            span("parent", 0, 2, 0, 0.025),
            span("tail", 0, 3, 0, 0.005),
        ]);
        let placed = place_spans(&r);
        let by_name = |n: &str| placed.iter().find(|p| p.name == n).unwrap();
        let (a, b, parent, tail) = (
            by_name("child.a"),
            by_name("child.b"),
            by_name("parent"),
            by_name("tail"),
        );
        // Children are sequential on the lane clock.
        assert_eq!(a.ts_us, 0.0);
        assert_eq!(b.ts_us, a.ts_us + a.dur_us);
        // The parent is widened to contain both children.
        assert_eq!(parent.ts_us, a.ts_us);
        assert_eq!(parent.ts_us + parent.dur_us, b.ts_us + b.dur_us);
        for child in [a, b] {
            assert!(parent.ts_us <= child.ts_us);
            assert!(child.ts_us + child.dur_us <= parent.ts_us + parent.dur_us);
        }
        // Self time is parent total minus claimed children, floored at 0.
        assert_eq!(parent.self_us, 0.0);
        // The sibling starts after the parent ends — no overlap at depth 0.
        assert_eq!(tail.ts_us, parent.ts_us + parent.dur_us);
        assert_eq!(tail.self_us, tail.dur_us);
    }

    #[test]
    fn parent_longer_than_children_keeps_its_duration() {
        let r = report(vec![
            span("inner", 3, 0, 1, 0.004),
            span("outer", 3, 1, 0, 0.010),
        ]);
        let placed = place_spans(&r);
        let outer = placed.iter().find(|p| p.name == "outer").unwrap();
        assert_eq!(outer.dur_us, 10_000.0);
        assert_eq!(outer.self_us, 6_000.0);
    }

    #[test]
    fn lanes_get_independent_clocks() {
        let r = report(vec![span("x", 0, 0, 0, 0.010), span("y", 7, 0, 0, 0.003)]);
        let placed = place_spans(&r);
        assert!(
            placed.iter().all(|p| p.ts_us == 0.0),
            "each lane starts at 0"
        );
    }

    #[test]
    fn chrome_trace_shape_and_lane_labels() {
        let r = report(vec![
            span("campaign.job", 2, 0, 0, 0.010),
            span("serve.request", 1_003, 0, 0, 0.001),
        ]);
        let text = chrome_trace(&place_spans(&r));
        assert!(text.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["));
        assert!(text.trim_end().ends_with("]}"));
        assert!(text.contains("\"ph\":\"X\""));
        assert!(text.contains("\"name\":\"campaign.job\""));
        assert!(text.contains("\"tid\":2"));
        // Metadata events label the tracks.
        assert!(text.contains("\"ph\":\"M\""));
        assert!(text.contains("lane 2"));
        assert!(text.contains("serve shard 3"));
        // Balanced braces/brackets — cheap structural sanity.
        let opens = text.matches('{').count();
        let closes = text.matches('}').count();
        assert_eq!(opens, closes);
    }

    #[test]
    fn attrs_are_escaped_into_args() {
        let mut s = span("q", 0, 0, 0, 0.001);
        s.attrs.push(("key".to_string(), "va\"lue".to_string()));
        let text = chrome_trace(&place_spans(&report(vec![s])));
        assert!(text.contains("\"args\":{\"key\":\"va\\\"lue\"}"));
    }

    #[test]
    fn self_time_table_ranks_by_self_time() {
        let r = report(vec![
            span("small", 0, 0, 1, 0.001),
            span("wrapper", 0, 1, 0, 0.003), // self 2ms
            span("big", 0, 2, 0, 0.050),     // self 50ms
        ]);
        let table = self_time_table(&place_spans(&r), 2);
        let big_at = table.find("big").expect("big listed");
        let wrapper_at = table.find("wrapper").expect("wrapper listed");
        assert!(big_at < wrapper_at, "big ranks first:\n{table}");
        assert!(table.contains("top 2 of 3 phases"));
        assert!(table.contains("self%"));
    }
}
