//! End-to-end tests for the `predict` binary's error contract: every
//! operational failure exits with status 1 and one `predict: ...` line
//! on stderr — no panics, no backtraces — and the happy path still
//! prints a prediction table.

use std::path::PathBuf;
use std::process::{Command, Output};
use std::sync::OnceLock;

use napel_core::collect::{collect, CollectionPlan};
use napel_core::model::{Napel, NapelConfig};
use napel_workloads::{Scale, Workload};

fn scratch_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("napel-predict-cli-{name}"));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

/// One tiny trained bundle shared by every test (training dominates this
/// suite's runtime; do it once).
fn bundle() -> &'static (PathBuf, usize) {
    static BUNDLE: OnceLock<(PathBuf, usize)> = OnceLock::new();
    BUNDLE.get_or_init(|| {
        let set = collect(&CollectionPlan {
            workloads: vec![Workload::Atax, Workload::Gemv],
            scale: Scale::tiny(),
            ..Default::default()
        });
        let trained = Napel::new(NapelConfig::untuned())
            .train(&set)
            .expect("train");
        let dir = scratch_dir("bundle");
        let path = dir.join("tiny.napel");
        trained.save(&path).expect("save");
        (path, set.feature_names.len())
    })
}

fn predict(args: &[&str]) -> Output {
    // `--quiet` keeps informational log lines off stderr so the
    // one-diagnostic-line contract is what these tests measure.
    Command::new(env!("CARGO_BIN_EXE_predict"))
        .arg("--quiet")
        .args(args)
        .output()
        .expect("spawn predict")
}

/// Asserts the failure contract: exit 1, and stderr is exactly one
/// `predict: ...` diagnostic line containing `needle`.
fn assert_one_line_failure(output: &Output, needle: &str) {
    assert_eq!(output.status.code(), Some(1), "expected exit 1: {output:?}");
    let stderr = String::from_utf8_lossy(&output.stderr);
    let diagnostics: Vec<&str> = stderr.lines().collect();
    assert_eq!(diagnostics.len(), 1, "one diagnostic line, got:\n{stderr}");
    assert!(
        diagnostics[0].starts_with("predict: "),
        "diagnostic must be prefixed: {stderr}"
    );
    assert!(
        diagnostics[0].contains(needle),
        "`{needle}` not in: {stderr}"
    );
    assert!(
        !stderr.contains("panicked"),
        "errors must not panic:\n{stderr}"
    );
}

#[test]
fn missing_model_flag_is_a_one_line_failure() {
    let output = predict(&[]);
    assert_one_line_failure(&output, "--model-in");
}

#[test]
fn missing_bundle_file_is_a_one_line_failure() {
    let output = predict(&["--model-in", "/nonexistent/models/nope.napel"]);
    assert_one_line_failure(&output, "nope.napel");
}

#[test]
fn corrupt_bundle_is_a_one_line_failure() {
    let dir = scratch_dir("corrupt");
    let path = dir.join("garbage.napel");
    std::fs::write(&path, "not a model artifact at all\n").unwrap();
    let output = predict(&["--model-in", path.to_str().unwrap()]);
    assert_one_line_failure(&output, "garbage.napel");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn malformed_input_token_is_a_one_line_failure_naming_the_line() {
    let (bundle, _) = bundle();
    let dir = scratch_dir("badtoken");
    let input = dir.join("rows.txt");
    std::fs::write(&input, "# comment\n1.0 2.0 wat 4.0\n").unwrap();
    let output = predict(&[
        "--model-in",
        bundle.to_str().unwrap(),
        "--input",
        input.to_str().unwrap(),
    ]);
    assert_one_line_failure(&output, "`wat` is not a number");
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains(":2:"), "line number named: {stderr}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn empty_input_is_a_one_line_failure() {
    let (bundle, _) = bundle();
    let dir = scratch_dir("empty");
    let input = dir.join("rows.txt");
    std::fs::write(&input, "# nothing here\n\n").unwrap();
    let output = predict(&[
        "--model-in",
        bundle.to_str().unwrap(),
        "--input",
        input.to_str().unwrap(),
    ]);
    assert_one_line_failure(&output, "no feature rows");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn wrong_row_width_is_a_one_line_schema_failure() {
    let (bundle, nfeat) = bundle();
    let dir = scratch_dir("width");
    let input = dir.join("rows.txt");
    std::fs::write(&input, "1.0 2.0 3.0\n").unwrap();
    let output = predict(&[
        "--model-in",
        bundle.to_str().unwrap(),
        "--input",
        input.to_str().unwrap(),
    ]);
    assert_one_line_failure(&output, &format!("model expects {nfeat}"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn unknown_workload_is_a_one_line_failure_listing_the_options() {
    let (bundle, _) = bundle();
    let output = predict(&[
        "--model-in",
        bundle.to_str().unwrap(),
        "--workload",
        "frobnicate",
    ]);
    assert_one_line_failure(&output, "unknown workload `frobnicate`");
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("atax"), "options listed: {stderr}");
}

#[test]
fn valid_rows_score_and_exit_zero() {
    let (bundle, nfeat) = bundle();
    let dir = scratch_dir("happy");
    let input = dir.join("rows.txt");
    let row: Vec<String> = (0..*nfeat).map(|i| format!("{}.5", i % 3)).collect();
    std::fs::write(&input, format!("# one row\n{}\n", row.join(" "))).unwrap();
    let output = predict(&[
        "--model-in",
        bundle.to_str().unwrap(),
        "--input",
        input.to_str().unwrap(),
    ]);
    assert!(output.status.success(), "{output:?}");
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("Predictions for 1 rows"), "{stdout}");
    assert!(stdout.contains("geo-sd"), "{stdout}");
    std::fs::remove_dir_all(&dir).ok();
}
