//! Simulator throughput: cycles-level simulation of a fixed kernel trace
//! under the Table 3 architecture and variants.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use napel_workloads::{Scale, Workload};
use nmc_sim::{ArchConfig, NmcSystem, RowPolicy};

fn bench_simulator(c: &mut Criterion) {
    let trace = Workload::Atax.generate(&[1500.0, 16.0], Scale::laptop());
    let insts = trace.total_insts();
    let mut g = c.benchmark_group("simulator");
    g.sample_size(10);
    g.throughput(criterion::Throughput::Elements(insts as u64));

    g.bench_function("atax_central_closed_row", |b| {
        b.iter_batched(
            || NmcSystem::new(ArchConfig::paper_default()),
            |sys| sys.run(&trace),
            BatchSize::LargeInput,
        )
    });
    g.bench_function("atax_central_open_row", |b| {
        b.iter_batched(
            || {
                NmcSystem::new(ArchConfig {
                    row_policy: RowPolicy::Open,
                    ..ArchConfig::paper_default()
                })
            },
            |sys| sys.run(&trace),
            BatchSize::LargeInput,
        )
    });
    g.finish();
}

criterion_group!(benches, bench_simulator);
criterion_main!(benches);
