//! PISA profile extraction throughput (the "kernel analysis" phase).

use criterion::{criterion_group, criterion_main, Criterion};
use napel_pisa::ApplicationProfile;
use napel_workloads::{Scale, Workload};

fn bench_profile(c: &mut Criterion) {
    let trace = Workload::Gemv.generate(&[1250.0, 16.0, 80.0], Scale::laptop());
    let insts = trace.total_insts();
    let mut g = c.benchmark_group("profile");
    g.sample_size(10);
    g.throughput(criterion::Throughput::Elements(insts as u64));
    g.bench_function("gemv_central", |b| {
        b.iter(|| ApplicationProfile::of(&trace))
    });
    g.finish();
}

criterion_group!(benches, bench_profile);
criterion_main!(benches);
