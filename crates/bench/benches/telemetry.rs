//! Cost of the telemetry subsystem on the campaign hot path.
//!
//! Three variants of the same tiny campaign: the default noop global
//! (`enabled()` is one relaxed atomic load — this must match the
//! pre-telemetry baseline), an installed-but-drained collector (spans,
//! counters, and lane bookkeeping all live), and noop again after
//! uninstalling (confirms `install` is reversible and the gate really
//! turns the cost off, not just down).

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};

use napel_core::campaign::{plan_jobs, Serial};
use napel_core::collect::{arch_neighborhood, collect_with, CollectionPlan};
use napel_telemetry::Telemetry;
use napel_workloads::{Scale, Workload};

fn tiny_plan() -> CollectionPlan {
    CollectionPlan {
        workloads: vec![Workload::Atax, Workload::Gemv],
        arch_configs: arch_neighborhood().into_iter().take(3).collect(),
        scale: Scale::tiny(),
        dedup: true,
    }
}

fn bench_telemetry_overhead(c: &mut Criterion) {
    let plan = tiny_plan();
    let jobs = plan_jobs(&plan).len() as u64;

    let mut group = c.benchmark_group("telemetry");
    group.sample_size(10);
    group.throughput(Throughput::Elements(jobs));

    napel_telemetry::install(Telemetry::noop());
    group.bench_function("noop", |b| {
        b.iter(|| black_box(collect_with(&plan, &Serial)))
    });

    napel_telemetry::install(Telemetry::enabled());
    group.bench_function("enabled", |b| {
        b.iter(|| {
            let out = black_box(collect_with(&plan, &Serial));
            // Drain per iteration so the event buffers don't grow without
            // bound across samples — the steady-state cost is what matters.
            black_box(napel_telemetry::global().drain());
            out
        })
    });

    napel_telemetry::install(Telemetry::noop());
    group.bench_function("noop-after-uninstall", |b| {
        b.iter(|| black_box(collect_with(&plan, &Serial)))
    });

    group.finish();
}

criterion_group!(benches, bench_telemetry_overhead);
criterion_main!(benches);
