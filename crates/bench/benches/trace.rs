//! Trace residency: compact-encoding throughput and the memory saved by
//! keeping campaign traces encoded instead of materialized.

use criterion::{criterion_group, criterion_main, Criterion};
use napel_ir::{EncodedTrace, EncodedTraceSink, TeeSink};
use napel_pisa::ProfileObserver;
use napel_workloads::{Scale, Workload};
use nmc_sim::{ArchConfig, NmcSystem};

fn bench_trace(c: &mut Criterion) {
    let w = Workload::Gemv;
    let params: Vec<f64> = w.spec().params.iter().map(|p| p.test).collect();
    let trace = w.generate(&params, Scale::laptop());
    let insts = trace.total_insts() as u64;
    let enc = EncodedTrace::from_multi(&trace);
    println!(
        "trace residency: {} insts, {} B materialized, {} B encoded ({:.1}x)",
        insts,
        enc.materialized_bytes(),
        enc.encoded_bytes(),
        enc.materialized_bytes() as f64 / enc.encoded_bytes() as f64
    );

    let mut g = c.benchmark_group("trace");
    g.sample_size(10);
    g.throughput(criterion::Throughput::Elements(insts));

    // Encoding cost: the extra work the single-pass campaign pays while
    // the kernel streams (versus observing alone).
    g.bench_function("encode", |b| {
        b.iter(|| EncodedTrace::from_multi(&trace).encoded_bytes())
    });

    // Decoding cost: what the simulate step pays to pull instructions
    // back out of the compact form.
    g.bench_function("decode", |b| {
        b.iter(|| {
            (0..enc.num_threads())
                .map(|t| enc.thread_iter(t).count())
                .sum::<usize>()
        })
    });

    // End-to-end single pass (generate + observe + encode), the campaign's
    // fused profiling phase.
    g.bench_function("single_pass", |b| {
        b.iter(|| {
            let mut observer = ProfileObserver::new();
            let mut sink = EncodedTraceSink::new();
            {
                let mut tee = TeeSink::new(&mut observer, &mut sink);
                w.generate_into(&params, Scale::laptop(), &mut tee);
            }
            (observer.finish(), sink.finish().encoded_bytes())
        })
    });

    // Simulation straight from the encoded stream, no materialization.
    let sys = NmcSystem::new(ArchConfig::paper_default());
    g.bench_function("simulate_streamed", |b| {
        b.iter(|| {
            sys.run_streams(
                (0..enc.num_threads())
                    .map(|t| enc.thread_iter(t))
                    .collect::<Vec<_>>(),
            )
        })
    });

    g.finish();
}

criterion_group!(benches, bench_trace);
criterion_main!(benches);
