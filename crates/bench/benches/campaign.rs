//! Serial vs threaded campaign execution on a tiny two-workload,
//! three-architecture batch (the shape of the determinism test, so the
//! numbers measure exactly the path the guarantee covers).
//!
//! The interesting comparison is wall-clock per campaign; throughput is
//! reported in jobs/s. On a single-core host the threaded executors can
//! only tie (modulo scheduling overhead) — see EXPERIMENTS.md for
//! recorded numbers and the expected multi-core behavior.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};

use napel_core::campaign::{plan_jobs, Serial, Threaded};
use napel_core::collect::{arch_neighborhood, collect_with, CollectionPlan};
use napel_workloads::{Scale, Workload};

fn tiny_plan() -> CollectionPlan {
    CollectionPlan {
        workloads: vec![Workload::Atax, Workload::Gemv],
        arch_configs: arch_neighborhood().into_iter().take(3).collect(),
        scale: Scale::tiny(),
        dedup: true,
    }
}

fn bench_campaign(c: &mut Criterion) {
    let plan = tiny_plan();
    let jobs = plan_jobs(&plan).len() as u64;

    let mut group = c.benchmark_group("campaign");
    group.sample_size(10);
    group.throughput(Throughput::Elements(jobs));
    group.bench_function("serial", |b| {
        b.iter(|| black_box(collect_with(&plan, &Serial)))
    });
    for workers in [2usize, 4] {
        let exec = Threaded::new(workers);
        group.bench_function(&format!("threaded-{workers}"), |b| {
            b.iter(|| black_box(collect_with(&plan, &exec)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_campaign);
criterion_main!(benches);
