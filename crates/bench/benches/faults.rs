//! Overhead of the supervised, fault-tolerant campaign runtime.
//!
//! Three conditions on the same tiny batch as the `campaign` bench:
//! the raw engine (`run_jobs`), the supervised runtime on a clean run
//! (per-job `catch_unwind`, label validation, outcome bookkeeping), and
//! the supervised runtime under quarantine with injected faults (every
//! fourth job panics once, so the retry path is exercised too). The
//! interesting number is the clean-supervised vs raw gap — the price
//! every campaign pays for isolation — which should be noise next to
//! simulation time.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};

use napel_core::campaign::{plan_jobs, run_jobs, run_supervised, Serial};
use napel_core::collect::{arch_neighborhood, CollectionPlan};
use napel_core::fault::{CampaignOptions, FaultInjector};
use napel_workloads::{Scale, Workload};

fn tiny_plan() -> CollectionPlan {
    CollectionPlan {
        workloads: vec![Workload::Atax, Workload::Gemv],
        arch_configs: arch_neighborhood().into_iter().take(3).collect(),
        scale: Scale::tiny(),
        dedup: true,
    }
}

fn bench_faults(c: &mut Criterion) {
    let plan = tiny_plan();
    let jobs = plan_jobs(&plan);

    let mut group = c.benchmark_group("faults");
    group.sample_size(10);
    group.throughput(Throughput::Elements(jobs.len() as u64));

    group.bench_function("raw", |b| b.iter(|| black_box(run_jobs(&Serial, &jobs))));

    let clean = CampaignOptions::default();
    group.bench_function("supervised-clean", |b| {
        b.iter(|| black_box(run_supervised(&Serial, &jobs, &clean).unwrap()))
    });

    let mut injector = FaultInjector::new();
    for index in (0..jobs.len()).step_by(4) {
        injector = injector.panic_once_at(index);
    }
    let faulty = CampaignOptions::quarantine()
        .with_retries(1)
        .with_injector(injector);
    group.bench_function("supervised-faulty", |b| {
        b.iter(|| black_box(run_supervised(&Serial, &jobs, &faulty).unwrap()))
    });

    group.finish();
}

criterion_group!(benches, bench_faults);
criterion_main!(benches);
