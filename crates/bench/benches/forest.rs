//! Random-forest training and inference cost (the "Train+Tune" and "Pred."
//! columns of Table 4 at the ML level).

use criterion::{criterion_group, criterion_main, Criterion};
use napel_core::collect::{collect, CollectionPlan};
use napel_ml::forest::RandomForestParams;
use napel_ml::{Estimator, Regressor};
use napel_workloads::{Scale, Workload};
use rand::{rngs::StdRng, SeedableRng};

fn bench_forest(c: &mut Criterion) {
    let set = collect(&CollectionPlan {
        workloads: vec![Workload::Atax, Workload::Gemv, Workload::Mvt],
        scale: Scale::tiny(),
        ..Default::default()
    });
    let data = set.ipc_dataset().expect("dataset");
    let params = RandomForestParams::default();
    let model = params
        .fit(&data, &mut StdRng::seed_from_u64(1))
        .expect("fit");
    let x = data.row(0).to_vec();

    let mut g = c.benchmark_group("forest");
    g.sample_size(10);
    g.bench_function("train_100_trees", |b| {
        b.iter(|| {
            params
                .fit(&data, &mut StdRng::seed_from_u64(1))
                .expect("fit")
        })
    });
    g.bench_function("predict_one", |b| b.iter(|| model.predict_one(&x)));
    g.finish();
}

criterion_group!(benches, bench_forest);
criterion_main!(benches);
