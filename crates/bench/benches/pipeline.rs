//! End-to-end pipeline cost: DoE collection for one application, and the
//! per-configuration simulate-vs-predict gap behind Figure 4.

use criterion::{criterion_group, criterion_main, Criterion};
use napel_core::collect::{collect_app, CollectionPlan};
use napel_core::model::{Napel, NapelConfig};
use napel_pisa::ApplicationProfile;
use napel_workloads::{Scale, Workload};
use nmc_sim::{ArchConfig, NmcSystem};

fn bench_pipeline(c: &mut Criterion) {
    let mut g = c.benchmark_group("pipeline");
    g.sample_size(10);

    let plan = CollectionPlan {
        workloads: vec![Workload::Atax],
        scale: Scale::tiny(),
        ..Default::default()
    };
    g.bench_function("collect_atax_tiny", |b| {
        b.iter(|| collect_app(Workload::Atax, &plan))
    });

    // Simulate-vs-predict, the Figure 4 per-configuration gap.
    let set = napel_core::collect::collect(&CollectionPlan {
        workloads: vec![Workload::Atax, Workload::Gemv, Workload::Mvt],
        scale: Scale::tiny(),
        ..Default::default()
    });
    let trained = Napel::new(NapelConfig::untuned())
        .train(&set)
        .expect("train");
    let trace = Workload::Atax.generate(&[1500.0, 16.0], Scale::tiny());
    let profile = ApplicationProfile::of(&trace);
    let arch = ArchConfig::paper_default();

    g.bench_function("simulate_one_config", |b| {
        b.iter(|| NmcSystem::new(arch.clone()).run(&trace))
    });
    g.bench_function("predict_one_config", |b| {
        b.iter(|| trained.predict(&profile, &arch))
    });
    g.finish();
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
