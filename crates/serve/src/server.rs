//! The server proper: accept loop, connection threads, shard routing,
//! and the clean-drain path.
//!
//! Thread topology:
//!
//! ```text
//! accept thread ──spawns──▶ connection thread (reader)  × N clients
//!                               │        └─spawns─▶ writer thread
//!                               ▼ push
//!                        shard queues ◀──pop── worker supervisor × W shards
//! ```
//!
//! Each connection gets a reader thread (owns the socket's read half and
//! the protocol state machine) and a writer thread fed by an mpsc
//! channel of response lines. Worker shards hold clones of that channel
//! sender inside queued [`Job`]s, which is what makes out-of-order,
//! batched responses safe — and what makes drain ordering simple: a
//! writer exits exactly when every sender (reader + all queued jobs) is
//! gone, so joining workers before connection threads guarantees every
//! accepted request's response is flushed before [`Server::drain`]
//! returns.
//!
//! `predict` requests are routed to shard `fnv1a(model_key) % workers`,
//! concentrating each model's traffic on one shard's decoded-model
//! cache. Chaos requests round-robin so panics and stalls spread across
//! shards.

use std::io::{self, BufWriter, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::bump;
use crate::cache::fnv1a;
use crate::protocol::{
    human_duration, parse_request, ErrorKind, LineReader, ProtocolError, ReadEvent, Request,
    Response, PROTOCOL_HEADER,
};
use crate::queue::{Job, JobKind, PushError, ShardQueue};
use crate::stats::ServeStats;
use crate::trace::{self, ObsHub, Stage};
use crate::worker::{spawn_worker, WorkerConfig};

/// Everything tunable about a server instance.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port 0 picks an ephemeral port.
    pub addr: String,
    /// Directory of `.napel` bundles, addressed by file stem.
    pub model_dir: PathBuf,
    /// Worker shards; 0 means one per available core (capped at 8).
    pub workers: usize,
    /// Per-shard queue bound — the admission-control high-water mark.
    pub queue_capacity: usize,
    /// Concurrent connections before new ones are refused outright.
    pub max_connections: usize,
    /// Socket read deadline: a connection idle (or dribbling a partial
    /// line) this long is told so and closed.
    pub read_deadline: Duration,
    /// Socket write deadline for response lines.
    pub write_deadline: Duration,
    /// Whether `panic`/`stall` chaos requests are honored.
    pub chaos: bool,
    /// Keep 1 in this many successful request traces in the trace ring
    /// (non-`ok` outcomes are always kept); 1 keeps everything.
    pub trace_sample: u64,
    /// Capacity of the sampled trace ring (oldest evicted first).
    pub trace_ring: usize,
    /// Per-shard worker tuning.
    pub worker: WorkerConfig,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            model_dir: PathBuf::from("models"),
            workers: 0,
            queue_capacity: 64,
            max_connections: 64,
            read_deadline: Duration::from_secs(10),
            write_deadline: Duration::from_secs(10),
            chaos: false,
            trace_sample: 64,
            trace_ring: 256,
            worker: WorkerConfig::default(),
        }
    }
}

impl ServerConfig {
    fn effective_workers(&self) -> usize {
        if self.workers > 0 {
            return self.workers;
        }
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(2)
            .min(8)
    }
}

/// State shared by the accept loop, connection threads, and drain.
struct Shared {
    cfg: ServerConfig,
    stats: Arc<ServeStats>,
    hub: Arc<ObsHub>,
    queues: Vec<Arc<ShardQueue>>,
    draining: AtomicBool,
    /// Set when a client sends `shutdown`; the hosting binary polls this
    /// and calls [`Server::drain`].
    shutdown_requested: AtomicBool,
    /// Read-half clones of every live connection, so drain can unblock
    /// readers parked in `read()`.
    streams: Mutex<Vec<TcpStream>>,
    conn_threads: Mutex<Vec<JoinHandle<()>>>,
    active: AtomicUsize,
    round_robin: AtomicUsize,
}

/// A running server. Dropping it without [`Server::drain`] leaks the
/// threads; both binaries and all tests drain.
pub struct Server {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds, spawns the worker shards and the accept loop, and returns
    /// once the server is reachable.
    ///
    /// # Errors
    ///
    /// I/O errors from binding the listen address.
    pub fn start(cfg: ServerConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let addr = listener.local_addr()?;
        let stats = Arc::new(ServeStats::default());
        let n = cfg.effective_workers();
        let hub = Arc::new(ObsHub::new(n, cfg.trace_sample, cfg.trace_ring));
        let queues: Vec<Arc<ShardQueue>> = (0..n)
            .map(|_| Arc::new(ShardQueue::new(cfg.queue_capacity)))
            .collect();
        let workers = queues
            .iter()
            .enumerate()
            .map(|(i, q)| {
                spawn_worker(
                    i,
                    Arc::clone(q),
                    cfg.model_dir.clone(),
                    Arc::clone(&stats),
                    Arc::clone(&hub),
                    cfg.worker.clone(),
                )
            })
            .collect();
        let shared = Arc::new(Shared {
            cfg,
            stats,
            hub,
            queues,
            draining: AtomicBool::new(false),
            shutdown_requested: AtomicBool::new(false),
            streams: Mutex::new(Vec::new()),
            conn_threads: Mutex::new(Vec::new()),
            active: AtomicUsize::new(0),
            round_robin: AtomicUsize::new(0),
        });
        let accept = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("napel-serve-accept".to_string())
                .spawn(move || accept_loop(&listener, &shared))
                .expect("accept thread spawn")
        };
        Ok(Server {
            addr,
            shared,
            accept: Some(accept),
            workers,
        })
    }

    /// The bound address (with the resolved port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Live counters.
    pub fn stats(&self) -> Arc<ServeStats> {
        Arc::clone(&self.shared.stats)
    }

    /// The live observability hub (stage histograms, trace ring).
    pub fn hub(&self) -> Arc<ObsHub> {
        Arc::clone(&self.shared.hub)
    }

    /// The current Prometheus text exposition — the same payload a
    /// `metrics` wire request returns (used by `--metrics-out`).
    pub fn prometheus(&self) -> String {
        let depth: usize = self.shared.queues.iter().map(|q| q.depth()).sum();
        self.shared.hub.prometheus(&self.shared.stats, depth)
    }

    /// Whether a client has asked the server to shut down.
    pub fn shutdown_requested(&self) -> bool {
        self.shared.shutdown_requested.load(Ordering::Relaxed)
    }

    /// Drains cleanly: stop accepting, unblock and close every
    /// connection's reader, let workers finish everything already
    /// admitted, flush all writers, join every thread, and mirror the
    /// final counters into telemetry. Every request acknowledged with
    /// `ok`/`err` admission has had its response flushed when this
    /// returns.
    pub fn drain(mut self) -> Arc<ServeStats> {
        self.shared.draining.store(true, Ordering::SeqCst);
        // The accept thread is parked in accept(); poke it awake.
        let _ = TcpStream::connect(self.addr);
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        // Unblock readers; they see EOF and fall out of their loops.
        for stream in self
            .shared
            .streams
            .lock()
            .expect("stream registry not poisoned")
            .drain(..)
        {
            let _ = stream.shutdown(Shutdown::Read);
        }
        // Workers drain what was admitted, then exit. Joining them drops
        // the last reply senders, which lets writers flush and exit,
        // which lets connection threads exit.
        for queue in &self.shared.queues {
            queue.close();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        let conn_threads: Vec<_> = self
            .shared
            .conn_threads
            .lock()
            .expect("connection registry not poisoned")
            .drain(..)
            .collect();
        for conn in conn_threads {
            let _ = conn.join();
        }
        // Export the hub first (histograms + sampled traces), then the
        // final counters, so the JSONL stream carries both.
        self.shared.hub.publish();
        self.shared.stats.publish_telemetry();
        Arc::clone(&self.shared.stats)
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => {
                if shared.draining.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
        };
        if shared.draining.load(Ordering::SeqCst) {
            return; // the drain's own wake-up connect lands here
        }
        if shared.active.load(Ordering::Relaxed) >= shared.cfg.max_connections {
            bump!(shared.stats, connections_refused);
            let mut stream = stream;
            let refusal = Response::error(
                crate::protocol::NO_ID,
                ErrorKind::Shed,
                "connection limit reached",
            );
            let _ = writeln!(stream, "{}", refusal.render());
            continue;
        }
        bump!(shared.stats, connections);
        shared.active.fetch_add(1, Ordering::Relaxed);
        let conn_shared = Arc::clone(shared);
        let handle = std::thread::Builder::new()
            .name("napel-serve-conn".to_string())
            .spawn(move || {
                serve_connection(&stream, &conn_shared);
                conn_shared.active.fetch_sub(1, Ordering::Relaxed);
            })
            .expect("connection thread spawn");
        // Registered after spawn; drain collects the registry only after
        // this loop has stopped, so no handle is missed.
        if let Ok(mut threads) = shared.conn_threads.lock() {
            threads.push(handle);
        }
    }
}

/// One connection, start to finish: handshake, request loop, teardown.
fn serve_connection(stream: &TcpStream, shared: &Arc<Shared>) {
    let _ = stream.set_read_timeout(Some(shared.cfg.read_deadline));
    let _ = stream.set_write_timeout(Some(shared.cfg.write_deadline));
    if let Ok(clone) = stream.try_clone() {
        if let Ok(mut streams) = shared.streams.lock() {
            streams.push(clone);
        }
    }
    let (reply_tx, reply_rx) = std::sync::mpsc::channel::<String>();
    let writer = {
        let Ok(write_half) = stream.try_clone() else {
            return;
        };
        std::thread::Builder::new()
            .name("napel-serve-writer".to_string())
            .spawn(move || write_loop(write_half, &reply_rx))
            .expect("writer thread spawn")
    };

    read_loop(stream, shared, &reply_tx);

    // Dropping our sender lets the writer exit once every queued job's
    // reply sender is gone too.
    drop(reply_tx);
    let _ = writer.join();
    let _ = stream.shutdown(Shutdown::Both);
}

/// Ships response lines to the client, batching flushes across bursts.
fn write_loop(stream: TcpStream, lines: &Receiver<String>) {
    let mut out = BufWriter::new(stream);
    while let Ok(line) = lines.recv() {
        if writeln!(out, "{line}").is_err() {
            return;
        }
        // Responses often arrive in bursts (batch completions); write
        // them all before paying for one flush.
        while let Ok(line) = lines.try_recv() {
            if writeln!(out, "{line}").is_err() {
                return;
            }
        }
        if out.flush().is_err() {
            return;
        }
    }
    let _ = out.flush();
}

fn send(reply: &Sender<String>, response: &Response) {
    let _ = reply.send(response.render());
}

/// The reader state machine: header handshake, then one request per line
/// until EOF, a protocol violation, or drain.
fn read_loop(stream: &TcpStream, shared: &Arc<Shared>, reply: &Sender<String>) {
    let mut reader = LineReader::new(stream);

    // Handshake: the first line must be the protocol header.
    match reader.next_line() {
        ReadEvent::Line(bytes) => match String::from_utf8(bytes) {
            Ok(line) if line == PROTOCOL_HEADER => {
                send(
                    reply,
                    &Response::ok(crate::protocol::NO_ID, PROTOCOL_HEADER),
                );
            }
            Ok(line) => {
                bump!(shared.stats, protocol_errors);
                send(reply, &ProtocolError::BadHeader(line).to_response());
                return;
            }
            Err(_) => {
                bump!(shared.stats, protocol_errors);
                send(reply, &ProtocolError::NotUtf8.to_response());
                return;
            }
        },
        ReadEvent::TimedOut => {
            bump!(shared.stats, protocol_errors);
            send(
                reply,
                &Response::error(
                    crate::protocol::NO_ID,
                    ErrorKind::Deadline,
                    format!(
                        "no header within the {} read deadline",
                        human_duration(shared.cfg.read_deadline)
                    ),
                ),
            );
            return;
        }
        _ => return,
    }

    loop {
        match reader.next_line() {
            ReadEvent::Line(bytes) => {
                // The trace clock starts the moment the line is off the
                // socket; everything until dispatch is read_parse time.
                let received = Instant::now();
                let Ok(line) = String::from_utf8(bytes) else {
                    bump!(shared.stats, protocol_errors);
                    send(reply, &ProtocolError::NotUtf8.to_response());
                    return;
                };
                if line.trim().is_empty() {
                    continue;
                }
                match parse_request(&line, shared.cfg.chaos) {
                    Ok(Request::Quit) => return,
                    Ok(request) => dispatch(shared, reply, request, received),
                    Err(violation) => {
                        bump!(shared.stats, protocol_errors);
                        send(reply, &violation.to_response());
                        return; // hostile or broken peer: closed, not argued with
                    }
                }
            }
            ReadEvent::Oversized => {
                bump!(shared.stats, protocol_errors);
                send(
                    reply,
                    &ProtocolError::Oversized {
                        limit: crate::protocol::MAX_LINE_BYTES,
                    }
                    .to_response(),
                );
                return;
            }
            ReadEvent::TimedOut => {
                bump!(shared.stats, protocol_errors);
                send(
                    reply,
                    &Response::error(
                        crate::protocol::NO_ID,
                        ErrorKind::Deadline,
                        format!(
                            "no complete request within the {} read deadline",
                            human_duration(shared.cfg.read_deadline)
                        ),
                    ),
                );
                return;
            }
            ReadEvent::Eof | ReadEvent::Io(_) => return,
        }
    }
}

/// Stamps a fresh trace context for a job-bound request: trace id from
/// the hub, anchored at `received`, with everything since the line left
/// the socket charged to `read_parse`.
fn stamp(shared: &Shared, received: Instant) -> crate::trace::TraceContext {
    let mut ctx = shared.hub.new_context(received);
    ctx.record(Stage::ReadParse, received.elapsed());
    ctx
}

/// Routes one parsed request: inline commands answered here, work
/// commands turned into jobs and pushed through admission control.
fn dispatch(shared: &Arc<Shared>, reply: &Sender<String>, request: Request, received: Instant) {
    match request {
        Request::Ping { id } => send(reply, &Response::ok(id, "pong")),
        Request::Stats { id } => {
            let depth: usize = shared.queues.iter().map(|q| q.depth()).sum();
            let payload = format!("{} queue_depth={depth}", shared.stats.render());
            send(reply, &Response::ok(id, payload));
        }
        Request::Metrics { id } => {
            let depth: usize = shared.queues.iter().map(|q| q.depth()).sum();
            let text = shared.hub.prometheus(&shared.stats, depth);
            let lines = text.lines().count();
            // The whole block rides in one channel message so the writer
            // emits it contiguously — it can never interleave with
            // responses to other in-flight requests on this connection.
            let mut block = format!("ok {id} metrics {lines}\n");
            block.push_str(&text);
            if !block.ends_with('\n') {
                block.push('\n');
            }
            block.push('.');
            let _ = reply.send(block);
        }
        Request::Trace { id, max } => {
            send(reply, &Response::ok(id, shared.hub.drain_traces_json(max)));
        }
        Request::Shutdown { id } => {
            shared.shutdown_requested.store(true, Ordering::SeqCst);
            send(reply, &Response::ok(id, "draining"));
        }
        Request::Predict { id, model, row } => {
            let shard = (fnv1a(model.as_bytes()) as usize) % shared.queues.len();
            let job = Job {
                id,
                kind: JobKind::Predict { model, row },
                enqueued: Instant::now(),
                reply: reply.clone(),
                ctx: stamp(shared, received),
            };
            admit(shared, shard, job);
        }
        Request::Panic { id } => {
            let job = Job {
                id,
                kind: JobKind::Panic,
                enqueued: Instant::now(),
                reply: reply.clone(),
                ctx: stamp(shared, received),
            };
            admit(shared, next_shard(shared), job);
        }
        Request::Stall { id, millis } => {
            let job = Job {
                id,
                // Clamp: a chaos client should hurt throughput, not pin a
                // shard for minutes.
                kind: JobKind::Stall(Duration::from_millis(millis.min(10_000))),
                enqueued: Instant::now(),
                reply: reply.clone(),
                ctx: stamp(shared, received),
            };
            admit(shared, next_shard(shared), job);
        }
        Request::Quit => unreachable!("handled by the read loop"),
    }
}

fn next_shard(shared: &Shared) -> usize {
    shared.round_robin.fetch_add(1, Ordering::Relaxed) % shared.queues.len()
}

/// Admission control: into the queue, or an immediate typed refusal.
/// Refusals still complete their trace (they are always sampled into
/// the ring — an operator debugging sheds wants exactly those).
fn admit(shared: &Shared, shard: usize, job: Job) {
    match shared.queues[shard].push(job) {
        Ok(()) => {
            bump!(shared.stats, accepted);
        }
        Err((job, PushError::Full { depth })) => {
            bump!(shared.stats, shed);
            let response = Response::error(
                &job.id,
                ErrorKind::Shed,
                format!("shard {shard} queue full at {depth}"),
            );
            trace::finish(&shared.hub, shard, job, "shed", &response);
        }
        Err((job, PushError::Closed)) => {
            if shared.draining.load(Ordering::SeqCst) {
                bump!(shared.stats, rejected_draining);
                let response = Response::error(&job.id, ErrorKind::Shutdown, "server is draining");
                trace::finish(&shared.hub, shard, job, "shutdown", &response);
            } else {
                bump!(shared.stats, internal_errors);
                let response = Response::error(
                    &job.id,
                    ErrorKind::Internal,
                    format!("shard {shard} restart circuit breaker open"),
                );
                trace::finish(&shared.hub, shard, job, "internal", &response);
            }
        }
    }
}
