//! A minimal synchronous client for the `napel-serve` protocol.
//!
//! Used by the `loadgen` binary and the integration tests. Handles the
//! header handshake and line framing; callers speak request lines and
//! get parsed [`Response`]s back.

use std::io::{self, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use crate::protocol::{LineReader, ReadEvent, Response, PROTOCOL_HEADER};

/// A connected, handshaken client session.
pub struct ServeClient {
    write_half: TcpStream,
    reader: LineReader<TcpStream>,
}

impl ServeClient {
    /// Connects, performs the header handshake, and verifies the
    /// server's greeting.
    ///
    /// # Errors
    ///
    /// Connection failures, or a malformed/absent greeting.
    pub fn connect(addr: SocketAddr, timeout: Duration) -> io::Result<ServeClient> {
        let stream = TcpStream::connect_timeout(&addr, timeout)?;
        stream.set_read_timeout(Some(timeout))?;
        stream.set_write_timeout(Some(timeout))?;
        stream.set_nodelay(true)?;
        let write_half = stream.try_clone()?;
        let mut client = ServeClient {
            write_half,
            reader: LineReader::new(stream),
        };
        client.send_line(PROTOCOL_HEADER)?;
        match client.read_response()? {
            Some(greeting) if greeting.is_ok() => Ok(client),
            Some(other) => Err(io::Error::other(format!(
                "server refused the handshake: {}",
                other.render()
            ))),
            None => Err(io::Error::other("server closed during the handshake")),
        }
    }

    /// Sends one raw line (newline appended).
    ///
    /// # Errors
    ///
    /// Underlying socket write failures.
    pub fn send_line(&mut self, line: &str) -> io::Result<()> {
        self.write_half.write_all(line.as_bytes())?;
        self.write_half.write_all(b"\n")
    }

    /// Reads the next response line; `None` on orderly EOF.
    ///
    /// # Errors
    ///
    /// Timeouts, I/O failures, or a line the client cannot parse as a
    /// response.
    pub fn read_response(&mut self) -> io::Result<Option<Response>> {
        match self.reader.next_line() {
            ReadEvent::Line(bytes) => {
                let line = String::from_utf8(bytes)
                    .map_err(|_| io::Error::other("non-UTF-8 response line"))?;
                Response::parse(&line)
                    .map(Some)
                    .ok_or_else(|| io::Error::other(format!("unparsable response `{line}`")))
            }
            ReadEvent::Eof => Ok(None),
            ReadEvent::Oversized => Err(io::Error::other("oversized response line")),
            ReadEvent::TimedOut => Err(io::Error::new(
                io::ErrorKind::TimedOut,
                "timed out waiting for a response",
            )),
            ReadEvent::Io(e) => Err(e),
        }
    }

    /// Sends one request line and reads one response — the simple
    /// lockstep pattern (no pipelining).
    ///
    /// # Errors
    ///
    /// Write/read failures, or EOF before a response arrived.
    pub fn request(&mut self, line: &str) -> io::Result<Response> {
        self.send_line(line)?;
        self.read_response()?
            .ok_or_else(|| io::Error::other("connection closed before a response"))
    }

    /// Reads one raw line (no response parsing). Block-framed payload
    /// lines are raw text, not `ok`/`err` lines.
    fn read_raw_line(&mut self) -> io::Result<String> {
        match self.reader.next_line() {
            ReadEvent::Line(bytes) => {
                String::from_utf8(bytes).map_err(|_| io::Error::other("non-UTF-8 response line"))
            }
            ReadEvent::Eof => Err(io::Error::other("connection closed mid-block")),
            ReadEvent::Oversized => Err(io::Error::other("oversized response line")),
            ReadEvent::TimedOut => Err(io::Error::new(
                io::ErrorKind::TimedOut,
                "timed out waiting for a response",
            )),
            ReadEvent::Io(e) => Err(e),
        }
    }

    /// Sends `metrics <id>` and reassembles the block-framed reply
    /// (`ok <id> metrics <n>`, then `n` raw lines, then `.`) into the
    /// Prometheus exposition text.
    ///
    /// # Errors
    ///
    /// Write/read failures, an `err` response, or a malformed block
    /// (bad header, premature terminator, missing terminator).
    pub fn fetch_metrics(&mut self, id: &str) -> io::Result<String> {
        self.send_line(&format!("metrics {id}"))?;
        let header = self
            .read_response()?
            .ok_or_else(|| io::Error::other("connection closed before a response"))?;
        let declared: usize = match &header {
            Response::Ok { payload, .. } => payload
                .strip_prefix("metrics ")
                .and_then(|n| n.parse().ok())
                .ok_or_else(|| {
                    io::Error::other(format!("malformed metrics header `{}`", header.render()))
                })?,
            Response::Err { .. } => {
                return Err(io::Error::other(format!(
                    "metrics request refused: {}",
                    header.render()
                )))
            }
        };
        let mut text = String::new();
        for _ in 0..declared {
            let line = self.read_raw_line()?;
            if line == "." {
                return Err(io::Error::other("metrics block ended early"));
            }
            text.push_str(&line);
            text.push('\n');
        }
        match self.read_raw_line()?.as_str() {
            "." => Ok(text),
            other => Err(io::Error::other(format!(
                "expected the `.` block terminator, got `{other}`"
            ))),
        }
    }

    /// The underlying socket (for tests poking at shutdown semantics).
    pub fn stream(&self) -> &TcpStream {
        &self.write_half
    }
}
