//! `napel-serve` — a supervised, overload-tolerant inference server over
//! trained NAPEL model bundles.
//!
//! The rest of the workspace answers "how accurately can an ensemble
//! model predict NMC performance?" (train → tune → evaluate). This crate
//! answers the operational follow-up: once a [`TrainedNapel`] bundle
//! exists, how do you *serve* it — many clients, mixed models, partial
//! failures — without ever losing an accepted request?
//!
//! [`TrainedNapel`]: napel_core::model::TrainedNapel
//!
//! Architecture (one box per thread kind):
//!
//! ```text
//!  clients ──TCP──▶ accept ──▶ reader ─┬─ inline: ping/stats/metrics/trace/shutdown
//!                                      └─ admit ─▶ shard queue (bounded)
//!                                                      │ pop batch
//!                        writer ◀─ responses ◀── worker shard (supervised)
//!                                                      │ LRU
//!                                                `.napel` bundles
//! ```
//!
//! Robustness properties, each exercised by tests:
//!
//! - **Panic isolation** ([`worker`]): a panicking request kills one
//!   worker *incarnation*, never the process. The supervisor answers
//!   everything the dead incarnation had claimed, restarts it after a
//!   deterministic exponential backoff ([`napel_core::fault::Backoff`]),
//!   and trips a circuit breaker if restarts storm.
//! - **Admission control** ([`queue`], [`server`]): queues are bounded;
//!   overload yields immediate typed `err ... shed` responses instead of
//!   unbounded latency. Queued requests past their deadline are dropped
//!   with `err ... deadline` rather than computed late.
//! - **Hostile input** ([`protocol`]): line caps enforced while reading,
//!   typed errors for garbage, model keys that cannot escape the bundle
//!   directory, read deadlines against slow-loris clients.
//! - **Clean drain** ([`server`]): shutdown stops admission, finishes
//!   every accepted request, flushes every response, joins every thread.
//!
//! The binaries: `serve` hosts the server; `loadgen` drives it with
//! steady, overload, and chaos workloads and writes a latency report.

pub mod cache;
pub mod client;
pub mod protocol;
pub mod queue;
pub mod server;
pub mod stats;
pub mod trace;
pub mod worker;

pub use client::ServeClient;
pub use protocol::{
    ErrorKind, Request, Response, MAX_LINE_BYTES, PROTOCOL_HEADER, TRACE_MAX_PER_REQUEST,
};
pub use server::{Server, ServerConfig};
pub use stats::ServeStats;
pub use trace::{ObsHub, RequestTrace, Stage, TraceContext, TRACE_LANE_BASE};
pub use worker::WorkerConfig;
