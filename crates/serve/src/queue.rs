//! Bounded per-shard work queues with admission control.
//!
//! Each worker shard owns one [`ShardQueue`]. Connection threads push
//! jobs; the shard's worker pops them in batches. The queue is bounded:
//! a push against a full queue fails immediately with
//! [`PushError::Full`] so the connection thread can answer `err ... shed`
//! instead of building an invisible backlog — under overload the server
//! degrades by refusing work it cannot finish in time, never by letting
//! accepted work silently rot.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

use crate::protocol::Response;
use crate::trace::{Stage, TraceContext};

/// What a queued request wants the worker to do.
#[derive(Debug, Clone)]
pub enum JobKind {
    /// Score one feature row against the named model bundle.
    Predict {
        /// Model key (bundle file stem under the model directory).
        model: String,
        /// Feature row, already parsed.
        row: Vec<f64>,
    },
    /// Chaos: panic inside the worker (only parsed with `--chaos`).
    Panic,
    /// Chaos: hold the worker hostage for this long (overload fuel).
    Stall(Duration),
}

/// One admitted request, en route to a worker shard.
#[derive(Debug)]
pub struct Job {
    /// Client-chosen request id, echoed on the response line.
    pub id: String,
    /// The work itself.
    pub kind: JobKind,
    /// When the connection thread admitted the job (deadline anchor and
    /// latency-measurement start).
    pub enqueued: Instant,
    /// Channel back to the owning connection's writer thread.
    pub reply: std::sync::mpsc::Sender<String>,
    /// Request-scoped trace state, stamped at read time.
    pub ctx: TraceContext,
}

impl Job {
    /// Sends a response line back to the client. A send failure means
    /// the client hung up; that is their prerogative, not an error.
    pub fn respond(&self, response: &Response) {
        let _ = self.reply.send(response.render());
    }

    /// Time spent since admission.
    pub fn age(&self) -> Duration {
        self.enqueued.elapsed()
    }
}

/// Why a push was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushError {
    /// Queue at its high-water mark — shed the request.
    Full {
        /// Depth at refusal time (== capacity), for the error detail.
        depth: usize,
    },
    /// Queue closed (server draining, or the shard's breaker tripped).
    Closed,
}

struct QueueState {
    jobs: VecDeque<Job>,
    closed: bool,
}

/// Bounded MPSC job queue for one worker shard.
pub struct ShardQueue {
    state: Mutex<QueueState>,
    ready: Condvar,
    capacity: usize,
}

impl ShardQueue {
    /// Creates an empty queue holding at most `capacity` jobs.
    pub fn new(capacity: usize) -> ShardQueue {
        ShardQueue {
            state: Mutex::new(QueueState {
                jobs: VecDeque::new(),
                closed: false,
            }),
            ready: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Admits a job, or hands it back with the reason it cannot run.
    /// Either way, the time spent here (lock wait + capacity check) is
    /// charged to the job's [`Stage::Admission`].
    // The rejected job rides back in the Err by value on purpose: the
    // shed path runs exactly when the server is overloaded, and boxing
    // it would put an allocation there to save bytes on the Ok path.
    #[allow(clippy::result_large_err)]
    pub fn push(&self, mut job: Job) -> Result<(), (Job, PushError)> {
        let started = Instant::now();
        let mut state = self.state.lock().expect("shard queue not poisoned");
        job.ctx.record(Stage::Admission, started.elapsed());
        if state.closed {
            return Err((job, PushError::Closed));
        }
        if state.jobs.len() >= self.capacity {
            return Err((
                job,
                PushError::Full {
                    depth: state.jobs.len(),
                },
            ));
        }
        state.jobs.push_back(job);
        drop(state);
        self.ready.notify_one();
        Ok(())
    }

    /// Blocks until work is available, then takes up to `max` jobs.
    /// Returns `None` once the queue is closed **and** empty — the
    /// worker's signal to finish its current incarnation cleanly.
    pub fn pop_batch(&self, max: usize) -> Option<Vec<Job>> {
        let mut state = self.state.lock().expect("shard queue not poisoned");
        loop {
            if !state.jobs.is_empty() {
                let take = state.jobs.len().min(max.max(1));
                return Some(state.jobs.drain(..take).collect());
            }
            if state.closed {
                return None;
            }
            state = self.ready.wait(state).expect("shard queue not poisoned");
        }
    }

    /// Closes the queue: future pushes fail with [`PushError::Closed`],
    /// and blocked workers wake to drain what remains.
    pub fn close(&self) {
        let mut state = self.state.lock().expect("shard queue not poisoned");
        state.closed = true;
        drop(state);
        self.ready.notify_all();
    }

    /// Empties the queue immediately, returning the stranded jobs so the
    /// caller can answer them (breaker trip: nothing will ever run them).
    pub fn drain_now(&self) -> Vec<Job> {
        let mut state = self.state.lock().expect("shard queue not poisoned");
        state.jobs.drain(..).collect()
    }

    /// Current depth (approximate the instant it returns).
    pub fn depth(&self) -> usize {
        self.state
            .lock()
            .expect("shard queue not poisoned")
            .jobs
            .len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc;
    use std::sync::Arc;

    fn job(id: &str) -> (Job, mpsc::Receiver<String>) {
        let (tx, rx) = mpsc::channel();
        (
            Job {
                id: id.to_string(),
                kind: JobKind::Panic,
                enqueued: Instant::now(),
                reply: tx,
                ctx: TraceContext::new(0, Instant::now()),
            },
            rx,
        )
    }

    #[test]
    fn push_refuses_beyond_capacity() {
        let q = ShardQueue::new(2);
        let (a, _ra) = job("a");
        let (b, _rb) = job("b");
        let (c, _rc) = job("c");
        assert!(q.push(a).is_ok());
        assert!(q.push(b).is_ok());
        match q.push(c) {
            Err((j, PushError::Full { depth: 2 })) => assert_eq!(j.id, "c"),
            other => panic!("expected Full, got {other:?}"),
        }
        assert_eq!(q.depth(), 2);
    }

    #[test]
    fn pop_batch_takes_at_most_max_in_fifo_order() {
        let q = ShardQueue::new(8);
        for id in ["a", "b", "c"] {
            let (j, _r) = job(id);
            q.push(j).unwrap();
        }
        let batch = q.pop_batch(2).unwrap();
        assert_eq!(
            batch.iter().map(|j| j.id.as_str()).collect::<Vec<_>>(),
            ["a", "b"]
        );
        let rest = q.pop_batch(2).unwrap();
        assert_eq!(rest.len(), 1);
        assert_eq!(rest[0].id, "c");
    }

    #[test]
    fn close_rejects_pushes_and_releases_blocked_workers() {
        let q = Arc::new(ShardQueue::new(4));
        let waiter = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.pop_batch(4))
        };
        // Give the waiter a moment to block, then close.
        std::thread::sleep(Duration::from_millis(20));
        q.close();
        assert!(waiter.join().unwrap().is_none());
        let (j, _r) = job("late");
        match q.push(j) {
            Err((_, PushError::Closed)) => {}
            other => panic!("expected Closed, got {other:?}"),
        }
    }

    #[test]
    fn close_still_drains_pending_jobs() {
        let q = ShardQueue::new(4);
        let (j, _r) = job("pending");
        q.push(j).unwrap();
        q.close();
        let batch = q.pop_batch(4).unwrap();
        assert_eq!(batch[0].id, "pending");
        assert!(q.pop_batch(4).is_none());
    }
}
