//! Request-scoped tracing and live observability state.
//!
//! Every request admitted to a shard queue is stamped with a
//! [`TraceContext`] the moment its line leaves the socket: a process-wide
//! trace id plus a wall-clock anchor. As the request moves through the
//! pipeline, each handler charges the time it spent to one of six
//! [`Stage`]s; when the request is answered — success, shed, deadline
//! drop, or error — the completed context lands in the [`ObsHub`]:
//!
//! - per-shard, per-stage [`LogHistogram`]s (quantile-accurate stage
//!   latency, readable live),
//! - end-to-end latency and batch-size [`LogHistogram`]s (the migrated
//!   successors of the old fixed-bucket `serve.latency_seconds` /
//!   `serve.batch_size` histograms),
//! - a bounded ring of full per-request traces, holding every
//!   non-`ok` outcome plus a deterministic 1-in-N sample of successes
//!   (`trace_id % sample == 0`). The ring is drainable over the wire
//!   (`trace` request) and whatever remains at shutdown is exported into
//!   the telemetry JSONL as `serve.request`/`serve.stage.*` spans, so
//!   the `obs` converter renders server traces on the same timeline
//!   tooling as campaign runs.
//!
//! The hub is always on — its cost is a handful of `Instant::now()`
//! calls and short uncontended mutex holds per request, invisible next
//! to a model evaluation — which is what makes the `metrics` wire
//! request meaningful on a server that was started without any
//! telemetry flags.

use std::collections::VecDeque;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use napel_telemetry::{LogHistogram, SpanEvent, TelemetryReport};

use crate::protocol::Response;
use crate::queue::{Job, JobKind};
use crate::stats::ServeStats;

/// Telemetry lanes `TRACE_LANE_BASE + shard` carry the exported
/// per-request spans, far from the campaign lanes (0..jobs).
pub const TRACE_LANE_BASE: u64 = 1_000;

/// Pipeline stages a request's wall-clock time is charged to.
///
/// Boundaries (each stage ends where the next begins):
///
/// | stage            | covers                                              |
/// |------------------|-----------------------------------------------------|
/// | `read_parse`     | line off the socket → request parsed                |
/// | `admission`      | the shard-queue push (lock + capacity check)        |
/// | `queue_wait`     | admission → a worker claims the batch               |
/// | `batch_assembly` | batch claim → rows gathered, model resolved         |
/// | `predict`        | the `predict_batch` call the request rode in        |
/// | `respond_flush`  | response render → handed to the connection writer   |
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// Socket line receipt through request parsing.
    ReadParse,
    /// The admission-control queue push.
    Admission,
    /// Sitting in the shard queue.
    QueueWait,
    /// Batch claim through row gathering and model-cache resolution.
    BatchAssembly,
    /// The model inference call.
    Predict,
    /// Response rendering and hand-off to the writer thread.
    RespondFlush,
}

/// Number of [`Stage`]s.
pub const STAGE_COUNT: usize = 6;

impl Stage {
    /// Every stage, in pipeline order.
    pub const ALL: [Stage; STAGE_COUNT] = [
        Stage::ReadParse,
        Stage::Admission,
        Stage::QueueWait,
        Stage::BatchAssembly,
        Stage::Predict,
        Stage::RespondFlush,
    ];

    /// The stage's stable snake_case name (metric suffixes, span names).
    pub fn name(self) -> &'static str {
        match self {
            Stage::ReadParse => "read_parse",
            Stage::Admission => "admission",
            Stage::QueueWait => "queue_wait",
            Stage::BatchAssembly => "batch_assembly",
            Stage::Predict => "predict",
            Stage::RespondFlush => "respond_flush",
        }
    }
}

/// The per-request trace state, stamped at read time and carried inside
/// the [`Job`] through the whole pipeline.
#[derive(Debug, Clone)]
pub struct TraceContext {
    /// Process-wide monotonically increasing id.
    pub trace_id: u64,
    /// When the request's line came off the socket — the end-to-end
    /// latency anchor.
    pub started: Instant,
    stage_nanos: [u64; STAGE_COUNT],
}

impl TraceContext {
    /// A context anchored at `started` (tests construct these directly;
    /// the server goes through [`ObsHub::new_context`] for the id).
    pub fn new(trace_id: u64, started: Instant) -> TraceContext {
        TraceContext {
            trace_id,
            started,
            stage_nanos: [0; STAGE_COUNT],
        }
    }

    /// Charges `elapsed` to `stage` (accumulating: a retried stage adds).
    pub fn record(&mut self, stage: Stage, elapsed: Duration) {
        self.stage_nanos[stage as usize] += u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX);
    }

    /// Nanoseconds charged per stage, indexed in [`Stage::ALL`] order.
    pub fn stage_nanos(&self) -> &[u64; STAGE_COUNT] {
        &self.stage_nanos
    }
}

/// One finished request, as stored in the sampled ring.
#[derive(Debug, Clone, PartialEq)]
pub struct RequestTrace {
    /// Trace id from the [`TraceContext`].
    pub trace_id: u64,
    /// Client-chosen request id (clamped to 64 chars for ring hygiene).
    pub request_id: String,
    /// Model key, or `""` for chaos jobs.
    pub model: String,
    /// Outcome token: `ok` or an [`ErrorKind`](crate::ErrorKind) token.
    pub outcome: &'static str,
    /// Shard that carried (or refused) the request.
    pub shard: usize,
    /// End-to-end nanoseconds, read to response hand-off.
    pub total_nanos: u64,
    /// Per-stage nanoseconds in [`Stage::ALL`] order.
    pub stage_nanos: [u64; STAGE_COUNT],
}

/// Escapes `s` into `out` as a JSON string literal body (no quotes).
fn json_escape(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

impl RequestTrace {
    /// One trace as a compact JSON object (`stages` keyed by stage name,
    /// zero stages included so every trace has the same shape).
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(192);
        let _ = write!(s, "{{\"trace_id\":{},\"id\":\"", self.trace_id);
        json_escape(&mut s, &self.request_id);
        s.push_str("\",\"model\":\"");
        json_escape(&mut s, &self.model);
        let _ = write!(
            s,
            "\",\"outcome\":\"{}\",\"shard\":{},\"total_ns\":{},\"stages\":{{",
            self.outcome, self.shard, self.total_nanos
        );
        for (i, stage) in Stage::ALL.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(s, "\"{}\":{}", stage.name(), self.stage_nanos[i]);
        }
        s.push_str("}}");
        s
    }
}

/// The server's live observability state: stage/latency/batch-size
/// histograms plus the sampled trace ring. One per [`Server`], shared by
/// every connection and worker thread.
///
/// [`Server`]: crate::Server
pub struct ObsHub {
    /// Keep 1 in this many `ok` traces (non-`ok` always kept); 0 or 1
    /// keeps everything.
    sample_every: u64,
    ring_capacity: usize,
    next_trace_id: AtomicU64,
    /// Per-shard per-stage duration histograms, seconds.
    shard_stages: Vec<Mutex<[LogHistogram; STAGE_COUNT]>>,
    /// End-to-end request latency, seconds, `ok` outcomes only.
    latency: Mutex<LogHistogram>,
    /// Rows per drained batch.
    batch_size: Mutex<LogHistogram>,
    ring: Mutex<VecDeque<RequestTrace>>,
    /// Traces evicted from the ring before anyone drained them.
    dropped: AtomicU64,
}

impl ObsHub {
    /// A hub for `shards` worker shards, keeping 1-in-`sample_every`
    /// successful traces in a ring of `ring_capacity`.
    pub fn new(shards: usize, sample_every: u64, ring_capacity: usize) -> ObsHub {
        ObsHub {
            sample_every: sample_every.max(1),
            ring_capacity: ring_capacity.max(1),
            next_trace_id: AtomicU64::new(0),
            shard_stages: (0..shards.max(1))
                .map(|_| Mutex::new(std::array::from_fn(|_| LogHistogram::new())))
                .collect(),
            latency: Mutex::new(LogHistogram::new()),
            batch_size: Mutex::new(LogHistogram::new()),
            ring: Mutex::new(VecDeque::new()),
            dropped: AtomicU64::new(0),
        }
    }

    /// Stamps a fresh trace context anchored at `started` (the instant
    /// the request line came off the socket).
    pub fn new_context(&self, started: Instant) -> TraceContext {
        TraceContext::new(self.next_trace_id.fetch_add(1, Ordering::Relaxed), started)
    }

    /// Records one drained batch's row count.
    pub fn observe_batch(&self, rows: usize) {
        self.batch_size
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .observe(rows as f64);
    }

    /// Folds a finished request into the histograms and (if sampled or
    /// non-`ok`) the trace ring. `outcome` is `"ok"` or an error token.
    pub fn complete(
        &self,
        shard: usize,
        ctx: &TraceContext,
        request_id: &str,
        model: &str,
        outcome: &'static str,
    ) {
        let total = ctx.started.elapsed();
        let shard = shard.min(self.shard_stages.len() - 1);
        {
            let mut stages = self.shard_stages[shard]
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            for (i, &nanos) in ctx.stage_nanos.iter().enumerate() {
                if nanos > 0 {
                    stages[i].observe(nanos as f64 / 1e9);
                }
            }
        }
        if outcome == "ok" {
            self.latency
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .observe(total.as_secs_f64());
        }
        let sampled = outcome != "ok" || ctx.trace_id.is_multiple_of(self.sample_every);
        if !sampled {
            return;
        }
        let mut request_id = request_id.to_string();
        request_id.truncate(64);
        let trace = RequestTrace {
            trace_id: ctx.trace_id,
            request_id,
            model: model.to_string(),
            outcome,
            shard,
            total_nanos: u64::try_from(total.as_nanos()).unwrap_or(u64::MAX),
            stage_nanos: ctx.stage_nanos,
        };
        let mut ring = self
            .ring
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        while ring.len() >= self.ring_capacity {
            ring.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        ring.push_back(trace);
    }

    /// Takes up to `max` traces from the ring, oldest first, along with
    /// the running count of traces evicted unseen.
    pub fn drain_traces(&self, max: usize) -> (u64, Vec<RequestTrace>) {
        let mut ring = self
            .ring
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let take = ring.len().min(max);
        let traces = ring.drain(..take).collect();
        (self.dropped.load(Ordering::Relaxed), traces)
    }

    /// Renders the `trace` wire payload: one JSON object on one line.
    pub fn drain_traces_json(&self, max: usize) -> String {
        let (dropped, traces) = self.drain_traces(max);
        let mut s = format!("{{\"dropped\":{dropped},\"traces\":[");
        for (i, t) in traces.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&t.to_json());
        }
        s.push_str("]}");
        s
    }

    /// Aggregates one stage's histogram across every shard.
    fn merged_stage(&self, stage: Stage) -> LogHistogram {
        let mut merged = LogHistogram::new();
        for shard in &self.shard_stages {
            let stages = shard
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            merged.merge(&stages[stage as usize]);
        }
        merged
    }

    /// A snapshot of everything the hub and `stats` know, as a
    /// [`TelemetryReport`] (counters under their `serve.*` telemetry
    /// names; latency, batch-size, and per-stage log histograms).
    pub fn report(&self, stats: &ServeStats, queue_depth: usize) -> TelemetryReport {
        let mut counters: Vec<(String, u64)> = stats
            .telemetry_snapshot()
            .into_iter()
            .map(|(name, v)| (name.to_string(), v))
            .collect();
        counters.push(("serve.queue_depth".to_string(), queue_depth as u64));
        counters.push((
            "serve.trace.ring_dropped".to_string(),
            self.dropped.load(Ordering::Relaxed),
        ));
        let mut log_histograms = vec![
            (
                "serve.latency_seconds".to_string(),
                self.latency
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .clone(),
            ),
            (
                "serve.batch_size".to_string(),
                self.batch_size
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .clone(),
            ),
        ];
        for stage in Stage::ALL {
            log_histograms.push((
                format!("serve.stage_seconds.{}", stage.name()),
                self.merged_stage(stage),
            ));
        }
        counters.sort_by(|a, b| a.0.cmp(&b.0));
        log_histograms.sort_by(|a, b| a.0.cmp(&b.0));
        TelemetryReport {
            spans: Vec::new(),
            counters,
            histograms: Vec::new(),
            log_histograms,
        }
    }

    /// The live Prometheus text exposition (the `metrics` wire payload
    /// and the `--metrics-out` snapshot body).
    pub fn prometheus(&self, stats: &ServeStats, queue_depth: usize) -> String {
        self.report(stats, queue_depth).to_prometheus()
    }

    /// Exports everything into the process-global telemetry at drain:
    /// histograms merge under their `serve.*` names, and every trace
    /// still in the ring becomes a `serve.request` span (lane
    /// [`TRACE_LANE_BASE`]` + shard`) with `serve.stage.<name>` children,
    /// so the JSONL a driver writes with `--telemetry-out` carries the
    /// sampled traces in the same schema campaign spans use.
    pub fn publish(&self) {
        self.publish_to(&napel_telemetry::global());
    }

    /// [`ObsHub::publish`] against an explicit handle (tests).
    pub fn publish_to(&self, t: &napel_telemetry::Telemetry) {
        if !t.is_enabled() {
            return;
        }
        t.merge_log_histogram(
            "serve.latency_seconds",
            &self
                .latency
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner),
        );
        t.merge_log_histogram(
            "serve.batch_size",
            &self
                .batch_size
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner),
        );
        for stage in Stage::ALL {
            let merged = self.merged_stage(stage);
            if !merged.is_empty() {
                t.merge_log_histogram(&format!("serve.stage_seconds.{}", stage.name()), &merged);
            }
        }
        t.counter(
            "serve.trace.ring_dropped",
            self.dropped.load(Ordering::Relaxed),
        );
        let (_, traces) = self.drain_traces(usize::MAX);
        for trace in traces {
            let lane = TRACE_LANE_BASE + trace.shard as u64;
            t.record(SpanEvent {
                name: "serve.request".to_string(),
                lane,
                seq: 0, // assigned by record()
                depth: 0,
                parent: None,
                seconds: trace.total_nanos as f64 / 1e9,
                attrs: vec![
                    ("trace_id".to_string(), trace.trace_id.to_string()),
                    ("request".to_string(), trace.request_id.clone()),
                    ("model".to_string(), trace.model.clone()),
                    ("outcome".to_string(), trace.outcome.to_string()),
                ],
            });
            for (i, stage) in Stage::ALL.iter().enumerate() {
                if trace.stage_nanos[i] == 0 {
                    continue;
                }
                t.record(SpanEvent {
                    name: format!("serve.stage.{}", stage.name()),
                    lane,
                    seq: 0,
                    depth: 1,
                    parent: Some("serve.request".to_string()),
                    seconds: trace.stage_nanos[i] as f64 / 1e9,
                    attrs: Vec::new(),
                });
            }
        }
    }
}

/// Answers `job` with `response`, charging the render/hand-off time to
/// [`Stage::RespondFlush`] and folding the finished trace into `hub`.
/// Every path that answers an admitted request funnels through here.
pub(crate) fn finish(
    hub: &ObsHub,
    shard: usize,
    mut job: Job,
    outcome: &'static str,
    response: &Response,
) {
    let flush_started = Instant::now();
    job.respond(response);
    job.ctx.record(Stage::RespondFlush, flush_started.elapsed());
    let model = match &job.kind {
        JobKind::Predict { model, .. } => model.as_str(),
        _ => "",
    };
    hub.complete(shard, &job.ctx, &job.id, model, outcome);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(hub: &ObsHub) -> TraceContext {
        hub.new_context(Instant::now())
    }

    #[test]
    fn stage_names_are_stable_and_ordered() {
        let names: Vec<&str> = Stage::ALL.iter().map(|s| s.name()).collect();
        assert_eq!(
            names,
            vec![
                "read_parse",
                "admission",
                "queue_wait",
                "batch_assembly",
                "predict",
                "respond_flush"
            ]
        );
    }

    #[test]
    fn contexts_get_unique_ids_and_accumulate_stages() {
        let hub = ObsHub::new(2, 1, 16);
        let mut a = ctx(&hub);
        let b = ctx(&hub);
        assert_ne!(a.trace_id, b.trace_id);
        a.record(Stage::Predict, Duration::from_micros(3));
        a.record(Stage::Predict, Duration::from_micros(2));
        assert_eq!(a.stage_nanos()[Stage::Predict as usize], 5_000);
    }

    #[test]
    fn sampling_keeps_every_error_and_one_in_n_successes() {
        let hub = ObsHub::new(1, 4, 64);
        for _ in 0..8 {
            let c = ctx(&hub);
            hub.complete(0, &c, "r", "m", "ok");
        }
        for _ in 0..3 {
            let c = ctx(&hub);
            hub.complete(0, &c, "r", "m", "shed");
        }
        let (dropped, traces) = hub.drain_traces(usize::MAX);
        assert_eq!(dropped, 0);
        let oks = traces.iter().filter(|t| t.outcome == "ok").count();
        let sheds = traces.iter().filter(|t| t.outcome == "shed").count();
        assert_eq!(oks, 2, "trace ids 0 and 4 of 8 successes");
        assert_eq!(sheds, 3, "every shed is kept");
    }

    #[test]
    fn ring_evicts_oldest_and_counts_drops() {
        let hub = ObsHub::new(1, 1, 4);
        for _ in 0..10 {
            let c = ctx(&hub);
            hub.complete(0, &c, "r", "m", "ok");
        }
        let (dropped, traces) = hub.drain_traces(usize::MAX);
        assert_eq!(dropped, 6);
        assert_eq!(traces.len(), 4);
        let ids: Vec<u64> = traces.iter().map(|t| t.trace_id).collect();
        assert_eq!(ids, vec![6, 7, 8, 9], "oldest evicted first");
    }

    #[test]
    fn drain_traces_respects_max_and_removes_what_it_returns() {
        let hub = ObsHub::new(1, 1, 16);
        for _ in 0..5 {
            let c = ctx(&hub);
            hub.complete(0, &c, "r", "m", "ok");
        }
        let (_, first) = hub.drain_traces(2);
        assert_eq!(first.len(), 2);
        let (_, rest) = hub.drain_traces(100);
        assert_eq!(rest.len(), 3);
        assert_ne!(first[0].trace_id, rest[0].trace_id);
    }

    #[test]
    fn trace_json_is_well_formed_and_escaped() {
        let hub = ObsHub::new(1, 1, 4);
        let mut c = ctx(&hub);
        c.record(Stage::Predict, Duration::from_micros(10));
        hub.complete(0, &c, "id\"with\\quotes", "fig4-atax", "ok");
        let json = hub.drain_traces_json(64);
        assert!(json.starts_with("{\"dropped\":0,\"traces\":[{"));
        assert!(json.contains("\"id\":\"id\\\"with\\\\quotes\""));
        assert!(json.contains("\"model\":\"fig4-atax\""));
        assert!(json.contains("\"predict\":10000"));
        assert!(json.ends_with("}]}"));
        // And it stays on one line.
        assert!(!json.contains('\n'));
    }

    #[test]
    fn latency_counts_only_successes_but_stages_count_everything() {
        let hub = ObsHub::new(1, 1, 16);
        let mut good = ctx(&hub);
        good.record(Stage::QueueWait, Duration::from_millis(1));
        hub.complete(0, &good, "a", "m", "ok");
        let mut bad = ctx(&hub);
        bad.record(Stage::QueueWait, Duration::from_millis(1));
        hub.complete(0, &bad, "b", "m", "deadline");
        let stats = ServeStats::default();
        let report = hub.report(&stats, 0);
        let lat = &report
            .log_histograms
            .iter()
            .find(|(n, _)| n == "serve.latency_seconds")
            .expect("latency present")
            .1;
        assert_eq!(lat.count(), 1);
        let qw = &report
            .log_histograms
            .iter()
            .find(|(n, _)| n == "serve.stage_seconds.queue_wait")
            .expect("stage present")
            .1;
        assert_eq!(qw.count(), 2);
    }

    #[test]
    fn prometheus_snapshot_has_counters_and_stage_quantiles() {
        let hub = ObsHub::new(2, 1, 16);
        let mut c = ctx(&hub);
        c.record(Stage::Predict, Duration::from_micros(250));
        hub.complete(1, &c, "a", "m", "ok");
        hub.observe_batch(3);
        let stats = ServeStats::default();
        let text = hub.prometheus(&stats, 7);
        assert!(text.contains("# TYPE serve_requests_accepted counter"));
        assert!(text.contains("serve_queue_depth 7"));
        assert!(text.contains("serve_latency_seconds{quantile=\"0.99\"}"));
        assert!(text.contains("serve_stage_seconds_predict{quantile=\"0.5\"}"));
        assert!(text.contains("serve_batch_size_count 1"));
    }

    #[test]
    fn publish_exports_ring_traces_as_spans() {
        let t = napel_telemetry::Telemetry::enabled();
        let hub = ObsHub::new(2, 1, 16);
        let mut c = ctx(&hub);
        c.record(Stage::QueueWait, Duration::from_micros(5));
        c.record(Stage::Predict, Duration::from_micros(10));
        hub.complete(1, &c, "req1", "fig4-atax", "ok");
        hub.observe_batch(1);
        hub.publish_to(&t);
        let report = t.drain();
        let request = report
            .spans
            .iter()
            .find(|s| s.name == "serve.request")
            .expect("request span exported");
        assert_eq!(request.lane, TRACE_LANE_BASE + 1);
        assert_eq!(request.depth, 0);
        assert!(request
            .attrs
            .iter()
            .any(|(k, v)| k == "model" && v == "fig4-atax"));
        let stage = report
            .spans
            .iter()
            .find(|s| s.name == "serve.stage.predict")
            .expect("stage span exported");
        assert_eq!(stage.parent.as_deref(), Some("serve.request"));
        assert_eq!(stage.depth, 1);
        assert!(report
            .log_histograms
            .iter()
            .any(|(n, _)| n == "serve.latency_seconds"));
        assert!(report
            .log_histograms
            .iter()
            .any(|(n, _)| n == "serve.stage_seconds.queue_wait"));
    }
}
