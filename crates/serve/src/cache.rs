//! Per-worker decoded-model cache.
//!
//! Each worker shard owns one [`ModelCache`] — no sharing, no locks.
//! Requests are routed to shards by hashing the model key, so a given
//! model's working set concentrates on one shard and its cache.
//!
//! Entries are keyed by the **content hash** of the `.napel` bundle, not
//! its path: overwriting a bundle with a retrained model is picked up on
//! the next request (a stat revalidation notices the changed
//! mtime/length and rehashes), while re-requesting an unchanged bundle
//! costs one `stat` call. Decoded models are held behind `Arc` so an
//! eviction cannot invalidate predictions already in flight.

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::SystemTime;

use napel_core::model::TrainedNapel;
use napel_core::NapelError;

/// 64-bit FNV-1a. Fast, dependency-free, and plenty for cache identity —
/// an adversary who can forge bundle collisions can already overwrite
/// the bundle files themselves.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// How a lookup was satisfied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Lookup {
    /// Model already decoded (stat revalidation only).
    Hit,
    /// Bundle read and decoded from disk.
    Miss {
        /// Whether satisfying the miss evicted a colder model.
        evicted: bool,
    },
}

#[derive(Clone, Copy, PartialEq, Eq)]
struct FileStamp {
    mtime: Option<SystemTime>,
    len: u64,
}

/// LRU cache mapping model keys to decoded [`TrainedNapel`] bundles.
pub struct ModelCache {
    dir: PathBuf,
    capacity: usize,
    /// key → (file stamp at hash time, content hash). Avoids rereading
    /// unchanged bundles just to recompute their identity.
    stamps: HashMap<String, (FileStamp, u64)>,
    /// Most-recently-used first. Linear scans are fine: capacity is
    /// single digits and entries are compared by `u64`.
    entries: Vec<(u64, Arc<TrainedNapel>)>,
}

impl ModelCache {
    /// Creates a cache over bundles in `dir`, holding at most
    /// `capacity` decoded models.
    pub fn new(dir: impl Into<PathBuf>, capacity: usize) -> ModelCache {
        ModelCache {
            dir: dir.into(),
            capacity: capacity.max(1),
            stamps: HashMap::new(),
            entries: Vec::new(),
        }
    }

    /// The bundle path a model key resolves to. Keys are validated at
    /// the protocol layer ([`crate::protocol::valid_model_key`]) to a
    /// single path component, so this cannot escape `dir`.
    pub fn bundle_path(&self, key: &str) -> PathBuf {
        self.dir.join(format!("{key}.napel"))
    }

    /// Fetches the decoded model for `key`, decoding and caching on miss.
    ///
    /// # Errors
    ///
    /// [`NapelError::Artifact`] if the bundle is missing, unreadable, or
    /// fails decode validation.
    pub fn get(&mut self, key: &str) -> Result<(Arc<TrainedNapel>, Lookup), NapelError> {
        let path = self.bundle_path(key);
        let stamp = stat(&path)?;
        if let Some(&(cached_stamp, hash)) = self.stamps.get(key) {
            if cached_stamp == stamp {
                if let Some(pos) = self.entries.iter().position(|(h, _)| *h == hash) {
                    let entry = self.entries.remove(pos);
                    let model = Arc::clone(&entry.1);
                    self.entries.insert(0, entry);
                    return Ok((model, Lookup::Hit));
                }
            }
        }

        let bytes = std::fs::read(&path).map_err(|e| artifact_error(&path, &e.to_string()))?;
        let hash = fnv1a(&bytes);
        self.stamps.insert(key.to_string(), (stamp, hash));

        // The retrained bundle may hash to a model some other key already
        // decoded; identity is content, not name.
        if let Some(pos) = self.entries.iter().position(|(h, _)| *h == hash) {
            let entry = self.entries.remove(pos);
            let model = Arc::clone(&entry.1);
            self.entries.insert(0, entry);
            return Ok((model, Lookup::Hit));
        }

        let model = Arc::new(TrainedNapel::load(&path)?);
        let evicted = self.entries.len() >= self.capacity;
        if evicted {
            self.entries.pop();
        }
        self.entries.insert(0, (hash, Arc::clone(&model)));
        Ok((model, Lookup::Miss { evicted }))
    }

    /// Decoded models currently held.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

fn stat(path: &Path) -> Result<FileStamp, NapelError> {
    let meta = std::fs::metadata(path).map_err(|e| {
        if e.kind() == std::io::ErrorKind::NotFound {
            artifact_error(path, "no such model bundle")
        } else {
            artifact_error(path, &e.to_string())
        }
    })?;
    Ok(FileStamp {
        mtime: meta.modified().ok(),
        len: meta.len(),
    })
}

fn artifact_error(path: &Path, what: &str) -> NapelError {
    NapelError::Artifact {
        path: path.display().to_string(),
        what: what.to_string(),
    }
}
