//! The `napel-serve` wire protocol: newline-delimited text with a
//! versioned header.
//!
//! A session opens with the client sending the header line
//! ([`PROTOCOL_HEADER`]); the server answers `ok - napel-serve v1` and
//! then speaks request/response until either side closes. Every request
//! carries a client-chosen id token echoed in its response, so responses
//! may arrive out of order (batching and sharding reorder freely) and the
//! client can account for every request it sent — the "zero lost
//! acknowledged requests" invariant the chaos tests enforce.
//!
//! Requests:
//!
//! ```text
//! predict <id> <model-key> <f64> <f64> ...   score one feature row
//! ping <id>                                  liveness probe
//! stats <id>                                 live server counters
//! metrics <id>                               Prometheus text exposition
//! trace <id> [max]                           drain sampled request traces
//! shutdown <id>                              begin a clean drain
//! panic <id>                                 chaos mode: panic the worker
//! stall <id> <millis>                        chaos mode: occupy the worker
//! quit                                       close this connection
//! ```
//!
//! Responses:
//!
//! ```text
//! ok <id> <payload...>
//! err <id> <kind> <detail...>
//! ```
//!
//! `metrics` is the one multi-line response in the protocol, and it is
//! block-framed so line-oriented clients stay simple: the server sends
//! `ok <id> metrics <n>`, then exactly `n` raw exposition lines, then a
//! lone `.` terminator. The whole block is written contiguously, so it
//! never interleaves with other responses on the connection. `trace`
//! stays single-line: its payload is one JSON object holding at most
//! [`TRACE_MAX_PER_REQUEST`] traces (drain repeatedly for more).
//!
//! where `<kind>` is one of [`ErrorKind`]'s tokens. Hostile input is a
//! first-class concern: lines are capped at [`MAX_LINE_BYTES`] (the cap is
//! enforced *while reading*, so an attacker cannot balloon server memory
//! by never sending a newline), non-UTF-8 bytes and unparsable requests
//! yield a typed `err ... protocol ...` response after which the server
//! closes the connection, and model keys are restricted to a safe
//! character set so a request can never name a path outside the model
//! directory.

use std::fmt;
use std::io::{self, Read};
use std::time::Duration;

/// The versioned header both sides must agree on, and the first line a
/// client sends.
pub const PROTOCOL_HEADER: &str = "napel-serve v1";

/// Hard cap on a single protocol line, in bytes. A `predict` row of ~400
/// features at ~24 bytes per float is under 10 KiB; 64 KiB leaves
/// generous headroom while bounding per-connection buffer growth.
pub const MAX_LINE_BYTES: usize = 64 * 1024;

/// The id used when a response cannot echo a client id (handshake
/// replies, and errors for lines too mangled to carry one).
pub const NO_ID: &str = "-";

/// Most traces one `trace` response carries. 64 traces at ~300 bytes
/// each keeps the single-line JSON payload far inside
/// [`MAX_LINE_BYTES`], which the client enforces on responses too.
pub const TRACE_MAX_PER_REQUEST: usize = 64;

/// A parsed client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Score one feature row against the named model bundle.
    Predict {
        /// Client-chosen id echoed in the response.
        id: String,
        /// Model key (resolves to `<models-dir>/<key>.napel`).
        model: String,
        /// Raw combined feature row.
        row: Vec<f64>,
    },
    /// Liveness probe; answered inline by the connection handler.
    Ping {
        /// Client-chosen id echoed in the response.
        id: String,
    },
    /// Live counter snapshot; answered inline by the connection handler.
    Stats {
        /// Client-chosen id echoed in the response.
        id: String,
    },
    /// Live Prometheus text exposition; answered inline as a block-framed
    /// multi-line response.
    Metrics {
        /// Client-chosen id echoed in the response.
        id: String,
    },
    /// Drain up to `max` sampled request traces from the trace ring.
    Trace {
        /// Client-chosen id echoed in the response.
        id: String,
        /// Most traces to return (clamped to [`TRACE_MAX_PER_REQUEST`]).
        max: usize,
    },
    /// Begin a clean drain of the whole server.
    Shutdown {
        /// Client-chosen id echoed in the response.
        id: String,
    },
    /// Chaos mode only: panic the worker that dequeues this request
    /// (exercises the supervision/restart path).
    Panic {
        /// Client-chosen id echoed in the response.
        id: String,
    },
    /// Chaos mode only: occupy the worker for the given duration
    /// (exercises queue backpressure and deadlines).
    Stall {
        /// Client-chosen id echoed in the response.
        id: String,
        /// How long the worker sleeps.
        millis: u64,
    },
    /// Close this connection cleanly.
    Quit,
}

impl Request {
    /// The request's id, if it carries one.
    pub fn id(&self) -> &str {
        match self {
            Request::Predict { id, .. }
            | Request::Ping { id }
            | Request::Stats { id }
            | Request::Metrics { id }
            | Request::Trace { id, .. }
            | Request::Shutdown { id }
            | Request::Panic { id }
            | Request::Stall { id, .. } => id,
            Request::Quit => NO_ID,
        }
    }
}

/// Typed error categories carried on the wire (`err <id> <kind> ...`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorKind {
    /// The request line itself was malformed (unknown command, bad
    /// float, oversized line, non-UTF-8 bytes, missing header...). The
    /// server closes the connection after reporting one of these.
    Protocol,
    /// The named model bundle is missing, unreadable, or corrupt.
    Model,
    /// The feature row does not match the model's schema.
    Schema,
    /// Load shedding: the shard's queue was at its high-water mark.
    Shed,
    /// The request sat in the queue past its deadline and was dropped
    /// before wasting a worker.
    Deadline,
    /// The server is draining and no longer admits work.
    Shutdown,
    /// A worker panicked while this request was in flight, or the
    /// shard's restart circuit breaker is open.
    Internal,
}

impl ErrorKind {
    /// Stable on-wire token.
    pub fn token(self) -> &'static str {
        match self {
            ErrorKind::Protocol => "protocol",
            ErrorKind::Model => "model",
            ErrorKind::Schema => "schema",
            ErrorKind::Shed => "shed",
            ErrorKind::Deadline => "deadline",
            ErrorKind::Shutdown => "shutdown",
            ErrorKind::Internal => "internal",
        }
    }

    /// Parses an on-wire token.
    pub fn parse(tok: &str) -> Option<ErrorKind> {
        Some(match tok {
            "protocol" => ErrorKind::Protocol,
            "model" => ErrorKind::Model,
            "schema" => ErrorKind::Schema,
            "shed" => ErrorKind::Shed,
            "deadline" => ErrorKind::Deadline,
            "shutdown" => ErrorKind::Shutdown,
            "internal" => ErrorKind::Internal,
            _ => return None,
        })
    }
}

impl fmt::Display for ErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.token())
    }
}

/// A server response line.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Success: `ok <id> <payload>`.
    Ok {
        /// Echoed request id.
        id: String,
        /// Command-specific payload (may be empty).
        payload: String,
    },
    /// Failure: `err <id> <kind> <detail>`.
    Err {
        /// Echoed request id (or [`NO_ID`]).
        id: String,
        /// Typed category.
        kind: ErrorKind,
        /// Human-readable detail.
        detail: String,
    },
}

impl Response {
    /// A success response.
    pub fn ok(id: impl Into<String>, payload: impl Into<String>) -> Response {
        Response::Ok {
            id: id.into(),
            payload: payload.into(),
        }
    }

    /// An error response.
    pub fn error(id: impl Into<String>, kind: ErrorKind, detail: impl Into<String>) -> Response {
        Response::Err {
            id: id.into(),
            kind,
            detail: detail.into(),
        }
    }

    /// The echoed request id.
    pub fn id(&self) -> &str {
        match self {
            Response::Ok { id, .. } | Response::Err { id, .. } => id,
        }
    }

    /// Whether this is a success response.
    pub fn is_ok(&self) -> bool {
        matches!(self, Response::Ok { .. })
    }

    /// Renders the response as its wire line (no trailing newline).
    pub fn render(&self) -> String {
        match self {
            Response::Ok { id, payload } if payload.is_empty() => format!("ok {id}"),
            Response::Ok { id, payload } => format!("ok {id} {payload}"),
            Response::Err { id, kind, detail } => format!("err {id} {kind} {detail}"),
        }
    }

    /// Parses a wire line (the client side of the protocol).
    pub fn parse(line: &str) -> Option<Response> {
        let line = line.trim_end();
        if let Some(rest) = line.strip_prefix("ok ") {
            let (id, payload) = match rest.split_once(' ') {
                Some((id, payload)) => (id, payload),
                None => (rest, ""),
            };
            return Some(Response::ok(id, payload));
        }
        let rest = line.strip_prefix("err ")?;
        let (id, rest) = rest.split_once(' ')?;
        let (kind_tok, detail) = match rest.split_once(' ') {
            Some((k, d)) => (k, d),
            None => (rest, ""),
        };
        Some(Response::error(id, ErrorKind::parse(kind_tok)?, detail))
    }
}

/// Why a request line failed to parse. Each variant renders to a typed
/// `err ... protocol ...` response via [`ProtocolError::to_response`].
#[derive(Debug, Clone, PartialEq)]
pub enum ProtocolError {
    /// The line held bytes that are not UTF-8.
    NotUtf8,
    /// A line exceeded [`MAX_LINE_BYTES`].
    Oversized {
        /// The enforced cap.
        limit: usize,
    },
    /// The first token is not a known command.
    UnknownCommand(String),
    /// The command is missing its id token.
    MissingId(&'static str),
    /// A `predict` is missing its model key or row.
    Missing {
        /// Echoed id.
        id: String,
        /// What was missing.
        what: &'static str,
    },
    /// A model key holds characters outside `[A-Za-z0-9._-]`.
    BadModelKey {
        /// Echoed id.
        id: String,
        /// The offending key.
        key: String,
    },
    /// A feature token is not a finite float.
    BadFloat {
        /// Echoed id.
        id: String,
        /// The offending token.
        token: String,
    },
    /// A chaos-only command arrived while chaos mode is off.
    ChaosDisabled {
        /// Echoed id.
        id: String,
        /// The refused command.
        command: &'static str,
    },
    /// The session did not open with [`PROTOCOL_HEADER`].
    BadHeader(String),
}

impl ProtocolError {
    /// The id the error response should echo ([`NO_ID`] when the line was
    /// too mangled to carry one).
    pub fn id(&self) -> &str {
        match self {
            ProtocolError::Missing { id, .. }
            | ProtocolError::BadModelKey { id, .. }
            | ProtocolError::BadFloat { id, .. }
            | ProtocolError::ChaosDisabled { id, .. } => id,
            _ => NO_ID,
        }
    }

    /// The typed error response for this parse failure.
    pub fn to_response(&self) -> Response {
        Response::error(self.id(), ErrorKind::Protocol, self.to_string())
    }
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolError::NotUtf8 => write!(f, "line is not UTF-8"),
            ProtocolError::Oversized { limit } => {
                write!(f, "line exceeds the {limit}-byte cap")
            }
            ProtocolError::UnknownCommand(cmd) => write!(f, "unknown command `{cmd}`"),
            ProtocolError::MissingId(cmd) => write!(f, "`{cmd}` needs an id"),
            ProtocolError::Missing { what, .. } => write!(f, "predict lacks {what}"),
            ProtocolError::BadModelKey { key, .. } => {
                write!(
                    f,
                    "model key `{key}` holds characters outside [A-Za-z0-9._-]"
                )
            }
            ProtocolError::BadFloat { token, .. } => {
                write!(f, "`{token}` is not a finite number")
            }
            ProtocolError::ChaosDisabled { command, .. } => {
                write!(
                    f,
                    "`{command}` requests need the server started with --chaos"
                )
            }
            ProtocolError::BadHeader(line) => {
                write!(f, "expected the `{PROTOCOL_HEADER}` header, got `{line}`")
            }
        }
    }
}

impl std::error::Error for ProtocolError {}

/// Whether `key` is a safe model key: nonempty, at most 128 bytes, only
/// `[A-Za-z0-9._-]`. The character set excludes path separators, so a key
/// can never escape the model directory.
pub fn valid_model_key(key: &str) -> bool {
    !key.is_empty()
        && key.len() <= 128
        && key
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || b == b'.' || b == b'_' || b == b'-')
}

/// Parses one request line. `chaos` gates the fault-injection commands.
///
/// # Errors
///
/// A [`ProtocolError`] describing the malformation; render it with
/// [`ProtocolError::to_response`] and close the connection.
pub fn parse_request(line: &str, chaos: bool) -> Result<Request, ProtocolError> {
    let mut toks = line.split_ascii_whitespace();
    let cmd = toks.next().unwrap_or("");
    match cmd {
        "predict" => {
            let id = toks
                .next()
                .ok_or(ProtocolError::MissingId("predict"))?
                .to_string();
            let model = toks
                .next()
                .ok_or(ProtocolError::Missing {
                    id: id.clone(),
                    what: "a model key",
                })?
                .to_string();
            if !valid_model_key(&model) {
                return Err(ProtocolError::BadModelKey { id, key: model });
            }
            let mut row = Vec::new();
            for tok in toks {
                let v: f64 = tok.parse().map_err(|_| ProtocolError::BadFloat {
                    id: id.clone(),
                    token: tok.to_string(),
                })?;
                if !v.is_finite() {
                    return Err(ProtocolError::BadFloat {
                        id,
                        token: tok.to_string(),
                    });
                }
                row.push(v);
            }
            if row.is_empty() {
                return Err(ProtocolError::Missing {
                    id,
                    what: "a feature row",
                });
            }
            Ok(Request::Predict { id, model, row })
        }
        "ping" => Ok(Request::Ping {
            id: toks
                .next()
                .ok_or(ProtocolError::MissingId("ping"))?
                .to_string(),
        }),
        "stats" => Ok(Request::Stats {
            id: toks
                .next()
                .ok_or(ProtocolError::MissingId("stats"))?
                .to_string(),
        }),
        "metrics" => Ok(Request::Metrics {
            id: toks
                .next()
                .ok_or(ProtocolError::MissingId("metrics"))?
                .to_string(),
        }),
        "trace" => {
            let id = toks
                .next()
                .ok_or(ProtocolError::MissingId("trace"))?
                .to_string();
            let max = match toks.next() {
                Some(tok) => tok
                    .parse::<usize>()
                    .ok()
                    .filter(|&m| m > 0)
                    .ok_or_else(|| ProtocolError::BadFloat {
                        id: id.clone(),
                        token: tok.to_string(),
                    })?,
                None => TRACE_MAX_PER_REQUEST,
            };
            Ok(Request::Trace {
                id,
                max: max.min(TRACE_MAX_PER_REQUEST),
            })
        }
        "shutdown" => Ok(Request::Shutdown {
            id: toks
                .next()
                .ok_or(ProtocolError::MissingId("shutdown"))?
                .to_string(),
        }),
        "panic" => {
            let id = toks
                .next()
                .ok_or(ProtocolError::MissingId("panic"))?
                .to_string();
            if !chaos {
                return Err(ProtocolError::ChaosDisabled {
                    id,
                    command: "panic",
                });
            }
            Ok(Request::Panic { id })
        }
        "stall" => {
            let id = toks
                .next()
                .ok_or(ProtocolError::MissingId("stall"))?
                .to_string();
            if !chaos {
                return Err(ProtocolError::ChaosDisabled {
                    id,
                    command: "stall",
                });
            }
            let millis = toks.next().and_then(|t| t.parse().ok()).ok_or_else(|| {
                ProtocolError::BadFloat {
                    id: id.clone(),
                    token: "(stall millis)".to_string(),
                }
            })?;
            Ok(Request::Stall { id, millis })
        }
        "quit" => Ok(Request::Quit),
        other => Err(ProtocolError::UnknownCommand(other.to_string())),
    }
}

/// What [`LineReader::next_line`] can report besides a line.
#[derive(Debug)]
pub enum ReadEvent {
    /// A complete line (newline stripped, not yet UTF-8-checked).
    Line(Vec<u8>),
    /// Orderly end of stream.
    Eof,
    /// A line exceeded [`MAX_LINE_BYTES`] before its newline arrived.
    Oversized,
    /// The underlying read timed out (a slow or stalled client).
    TimedOut,
    /// Any other I/O failure.
    Io(io::Error),
}

/// An incremental, cap-enforcing line reader.
///
/// Unlike `BufRead::read_line`, the cap is enforced *while* bytes
/// accumulate: a peer that streams forever without a newline is cut off
/// at [`MAX_LINE_BYTES`] instead of growing the buffer unboundedly, and a
/// read timeout on the underlying stream surfaces as
/// [`ReadEvent::TimedOut`] instead of an unstructured error.
pub struct LineReader<R: Read> {
    inner: R,
    pending: Vec<u8>,
    cap: usize,
}

impl<R: Read> LineReader<R> {
    /// A reader over `inner` with the default [`MAX_LINE_BYTES`] cap.
    pub fn new(inner: R) -> LineReader<R> {
        LineReader {
            inner,
            pending: Vec::new(),
            cap: MAX_LINE_BYTES,
        }
    }

    /// Overrides the line cap (tests).
    pub fn with_cap(inner: R, cap: usize) -> LineReader<R> {
        LineReader {
            inner,
            pending: Vec::new(),
            cap,
        }
    }

    /// Reads until the next newline, EOF, cap breach, or timeout.
    pub fn next_line(&mut self) -> ReadEvent {
        loop {
            if let Some(pos) = self.pending.iter().position(|&b| b == b'\n') {
                let mut line: Vec<u8> = self.pending.drain(..=pos).collect();
                line.pop(); // the newline
                if line.last() == Some(&b'\r') {
                    line.pop();
                }
                if line.len() > self.cap {
                    return ReadEvent::Oversized;
                }
                return ReadEvent::Line(line);
            }
            if self.pending.len() > self.cap {
                return ReadEvent::Oversized;
            }
            let mut chunk = [0u8; 4096];
            match self.inner.read(&mut chunk) {
                Ok(0) => return ReadEvent::Eof,
                Ok(n) => self.pending.extend_from_slice(&chunk[..n]),
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut =>
                {
                    return ReadEvent::TimedOut;
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return ReadEvent::Io(e),
            }
        }
    }
}

/// Renders a `predict` success payload. Values use Rust's shortest
/// round-trip float formatting, so the client recovers them exactly.
pub fn predict_payload(ipc: f64, energy_pj: f64, spread: f64) -> String {
    format!("ipc={ipc} energy_pj={energy_pj} spread={spread}")
}

/// Extracts a named float from an `ok` payload rendered by
/// [`predict_payload`].
pub fn payload_field(payload: &str, name: &str) -> Option<f64> {
    payload.split_ascii_whitespace().find_map(|kv| {
        let (k, v) = kv.split_once('=')?;
        (k == name).then(|| v.parse().ok())?
    })
}

/// A duration rendered for diagnostics (`1.5s`, `250ms`).
pub fn human_duration(d: Duration) -> String {
    if d >= Duration::from_secs(1) {
        format!("{:.1}s", d.as_secs_f64())
    } else {
        format!("{}ms", d.as_millis())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn requests_parse() {
        let r = parse_request("predict a1 fig4-atax 1.0 2.5 -3e-2", false).unwrap();
        assert_eq!(
            r,
            Request::Predict {
                id: "a1".into(),
                model: "fig4-atax".into(),
                row: vec![1.0, 2.5, -0.03],
            }
        );
        assert_eq!(r.id(), "a1");
        assert_eq!(
            parse_request("ping p", false).unwrap(),
            Request::Ping { id: "p".into() }
        );
        assert_eq!(
            parse_request("stats s", false).unwrap(),
            Request::Stats { id: "s".into() }
        );
        assert_eq!(
            parse_request("shutdown x", false).unwrap(),
            Request::Shutdown { id: "x".into() }
        );
        assert_eq!(parse_request("quit", false).unwrap(), Request::Quit);
        assert_eq!(
            parse_request("stall z 250", true).unwrap(),
            Request::Stall {
                id: "z".into(),
                millis: 250
            }
        );
    }

    #[test]
    fn metrics_and_trace_requests_parse() {
        assert_eq!(
            parse_request("metrics m1", false).unwrap(),
            Request::Metrics { id: "m1".into() }
        );
        assert_eq!(
            parse_request("trace t1", false).unwrap(),
            Request::Trace {
                id: "t1".into(),
                max: TRACE_MAX_PER_REQUEST
            }
        );
        assert_eq!(
            parse_request("trace t2 5", false).unwrap(),
            Request::Trace {
                id: "t2".into(),
                max: 5
            }
        );
        // Requests above the cap are clamped, not refused.
        assert_eq!(
            parse_request("trace t3 9999", false).unwrap(),
            Request::Trace {
                id: "t3".into(),
                max: TRACE_MAX_PER_REQUEST
            }
        );
        assert!(parse_request("metrics", false).is_err());
        assert!(parse_request("trace", false).is_err());
        assert!(parse_request("trace t4 0", false).is_err());
        assert!(parse_request("trace t5 lots", false).is_err());
    }

    #[test]
    fn malformed_requests_are_typed() {
        for (line, needle) in [
            ("", "unknown command"),
            ("frobnicate x", "unknown command"),
            ("predict", "needs an id"),
            ("predict a", "model key"),
            ("predict a m", "feature row"),
            ("predict a ../evil 1.0", "outside"),
            ("predict a m 1.0 nan", "not a finite"),
            ("predict a m 1.0 wat", "not a finite"),
            ("panic a", "--chaos"),
            ("stall a 10", "--chaos"),
        ] {
            let err = parse_request(line, false).unwrap_err();
            let msg = err.to_string();
            assert!(msg.contains(needle), "`{line}` → `{msg}` lacks `{needle}`");
            // Every parse failure renders as a protocol-kind response.
            match err.to_response() {
                Response::Err { kind, .. } => assert_eq!(kind, ErrorKind::Protocol),
                other => panic!("expected err response, got {other:?}"),
            }
        }
    }

    #[test]
    fn errors_echo_the_id_when_the_line_carried_one() {
        let err = parse_request("predict req7 m 1.0 wat", false).unwrap_err();
        assert_eq!(err.id(), "req7");
        let err = parse_request("nonsense", false).unwrap_err();
        assert_eq!(err.id(), NO_ID);
    }

    #[test]
    fn model_key_charset() {
        assert!(valid_model_key("fig4-atax"));
        assert!(valid_model_key("m_1.v2"));
        assert!(!valid_model_key(""));
        assert!(!valid_model_key("a/b"));
        assert!(!valid_model_key("a\\b"));
        assert!(!valid_model_key("a b"));
        assert!(!valid_model_key(&"x".repeat(129)));
    }

    #[test]
    fn responses_round_trip() {
        for r in [
            Response::ok("a1", predict_payload(0.5, 120.25, 1.08)),
            Response::ok("p", "pong"),
            Response::ok("e", ""),
            Response::error("x", ErrorKind::Shed, "queue full at 64"),
            Response::error(NO_ID, ErrorKind::Protocol, "unknown command `hax`"),
        ] {
            let line = r.render();
            let back = Response::parse(&line).unwrap_or_else(|| panic!("unparsable `{line}`"));
            assert_eq!(back, r, "{line}");
        }
        assert!(Response::parse("gibberish").is_none());
        assert!(Response::parse("err x nosuchkind detail").is_none());
    }

    #[test]
    fn predict_payload_round_trips_floats() {
        let payload = predict_payload(0.123456789012345, 98765.4321, 1.0000001);
        assert_eq!(payload_field(&payload, "ipc"), Some(0.123456789012345));
        assert_eq!(payload_field(&payload, "energy_pj"), Some(98765.4321));
        assert_eq!(payload_field(&payload, "spread"), Some(1.0000001));
        assert_eq!(payload_field(&payload, "missing"), None);
    }

    #[test]
    fn line_reader_splits_and_caps() {
        let mut r = LineReader::with_cap(Cursor::new(b"one\ntwo\r\nthree".to_vec()), 16);
        assert!(matches!(r.next_line(), ReadEvent::Line(l) if l == b"one"));
        assert!(matches!(r.next_line(), ReadEvent::Line(l) if l == b"two"));
        // Trailing partial line without a newline: EOF.
        assert!(matches!(r.next_line(), ReadEvent::Eof));

        // A line past the cap trips Oversized even with no newline in sight.
        let mut r = LineReader::with_cap(Cursor::new(vec![b'x'; 64]), 16);
        assert!(matches!(r.next_line(), ReadEvent::Oversized));
        // And with a newline, the per-line check still applies.
        let mut big = vec![b'y'; 32];
        big.push(b'\n');
        let mut r = LineReader::with_cap(Cursor::new(big), 16);
        assert!(matches!(r.next_line(), ReadEvent::Oversized));
    }

    #[test]
    fn human_durations() {
        assert_eq!(human_duration(Duration::from_millis(250)), "250ms");
        assert_eq!(human_duration(Duration::from_millis(1500)), "1.5s");
    }
}
