//! Live server counters.
//!
//! The hot path bumps plain relaxed atomics — cheap enough to leave on
//! unconditionally, and readable at any moment by the `stats` request.
//! At drain time [`ServeStats::publish_telemetry`] mirrors every counter
//! into the `napel-telemetry` subsystem (as `serve.*` counters), so the
//! JSONL event stream a driver writes with `--telemetry-out` carries the
//! same numbers the live endpoint reported.

use std::sync::atomic::{AtomicU64, Ordering};

macro_rules! serve_stats {
    ($( $(#[$doc:meta])* $name:ident => $telemetry:literal, )*) => {
        /// Monotonic counters describing everything the server has done.
        #[derive(Debug, Default)]
        pub struct ServeStats {
            $( $(#[$doc])* pub $name: AtomicU64, )*
        }

        impl ServeStats {
            /// Every counter as `(name, value)`, in declaration order,
            /// using the short names the `stats` response speaks.
            pub fn snapshot(&self) -> Vec<(&'static str, u64)> {
                vec![
                    $( (stringify!($name), self.$name.load(Ordering::Relaxed)), )*
                ]
            }

            /// Every counter as `(telemetry name, value)` — the `serve.*`
            /// names the JSONL stream and the Prometheus exposition use.
            pub fn telemetry_snapshot(&self) -> Vec<(&'static str, u64)> {
                vec![
                    $( ($telemetry, self.$name.load(Ordering::Relaxed)), )*
                ]
            }

            /// Stores `value` into the counter with the given short name;
            /// `false` when no such field exists. Exists so tests can
            /// exercise every field generically (round-trip coverage)
            /// without hand-listing them.
            pub fn set_field(&self, name: &str, value: u64) -> bool {
                match name {
                    $( stringify!($name) => {
                        self.$name.store(value, Ordering::Relaxed);
                        true
                    } )*
                    _ => false,
                }
            }

            /// Mirrors every counter into the global telemetry handle
            /// under its `serve.*` name. Call once, at drain.
            pub fn publish_telemetry(&self) {
                let telemetry = napel_telemetry::global();
                $(
                    telemetry.counter($telemetry, self.$name.load(Ordering::Relaxed));
                )*
            }
        }
    };
}

serve_stats! {
    /// Connections accepted.
    connections => "serve.connections",
    /// Connections refused at the concurrent-connection cap.
    connections_refused => "serve.connections.refused",
    /// Requests admitted to a shard queue.
    accepted => "serve.requests.accepted",
    /// Requests answered `ok`.
    completed => "serve.requests.completed",
    /// Requests refused because the shard queue was at its high-water
    /// mark (explicit load shedding).
    shed => "serve.requests.shed",
    /// Queued requests dropped at dequeue because their deadline had
    /// passed.
    deadline_drops => "serve.requests.deadline_dropped",
    /// Requests rejected because the server was draining.
    rejected_draining => "serve.requests.rejected_draining",
    /// Malformed lines (parse failures, oversized lines, non-UTF-8,
    /// read timeouts on partial lines).
    protocol_errors => "serve.errors.protocol",
    /// Requests naming a missing or corrupt model bundle.
    model_errors => "serve.errors.model",
    /// Rows that failed the model's feature-schema validation.
    schema_errors => "serve.errors.schema",
    /// Requests answered `err ... internal` (in flight during a worker
    /// panic, or on a breaker-tripped shard).
    internal_errors => "serve.errors.internal",
    /// Worker incarnations restarted after a panic.
    worker_restarts => "serve.worker.restarts",
    /// Shards whose restart circuit breaker tripped open.
    breaker_trips => "serve.worker.breaker_trips",
    /// Batches drained from shard queues.
    batches => "serve.batches",
    /// Total rows across all drained batches.
    batch_rows => "serve.batch_rows",
    /// Decoded-model cache hits.
    cache_hits => "serve.model_cache.hits",
    /// Decoded-model cache misses (bundle decoded from disk).
    cache_misses => "serve.model_cache.misses",
    /// Decoded models evicted to stay within the cache capacity.
    cache_evictions => "serve.model_cache.evictions",
}

impl ServeStats {
    /// Renders the `stats` response payload: `name=value` pairs in
    /// declaration order.
    pub fn render(&self) -> String {
        self.snapshot()
            .iter()
            .map(|(name, v)| format!("{name}={v}"))
            .collect::<Vec<_>>()
            .join(" ")
    }

    /// Reads one counter from a rendered payload (client side).
    pub fn parse_field(payload: &str, name: &str) -> Option<u64> {
        payload.split_ascii_whitespace().find_map(|kv| {
            let (k, v) = kv.split_once('=')?;
            (k == name).then(|| v.parse().ok())?
        })
    }
}

/// Bumps a counter field by 1 (relaxed; these are statistics, not
/// synchronization).
#[macro_export]
macro_rules! bump {
    ($stats:expr, $field:ident) => {
        $stats
            .$field
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed)
    };
    ($stats:expr, $field:ident, $n:expr) => {
        $stats
            .$field
            .fetch_add($n, std::sync::atomic::Ordering::Relaxed)
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_and_render_round_trip() {
        let s = ServeStats::default();
        bump!(s, accepted);
        bump!(s, accepted);
        bump!(s, shed);
        bump!(s, batch_rows, 7);
        let payload = s.render();
        assert_eq!(ServeStats::parse_field(&payload, "accepted"), Some(2));
        assert_eq!(ServeStats::parse_field(&payload, "shed"), Some(1));
        assert_eq!(ServeStats::parse_field(&payload, "batch_rows"), Some(7));
        assert_eq!(ServeStats::parse_field(&payload, "completed"), Some(0));
        assert_eq!(ServeStats::parse_field(&payload, "nope"), None);
        let snap = s.snapshot();
        assert!(snap.iter().any(|&(n, v)| n == "accepted" && v == 2));
    }

    #[test]
    fn every_field_round_trips_through_render_and_parse() {
        // Generic coverage: every declared counter must survive
        // render → parse_field, including the boundary values 0 and
        // u64::MAX. Uses set_field/snapshot so a newly added counter is
        // covered automatically.
        let field_names: Vec<&'static str> = ServeStats::default()
            .snapshot()
            .iter()
            .map(|&(n, _)| n)
            .collect();
        assert!(field_names.len() >= 18, "expected the full counter set");
        for value in [0u64, 1, 42, u64::MAX - 1, u64::MAX] {
            let s = ServeStats::default();
            for (i, name) in field_names.iter().enumerate() {
                // Stagger values so adjacent fields can't mask each other.
                assert!(s.set_field(name, value.wrapping_add(i as u64)));
            }
            let payload = s.render();
            for (i, name) in field_names.iter().enumerate() {
                assert_eq!(
                    ServeStats::parse_field(&payload, name),
                    Some(value.wrapping_add(i as u64)),
                    "field {name} with base value {value}"
                );
            }
        }
        assert!(!ServeStats::default().set_field("no_such_field", 1));
    }

    #[test]
    fn telemetry_snapshot_pairs_serve_names_with_values() {
        let s = ServeStats::default();
        bump!(s, shed, 3);
        let snap = s.telemetry_snapshot();
        assert_eq!(snap.len(), s.snapshot().len());
        assert!(snap
            .iter()
            .any(|&(n, v)| n == "serve.requests.shed" && v == 3));
        assert!(snap.iter().all(|&(n, _)| n.starts_with("serve.")));
    }

    #[test]
    fn telemetry_mirror_uses_serve_names() {
        let t = napel_telemetry::Telemetry::enabled();
        napel_telemetry::install(t.clone());
        let s = ServeStats::default();
        bump!(s, completed, 5);
        bump!(s, worker_restarts, 2);
        s.publish_telemetry();
        let report = t.drain();
        assert_eq!(report.counter("serve.requests.completed"), Some(5));
        assert_eq!(report.counter("serve.worker.restarts"), Some(2));
        assert_eq!(report.counter("serve.requests.shed"), Some(0));
        napel_telemetry::install(napel_telemetry::Telemetry::noop());
    }
}
