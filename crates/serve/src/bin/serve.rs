//! `serve` — host trained `.napel` bundles over the line protocol.
//!
//! ```text
//! serve --models models [--addr 127.0.0.1:0] [--workers N]
//!       [--queue-cap N] [--max-conns N] [--read-deadline-ms N]
//!       [--compute-deadline-ms N] [--batch-max N] [--chaos]
//!       [--trace-sample N] [--trace-ring N]
//!       [--metrics-out PATH] [--metrics-interval-ms N]
//!       [--telemetry-out PATH] [--quiet]
//! ```
//!
//! Prints `napel-serve listening on <addr>` (with the resolved port) on
//! stdout once reachable — drivers wait for that line. Runs until either
//! a client sends `shutdown` or stdin closes (the driver-friendly
//! shutdown path: run the server with its stdin on a pipe and close the
//! pipe to drain), then drains cleanly and exits 0. A final counter
//! summary goes to stderr.

use std::io::{BufRead, Write};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use napel_serve::{Server, ServerConfig};

struct Args {
    cfg: ServerConfig,
    telemetry_out: Option<String>,
    metrics_out: Option<String>,
    metrics_interval: Duration,
    quiet: bool,
}

fn parse_args() -> Args {
    let mut cfg = ServerConfig::default();
    if let Some(dir) = std::env::var_os("NAPEL_MODEL_DIR") {
        cfg.model_dir = dir.into();
    }
    let mut telemetry_out = std::env::var("NAPEL_TELEMETRY").ok();
    let mut metrics_out = None;
    let mut metrics_interval = Duration::from_millis(1_000);
    let mut quiet = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |what: &str| args.next().unwrap_or_else(|| panic!("{arg} needs {what}"));
        match arg.as_str() {
            "--models" => cfg.model_dir = value("a directory").into(),
            "--addr" => cfg.addr = value("host:port"),
            "--workers" => cfg.workers = parse_num(&arg, &value("a count")),
            "--queue-cap" => cfg.queue_capacity = parse_num(&arg, &value("a count")),
            "--max-conns" => cfg.max_connections = parse_num(&arg, &value("a count")),
            "--read-deadline-ms" => {
                cfg.read_deadline = Duration::from_millis(parse_num(&arg, &value("millis")));
            }
            "--compute-deadline-ms" => {
                cfg.worker.compute_deadline =
                    Duration::from_millis(parse_num(&arg, &value("millis")));
            }
            "--batch-max" => cfg.worker.batch_max = parse_num(&arg, &value("a count")),
            "--chaos" => cfg.chaos = true,
            "--trace-sample" => cfg.trace_sample = parse_num(&arg, &value("a count")),
            "--trace-ring" => cfg.trace_ring = parse_num(&arg, &value("a count")),
            "--metrics-out" => metrics_out = Some(value("a path")),
            "--metrics-interval-ms" => {
                metrics_interval = Duration::from_millis(parse_num(&arg, &value("millis")));
            }
            "--telemetry-out" => telemetry_out = Some(value("a path")),
            "--quiet" => quiet = true,
            other => panic!("unknown flag `{other}`"),
        }
    }
    Args {
        cfg,
        telemetry_out,
        metrics_out,
        metrics_interval: metrics_interval.max(Duration::from_millis(10)),
        quiet,
    }
}

fn parse_num<T: std::str::FromStr>(flag: &str, raw: &str) -> T {
    raw.parse()
        .unwrap_or_else(|_| panic!("{flag}: `{raw}` is not a valid value"))
}

/// Writes the exposition atomically (write + rename), so a scraper
/// reading the file never sees a half-written snapshot.
fn write_metrics_snapshot(path: &str, text: &str) {
    let tmp = format!("{path}.tmp");
    let ok = std::fs::write(&tmp, text).is_ok() && std::fs::rename(&tmp, path).is_ok();
    if !ok {
        eprintln!("serve: metrics snapshot `{path}` write failed");
    }
}

fn main() {
    let args = parse_args();
    if args.quiet {
        napel_telemetry::log::set_max_level(Some(napel_telemetry::log::Level::Error));
    }
    if args.telemetry_out.is_some() {
        napel_telemetry::install(napel_telemetry::Telemetry::enabled());
    }
    if !args.cfg.model_dir.is_dir() {
        eprintln!(
            "serve: model directory `{}` does not exist (train bundles first, e.g. \
             `fig4 --model-out {0}`)",
            args.cfg.model_dir.display()
        );
        std::process::exit(1);
    }

    let server = Server::start(args.cfg.clone()).unwrap_or_else(|e| {
        eprintln!("serve: cannot bind {}: {e}", args.cfg.addr);
        std::process::exit(1);
    });
    println!("napel-serve listening on {}", server.addr());
    let _ = std::io::stdout().flush();
    napel_telemetry::info!(
        "serving `{}` with {} max queued/shard, chaos {}",
        args.cfg.model_dir.display(),
        args.cfg.queue_capacity,
        if args.cfg.chaos { "on" } else { "off" }
    );

    // Stdin closing is the local shutdown signal: a driver holds our
    // stdin on a pipe and closes it (or writes `shutdown`) to drain.
    let stdin_closed = Arc::new(AtomicBool::new(false));
    {
        let stdin_closed = Arc::clone(&stdin_closed);
        std::thread::Builder::new()
            .name("napel-serve-stdin".to_string())
            .spawn(move || {
                for line in std::io::stdin().lock().lines() {
                    match line {
                        Ok(l) if l.trim() == "shutdown" => break,
                        Ok(_) => continue,
                        Err(_) => break,
                    }
                }
                stdin_closed.store(true, Ordering::SeqCst);
            })
            .expect("stdin watcher spawn");
    }

    let mut next_snapshot = std::time::Instant::now();
    while !server.shutdown_requested() && !stdin_closed.load(Ordering::SeqCst) {
        std::thread::sleep(Duration::from_millis(50));
        if args.metrics_out.is_some() && std::time::Instant::now() >= next_snapshot {
            write_metrics_snapshot(args.metrics_out.as_deref().unwrap(), &server.prometheus());
            next_snapshot += args.metrics_interval;
        }
    }
    // One final snapshot so the file reflects the complete run.
    if let Some(path) = &args.metrics_out {
        write_metrics_snapshot(path, &server.prometheus());
    }
    napel_telemetry::info!("serve: draining...");
    let stats = server.drain();
    eprintln!("serve: drained; {}", stats.render());

    if let Some(path) = &args.telemetry_out {
        let report = napel_telemetry::global().drain();
        if let Err(e) = std::fs::write(path, report.to_jsonl()) {
            eprintln!("serve: telemetry output `{path}` write failed: {e}");
        }
    }
}
