//! `loadgen` — drive a running `serve` instance with mixed workloads and
//! verify the server's robustness contract from the outside.
//!
//! ```text
//! loadgen --addr HOST:PORT --models DIR [--mode steady|overload|chaos]
//!         [--clients 1,4,16] [--requests N] [--window N] [--seed N]
//!         [--stall-ms N] [--slow-ms N] [--out report.json] [--strict]
//! loadgen --addr HOST:PORT --shutdown
//! ```
//!
//! Modes:
//!
//! - `steady` — every client streams pipelined `predict` requests across
//!   all discovered models.
//! - `overload` — clients first wedge the worker shards with `stall`
//!   requests, then flood predicts at roughly twice the queue capacity;
//!   the server is expected to *shed* (typed `err ... shed`), not slow
//!   down or lose requests. Needs a server started with `--chaos`.
//! - `chaos` — clients take hostile roles by index: panic injectors,
//!   garbage-byte senders, slow-loris partial-line writers, plus normal
//!   traffic. Needs a server started with `--chaos`.
//!
//! The invariant checked in every mode (`--strict` turns violations into
//! a nonzero exit): **no lost acknowledged requests** — every request a
//! well-behaved client manages to send receives exactly one typed
//! response (`ok`, `shed`, `deadline`, `internal`...), even while
//! workers panic and restart around it. Hostile connections the server
//! kills are tallied as `aborted`, which is their job.
//!
//! Per `--clients` level, the report records counts, latency
//! percentiles, and throughput; `--out` writes the whole thing as JSON.

use std::collections::{BTreeMap, HashMap};
use std::io::Write as _;
use std::net::{SocketAddr, ToSocketAddrs};
use std::time::{Duration, Instant};

use napel_serve::protocol::{payload_field, predict_payload};
use napel_serve::{Response, ServeClient};
use napel_telemetry::LogHistogram;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const CONNECT_TIMEOUT: Duration = Duration::from_secs(10);

#[derive(Clone)]
struct Args {
    addr: SocketAddr,
    models: std::path::PathBuf,
    mode: String,
    clients: Vec<usize>,
    requests: usize,
    window: usize,
    seed: u64,
    stall_ms: u64,
    slow_ms: u64,
    out: Option<String>,
    strict: bool,
    shutdown: bool,
}

fn parse_args() -> Args {
    let mut addr = None;
    let mut models = std::path::PathBuf::from("models");
    let mut mode = "steady".to_string();
    let mut clients = vec![1, 4, 16];
    let mut requests = 100;
    let mut window = 32;
    let mut seed = 25019;
    let mut stall_ms = 400;
    let mut slow_ms = 3000;
    let mut out = None;
    let mut strict = false;
    let mut shutdown = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |what: &str| args.next().unwrap_or_else(|| panic!("{arg} needs {what}"));
        match arg.as_str() {
            "--addr" => {
                let raw = value("host:port");
                addr = Some(
                    raw.to_socket_addrs()
                        .unwrap_or_else(|e| panic!("--addr `{raw}`: {e}"))
                        .next()
                        .unwrap_or_else(|| panic!("--addr `{raw}` resolves to nothing")),
                );
            }
            "--models" => models = value("a directory").into(),
            "--mode" => mode = value("steady|overload|chaos"),
            "--clients" => {
                clients = value("a comma-separated list")
                    .split(',')
                    .map(|t| t.trim().parse().unwrap_or_else(|_| panic!("bad --clients")))
                    .collect();
            }
            "--requests" => requests = value("a count").parse().expect("--requests"),
            "--window" => window = value("a count").parse().expect("--window"),
            "--seed" => seed = value("a number").parse().expect("--seed"),
            "--stall-ms" => stall_ms = value("millis").parse().expect("--stall-ms"),
            "--slow-ms" => slow_ms = value("millis").parse().expect("--slow-ms"),
            "--out" => out = Some(value("a path")),
            "--strict" => strict = true,
            "--shutdown" => shutdown = true,
            other => panic!("unknown flag `{other}`"),
        }
    }
    assert!(
        matches!(mode.as_str(), "steady" | "overload" | "chaos"),
        "unknown --mode `{mode}`"
    );
    Args {
        addr: addr.expect("loadgen needs --addr HOST:PORT"),
        models,
        mode,
        clients,
        requests: requests.max(1),
        window: window.max(1),
        seed,
        stall_ms,
        slow_ms,
        out,
        strict,
        shutdown,
    }
}

/// What one client observed.
#[derive(Default)]
struct ClientOutcome {
    sent: u64,
    ok: u64,
    errors: BTreeMap<String, u64>,
    /// Requests a well-behaved client sent but never got answered.
    lost: u64,
    /// Requests unanswered because the server closed a (deliberately
    /// hostile) connection — expected, not lost.
    aborted: u64,
    /// `ok` response latencies in microseconds. A log-bucketed histogram
    /// instead of a raw Vec: constant memory however many requests a
    /// level sends, mergeable across clients, and quantiles within a
    /// documented relative-error bound.
    latency_us: LogHistogram,
    /// The hostile role saw the defense it was probing for.
    probe_verified: bool,
    role: &'static str,
}

impl ClientOutcome {
    fn account(&mut self, outstanding: &mut HashMap<String, Instant>, response: &Response) {
        if let Some(t0) = outstanding.remove(response.id()) {
            match response {
                Response::Ok { .. } => {
                    self.ok += 1;
                    self.latency_us.observe(t0.elapsed().as_secs_f64() * 1e6);
                }
                Response::Err { kind, .. } => {
                    *self.errors.entry(kind.token().to_string()).or_insert(0) += 1;
                }
            }
        }
    }
}

fn sample_row(rng: &mut StdRng, nfeat: usize) -> String {
    let mut row = String::with_capacity(nfeat * 8);
    for _ in 0..nfeat {
        let v: f64 = rng.gen_range(0.1..4.0);
        row.push_str(&format!(" {v:.4}"));
    }
    row
}

/// A well-behaved client: pipelined predicts (or the occasional chaos
/// request when `panic_every` / `stall_head` say so), full response
/// accounting, clean quit.
#[allow(clippy::too_many_arguments)]
fn run_normal_client(
    args: &Args,
    ci: usize,
    keys: &[String],
    nfeat: usize,
    panic_every: usize,
    stall_head: usize,
    role: &'static str,
) -> ClientOutcome {
    let mut outcome = ClientOutcome {
        role,
        probe_verified: true,
        ..ClientOutcome::default()
    };
    let mut rng = StdRng::seed_from_u64(args.seed ^ (ci as u64).wrapping_mul(0x9e37_79b9));
    let Ok(mut client) = ServeClient::connect(args.addr, CONNECT_TIMEOUT) else {
        outcome.lost = args.requests as u64;
        return outcome;
    };
    let mut outstanding: HashMap<String, Instant> = HashMap::new();

    // Overload fuel: wedge workers before the flood.
    for s in 0..stall_head {
        let id = format!("c{ci}s{s}");
        if client
            .send_line(&format!("stall {id} {}", args.stall_ms))
            .is_err()
        {
            break;
        }
        outstanding.insert(id, Instant::now());
        outcome.sent += 1;
    }

    for i in 0..args.requests {
        let id = format!("c{ci}r{i}");
        let line = if panic_every > 0 && i % panic_every == panic_every - 1 {
            format!("panic {id}")
        } else {
            let key = &keys[(ci + i) % keys.len()];
            format!("predict {id} {key}{}", sample_row(&mut rng, nfeat))
        };
        if client.send_line(&line).is_err() {
            outcome.lost += 1 + drain_outstanding(&mut client, &mut outstanding, &mut outcome);
            return outcome;
        }
        outstanding.insert(id, Instant::now());
        outcome.sent += 1;
        while outstanding.len() >= args.window {
            match client.read_response() {
                Ok(Some(response)) => outcome.account(&mut outstanding, &response),
                _ => {
                    outcome.lost += outstanding.len() as u64;
                    return outcome;
                }
            }
        }
    }
    outcome.lost += drain_outstanding(&mut client, &mut outstanding, &mut outcome);
    let _ = client.send_line("quit");
    outcome
}

/// Reads until every outstanding id is answered; returns how many never
/// were.
fn drain_outstanding(
    client: &mut ServeClient,
    outstanding: &mut HashMap<String, Instant>,
    outcome: &mut ClientOutcome,
) -> u64 {
    while !outstanding.is_empty() {
        match client.read_response() {
            Ok(Some(response)) => outcome.account(outstanding, &response),
            _ => return outstanding.len() as u64,
        }
    }
    0
}

/// Garbage-byte client: after one honest request, streams non-UTF-8
/// bytes and a bogus command. The server must answer with a typed
/// protocol error and close; the worker shards must not notice.
fn run_garbage_client(args: &Args, ci: usize, keys: &[String], nfeat: usize) -> ClientOutcome {
    let mut outcome = ClientOutcome {
        role: "garbage",
        ..ClientOutcome::default()
    };
    let mut rng = StdRng::seed_from_u64(args.seed ^ (ci as u64) ^ 0xdead);
    let Ok(mut client) = ServeClient::connect(args.addr, CONNECT_TIMEOUT) else {
        return outcome;
    };
    let mut outstanding = HashMap::new();
    let id = format!("c{ci}honest");
    let key = &keys[ci % keys.len()];
    if client
        .send_line(&format!(
            "predict {id} {key}{}",
            sample_row(&mut rng, nfeat)
        ))
        .is_ok()
    {
        outstanding.insert(id, Instant::now());
        outcome.sent += 1;
    }
    outcome.lost += drain_outstanding(&mut client, &mut outstanding, &mut outcome);
    // Now turn hostile.
    let _ = client.stream().try_clone().map(|mut raw| {
        let _ = raw.write_all(b"\xff\xfe\x00 utter garbage\n");
    });
    loop {
        match client.read_response() {
            Ok(Some(Response::Err { .. })) => {
                outcome.probe_verified = true; // typed error before the close
            }
            Ok(Some(Response::Ok { .. })) => continue,
            Ok(None) => break, // closed on us, as designed
            Err(_) => break,
        }
    }
    outcome
}

/// Slow-loris client: sends a partial line and stalls past the server's
/// read deadline. The server must cut the connection loose (after a
/// typed deadline notice), freeing its reader thread.
fn run_slow_client(args: &Args) -> ClientOutcome {
    let mut outcome = ClientOutcome {
        role: "slow",
        ..ClientOutcome::default()
    };
    let Ok(mut client) = ServeClient::connect(args.addr, CONNECT_TIMEOUT) else {
        return outcome;
    };
    // A dribble with no newline: never completes into a request.
    let _ = client.stream().try_clone().map(|mut raw| {
        let _ = raw.write_all(b"predict slow1 some-model 1.0 2.0");
    });
    std::thread::sleep(Duration::from_millis(args.slow_ms));
    loop {
        match client.read_response() {
            Ok(Some(Response::Err { .. })) => outcome.probe_verified = true,
            Ok(Some(Response::Ok { .. })) => continue,
            Ok(None) | Err(_) => break,
        }
    }
    outcome
}

/// One load level: `clients` concurrent connections, aggregated.
fn run_level(args: &Args, clients: usize, keys: &[String], nfeat: usize) -> LevelReport {
    let started = Instant::now();
    let outcomes: Vec<ClientOutcome> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|ci| {
                scope.spawn(move || match args.mode.as_str() {
                    "steady" => run_normal_client(args, ci, keys, nfeat, 0, 0, "steady"),
                    "overload" => run_normal_client(args, ci, keys, nfeat, 0, 2, "overload"),
                    "chaos" => match ci % 4 {
                        1 => run_normal_client(args, ci, keys, nfeat, 10, 0, "panic"),
                        2 => run_garbage_client(args, ci, keys, nfeat),
                        3 => run_slow_client(args),
                        _ => run_normal_client(args, ci, keys, nfeat, 0, 0, "steady"),
                    },
                    _ => unreachable!("mode validated at parse"),
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread"))
            .collect()
    });
    let wall = started.elapsed();

    let mut report = LevelReport {
        clients,
        wall_ms: wall.as_millis() as u64,
        ..LevelReport::default()
    };
    let mut latency = LogHistogram::new();
    for outcome in &outcomes {
        if outcome.lost > 0 {
            eprintln!(
                "loadgen: {} client lost {} response(s)",
                outcome.role, outcome.lost
            );
        }
        report.sent += outcome.sent;
        report.ok += outcome.ok;
        report.lost += outcome.lost;
        report.aborted += outcome.aborted;
        if !outcome.probe_verified {
            report.unverified_probes += 1;
        }
        for (kind, n) in &outcome.errors {
            *report.errors.entry(kind.clone()).or_insert(0) += n;
        }
        latency.merge(&outcome.latency_us);
    }
    report.p50_us = latency.quantile(0.5).round() as u64;
    report.p99_us = latency.quantile(0.99).round() as u64;
    report.throughput_rps = if wall.as_secs_f64() > 0.0 {
        report.ok as f64 / wall.as_secs_f64()
    } else {
        0.0
    };
    report
}

#[derive(Default)]
struct LevelReport {
    clients: usize,
    sent: u64,
    ok: u64,
    errors: BTreeMap<String, u64>,
    lost: u64,
    aborted: u64,
    unverified_probes: u64,
    p50_us: u64,
    p99_us: u64,
    throughput_rps: f64,
    wall_ms: u64,
}

impl LevelReport {
    fn to_json(&self) -> String {
        let errors = self
            .errors
            .iter()
            .map(|(k, v)| format!("\"{k}\":{v}"))
            .collect::<Vec<_>>()
            .join(",");
        format!(
            "{{\"clients\":{},\"sent\":{},\"ok\":{},\"errors\":{{{errors}}},\
             \"lost\":{},\"aborted\":{},\"unverified_probes\":{},\"p50_us\":{},\
             \"p99_us\":{},\"throughput_rps\":{:.1},\"wall_ms\":{}}}",
            self.clients,
            self.sent,
            self.ok,
            self.lost,
            self.aborted,
            self.unverified_probes,
            self.p50_us,
            self.p99_us,
            self.throughput_rps,
            self.wall_ms,
        )
    }

    fn summary(&self) -> String {
        let errs: u64 = self.errors.values().sum();
        format!(
            "clients={:<3} sent={:<6} ok={:<6} err={:<5} lost={} aborted={} \
             p50={}us p99={}us {:.0} req/s",
            self.clients,
            self.sent,
            self.ok,
            errs,
            self.lost,
            self.aborted,
            self.p50_us,
            self.p99_us,
            self.throughput_rps,
        )
    }
}

/// Discovers model keys (bundle stems) and the feature-row width.
fn discover_models(dir: &std::path::Path) -> (Vec<String>, usize) {
    let mut keys: Vec<String> = std::fs::read_dir(dir)
        .unwrap_or_else(|e| panic!("cannot read --models `{}`: {e}", dir.display()))
        .filter_map(Result::ok)
        .filter_map(|entry| {
            let path = entry.path();
            (path.extension().and_then(|e| e.to_str()) == Some("napel"))
                .then(|| path.file_stem()?.to_str().map(str::to_string))
                .flatten()
        })
        .collect();
    keys.sort();
    assert!(
        !keys.is_empty(),
        "no .napel bundles under `{}` — train some first (fig4 --model-out)",
        dir.display()
    );
    let first = dir.join(format!("{}.napel", keys[0]));
    let model = napel_core::model::TrainedNapel::load(&first)
        .unwrap_or_else(|e| panic!("cannot decode `{}`: {e}", first.display()));
    (keys, model.feature_names().len())
}

fn send_shutdown(addr: SocketAddr) {
    let mut client = ServeClient::connect(addr, CONNECT_TIMEOUT).expect("connect for --shutdown");
    let response = client.request("shutdown sd1").expect("shutdown request");
    assert!(response.is_ok(), "shutdown refused: {}", response.render());
    // The drain closes our connection; EOF confirms it completed.
    while let Ok(Some(_)) = client.read_response() {}
    println!("loadgen: server acknowledged shutdown and drained");
}

fn fetch_server_stats(addr: SocketAddr) -> Option<String> {
    let mut client = ServeClient::connect(addr, CONNECT_TIMEOUT).ok()?;
    let response = client.request("stats st1").ok()?;
    let _ = client.send_line("quit");
    match response {
        Response::Ok { payload, .. } => Some(payload),
        Response::Err { .. } => None,
    }
}

fn main() {
    let args = parse_args();
    if args.shutdown {
        send_shutdown(args.addr);
        return;
    }
    let (keys, nfeat) = discover_models(&args.models);
    eprintln!(
        "loadgen: {} model(s) [{}], {} features/row, mode {}",
        keys.len(),
        keys.join(" "),
        nfeat,
        args.mode
    );
    // Smoke-check the schema end to end before unleashing threads.
    {
        let mut client = ServeClient::connect(args.addr, CONNECT_TIMEOUT)
            .unwrap_or_else(|e| panic!("cannot reach the server at {}: {e}", args.addr));
        let mut rng = StdRng::seed_from_u64(args.seed);
        let probe = client
            .request(&format!(
                "predict p0 {}{}",
                keys[0],
                sample_row(&mut rng, nfeat)
            ))
            .expect("probe request");
        assert!(probe.is_ok(), "probe predict failed: {}", probe.render());
        if let Response::Ok { payload, .. } = &probe {
            assert!(
                payload_field(payload, "ipc").is_some(),
                "probe payload lacks ipc: {payload} (expected shape: {})",
                predict_payload(0.0, 0.0, 1.0)
            );
        }
        let _ = client.send_line("quit");
    }

    let mut levels = Vec::new();
    let mut violations = 0u64;
    for &clients in &args.clients {
        let level = run_level(&args, clients, &keys, nfeat);
        println!("loadgen: {}", level.summary());
        violations += level.lost + level.unverified_probes;
        levels.push(level);
    }
    let server_stats = fetch_server_stats(args.addr);
    if let Some(stats) = &server_stats {
        eprintln!("loadgen: server stats: {stats}");
    }

    if let Some(path) = &args.out {
        let runs = levels
            .iter()
            .map(LevelReport::to_json)
            .collect::<Vec<_>>()
            .join(",");
        let stats_json = server_stats
            .as_deref()
            .map(|s| format!("\"{s}\""))
            .unwrap_or_else(|| "null".to_string());
        let json = format!(
            "{{\"mode\":\"{}\",\"seed\":{},\"requests_per_client\":{},\
             \"server_stats\":{stats_json},\"runs\":[{runs}]}}\n",
            args.mode, args.seed, args.requests
        );
        std::fs::write(path, json).unwrap_or_else(|e| panic!("cannot write --out `{path}`: {e}"));
        eprintln!("loadgen: report written to {path}");
    }

    if args.strict && violations > 0 {
        eprintln!("loadgen: STRICT FAILURE — {violations} lost request(s)/unverified probe(s)");
        std::process::exit(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use napel_telemetry::RELATIVE_ERROR_BOUND;

    /// Exact nearest-rank percentile over a sorted sample — the
    /// implementation the report used before migrating to
    /// [`LogHistogram`], kept as the differential oracle.
    fn exact_nearest_rank(sorted: &[u64], q: f64) -> u64 {
        if sorted.is_empty() {
            return 0;
        }
        let rank = ((q * sorted.len() as f64).ceil() as usize).max(1);
        sorted[rank - 1]
    }

    #[test]
    fn histogram_percentiles_track_the_exact_sorted_oracle() {
        // A latency-shaped sample: a dense body plus a heavy tail,
        // deterministic so the assertion is stable.
        let mut sample: Vec<u64> = Vec::new();
        let mut x: u64 = 25019;
        for _ in 0..5_000 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let body = 50 + (x >> 33) % 2_000; // 50µs..2ms
            sample.push(body);
            if x.is_multiple_of(50) {
                sample.push(body * 100); // occasional 100× tail
            }
        }
        let mut h = LogHistogram::new();
        for &us in &sample {
            h.observe(us as f64);
        }
        sample.sort_unstable();
        for q in [0.5, 0.9, 0.99, 0.999] {
            let exact = exact_nearest_rank(&sample, q) as f64;
            let estimated = h.quantile(q);
            let rel = (estimated - exact).abs() / exact;
            assert!(
                rel <= RELATIVE_ERROR_BOUND,
                "q={q}: estimated {estimated} vs exact {exact} (rel err {rel:.5} > {RELATIVE_ERROR_BOUND})"
            );
        }
    }

    #[test]
    fn merged_client_histograms_match_one_big_histogram() {
        // run_level merges per-client histograms; the merge must be
        // indistinguishable from observing everything in one histogram.
        let mut parts: Vec<LogHistogram> = (0..4).map(|_| LogHistogram::new()).collect();
        let mut whole = LogHistogram::new();
        for i in 0..1_000u64 {
            let v = (i * 37 % 9_000 + 10) as f64;
            parts[(i % 4) as usize].observe(v);
            whole.observe(v);
        }
        let mut merged = LogHistogram::new();
        for p in &parts {
            merged.merge(p);
        }
        assert_eq!(merged, whole);
    }
}
