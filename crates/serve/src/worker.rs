//! Supervised worker shards.
//!
//! Each shard is one OS thread owning one [`ShardQueue`] and one
//! [`ModelCache`]. The thread runs a **supervisor loop**: the actual
//! request-processing *incarnation* executes under `catch_unwind`, and
//! when it panics — a poisoned model, a bug, or a chaos `panic` request —
//! the supervisor answers every request the incarnation had claimed
//! (`err ... internal`), waits out a deterministic exponential backoff,
//! and starts a fresh incarnation. Panics are therefore invisible to
//! every other connection and every other shard.
//!
//! A shard that panics repeatedly without completing a batch in between
//! is assumed wedged: after `breaker_max_restarts` consecutive panics
//! the restart circuit breaker trips, the shard's queue closes (new
//! work for it is refused at admission), queued jobs are answered
//! `err ... internal`, and the thread exits rather than burning CPU on
//! a crash loop.
//!
//! **No acknowledged request is ever silently dropped.** The invariant:
//! a job leaves its queue only into the shard's *in-flight slot*, and
//! leaves the slot only after its response line has been handed to the
//! connection writer. Whatever the incarnation was doing when it died,
//! the supervisor finds the evidence in the slot.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use napel_core::fault::Backoff;
use napel_core::NapelError;

use crate::bump;
use crate::cache::{Lookup, ModelCache};
use crate::protocol::{predict_payload, ErrorKind, Response};
use crate::queue::{Job, JobKind, ShardQueue};
use crate::stats::ServeStats;
use crate::trace::{self, ObsHub, Stage};

/// Tuning for one worker shard.
#[derive(Debug, Clone)]
pub struct WorkerConfig {
    /// Most jobs drained from the queue per batch.
    pub batch_max: usize,
    /// Queued jobs older than this at processing time are answered
    /// `err ... deadline` instead of being scored — under overload,
    /// late answers are worthless and computing them only makes the
    /// backlog later still.
    pub compute_deadline: Duration,
    /// Restart delay schedule after a panic.
    pub backoff: Backoff,
    /// Consecutive panics (no completed batch in between) before the
    /// restart circuit breaker trips and the shard shuts down.
    pub breaker_max_restarts: u32,
    /// Decoded models kept per shard.
    pub cache_capacity: usize,
}

impl Default for WorkerConfig {
    fn default() -> WorkerConfig {
        WorkerConfig {
            batch_max: 32,
            compute_deadline: Duration::from_secs(5),
            backoff: Backoff::new(Duration::from_millis(5), Duration::from_millis(250)),
            breaker_max_restarts: 8,
            cache_capacity: 4,
        }
    }
}

/// Locks a mutex, recovering from poisoning — the shard's whole purpose
/// is to keep functioning after a panic, and the in-flight queue of
/// `Job`s stays structurally valid through an unwind.
fn lock_recovering<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Spawns the supervisor thread for shard `index`. The thread exits when
/// the queue is closed and drained, or when its breaker trips.
pub fn spawn_worker(
    index: usize,
    queue: Arc<ShardQueue>,
    model_dir: PathBuf,
    stats: Arc<ServeStats>,
    hub: Arc<ObsHub>,
    cfg: WorkerConfig,
) -> JoinHandle<()> {
    std::thread::Builder::new()
        .name(format!("napel-serve-worker-{index}"))
        .spawn(move || supervise(index, &queue, &model_dir, &stats, &hub, &cfg))
        .expect("worker thread spawn")
}

fn supervise(
    shard: usize,
    queue: &ShardQueue,
    model_dir: &PathBuf,
    stats: &ServeStats,
    hub: &ObsHub,
    cfg: &WorkerConfig,
) {
    let mut cache = ModelCache::new(model_dir, cfg.cache_capacity);
    let inflight: Mutex<VecDeque<Job>> = Mutex::new(VecDeque::new());
    // Consecutive panics with no completed batch in between; the
    // incarnation zeroes it after every batch it finishes.
    let consecutive = AtomicU32::new(0);

    loop {
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            incarnation(
                shard,
                queue,
                &mut cache,
                &inflight,
                stats,
                hub,
                cfg,
                &consecutive,
            );
        }));
        match outcome {
            // Queue closed and drained: clean shutdown.
            Ok(()) => return,
            Err(_) => {
                // Answer everything the dead incarnation had claimed.
                for job in lock_recovering(&inflight).drain(..) {
                    bump!(stats, internal_errors);
                    let response = Response::error(
                        &job.id,
                        ErrorKind::Internal,
                        "worker panicked while this request was in flight",
                    );
                    trace::finish(hub, shard, job, "internal", &response);
                }
                bump!(stats, worker_restarts);
                napel_telemetry::counter!("serve.worker.restart_events", 1);
                let restarts = consecutive.fetch_add(1, Ordering::Relaxed) + 1;
                if restarts > cfg.breaker_max_restarts {
                    trip_breaker(shard, queue, stats, hub);
                    return;
                }
                std::thread::sleep(cfg.backoff.delay(restarts - 1));
            }
        }
    }
}

/// The breaker has decided this shard is wedged: refuse its future work
/// at admission and answer what is already queued.
fn trip_breaker(shard: usize, queue: &ShardQueue, stats: &ServeStats, hub: &ObsHub) {
    bump!(stats, breaker_trips);
    queue.close();
    for job in queue.drain_now() {
        bump!(stats, internal_errors);
        let response = Response::error(
            &job.id,
            ErrorKind::Internal,
            "shard restart circuit breaker open",
        );
        trace::finish(hub, shard, job, "internal", &response);
    }
}

/// One incarnation: drain batches until the queue closes. Panics
/// propagate to the supervisor.
#[allow(clippy::too_many_arguments)]
fn incarnation(
    shard: usize,
    queue: &ShardQueue,
    cache: &mut ModelCache,
    inflight: &Mutex<VecDeque<Job>>,
    stats: &ServeStats,
    hub: &ObsHub,
    cfg: &WorkerConfig,
    consecutive: &AtomicU32,
) {
    while let Some(mut batch) = queue.pop_batch(cfg.batch_max) {
        bump!(stats, batches);
        bump!(stats, batch_rows, batch.len() as u64);
        hub.observe_batch(batch.len());
        // The moment of claim closes every job's queue_wait stage.
        let claimed = Instant::now();
        for job in &mut batch {
            job.ctx
                .record(Stage::QueueWait, claimed.duration_since(job.enqueued));
        }
        *lock_recovering(inflight) = batch.into();
        process_slot(shard, cache, inflight, stats, hub, cfg);
        consecutive.store(0, Ordering::Relaxed);
    }
}

/// Works through the in-flight slot front to back. Jobs are popped from
/// the slot only at the moment their response is sent.
fn process_slot(
    shard: usize,
    cache: &mut ModelCache,
    inflight: &Mutex<VecDeque<Job>>,
    stats: &ServeStats,
    hub: &ObsHub,
    cfg: &WorkerConfig,
) {
    loop {
        // Decide what to do from the front of the slot without removing
        // anything yet.
        enum Step {
            Done,
            Expired,
            Panic,
            Stall(Duration),
            /// Score the first `n` jobs, all for this model key.
            Predict(usize, String),
        }
        let step = {
            let slot = lock_recovering(inflight);
            match slot.front() {
                None => Step::Done,
                Some(front) if front.age() > cfg.compute_deadline => Step::Expired,
                Some(front) => match &front.kind {
                    JobKind::Panic => Step::Panic,
                    JobKind::Stall(d) => Step::Stall(*d),
                    JobKind::Predict { model, .. } => {
                        let model = model.clone();
                        let n = slot
                            .iter()
                            .take_while(|j| {
                                matches!(&j.kind, JobKind::Predict { model: m, .. } if *m == model)
                                    && j.age() <= cfg.compute_deadline
                            })
                            .count();
                        Step::Predict(n, model)
                    }
                },
            }
        };

        match step {
            Step::Done => return,
            Step::Expired => {
                let job = pop_front(inflight);
                bump!(stats, deadline_drops);
                let response = Response::error(
                    &job.id,
                    ErrorKind::Deadline,
                    format!("queued {:?}, past the compute deadline", job.age()),
                );
                trace::finish(hub, shard, job, "deadline", &response);
            }
            // The chaos request gets its answer from the supervisor: the
            // job stays in the slot, so the panic handler finds it there.
            Step::Panic => panic!("chaos: panic requested by client"),
            Step::Stall(d) => {
                std::thread::sleep(d);
                let mut job = pop_front(inflight);
                job.ctx.record(Stage::Predict, d);
                bump!(stats, completed);
                let response = Response::ok(&job.id, format!("stalled {}ms", d.as_millis()));
                trace::finish(hub, shard, job, "ok", &response);
            }
            Step::Predict(n, model_key) => {
                predict_run(shard, cache, inflight, stats, hub, n, &model_key)
            }
        }
    }
}

/// Scores the first `n` in-flight jobs (one contiguous same-model run)
/// through the batch path, falling back to per-row scoring when the
/// batch contains schema-invalid rows so only those rows fail.
fn predict_run(
    shard: usize,
    cache: &mut ModelCache,
    inflight: &Mutex<VecDeque<Job>>,
    stats: &ServeStats,
    hub: &ObsHub,
    n: usize,
    model_key: &str,
) {
    // Everything from here until the predict_batch call — model-cache
    // resolution and row gathering — is batch assembly.
    let assembly_started = Instant::now();
    let model = match cache.get(model_key) {
        Ok((model, lookup)) => {
            match lookup {
                Lookup::Hit => {
                    bump!(stats, cache_hits);
                }
                Lookup::Miss { evicted } => {
                    bump!(stats, cache_misses);
                    if evicted {
                        bump!(stats, cache_evictions);
                    }
                }
            }
            model
        }
        Err(e) => {
            let assembly = assembly_started.elapsed();
            // The whole run names the same (unusable) model.
            for _ in 0..n {
                let mut job = pop_front(inflight);
                job.ctx.record(Stage::BatchAssembly, assembly);
                bump!(stats, model_errors);
                let response = Response::error(&job.id, ErrorKind::Model, e.to_string());
                trace::finish(hub, shard, job, "model", &response);
            }
            return;
        }
    };

    let rows: Vec<Vec<f64>> = {
        let slot = lock_recovering(inflight);
        slot.iter()
            .take(n)
            .map(|j| match &j.kind {
                JobKind::Predict { row, .. } => row.clone(),
                _ => unreachable!("predict run only spans Predict jobs"),
            })
            .collect()
    };
    let assembly = assembly_started.elapsed();

    let predict_started = Instant::now();
    let batch_result = model.predict_batch(&rows);
    let predict = predict_started.elapsed();

    match batch_result {
        Ok(results) => {
            for (pred, spread) in results {
                let mut job = pop_front(inflight);
                job.ctx.record(Stage::BatchAssembly, assembly);
                job.ctx.record(Stage::Predict, predict);
                bump!(stats, completed);
                let response = Response::ok(
                    &job.id,
                    predict_payload(pred.ipc, pred.energy_per_inst_pj, spread),
                );
                trace::finish(hub, shard, job, "ok", &response);
            }
        }
        // At least one row fails the model's schema. predict_batch is
        // all-or-nothing, so rescore row by row: valid rows still get
        // answers, invalid ones get told exactly what is wrong.
        Err(_) => {
            for row in rows {
                let mut job = pop_front(inflight);
                job.ctx.record(Stage::BatchAssembly, assembly);
                let retry_started = Instant::now();
                let one = model.predict_batch(std::slice::from_ref(&row));
                job.ctx.record(Stage::Predict, retry_started.elapsed());
                match one {
                    Ok(mut one) => {
                        let (pred, spread) = one.remove(0);
                        bump!(stats, completed);
                        let response = Response::ok(
                            &job.id,
                            predict_payload(pred.ipc, pred.energy_per_inst_pj, spread),
                        );
                        trace::finish(hub, shard, job, "ok", &response);
                    }
                    Err(e) => {
                        bump!(stats, schema_errors);
                        let (kind, outcome) = match e {
                            NapelError::FeatureSchema { .. } => (ErrorKind::Schema, "schema"),
                            _ => (ErrorKind::Model, "model"),
                        };
                        let response = Response::error(&job.id, kind, e.to_string());
                        trace::finish(hub, shard, job, outcome, &response);
                    }
                }
            }
        }
    }
}

fn pop_front(inflight: &Mutex<VecDeque<Job>>) -> Job {
    lock_recovering(inflight)
        .pop_front()
        .expect("in-flight slot cannot be empty mid-run")
}
