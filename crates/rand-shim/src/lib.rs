//! A self-contained, dependency-free subset of the `rand` crate API.
//!
//! The build environment has no access to crates.io, so the workspace
//! aliases this crate as `rand` (see the root `Cargo.toml`). It implements
//! exactly the surface the NAPEL reproduction uses — [`RngCore`], [`Rng`],
//! [`SeedableRng`], [`rngs::StdRng`], and [`seq::SliceRandom`] — with the
//! same calling conventions, so application code is source-compatible with
//! the real crate.
//!
//! The generator behind [`rngs::StdRng`] is xoshiro256\*\* seeded through
//! SplitMix64 (the reference seeding procedure). Streams are deterministic
//! per seed and stable across platforms; they do **not** match the real
//! `rand::rngs::StdRng` byte-for-byte, which no code in this workspace
//! relies on.

use std::ops::{Range, RangeInclusive};

/// The core of a random number generator: raw word output.
///
/// Object-safe, mirroring `rand::RngCore`; estimators take
/// `&mut dyn RngCore` so forests and MLPs can share one trait object.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A type that can be sampled uniformly from [`Standard`]-style `gen()`.
pub trait Standard: Sized {
    /// Draws one value from the generator's "standard" distribution
    /// (uniform over the type's range; `[0, 1)` for floats).
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

/// A type that can be drawn uniformly from a range — the bound behind
/// [`Rng::gen_range`], mirroring `rand::distributions::uniform::SampleUniform`.
pub trait SampleUniform: Sized + PartialOrd {
    /// Uniform value in `[lo, hi)` (`inclusive = false`) or `[lo, hi]`
    /// (`inclusive = true`). Callers guarantee the range is non-empty.
    fn sample_uniform<R: RngCore + ?Sized>(
        rng: &mut R,
        lo: Self,
        hi: Self,
        inclusive: bool,
    ) -> Self;
}

/// A range that knows how to sample itself uniformly.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample from an empty range");
        T::sample_uniform(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform + Copy> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample from an empty range");
        T::sample_uniform(rng, lo, hi, true)
    }
}

/// Uniform integer in `[0, bound)` by widening multiply (Lemire reduction,
/// without the rejection step — bias is below 2^-32 for every bound used
/// in this workspace, and determinism per seed is what matters here).
#[inline]
fn below(rng: &mut (impl RngCore + ?Sized), bound: u64) -> u64 {
    assert!(bound > 0, "cannot sample from an empty range");
    ((u128::from(rng.next_u64()) * u128::from(bound)) >> 64) as u64
}

macro_rules! int_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                inclusive: bool,
            ) -> Self {
                let span = (hi as i128 - lo as i128) as u128 + u128::from(inclusive);
                if span == 0 || span > u128::from(u64::MAX) {
                    // Only reachable for the full u64/i64/u128-scale span.
                    return rng.next_u64() as $t;
                }
                (lo as i128 + below(rng, span as u64) as i128) as $t
            }
        }
    )*};
}

int_sample_uniform!(usize, u8, u16, u32, u64, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_uniform<R: RngCore + ?Sized>(
        rng: &mut R,
        lo: Self,
        hi: Self,
        inclusive: bool,
    ) -> Self {
        let u = if inclusive {
            (rng.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64)
        } else {
            f64::sample(rng)
        };
        lo + u * (hi - lo)
    }
}

impl SampleUniform for f32 {
    fn sample_uniform<R: RngCore + ?Sized>(
        rng: &mut R,
        lo: Self,
        hi: Self,
        inclusive: bool,
    ) -> Self {
        let u = if inclusive {
            (rng.next_u32() >> 8) as f32 * (1.0 / ((1u32 << 24) - 1) as f32)
        } else {
            f32::sample(rng)
        };
        lo + u * (hi - lo)
    }
}

/// Convenience methods layered over [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Uniform value from `range` (half-open or inclusive).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} out of [0, 1]");
        f64::sample(self) < p
    }

    /// One value from the standard distribution of `T`.
    #[allow(clippy::should_implement_trait)]
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of a generator from seed material, mirroring
/// `rand::SeedableRng` (only the `seed_from_u64` entry point, which is the
/// only one this workspace uses).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256\*\*,
    /// seeded via SplitMix64.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let word = self.next_u64().to_le_bytes();
                chunk.copy_from_slice(&word[..chunk.len()]);
            }
        }
    }
}

pub mod seq {
    //! Slice utilities, mirroring `rand::seq`.

    use super::{Rng, RngCore};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly random element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                self.swap(i, rng.gen_range(0..=i));
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(-5.0..5.0);
            assert!((-5.0..5.0).contains(&w));
            let x = rng.gen_range(10.0..=50.0);
            assert!((10.0..=50.0).contains(&x));
            let y = rng.gen_range(0usize..=4);
            assert!(y <= 4);
        }
    }

    #[test]
    fn gen_range_covers_every_value() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 5];
        for _ in 0..200 {
            seen[rng.gen_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|&s| s), "{seen:?}");
    }

    #[test]
    fn standard_f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut sum = 0.0;
        for _ in 0..1000 {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / 1000.0;
        assert!((mean - 0.5).abs() < 0.05, "mean {mean} far from 0.5");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..2000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((400..600).contains(&hits), "{hits} hits for p=0.25");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut v: Vec<usize> = (0..20).collect();
        let orig = v.clone();
        v.shuffle(&mut rng);
        assert_ne!(v, orig, "20 elements should not shuffle to identity");
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, orig);
    }

    #[test]
    fn works_through_trait_objects() {
        let mut rng = StdRng::seed_from_u64(5);
        let dynrng: &mut dyn RngCore = &mut rng;
        let v = dynrng.gen_range(0usize..10);
        assert!(v < 10);
        let mut xs = [1, 2, 3];
        xs.shuffle(dynrng);
    }

    #[test]
    fn fill_bytes_fills_odd_lengths() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
