//! The drained telemetry report and its two sinks: the JSONL writer and
//! the human-readable summary table.

use std::fmt::Write as _;

use crate::event::SpanEvent;
use crate::json::{self, JsonValue};
use crate::loghist::LogHistogram;
use crate::metrics::Histogram;

/// Everything one [`Telemetry`](crate::Telemetry) handle recorded:
/// spans sorted by `(lane, seq)`, counters and histograms sorted by
/// name. Produced by [`Telemetry::drain`](crate::Telemetry::drain).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TelemetryReport {
    /// Completed spans in deterministic `(lane, seq)` order.
    pub spans: Vec<SpanEvent>,
    /// `(name, value)` pairs in name order.
    pub counters: Vec<(String, u64)>,
    /// `(name, histogram)` pairs in name order.
    pub histograms: Vec<(String, Histogram)>,
    /// `(name, log-bucketed histogram)` pairs in name order.
    pub log_histograms: Vec<(String, LogHistogram)>,
}

impl TelemetryReport {
    /// Whether nothing was recorded (always true for a noop handle).
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
            && self.counters.is_empty()
            && self.histograms.is_empty()
            && self.log_histograms.is_empty()
    }

    /// The value of a counter, if it was ever incremented.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }

    /// Whether any span with this name was recorded.
    pub fn has_span(&self, name: &str) -> bool {
        self.spans.iter().any(|e| e.name == name)
    }

    /// A copy with every measurement zeroed: span `seconds` become `0.0`
    /// and histograms of both flavors (whose *bucket counts* depend on
    /// measured values) are dropped. What remains — span names, lanes,
    /// sequence numbers, nesting, attributes, counters — is the
    /// deterministic skeleton, directly comparable across runs and
    /// executors with `assert_eq!`.
    pub fn without_timings(&self) -> TelemetryReport {
        TelemetryReport {
            spans: self
                .spans
                .iter()
                .map(|e| SpanEvent {
                    seconds: 0.0,
                    ..e.clone()
                })
                .collect(),
            counters: self.counters.clone(),
            histograms: Vec::new(),
            log_histograms: Vec::new(),
        }
    }

    /// Renders the report as JSONL: one object per line, spans first
    /// (in `(lane, seq)` order), then counters, then fixed-bucket
    /// histograms, then log-bucketed histograms.
    ///
    /// Schema (one line each; `nan` appears only when nonzero):
    ///
    /// ```json
    /// {"type":"span","name":"campaign.job","lane":3,"seq":0,"depth":0,"parent":"x","seconds":0.001,"attrs":{"workload":"atax"}}
    /// {"type":"counter","name":"campaign.jobs.completed","value":54}
    /// {"type":"histogram","name":"ml.forest.tree_build_seconds","bounds":[0.001,0.01],"counts":[3,2,0],"sum":0.02}
    /// {"type":"loghist","name":"serve.latency_seconds","buckets":[[1510,3],[1600,1]],"below":0,"sum":0.013}
    /// ```
    ///
    /// `loghist` bucket entries are sparse `[bucket_index, count]` pairs
    /// in the fixed [`LogHistogram`] layout.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for span in &self.spans {
            out.push_str(&span.to_json());
            out.push('\n');
        }
        for (name, value) in &self.counters {
            out.push_str("{\"type\":\"counter\",\"name\":");
            json::write_string(&mut out, name);
            write!(out, ",\"value\":{value}}}").expect("writing to String cannot fail");
            out.push('\n');
        }
        for (name, h) in &self.histograms {
            out.push_str("{\"type\":\"histogram\",\"name\":");
            json::write_string(&mut out, name);
            out.push_str(",\"bounds\":[");
            for (i, b) in h.bounds().iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                json::write_f64(&mut out, *b);
            }
            out.push_str("],\"counts\":[");
            for (i, c) in h.counts().iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write!(out, "{c}").expect("writing to String cannot fail");
            }
            out.push(']');
            if h.nan_count() > 0 {
                write!(out, ",\"nan\":{}", h.nan_count()).expect("writing to String cannot fail");
            }
            out.push_str(",\"sum\":");
            json::write_f64(&mut out, h.sum());
            out.push_str("}\n");
        }
        for (name, h) in &self.log_histograms {
            out.push_str("{\"type\":\"loghist\",\"name\":");
            json::write_string(&mut out, name);
            out.push_str(",\"buckets\":[");
            for (i, (index, count)) in h.sparse_counts().into_iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write!(out, "[{index},{count}]").expect("writing to String cannot fail");
            }
            write!(out, "],\"below\":{}", h.below_count()).expect("writing to String cannot fail");
            if h.nan_count() > 0 {
                write!(out, ",\"nan\":{}", h.nan_count()).expect("writing to String cannot fail");
            }
            out.push_str(",\"sum\":");
            json::write_f64(&mut out, h.sum());
            out.push_str("}\n");
        }
        out
    }

    /// Parses a JSONL document produced by [`TelemetryReport::to_jsonl`].
    /// Blank lines are skipped; unknown `type`s are errors (the schema is
    /// closed).
    ///
    /// # Errors
    ///
    /// A message naming the offending line (1-based) and problem.
    pub fn from_jsonl(text: &str) -> Result<TelemetryReport, String> {
        let mut report = TelemetryReport::default();
        for (idx, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let lineno = idx + 1;
            let fields = json::parse_object(line).map_err(|e| format!("line {lineno}: {e}"))?;
            let kind =
                json::get_string(&fields, "type").map_err(|e| format!("line {lineno}: {e}"))?;
            match kind.as_str() {
                "span" => {
                    let span = SpanEvent::from_fields(&fields)
                        .map_err(|e| format!("line {lineno}: {e}"))?;
                    report.spans.push(span);
                }
                "counter" => {
                    let name = json::get_string(&fields, "name")
                        .map_err(|e| format!("line {lineno}: {e}"))?;
                    let value = json::get_u64(&fields, "value")
                        .map_err(|e| format!("line {lineno}: {e}"))?;
                    report.counters.push((name, value));
                }
                "histogram" => {
                    let name = json::get_string(&fields, "name")
                        .map_err(|e| format!("line {lineno}: {e}"))?;
                    let bounds = decode_array(&fields, "bounds", JsonValue::as_f64)
                        .map_err(|e| format!("line {lineno}: {e}"))?;
                    let counts = decode_array(&fields, "counts", JsonValue::as_u64)
                        .map_err(|e| format!("line {lineno}: {e}"))?;
                    // `nan` is omitted when zero, and `sum` is absent in
                    // JSONL written before either field existed.
                    let nan = optional_u64(&fields, "nan", lineno)?;
                    let sum = optional_f64(&fields, "sum", lineno)?;
                    let h = Histogram::from_parts(bounds, counts, nan, sum)
                        .map_err(|e| format!("line {lineno}: {e}"))?;
                    report.histograms.push((name, h));
                }
                "loghist" => {
                    let name = json::get_string(&fields, "name")
                        .map_err(|e| format!("line {lineno}: {e}"))?;
                    let buckets = decode_array(&fields, "buckets", |v| match v {
                        JsonValue::Array(pair) => match pair.as_slice() {
                            [i, c] => Some((i.as_u64()?, c.as_u64()?)),
                            _ => None,
                        },
                        _ => None,
                    })
                    .map_err(|e| format!("line {lineno}: {e}"))?;
                    let below = json::get_u64(&fields, "below")
                        .map_err(|e| format!("line {lineno}: {e}"))?;
                    let nan = optional_u64(&fields, "nan", lineno)?;
                    let sum =
                        json::get_f64(&fields, "sum").map_err(|e| format!("line {lineno}: {e}"))?;
                    let h = LogHistogram::from_sparse(&buckets, below, nan, sum)
                        .map_err(|e| format!("line {lineno}: {e}"))?;
                    report.log_histograms.push((name, h));
                }
                other => return Err(format!("line {lineno}: unknown type `{other}`")),
            }
        }
        Ok(report)
    }

    /// Renders the end-of-run summary: a phase-time breakdown (per span
    /// name: call count, total and mean wall-clock, sorted by total
    /// descending), the counters (sorted by value descending), and one
    /// line per histogram.
    pub fn summary(&self) -> String {
        let mut out = String::new();
        if self.is_empty() {
            out.push_str("telemetry: nothing recorded\n");
            return out;
        }

        // Aggregate spans by name.
        let mut phases: Vec<(String, u64, f64)> = Vec::new();
        for span in &self.spans {
            match phases.iter_mut().find(|(n, _, _)| *n == span.name) {
                Some((_, count, total)) => {
                    *count += 1;
                    *total += span.seconds;
                }
                None => phases.push((span.name.clone(), 1, span.seconds)),
            }
        }
        phases.sort_by(|a, b| b.2.total_cmp(&a.2).then_with(|| a.0.cmp(&b.0)));

        if !phases.is_empty() {
            out.push_str("phase-time breakdown\n");
            let mut rows = vec![vec![
                "phase".to_string(),
                "count".to_string(),
                "total s".to_string(),
                "mean s".to_string(),
            ]];
            for (name, count, total) in &phases {
                rows.push(vec![
                    name.clone(),
                    count.to_string(),
                    format!("{total:.6}"),
                    format!("{:.6}", total / *count as f64),
                ]);
            }
            render_aligned(&mut out, &rows);
        }

        if !self.counters.is_empty() {
            out.push_str("counters\n");
            let mut sorted: Vec<&(String, u64)> = self.counters.iter().collect();
            sorted.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
            let rows: Vec<Vec<String>> = sorted
                .iter()
                .map(|(n, v)| vec![n.clone(), v.to_string()])
                .collect();
            render_aligned(&mut out, &rows);
        }

        if !self.histograms.is_empty() {
            out.push_str("histograms\n");
            for (name, h) in &self.histograms {
                write!(out, "  {name}  n={}  ", h.total()).expect("write to String");
                for (i, c) in h.counts().iter().enumerate() {
                    if i > 0 {
                        out.push_str(" | ");
                    }
                    if i < h.bounds().len() {
                        write!(out, "le {}: {c}", h.bounds()[i]).expect("write to String");
                    } else {
                        write!(out, "over: {c}").expect("write to String");
                    }
                }
                if h.nan_count() > 0 {
                    write!(out, " | nan: {}", h.nan_count()).expect("write to String");
                }
                out.push('\n');
            }
        }

        if !self.log_histograms.is_empty() {
            out.push_str("quantile summaries\n");
            let mut rows = vec![vec![
                "metric".to_string(),
                "count".to_string(),
                "p50".to_string(),
                "p99".to_string(),
                "mean".to_string(),
            ]];
            for (name, h) in &self.log_histograms {
                let mut row = vec![
                    name.clone(),
                    h.count().to_string(),
                    format!("{:.6}", h.quantile(0.5)),
                    format!("{:.6}", h.quantile(0.99)),
                    format!("{:.6}", h.mean()),
                ];
                if h.nan_count() > 0 {
                    row.push(format!("nan={}", h.nan_count()));
                }
                rows.push(row);
            }
            render_aligned(&mut out, &rows);
        }
        out
    }
}

/// Reads a `u64` field that the writer omits when zero.
fn optional_u64(fields: &[(String, JsonValue)], key: &str, lineno: usize) -> Result<u64, String> {
    match json::get(fields, key) {
        None => Ok(0),
        Some(_) => json::get_u64(fields, key).map_err(|e| format!("line {lineno}: {e}")),
    }
}

/// Reads an `f64` field absent from JSONL written by older schemas.
fn optional_f64(fields: &[(String, JsonValue)], key: &str, lineno: usize) -> Result<f64, String> {
    match json::get(fields, key) {
        None => Ok(0.0),
        Some(_) => json::get_f64(fields, key).map_err(|e| format!("line {lineno}: {e}")),
    }
}

fn decode_array<T>(
    fields: &[(String, JsonValue)],
    key: &str,
    decode: impl Fn(&JsonValue) -> Option<T>,
) -> Result<Vec<T>, String> {
    match json::get(fields, key) {
        Some(JsonValue::Array(items)) => items
            .iter()
            .map(|v| decode(v).ok_or_else(|| format!("bad element in `{key}`")))
            .collect(),
        _ => Err(format!("missing or non-array field `{key}`")),
    }
}

/// Left-aligns the first column and right-aligns the rest, two-space
/// gutters, two-space indent.
fn render_aligned(out: &mut String, rows: &[Vec<String>]) {
    let cols = rows.iter().map(Vec::len).max().unwrap_or(0);
    let mut widths = vec![0usize; cols];
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    for row in rows {
        out.push_str("  ");
        for (i, cell) in row.iter().enumerate() {
            if i > 0 {
                out.push_str("  ");
            }
            if i == 0 {
                write!(out, "{cell:<width$}", width = widths[i]).expect("write to String");
            } else {
                write!(out, "{cell:>width$}", width = widths[i]).expect("write to String");
            }
        }
        // Trim the padding after the last cell of short rows.
        while out.ends_with(' ') {
            out.pop();
        }
        out.push('\n');
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Telemetry;

    fn sample() -> TelemetryReport {
        let t = Telemetry::enabled();
        {
            let _outer = t.span("phase.outer").attr("workload", "atax");
            let _inner = t.span("phase.inner").attr("quote", "a\"b").attr("index", 7);
        }
        t.counter("c.hits", 41);
        t.counter("c.misses", 1);
        t.observe("h.seconds", &[0.001, 0.1], 0.05);
        t.observe("h.seconds", &[0.001, 0.1], 5.0);
        let mut lat = LogHistogram::new();
        lat.observe(0.003);
        lat.observe(0.004);
        lat.observe(0.0);
        t.merge_log_histogram("lh.latency", &lat);
        t.drain()
    }

    #[test]
    fn jsonl_round_trips() {
        let report = sample();
        let text = report.to_jsonl();
        let back = TelemetryReport::from_jsonl(&text).expect("parses");
        assert_eq!(back, report);
        // And the encoding itself is stable under a second trip.
        assert_eq!(back.to_jsonl(), text);
    }

    #[test]
    fn jsonl_schema_fields_are_present() {
        let text = sample().to_jsonl();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 6);
        assert!(lines[0].starts_with("{\"type\":\"span\",\"name\":\"phase.outer\""));
        assert!(lines[0].contains("\"lane\":0"));
        assert!(lines[0].contains("\"seq\":0"));
        assert!(lines[0].contains("\"attrs\":{\"workload\":\"atax\"}"));
        assert!(!lines[0].contains("\"parent\""), "root span has no parent");
        assert!(lines[1].contains("\"parent\":\"phase.outer\""));
        assert!(lines[1].contains("\"attrs\":{\"quote\":\"a\\\"b\",\"index\":\"7\"}"));
        assert!(lines[2].contains("\"type\":\"counter\""));
        assert!(lines[4].contains("\"bounds\":[0.001,0.1]"));
        assert!(lines[4].contains("\"counts\":[0,1,1]"));
        assert!(lines[4].contains("\"sum\":5.05"), "shortest-form f64 sum");
        assert!(!lines[4].contains("\"nan\""), "nan omitted when zero");
        assert!(lines[5].starts_with("{\"type\":\"loghist\",\"name\":\"lh.latency\""));
        assert!(lines[5].contains("\"below\":1"));
        assert!(lines[5].contains("\"sum\":0.00"));
        assert!(lines[5].contains("\"buckets\":[["));
    }

    #[test]
    fn histogram_nan_field_round_trips_through_jsonl() {
        let t = Telemetry::enabled();
        t.observe("h.bad", &[1.0], f64::NAN);
        t.observe("h.bad", &[1.0], 0.5);
        let report = t.drain();
        let text = report.to_jsonl();
        assert!(text.contains("\"nan\":1"), "nonzero nan is serialized");
        let back = TelemetryReport::from_jsonl(&text).expect("parses");
        assert_eq!(back, report);
        assert_eq!(back.histograms[0].1.nan_count(), 1);
        // Pre-`nan`/`sum` schema lines still parse (fields default to 0).
        let legacy =
            "{\"type\":\"histogram\",\"name\":\"old\",\"bounds\":[1.0],\"counts\":[2,0]}\n";
        let old = TelemetryReport::from_jsonl(legacy).expect("legacy parses");
        assert_eq!(old.histograms[0].1.nan_count(), 0);
        assert_eq!(old.histograms[0].1.sum(), 0.0);
    }

    #[test]
    fn from_jsonl_rejects_garbage() {
        assert!(TelemetryReport::from_jsonl("not json\n").is_err());
        assert!(TelemetryReport::from_jsonl("{\"type\":\"mystery\"}\n").is_err());
        assert!(
            TelemetryReport::from_jsonl("{\"type\":\"counter\",\"name\":\"x\"}\n").is_err(),
            "counter without value"
        );
        let err = TelemetryReport::from_jsonl("{\"type\":\"span\",\"name\":\"x\"}\n")
            .expect_err("span missing fields");
        assert!(err.starts_with("line 1:"), "errors name the line: {err}");
    }

    #[test]
    fn without_timings_is_deterministic_skeleton() {
        let a = sample().without_timings();
        let b = sample().without_timings();
        assert_eq!(a, b);
        assert!(a.spans.iter().all(|e| e.seconds == 0.0));
        assert!(a.histograms.is_empty());
        assert_eq!(a.counter("c.hits"), Some(41));
    }

    #[test]
    fn summary_lists_phases_and_counters() {
        let s = sample().summary();
        assert!(s.contains("phase-time breakdown"));
        assert!(s.contains("phase.outer"));
        assert!(s.contains("phase.inner"));
        assert!(s.contains("counters"));
        assert!(s.contains("c.hits"));
        assert!(s.contains("41"));
        assert!(s.contains("histograms"));
        assert!(s.contains("h.seconds"));
        assert!(s.contains("n=2"));
        assert!(s.contains("quantile summaries"));
        assert!(s.contains("lh.latency"));
        let empty = TelemetryReport::default().summary();
        assert!(empty.contains("nothing recorded"));
    }
}
