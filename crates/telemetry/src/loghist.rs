//! Log-bucketed histograms with bounded-relative-error quantiles.
//!
//! The fixed-bucket [`Histogram`](crate::Histogram) is the right tool
//! when the interesting range is known up front (a latency SLO ladder).
//! It is the wrong tool for *quantiles*: `quantile(0.99)` from a dozen
//! hand-picked buckets is only as good as the hand-picking, and the
//! alternative — keeping every observation and sorting at the end, as
//! `loadgen` originally did — costs memory proportional to traffic.
//!
//! [`LogHistogram`] is the HdrHistogram-style middle ground: buckets are
//! laid out geometrically (every power of two split into
//! [`SUB_BUCKETS`] linear sub-buckets), so a fixed ~20 KiB of counters
//! covers [`MIN_TRACKED`]..[`MAX_TRACKED`] — about 24 orders of
//! magnitude — with a *proven* relative-error bound of
//! [`RELATIVE_ERROR_BOUND`] (= 2⁻⁶ ≈ 1.6%) on every quantile estimate.
//!
//! # How the bound holds
//!
//! Bucketing uses the IEEE-754 bit pattern directly: for positive finite
//! doubles, `f64::to_bits` is monotonically increasing, and its top bits
//! are `exponent << 52 | mantissa`. Taking the exponent plus the top
//! [`SUB_BITS`] mantissa bits as the bucket index therefore yields
//! geometric buckets whose upper/lower edge ratio is at most
//! `1 + 2^-SUB_BITS` (the ratio is exactly `(m + 2^-SUB_BITS) / m` for
//! mantissa `m ∈ [1, 2)`, maximized at `m = 1`). The quantile estimate
//! is the bucket midpoint; the true rank-`k` observation lies in the
//! same bucket (the value→bucket map is monotone, so bucket-cumulative
//! rank order equals sorted order), giving
//!
//! ```text
//! |estimate − exact| ≤ (hi − lo) / 2 ≤ lo · 2^-SUB_BITS / 2
//!                   ⇒ relative error ≤ 2^-(SUB_BITS+1) = 1/64
//! ```
//!
//! for every observation inside the tracked range. Values at or below
//! zero (and positive values below [`MIN_TRACKED`]) land in a dedicated
//! *below* bucket whose estimate is `0.0`; values above [`MAX_TRACKED`]
//! clamp into the top bucket; NaN goes to a dedicated counter excluded
//! from quantiles. The bound is enforced for arbitrary in-range
//! observation sets by a property test in the workspace `telemetry`
//! suite.

/// Mantissa bits kept per bucket: 2^5 = 32 sub-buckets per power of two.
pub const SUB_BITS: u32 = 5;

/// Sub-buckets per power of two (octave).
pub const SUB_BUCKETS: usize = 1 << SUB_BITS;

/// Smallest tracked value, 2⁻⁴⁰ (≈ 9.1e-13): below this, observations
/// count as *below* and quantiles estimate them as `0.0`. Nanosecond
/// latencies in seconds sit comfortably above it.
pub const MIN_TRACKED: f64 = 9.094947017729282e-13; // 2^-40

/// Largest tracked value, 2⁴¹ (≈ 2.2e12): above this, observations clamp
/// into the top bucket (the quantile estimate saturates).
pub const MAX_TRACKED: f64 = 2.199023255552e12; // 2^41

/// Octaves between [`MIN_TRACKED`] and [`MAX_TRACKED`].
const OCTAVES: usize = 81;

/// Total bucket count.
const NUM_BUCKETS: usize = OCTAVES * SUB_BUCKETS;

/// The biased-exponent/sub-bucket key of [`MIN_TRACKED`].
const BASE_KEY: u64 = ((1023 - 40) as u64) << SUB_BITS;

/// The guaranteed quantile relative-error bound: 2^-(SUB_BITS+1) = 1/64.
pub const RELATIVE_ERROR_BOUND: f64 = 1.0 / 64.0;

/// A log-bucketed histogram over non-negative measurements (latencies,
/// sizes, counts) with `O(1)` insert, ~20 KiB fixed footprint, and
/// [`quantile`](LogHistogram::quantile) estimates within
/// [`RELATIVE_ERROR_BOUND`] of the exact nearest-rank quantile for
/// observations in `[MIN_TRACKED, MAX_TRACKED]`.
#[derive(Debug, Clone, PartialEq)]
pub struct LogHistogram {
    counts: Vec<u64>,
    /// Observations at or below zero, or positive but under
    /// [`MIN_TRACKED`]; quantiles estimate them as `0.0`.
    below: u64,
    /// NaN observations — counted, surfaced, excluded from quantiles.
    nan: u64,
    /// Sum of all finite observations (for mean / Prometheus `_sum`).
    sum: f64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LogHistogram {
    /// An empty histogram. All `LogHistogram`s share one bucket layout,
    /// so any two can [`merge`](LogHistogram::merge).
    pub fn new() -> LogHistogram {
        LogHistogram {
            counts: vec![0; NUM_BUCKETS],
            below: 0,
            nan: 0,
            sum: 0.0,
        }
    }

    /// The bucket index for a positive finite value, or `None` for the
    /// *below* bucket.
    fn index_of(value: f64) -> Option<usize> {
        debug_assert!(value.is_finite());
        if value <= 0.0 {
            return None;
        }
        let key = value.to_bits() >> (52 - SUB_BITS);
        if key < BASE_KEY {
            return None; // under MIN_TRACKED (incl. denormals)
        }
        Some(((key - BASE_KEY) as usize).min(NUM_BUCKETS - 1))
    }

    /// The lower edge of bucket `index` (its upper edge is the lower
    /// edge of `index + 1`).
    fn lower_edge(index: usize) -> f64 {
        f64::from_bits((BASE_KEY + index as u64) << (52 - SUB_BITS))
    }

    /// Records one observation. `O(1)`, no allocation.
    pub fn observe(&mut self, value: f64) {
        if value.is_nan() {
            self.nan += 1;
            return;
        }
        self.sum += value.clamp(0.0, MAX_TRACKED);
        match Self::index_of(value.min(MAX_TRACKED)) {
            Some(i) => self.counts[i] += 1,
            None => self.below += 1,
        }
    }

    /// Finite observations recorded (NaN excluded).
    pub fn count(&self) -> u64 {
        self.below + self.counts.iter().sum::<u64>()
    }

    /// NaN observations recorded.
    pub fn nan_count(&self) -> u64 {
        self.nan
    }

    /// Observations below the tracked range (including zero/negative).
    pub fn below_count(&self) -> u64 {
        self.below
    }

    /// Sum of finite observations (clamped into the tracked range).
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Mean of finite observations, or `0.0` when empty.
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum / n as f64
        }
    }

    /// Whether nothing (not even a NaN) was recorded.
    pub fn is_empty(&self) -> bool {
        self.count() == 0 && self.nan == 0
    }

    /// The nearest-rank quantile estimate for `q ∈ [0, 1]`: the midpoint
    /// of the bucket holding the `⌈q·n⌉`-th smallest observation.
    /// Guaranteed within [`RELATIVE_ERROR_BOUND`] of the exact sorted
    /// quantile when every observation lies in
    /// `[MIN_TRACKED, MAX_TRACKED]`. Returns `0.0` on an empty
    /// histogram; NaN observations are excluded.
    pub fn quantile(&self, q: f64) -> f64 {
        let n = self.count();
        if n == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * n as f64).ceil() as u64).max(1);
        if rank <= self.below {
            return 0.0;
        }
        let mut cumulative = self.below;
        for (i, &c) in self.counts.iter().enumerate() {
            cumulative += c;
            if cumulative >= rank {
                return (Self::lower_edge(i) + Self::lower_edge(i + 1)) / 2.0;
            }
        }
        // Unreachable: rank ≤ count() by construction.
        Self::lower_edge(NUM_BUCKETS)
    }

    /// Adds every observation of `other` into `self` (all
    /// `LogHistogram`s share one layout, so merging is element-wise).
    pub fn merge(&mut self, other: &LogHistogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.below += other.below;
        self.nan += other.nan;
        self.sum += other.sum;
    }

    /// The non-empty buckets as `(upper_edge, count)` pairs in
    /// increasing-edge order — the sparse form used by the JSONL sink and
    /// the Prometheus renderer (cumulation happens there).
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (f64, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (Self::lower_edge(i + 1), c))
    }

    /// Rebuilds a histogram from the sparse `(bucket_index, count)` form
    /// (the JSONL reader). Inverse of
    /// [`sparse_counts`](LogHistogram::sparse_counts).
    ///
    /// # Errors
    ///
    /// A message when a bucket index is out of range or repeated.
    pub fn from_sparse(
        buckets: &[(u64, u64)],
        below: u64,
        nan: u64,
        sum: f64,
    ) -> Result<LogHistogram, String> {
        let mut h = LogHistogram::new();
        for &(index, count) in buckets {
            let slot = h
                .counts
                .get_mut(index as usize)
                .ok_or_else(|| format!("loghist bucket index {index} out of range"))?;
            if *slot != 0 {
                return Err(format!("loghist bucket index {index} repeated"));
            }
            *slot = count;
        }
        h.below = below;
        h.nan = nan;
        h.sum = sum;
        Ok(h)
    }

    /// The non-empty buckets as `(bucket_index, count)` pairs — the
    /// stable serialized form ([`from_sparse`](LogHistogram::from_sparse)
    /// inverts it).
    pub fn sparse_counts(&self) -> Vec<(u64, u64)> {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (i as u64, c))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_value_quantile_is_within_the_bound() {
        for v in [1e-9, 0.00037, 0.5, 1.0, 3.25, 1234.5, 9.9e8] {
            let mut h = LogHistogram::new();
            h.observe(v);
            let est = h.quantile(0.5);
            let rel = (est - v).abs() / v;
            assert!(
                rel <= RELATIVE_ERROR_BOUND,
                "value {v}: estimate {est}, relative error {rel}"
            );
        }
    }

    #[test]
    fn quantiles_track_the_sorted_order() {
        let mut h = LogHistogram::new();
        let values: Vec<f64> = (1..=1000).map(|i| f64::from(i) * 0.001).collect();
        for &v in &values {
            h.observe(v);
        }
        assert_eq!(h.count(), 1000);
        for (q, exact) in [(0.5, 0.5), (0.9, 0.9), (0.99, 0.99), (1.0, 1.0)] {
            let est = h.quantile(q);
            let rel = (est - exact).abs() / exact;
            assert!(
                rel <= RELATIVE_ERROR_BOUND,
                "q{q}: {est} vs {exact} ({rel})"
            );
        }
        // q=0 means rank 1: the smallest observation.
        let est = h.quantile(0.0);
        assert!((est - 0.001).abs() / 0.001 <= RELATIVE_ERROR_BOUND);
    }

    #[test]
    fn zero_negative_and_tiny_values_count_as_below() {
        let mut h = LogHistogram::new();
        h.observe(0.0);
        h.observe(-3.0);
        h.observe(1e-15);
        assert_eq!(h.below_count(), 3);
        assert_eq!(h.count(), 3);
        assert_eq!(h.quantile(0.5), 0.0);
        // A real value after them still quantiles correctly at the top.
        h.observe(2.0);
        let est = h.quantile(1.0);
        assert!((est - 2.0).abs() / 2.0 <= RELATIVE_ERROR_BOUND);
    }

    #[test]
    fn nan_is_counted_but_excluded_from_quantiles() {
        let mut h = LogHistogram::new();
        h.observe(f64::NAN);
        h.observe(1.0);
        assert_eq!(h.nan_count(), 1);
        assert_eq!(h.count(), 1);
        let est = h.quantile(0.5);
        assert!((est - 1.0).abs() <= RELATIVE_ERROR_BOUND);
        assert!(h.sum().is_finite());
    }

    #[test]
    fn oversized_values_clamp_into_the_top_bucket() {
        let mut h = LogHistogram::new();
        h.observe(1e300);
        h.observe(f64::INFINITY);
        assert_eq!(h.count(), 2);
        let est = h.quantile(1.0);
        assert!(est >= MAX_TRACKED / 2.0, "saturated estimate, got {est}");
    }

    #[test]
    fn merge_is_observation_union() {
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        let mut all = LogHistogram::new();
        for i in 1..=50 {
            let v = f64::from(i) * 0.01;
            a.observe(v);
            all.observe(v);
        }
        for i in 51..=100 {
            let v = f64::from(i) * 0.01;
            b.observe(v);
            all.observe(v);
        }
        a.merge(&b);
        assert_eq!(a, all);
    }

    #[test]
    fn sparse_round_trip() {
        let mut h = LogHistogram::new();
        for v in [0.0, 1e-20, 0.003, 0.003, 7.5, 1e200, f64::NAN] {
            h.observe(v);
        }
        let back =
            LogHistogram::from_sparse(&h.sparse_counts(), h.below_count(), h.nan_count(), h.sum())
                .unwrap();
        assert_eq!(back, h);
        assert!(LogHistogram::from_sparse(&[(u64::MAX, 1)], 0, 0, 0.0).is_err());
        assert!(LogHistogram::from_sparse(&[(3, 1), (3, 2)], 0, 0, 0.0).is_err());
    }

    #[test]
    fn bucket_edges_are_monotone_and_tight() {
        for i in 0..NUM_BUCKETS {
            let lo = LogHistogram::lower_edge(i);
            let hi = LogHistogram::lower_edge(i + 1);
            assert!(hi > lo, "bucket {i}");
            let ratio = hi / lo;
            assert!(
                ratio <= 1.0 + 1.0 / SUB_BUCKETS as f64 + 1e-12,
                "bucket {i} too wide: ratio {ratio}"
            );
        }
        assert!((LogHistogram::lower_edge(0) - MIN_TRACKED).abs() < 1e-25);
        assert_eq!(LogHistogram::lower_edge(NUM_BUCKETS), MAX_TRACKED);
    }

    #[test]
    fn mean_matches_the_arithmetic_mean() {
        let mut h = LogHistogram::new();
        for v in [1.0, 2.0, 3.0] {
            h.observe(v);
        }
        assert!((h.mean() - 2.0).abs() < 1e-12);
        assert!(LogHistogram::new().mean() == 0.0);
    }
}
