//! RAII span guards and the per-thread lane/nesting state.

use std::cell::{Cell, RefCell};
use std::sync::Arc;
use std::time::Instant;

use crate::event::SpanEvent;
use crate::{Inner, LANE_MAIN};

thread_local! {
    /// The ordering lane events on this thread are stamped with.
    static CURRENT_LANE: Cell<u64> = const { Cell::new(LANE_MAIN) };
    /// Names of the spans currently open on this thread, outermost first.
    static SPAN_STACK: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
}

/// An open phase: measures wall-clock time from creation to drop and
/// records a [`SpanEvent`] on drop. Created by [`Telemetry::span`]
/// (or the [`span!`] macro); a span from a noop handle is inert and
/// does not read the clock.
///
/// [`Telemetry::span`]: crate::Telemetry::span
/// [`span!`]: crate::span!
#[must_use = "a span measures the scope it is bound to; dropping it immediately records nothing useful"]
#[derive(Debug)]
pub struct Span {
    rec: Option<SpanRec>,
}

#[derive(Debug)]
struct SpanRec {
    inner: Arc<Inner>,
    name: &'static str,
    lane: u64,
    seq: u64,
    depth: u64,
    parent: Option<&'static str>,
    attrs: Vec<(String, String)>,
    start: Instant,
}

impl Span {
    pub(crate) fn start(inner: Option<Arc<Inner>>, name: &'static str) -> Span {
        let rec = inner.map(|inner| {
            let lane = CURRENT_LANE.with(Cell::get);
            // Sequence numbers are assigned at span *start*, so a parent
            // always precedes its children in the drained stream even
            // though it completes after them.
            let seq = inner.next_seq(lane);
            let (depth, parent) = SPAN_STACK.with(|stack| {
                let mut stack = stack.borrow_mut();
                let depth = stack.len() as u64;
                let parent = stack.last().copied();
                stack.push(name);
                (depth, parent)
            });
            SpanRec {
                inner,
                name,
                lane,
                seq,
                depth,
                parent,
                attrs: Vec::new(),
                start: Instant::now(),
            }
        });
        Span { rec }
    }

    /// Attaches a key/value attribute. The value is only formatted when
    /// the span is live, so passing `format_args!`/`Display` arguments
    /// costs nothing on a noop handle.
    pub fn attr(mut self, key: &str, value: impl std::fmt::Display) -> Self {
        if let Some(rec) = &mut self.rec {
            rec.attrs.push((key.to_string(), value.to_string()));
        }
        self
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(rec) = self.rec.take() {
            let seconds = rec.start.elapsed().as_secs_f64();
            SPAN_STACK.with(|stack| {
                stack.borrow_mut().pop();
            });
            rec.inner.record_span(SpanEvent {
                name: rec.name.to_string(),
                lane: rec.lane,
                seq: rec.seq,
                depth: rec.depth,
                parent: rec.parent.map(str::to_string),
                seconds,
                attrs: rec.attrs,
            });
        }
    }
}

/// Scopes the current thread to an ordering lane. Created by
/// [`Telemetry::lane`]; on drop the previous lane *and* the previous
/// nesting scope are restored.
///
/// Entering a lane swaps in a fresh span stack: spans opened under the
/// guard start at depth 0 with no parent, whatever was open outside.
/// This is deliberate — a campaign job must emit the same events
/// whether its executor ran it inline on the driver thread (where a
/// `campaign.run` span is open) or on a worker thread (where nothing
/// is), so the lane boundary is also the nesting boundary.
///
/// Spans opened under the guard must drop before the guard does (the
/// natural scoping shown below); the guard is not a portal for moving
/// open spans between lanes.
///
/// ```
/// use napel_telemetry::Telemetry;
/// let t = Telemetry::enabled();
/// {
///     let _lane = t.lane(1 + 7); // job lanes are 1 + job index
///     let _span = t.span("campaign.job");
///     // ... the job ...
/// } // span drops, then the lane guard
/// ```
///
/// [`Telemetry::lane`]: crate::Telemetry::lane
#[must_use = "the lane is only in effect while the guard is alive"]
#[derive(Debug)]
pub struct LaneGuard {
    prev: Option<(u64, Vec<&'static str>)>,
}

impl LaneGuard {
    pub(crate) fn enter(active: bool, lane: u64) -> LaneGuard {
        if !active {
            return LaneGuard { prev: None };
        }
        let prev_lane = CURRENT_LANE.with(|c| c.replace(lane));
        let prev_stack = SPAN_STACK.with(|stack| std::mem::take(&mut *stack.borrow_mut()));
        LaneGuard {
            prev: Some((prev_lane, prev_stack)),
        }
    }
}

impl Drop for LaneGuard {
    fn drop(&mut self) {
        if let Some((lane, stack)) = self.prev.take() {
            CURRENT_LANE.with(|c| c.set(lane));
            SPAN_STACK.with(|s| *s.borrow_mut() = stack);
        }
    }
}
