//! Prometheus text exposition.
//!
//! Renders counters and both histogram flavors in the [Prometheus text
//! format] (version 0.0.4) — the lingua franca every metrics scraper
//! speaks — without taking a dependency: the format is `# TYPE` comments
//! plus `name{labels} value` lines, well within hand-rolling range.
//!
//! Metric names arrive dotted (`serve.requests.accepted`); Prometheus
//! names must match `[a-zA-Z_:][a-zA-Z0-9_:]*`, so every invalid
//! character maps to `_` (`serve_requests_accepted`).
//!
//! Mapping:
//!
//! - counters → `counter` series,
//! - fixed-bucket [`Histogram`]s → `histogram` series with *cumulative*
//!   `le`-labeled buckets (the wire format is cumulative even though our
//!   in-memory counts are per-bucket), a `+Inf` bucket, `_sum` and
//!   `_count`,
//! - [`LogHistogram`]s → `summary` series with pre-computed
//!   `quantile`-labeled estimates (0.5/0.9/0.99) plus `_sum`/`_count` —
//!   a summary rather than a histogram because ~2600 potential buckets
//!   per series is scrape bloat, and the whole point of the log-bucketed
//!   form is that its quantiles are already trustworthy,
//! - NaN observations (tracked out-of-band by both flavors) → a
//!   `<name>_nan_observations` counter, emitted only when nonzero.
//!
//! [Prometheus text format]: https://prometheus.io/docs/instrumenting/exposition_formats/
//!
//! # Example
//!
//! ```
//! use napel_telemetry::{LogHistogram, Telemetry};
//!
//! let t = Telemetry::enabled();
//! t.counter("demo.requests", 3);
//! let mut lat = LogHistogram::new();
//! lat.observe(0.004);
//! t.merge_log_histogram("demo.latency_seconds", &lat);
//! let text = t.drain().to_prometheus();
//! assert!(text.contains("# TYPE demo_requests counter"));
//! assert!(text.contains("demo_latency_seconds{quantile=\"0.99\"}"));
//! ```

use std::fmt::Write as _;

use crate::loghist::LogHistogram;
use crate::metrics::Histogram;
use crate::report::TelemetryReport;

/// The quantiles a [`LogHistogram`] exposes as a Prometheus summary.
pub const SUMMARY_QUANTILES: &[f64] = &[0.5, 0.9, 0.99];

/// Maps a dotted telemetry name onto the Prometheus name charset:
/// `[a-zA-Z_:][a-zA-Z0-9_:]*`, every other character becoming `_` (with
/// a leading `_` prepended if the name would start with a digit).
pub fn sanitize_metric_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for (i, c) in name.chars().enumerate() {
        let valid =
            c.is_ascii_alphabetic() || c == '_' || c == ':' || (i > 0 && c.is_ascii_digit());
        if i == 0 && c.is_ascii_digit() {
            out.push('_');
            out.push(c);
        } else if valid {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

/// Prometheus renders floats with `Display`-like shortest form; `+Inf`
/// is the spec spelling for the unbounded bucket.
fn write_value(out: &mut String, v: f64) {
    if v.is_nan() {
        out.push_str("NaN");
    } else if v == f64::INFINITY {
        out.push_str("+Inf");
    } else if v == f64::NEG_INFINITY {
        out.push_str("-Inf");
    } else {
        write!(out, "{v}").expect("writing to String cannot fail");
    }
}

fn nan_series(out: &mut String, name: &str, nan: u64) {
    if nan > 0 {
        let _ = writeln!(out, "# TYPE {name}_nan_observations counter");
        let _ = writeln!(out, "{name}_nan_observations {nan}");
    }
}

pub(crate) fn render_counter(out: &mut String, name: &str, value: u64) {
    let name = sanitize_metric_name(name);
    let _ = writeln!(out, "# TYPE {name} counter");
    let _ = writeln!(out, "{name} {value}");
}

pub(crate) fn render_histogram(out: &mut String, name: &str, h: &Histogram) {
    let name = sanitize_metric_name(name);
    let _ = writeln!(out, "# TYPE {name} histogram");
    let mut cumulative = 0u64;
    for (i, &count) in h.counts().iter().enumerate() {
        cumulative += count;
        out.push_str(&name);
        out.push_str("_bucket{le=\"");
        match h.bounds().get(i) {
            Some(&bound) => write_value(out, bound),
            None => out.push_str("+Inf"),
        }
        let _ = writeln!(out, "\"}} {cumulative}");
    }
    out.push_str(&name);
    out.push_str("_sum ");
    write_value(out, h.sum());
    out.push('\n');
    let _ = writeln!(out, "{name}_count {cumulative}");
    nan_series(out, &name, h.nan_count());
}

pub(crate) fn render_log_histogram(out: &mut String, name: &str, h: &LogHistogram) {
    let name = sanitize_metric_name(name);
    let _ = writeln!(out, "# TYPE {name} summary");
    for &q in SUMMARY_QUANTILES {
        out.push_str(&name);
        let _ = write!(out, "{{quantile=\"{q}\"}} ");
        write_value(out, h.quantile(q));
        out.push('\n');
    }
    out.push_str(&name);
    out.push_str("_sum ");
    write_value(out, h.sum());
    out.push('\n');
    let _ = writeln!(out, "{name}_count {}", h.count());
    nan_series(out, &name, h.nan_count());
}

impl TelemetryReport {
    /// Renders every counter and histogram in this report as Prometheus
    /// text exposition (spans have no Prometheus analogue and are
    /// skipped). Series appear in name order within each kind: counters,
    /// then fixed-bucket histograms, then log-bucketed summaries.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        for (name, value) in &self.counters {
            render_counter(&mut out, name, *value);
        }
        for (name, h) in &self.histograms {
            render_histogram(&mut out, name, h);
        }
        for (name, h) in &self.log_histograms {
            render_log_histogram(&mut out, name, h);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_sanitize_onto_the_prometheus_charset() {
        assert_eq!(
            sanitize_metric_name("serve.requests.accepted"),
            "serve_requests_accepted"
        );
        assert_eq!(sanitize_metric_name("a-b c/d"), "a_b_c_d");
        assert_eq!(sanitize_metric_name("9lives"), "_9lives");
        assert_eq!(sanitize_metric_name("ok_name:x9"), "ok_name:x9");
        assert_eq!(sanitize_metric_name(""), "_");
    }

    #[test]
    fn histogram_buckets_render_cumulative_with_inf() {
        let mut h = Histogram::new(&[0.1, 1.0]);
        h.observe(0.05);
        h.observe(0.5);
        h.observe(0.7);
        h.observe(50.0);
        let mut out = String::new();
        render_histogram(&mut out, "demo.lat", &h);
        let expect = "# TYPE demo_lat histogram\n\
                      demo_lat_bucket{le=\"0.1\"} 1\n\
                      demo_lat_bucket{le=\"1\"} 3\n\
                      demo_lat_bucket{le=\"+Inf\"} 4\n\
                      demo_lat_sum 51.25\n\
                      demo_lat_count 4\n";
        assert_eq!(out, expect);
    }

    #[test]
    fn nan_observations_get_their_own_series_only_when_present() {
        let mut h = Histogram::new(&[1.0]);
        h.observe(f64::NAN);
        let mut out = String::new();
        render_histogram(&mut out, "x", &h);
        assert!(out.contains("x_nan_observations 1"));
        assert!(out.contains("x_count 0"), "NaN stays out of _count buckets");

        let clean = Histogram::new(&[1.0]);
        let mut out = String::new();
        render_histogram(&mut out, "x", &clean);
        assert!(!out.contains("nan_observations"));
    }

    #[test]
    fn log_histogram_renders_as_a_summary() {
        let mut h = LogHistogram::new();
        for i in 1..=100 {
            h.observe(f64::from(i) * 0.001);
        }
        let mut out = String::new();
        render_log_histogram(&mut out, "serve.latency_seconds", &h);
        assert!(out.starts_with("# TYPE serve_latency_seconds summary\n"));
        for q in ["0.5", "0.9", "0.99"] {
            assert!(
                out.contains(&format!("serve_latency_seconds{{quantile=\"{q}\"}} ")),
                "missing quantile {q}: {out}"
            );
        }
        assert!(out.contains("serve_latency_seconds_count 100"));
        assert!(out.contains("serve_latency_seconds_sum "));
    }

    #[test]
    fn exposition_never_emits_bare_nan_quantiles_on_empty() {
        let h = LogHistogram::new();
        let mut out = String::new();
        render_log_histogram(&mut out, "empty", &h);
        // Empty summaries report 0, not NaN — scrapers reject bare NaN
        // in some configurations and an empty series is not an error.
        assert!(out.contains("empty{quantile=\"0.5\"} 0"));
        assert!(out.contains("empty_count 0"));
    }
}
