//! Fixed-bucket histograms.

/// A histogram with fixed upper bucket bounds plus an implicit overflow
/// bucket, in the Prometheus style but cumulative-free: `counts()[i]` is
/// the number of observations in bucket `i` alone.
///
/// A value `v` lands in the first bucket `i` with `v <= bounds()[i]`;
/// values above every bound (and pathological NaNs) land in the overflow
/// bucket, so `counts().len() == bounds().len() + 1` and no observation
/// is ever dropped.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    bounds: Vec<f64>,
    counts: Vec<u64>,
}

impl Histogram {
    /// An empty histogram over `bounds`.
    ///
    /// # Panics
    ///
    /// Panics if `bounds` is empty or not strictly increasing and finite —
    /// bucket layouts are static constants in instrumented code, so a bad
    /// layout is a programming error, not a runtime condition.
    pub fn new(bounds: &[f64]) -> Histogram {
        assert!(!bounds.is_empty(), "histogram needs at least one bound");
        for pair in bounds.windows(2) {
            assert!(
                pair[0] < pair[1],
                "histogram bounds must be strictly increasing"
            );
        }
        assert!(
            bounds.iter().all(|b| b.is_finite()),
            "histogram bounds must be finite (the overflow bucket is implicit)"
        );
        Histogram {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
        }
    }

    /// Rebuilds a histogram from decoded parts (the JSONL reader).
    ///
    /// # Errors
    ///
    /// The same layout rules as [`Histogram::new`], plus
    /// `counts.len() == bounds.len() + 1`, reported as messages instead
    /// of panics since the input is external.
    pub fn from_parts(bounds: Vec<f64>, counts: Vec<u64>) -> Result<Histogram, String> {
        if bounds.is_empty() {
            return Err("histogram needs at least one bound".to_string());
        }
        if bounds.windows(2).any(|p| p[0] >= p[1]) || bounds.iter().any(|b| !b.is_finite()) {
            return Err("histogram bounds must be finite and strictly increasing".to_string());
        }
        if counts.len() != bounds.len() + 1 {
            return Err(format!(
                "histogram with {} bounds needs {} counts, got {}",
                bounds.len(),
                bounds.len() + 1,
                counts.len()
            ));
        }
        Ok(Histogram { bounds, counts })
    }

    /// Records one observation.
    pub fn observe(&mut self, value: f64) {
        let bucket = self
            .bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(self.bounds.len());
        self.counts[bucket] += 1;
    }

    /// Upper bucket bounds (the overflow bucket is implicit).
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// Per-bucket observation counts; the last entry is the overflow
    /// bucket.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total observations.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_edges_are_inclusive_upper_bounds() {
        let mut h = Histogram::new(&[1.0, 10.0, 100.0]);
        // Exactly on an edge → that bucket, not the next.
        h.observe(1.0);
        h.observe(10.0);
        h.observe(100.0);
        // Strictly inside.
        h.observe(0.5);
        h.observe(5.0);
        // Above every bound → overflow.
        h.observe(100.0001);
        h.observe(f64::INFINITY);
        assert_eq!(h.counts(), &[2, 2, 1, 2]);
        assert_eq!(h.total(), 7);
    }

    #[test]
    fn below_first_bound_lands_in_first_bucket() {
        let mut h = Histogram::new(&[0.001]);
        h.observe(0.0);
        h.observe(-5.0);
        assert_eq!(h.counts(), &[2, 0]);
    }

    #[test]
    fn nan_goes_to_overflow_not_dropped() {
        let mut h = Histogram::new(&[1.0]);
        h.observe(f64::NAN);
        assert_eq!(h.counts(), &[0, 1]);
        assert_eq!(h.total(), 1);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn unsorted_bounds_panic() {
        let _ = Histogram::new(&[1.0, 1.0]);
    }

    #[test]
    fn from_parts_validates() {
        assert!(Histogram::from_parts(vec![1.0, 2.0], vec![0, 1, 2]).is_ok());
        assert!(Histogram::from_parts(vec![], vec![0]).is_err());
        assert!(Histogram::from_parts(vec![2.0, 1.0], vec![0, 0, 0]).is_err());
        assert!(Histogram::from_parts(vec![1.0], vec![0]).is_err());
        assert!(Histogram::from_parts(vec![f64::NAN], vec![0, 0]).is_err());
    }
}
