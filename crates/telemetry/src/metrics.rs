//! Fixed-bucket histograms.

/// A histogram with fixed upper bucket bounds plus an implicit overflow
/// bucket, in the Prometheus style but cumulative-free: `counts()[i]` is
/// the number of observations in bucket `i` alone.
///
/// A value `v` lands in the first bucket `i` with `v <= bounds()[i]`;
/// values above every bound land in the overflow bucket. NaN is neither
/// above nor below any bound, so it gets its own dedicated counter
/// ([`Histogram::nan_count`]) rather than silently polluting the
/// overflow bucket — an instrumented formula producing NaN is a signal
/// worth surfacing, not a large latency. Either way no observation is
/// ever dropped: `total()` counts both.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    bounds: Vec<f64>,
    counts: Vec<u64>,
    nan: u64,
    sum: f64,
}

impl Histogram {
    /// An empty histogram over `bounds`.
    ///
    /// # Panics
    ///
    /// Panics if `bounds` is empty or not strictly increasing and finite —
    /// bucket layouts are static constants in instrumented code, so a bad
    /// layout is a programming error, not a runtime condition.
    pub fn new(bounds: &[f64]) -> Histogram {
        assert!(!bounds.is_empty(), "histogram needs at least one bound");
        for pair in bounds.windows(2) {
            assert!(
                pair[0] < pair[1],
                "histogram bounds must be strictly increasing"
            );
        }
        assert!(
            bounds.iter().all(|b| b.is_finite()),
            "histogram bounds must be finite (the overflow bucket is implicit)"
        );
        Histogram {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            nan: 0,
            sum: 0.0,
        }
    }

    /// Rebuilds a histogram from decoded parts (the JSONL reader).
    ///
    /// # Errors
    ///
    /// The same layout rules as [`Histogram::new`], plus
    /// `counts.len() == bounds.len() + 1`, reported as messages instead
    /// of panics since the input is external.
    pub fn from_parts(
        bounds: Vec<f64>,
        counts: Vec<u64>,
        nan: u64,
        sum: f64,
    ) -> Result<Histogram, String> {
        if bounds.is_empty() {
            return Err("histogram needs at least one bound".to_string());
        }
        if bounds.windows(2).any(|p| p[0] >= p[1]) || bounds.iter().any(|b| !b.is_finite()) {
            return Err("histogram bounds must be finite and strictly increasing".to_string());
        }
        if counts.len() != bounds.len() + 1 {
            return Err(format!(
                "histogram with {} bounds needs {} counts, got {}",
                bounds.len(),
                bounds.len() + 1,
                counts.len()
            ));
        }
        if !sum.is_finite() {
            return Err("histogram sum must be finite".to_string());
        }
        Ok(Histogram {
            bounds,
            counts,
            nan,
            sum,
        })
    }

    /// Records one observation.
    pub fn observe(&mut self, value: f64) {
        if value.is_nan() {
            self.nan += 1;
            return;
        }
        if value.is_finite() {
            self.sum += value;
        }
        let bucket = self
            .bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(self.bounds.len());
        self.counts[bucket] += 1;
    }

    /// Upper bucket bounds (the overflow bucket is implicit).
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// Per-bucket observation counts; the last entry is the overflow
    /// bucket. NaN observations are *not* in here — see
    /// [`Histogram::nan_count`].
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// NaN observations recorded (bucketless, but never dropped).
    pub fn nan_count(&self) -> u64 {
        self.nan
    }

    /// Sum of all finite observations (infinities land in the overflow
    /// bucket but are excluded here to keep the sum meaningful).
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Total observations, NaN included.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum::<u64>() + self.nan
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_edges_are_inclusive_upper_bounds() {
        let mut h = Histogram::new(&[1.0, 10.0, 100.0]);
        // Exactly on an edge → that bucket, not the next.
        h.observe(1.0);
        h.observe(10.0);
        h.observe(100.0);
        // Strictly inside.
        h.observe(0.5);
        h.observe(5.0);
        // Above every bound → overflow.
        h.observe(100.0001);
        h.observe(f64::INFINITY);
        assert_eq!(h.counts(), &[2, 2, 1, 2]);
        assert_eq!(h.total(), 7);
        // Sum covers finite observations only.
        assert!((h.sum() - 216.5001).abs() < 1e-9);
    }

    #[test]
    fn below_first_bound_lands_in_first_bucket() {
        let mut h = Histogram::new(&[0.001]);
        h.observe(0.0);
        h.observe(-5.0);
        assert_eq!(h.counts(), &[2, 0]);
    }

    #[test]
    fn nan_is_counted_in_its_own_field_not_overflow() {
        let mut h = Histogram::new(&[1.0]);
        h.observe(f64::NAN);
        // Regression: NaN used to fall through `v <= bound` into the
        // overflow bucket, masquerading as a huge observation.
        assert_eq!(h.counts(), &[0, 0]);
        assert_eq!(h.nan_count(), 1);
        assert_eq!(h.total(), 1, "NaN is surfaced, not dropped");
        assert_eq!(h.sum(), 0.0, "NaN never poisons the sum");
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn unsorted_bounds_panic() {
        let _ = Histogram::new(&[1.0, 1.0]);
    }

    #[test]
    fn from_parts_validates() {
        let h = Histogram::from_parts(vec![1.0, 2.0], vec![0, 1, 2], 3, 4.5).expect("valid");
        assert_eq!(h.nan_count(), 3);
        assert_eq!(h.sum(), 4.5);
        assert_eq!(h.total(), 6);
        assert!(Histogram::from_parts(vec![], vec![0], 0, 0.0).is_err());
        assert!(Histogram::from_parts(vec![2.0, 1.0], vec![0, 0, 0], 0, 0.0).is_err());
        assert!(Histogram::from_parts(vec![1.0], vec![0], 0, 0.0).is_err());
        assert!(Histogram::from_parts(vec![f64::NAN], vec![0, 0], 0, 0.0).is_err());
        assert!(Histogram::from_parts(vec![1.0], vec![0, 0], 0, f64::NAN).is_err());
    }
}
